//! A small synchronous gather–apply–scatter engine.
//!
//! This mirrors GraphLab's abstraction (§4.3): per-superstep, every vertex
//! **gathers** an accumulator over its incident edges, **applies** it to
//! its own data, then **scatters** along incident edges (mutating edge
//! data). Supersteps are synchronous (bulk-synchronous-parallel semantics);
//! edges are partitioned into shards executed by worker threads, and apply
//! runs at the barrier.
//!
//! The engine is generic; the crate's tests run degree counting and
//! PageRank on it, and `parallel` expresses the COLD sampler in the same
//! superstep/barrier discipline.

/// A directed edge with typed payload.
#[derive(Debug, Clone)]
pub struct GasEdge<E> {
    /// Source vertex index.
    pub src: u32,
    /// Target vertex index.
    pub dst: u32,
    /// Edge payload (e.g. the posts a user wrote at a time slice).
    pub data: E,
}

/// The user-supplied program: how to gather, apply, and scatter.
pub trait VertexProgram {
    /// Per-vertex state.
    type Vertex: Send + Sync;
    /// Per-edge state.
    type Edge: Send + Sync;
    /// The gather accumulator; must combine associatively.
    type Accum: Default + Send + Clone;

    /// Contribution of one incident edge to a vertex's accumulator.
    fn gather(&self, vertex: u32, edge: &GasEdge<Self::Edge>, acc: &mut Self::Accum);

    /// Merge two accumulators (associative).
    fn merge(&self, into: &mut Self::Accum, from: Self::Accum);

    /// Update the vertex from its gathered accumulator.
    fn apply(&self, vertex: u32, data: &mut Self::Vertex, acc: Self::Accum);

    /// Update an edge after both endpoints applied. `vertices` is the full
    /// (immutable this phase) vertex array.
    fn scatter(&self, edge: &mut GasEdge<Self::Edge>, vertices: &[Self::Vertex]);
}

/// A vertex-centric graph plus superstep scheduler.
pub struct GasGraph<P: VertexProgram> {
    vertices: Vec<P::Vertex>,
    edges: Vec<GasEdge<P::Edge>>,
    /// Edge shard boundaries (shards are contiguous edge ranges).
    shards: usize,
}

impl<P: VertexProgram> GasGraph<P> {
    /// Build a graph over `vertices` and `edges`, executed in `shards`
    /// contiguous edge partitions.
    pub fn new(vertices: Vec<P::Vertex>, edges: Vec<GasEdge<P::Edge>>, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        Self {
            vertices,
            edges,
            shards,
        }
    }

    /// Vertex data, for inspection.
    pub fn vertices(&self) -> &[P::Vertex] {
        &self.vertices
    }

    /// Edge data, for inspection.
    pub fn edges(&self) -> &[GasEdge<P::Edge>] {
        &self.edges
    }

    /// Contiguous edge ranges, one per shard.
    fn shard_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let n = self.edges.len();
        let per = n.div_ceil(self.shards).max(1);
        (0..self.shards)
            .map(|s| (s * per).min(n)..((s + 1) * per).min(n))
            .collect()
    }

    /// Run one synchronous superstep of `program`.
    ///
    /// Gather runs sharded across worker threads (each shard produces
    /// per-vertex partial accumulators, merged at the barrier); apply runs
    /// once per vertex; scatter runs sharded again.
    pub fn superstep(&mut self, program: &P)
    where
        P: Sync,
        P::Accum: 'static,
    {
        let ranges = self.shard_ranges();
        // --- Gather phase (parallel over shards). ---
        let partials: Vec<Vec<(u32, P::Accum)>> = std::thread::scope(|scope| {
            let edges = &self.edges;
            let handles: Vec<_> = ranges
                .iter()
                .cloned()
                .map(|range| {
                    scope.spawn(move || {
                        let mut local: std::collections::HashMap<u32, P::Accum> =
                            std::collections::HashMap::new();
                        for edge in &edges[range] {
                            for v in [edge.src, edge.dst] {
                                let acc = local.entry(v).or_default();
                                program.gather(v, edge, acc);
                            }
                        }
                        local.into_iter().collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("gather worker"))
                .collect()
        });
        // --- Barrier: merge partials, apply per vertex. ---
        let mut merged: std::collections::HashMap<u32, P::Accum> = std::collections::HashMap::new();
        for partial in partials {
            for (v, acc) in partial {
                match merged.entry(v) {
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        program.merge(o.get_mut(), acc);
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(acc);
                    }
                }
            }
        }
        for (v, acc) in merged {
            program.apply(v, &mut self.vertices[v as usize], acc);
        }
        // --- Scatter phase (parallel over shards, vertices immutable). ---
        std::thread::scope(|scope| {
            let vertices = &self.vertices;
            // Split the edge vector into disjoint mutable shard slices.
            let mut rest: &mut [GasEdge<P::Edge>] = &mut self.edges;
            let mut slices = Vec::new();
            for range in &ranges {
                let len = range.len();
                let (head, tail) = rest.split_at_mut(len);
                slices.push(head);
                rest = tail;
            }
            for slice in slices {
                scope.spawn(move || {
                    for edge in slice.iter_mut() {
                        program.scatter(edge, vertices);
                    }
                });
            }
        });
    }

    /// Run `n` supersteps.
    pub fn run(&mut self, program: &P, n: usize)
    where
        P: Sync,
        P::Accum: 'static,
    {
        for _ in 0..n {
            self.superstep(program);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Degree counting: each vertex accumulates incident edge counts.
    struct DegreeProgram;

    impl VertexProgram for DegreeProgram {
        type Vertex = u32;
        type Edge = ();
        type Accum = u32;

        fn gather(&self, _v: u32, _e: &GasEdge<()>, acc: &mut u32) {
            *acc += 1;
        }
        fn merge(&self, into: &mut u32, from: u32) {
            *into += from;
        }
        fn apply(&self, _v: u32, data: &mut u32, acc: u32) {
            *data = acc;
        }
        fn scatter(&self, _e: &mut GasEdge<()>, _vs: &[u32]) {}
    }

    #[test]
    fn degree_counting_matches_reference() {
        let edges = vec![
            GasEdge {
                src: 0,
                dst: 1,
                data: (),
            },
            GasEdge {
                src: 1,
                dst: 2,
                data: (),
            },
            GasEdge {
                src: 0,
                dst: 2,
                data: (),
            },
        ];
        for shards in [1, 2, 4] {
            let mut g: GasGraph<DegreeProgram> = GasGraph::new(vec![0; 3], edges.clone(), shards);
            g.superstep(&DegreeProgram);
            assert_eq!(g.vertices(), &[2, 2, 2], "shards = {shards}");
        }
    }

    /// PageRank with uniform out-degree normalization stored on edges.
    struct PageRank {
        damping: f64,
        num_vertices: f64,
    }

    /// Vertex = (rank, out_degree); edge carries the source's rank share.
    impl VertexProgram for PageRank {
        type Vertex = (f64, f64);
        type Edge = f64;
        type Accum = f64;

        fn gather(&self, v: u32, e: &GasEdge<f64>, acc: &mut f64) {
            // Only the target side accumulates incoming rank.
            if e.dst == v {
                *acc += e.data;
            }
        }
        fn merge(&self, into: &mut f64, from: f64) {
            *into += from;
        }
        fn apply(&self, _v: u32, data: &mut (f64, f64), acc: f64) {
            data.0 = (1.0 - self.damping) / self.num_vertices + self.damping * acc;
        }
        fn scatter(&self, e: &mut GasEdge<f64>, vs: &[(f64, f64)]) {
            let (rank, out_deg) = vs[e.src as usize];
            e.data = rank / out_deg.max(1.0);
        }
    }

    #[test]
    fn pagerank_converges_to_reference_ranking() {
        // 0 -> 1, 1 -> 2, 2 -> 0, 0 -> 2: vertex 2 has two in-links.
        let raw = [(0u32, 1u32), (1, 2), (2, 0), (0, 2)];
        let mut out_deg = [0.0f64; 3];
        for &(s, _) in &raw {
            out_deg[s as usize] += 1.0;
        }
        let vertices: Vec<(f64, f64)> = (0..3).map(|v| (1.0 / 3.0, out_deg[v])).collect();
        let edges: Vec<GasEdge<f64>> = raw
            .iter()
            .map(|&(src, dst)| GasEdge {
                src,
                dst,
                data: 1.0 / 3.0 / out_deg[src as usize],
            })
            .collect();
        let program = PageRank {
            damping: 0.85,
            num_vertices: 3.0,
        };
        let mut single: GasGraph<PageRank> = GasGraph::new(vertices.clone(), edges.clone(), 1);
        let mut sharded: GasGraph<PageRank> = GasGraph::new(vertices, edges, 3);
        single.run(&program, 40);
        sharded.run(&program, 40);
        // Shard count must not change the result (synchronous semantics).
        for v in 0..3 {
            assert!((single.vertices()[v].0 - sharded.vertices()[v].0).abs() < 1e-12);
        }
        // Vertex 2 (two in-links) outranks vertex 1 (one in-link from 0).
        let ranks: Vec<f64> = single.vertices().iter().map(|&(r, _)| r).collect();
        assert!(ranks[2] > ranks[1], "{ranks:?}");
        // Ranks form a proper distribution (up to damping leakage).
        let total: f64 = ranks.iter().sum();
        assert!((total - 1.0).abs() < 0.05, "total rank {total}");
    }
}
