//! The parallel COLD Gibbs sampler: sharded supersteps with stale global
//! counters, reconciled at each barrier (Alg. 2's GAS program expressed as
//! bulk-synchronous shards).
//!
//! Shard assignment follows the paper's Fig. 4 partitioning intent:
//! a user's posts (her user–time edges) and her *outgoing* links live on
//! the shard that owns the user, so the membership counters `n_i` are
//! mostly shard-local; the low-dimensional global counters (`n_ck`,
//! `n_ckt`, `n_kv`, `n_k`, `n_cc`) are stale within a superstep and
//! reconciled at the barrier — each worker therefore samples against
//! counts that are stale by at most one superstep for other shards' items,
//! the standard AD-LDA approximation.
//!
//! ## Delta synchronization
//!
//! Two barrier strategies implement that reconciliation
//! ([`SyncStrategy`]):
//!
//! * **Delta** (default) — each shard keeps a *persistent* dense replica
//!   of the state across supersteps. While sampling, the conditionals
//!   mirror every counter update into a sparse
//!   [`DeltaAcc`](cold_core::state::DeltaAcc); the barrier drains each
//!   shard's [`CountDelta`], applies them to the authoritative state in
//!   shard order, and broadcasts each delta to the *other* replicas.
//!   Per-superstep traffic is O(shards × changed cells) — the measured
//!   serialized delta bytes are reported as `sync_bytes` — instead of
//!   O(shards × full state).
//! * **CloneMerge** — the pre-delta engine: every worker clones the full
//!   state at superstep start and the barrier diffs full states
//!   element-wise. Kept as the measured baseline for the shard-scaling
//!   bench (`bench_parallel`) and as the reference arm of the
//!   delta-equivalence tests.
//!
//! The two strategies are **bit-identical**: a replica's counters equal
//! the authoritative barrier state (integer delta addition is commutative
//! and exact), per-(superstep, shard) RNG streams are shared, and each
//! worker still rebuilds its kernel caches per superstep, so every draw
//! sees exactly the same inputs either way.

use crate::cluster::{ClusterCostModel, SuperstepWork};
use cold_core::checkpoint::{
    due_after_sweep, fnv1a64, Checkpoint, CheckpointKind, Checkpointer, CkptError,
};
use cold_core::conditionals::{
    resample_link, resample_negative_link, resample_post, KernelCounters, Scratch,
};
use cold_core::estimates::EstimateAccumulator;
use cold_core::params::ColdConfig;
use cold_core::sampler::{complete_log_likelihood, TrainTrace};
use cold_core::state::{CountDelta, CountState, DeltaAcc, PostsView};
use cold_core::storage::CounterStore;
use cold_core::ColdModel;
use cold_graph::CsrGraph;
use cold_math::rng::{seeded_rng, Rng, RngFactory};
use cold_obs::trace::{field, hex_digest};
use cold_text::Corpus;

/// Work and timing records of a parallel training run.
#[derive(Debug, Clone, Default)]
pub struct ParallelStats {
    /// Metered work per superstep (input to the cluster cost model).
    pub supersteps: Vec<SuperstepWork>,
    /// Measured wall time of each superstep, seconds (same indexing as
    /// `supersteps`; their sum is bounded by `wall_seconds`). Covers the
    /// sampling + barrier work only: posterior-sample collection and
    /// checkpoint writes at the barrier are timed separately
    /// (`ckpt.snapshot_seconds` / `ckpt.write_seconds`), never here.
    pub superstep_seconds: Vec<f64>,
    /// Real single-machine wall time of the run, seconds.
    pub wall_seconds: f64,
}

impl ParallelStats {
    /// Simulated wall time on a cluster of `nodes` machines.
    pub fn simulated_seconds(&self, model: &ClusterCostModel, nodes: usize) -> f64 {
        model.total_seconds(&self.supersteps, nodes)
    }
}

/// How the sharded engine reconciles shard work at the superstep barrier.
/// See the [module docs](self) for the full contract; the two strategies
/// produce bit-identical trajectories and differ only in memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncStrategy {
    /// Sparse delta sync: persistent per-shard replicas, O(changed cells)
    /// barrier traffic, measured `sync_bytes`.
    #[default]
    Delta,
    /// Clone-everything baseline: per-superstep full-state clones,
    /// element-wise diff at the barrier, estimated `sync_bytes`.
    CloneMerge,
}

/// Persistent per-shard worker state of the [`SyncStrategy::Delta`] path.
struct ShardWorker {
    /// Dense replica of the authoritative state. Counters equal the
    /// barrier state at every superstep start; assignment entries are
    /// current for owned items only (non-owned assignments are never read
    /// by sampling, so they are not synced).
    replica: CountState,
    /// Reusable sparse accumulator (epoch-stamped, so draining between
    /// supersteps is O(touched cells), not O(state)). `None` only while
    /// lent to the worker thread's `Scratch` during a superstep.
    acc: Option<Box<DeltaAcc>>,
}

impl ShardWorker {
    fn new(global: &CountState) -> Self {
        Self {
            replica: global.clone(),
            acc: Some(Box::new(DeltaAcc::for_state(global))),
        }
    }
}

/// How a [`ParallelGibbs`] executes its supersteps.
enum ShardMode {
    /// Two or more shards: per-shard RNG streams, barrier reconciliation
    /// under the selected [`SyncStrategy`] (the AD-LDA approximation).
    Sharded {
        factory: RngFactory,
        strategy: SyncStrategy,
        /// One entry per shard under [`SyncStrategy::Delta`]; empty under
        /// [`SyncStrategy::CloneMerge`] (workers clone per superstep).
        workers: Vec<ShardWorker>,
    },
    /// Exactly one shard: run the sweep in place with a persistent RNG and
    /// persistent kernel caches, exactly as the sequential
    /// `GibbsSampler` does — trajectories are **bit-identical** to the
    /// sequential sampler for the same seed, making shards=1 a true
    /// degenerate case instead of a differently-seeded approximation.
    Sequential { rng: Rng, scratch: Box<Scratch> },
}

/// The sharded parallel sampler.
pub struct ParallelGibbs {
    config: ColdConfig,
    posts: PostsView,
    shards: usize,
    /// Post ids per shard (by author ownership).
    shard_posts: Vec<Vec<usize>>,
    /// Link indices per shard (by source-user ownership).
    shard_links: Vec<Vec<usize>>,
    /// Negative-pair indices per shard (by source-user ownership).
    shard_neg_links: Vec<Vec<usize>>,
    /// Authoritative state between supersteps.
    global: CountState,
    mode: ShardMode,
    /// Static estimate of the full global-counter block (bytes): what the
    /// clone-merge baseline ships per barrier. The delta path reports
    /// measured serialized delta sizes instead.
    clone_sync_bytes: u64,
    /// Completed supersteps (checkpoints are cut at these barriers).
    sweeps_done: usize,
    /// Partial posterior averages collected after burn-in. A field (not a
    /// `run`-local) so checkpoints capture it and resume loses no samples.
    acc: EstimateAccumulator,
    /// The base seed; sharded resume re-derives its per-(sweep, shard)
    /// RNG streams from it.
    seed: u64,
}

impl ParallelGibbs {
    /// Prepare a parallel sampler with `shards` partitions and the default
    /// [`SyncStrategy::Delta`] barrier.
    pub fn new(
        corpus: &Corpus,
        graph: &CsrGraph,
        config: ColdConfig,
        shards: usize,
        seed: u64,
    ) -> Self {
        Self::with_strategy(corpus, graph, config, shards, seed, SyncStrategy::default())
    }

    /// Prepare a parallel sampler with an explicit barrier strategy. The
    /// strategy never changes the trajectory — only the barrier's memory
    /// traffic and the meaning of the reported `sync_bytes`.
    pub fn with_strategy(
        corpus: &Corpus,
        graph: &CsrGraph,
        config: ColdConfig,
        shards: usize,
        seed: u64,
        strategy: SyncStrategy,
    ) -> Self {
        assert!(shards >= 1, "need at least one shard");
        config.validate().expect("invalid COLD configuration");
        let posts = PostsView::from_corpus(corpus);
        let (global, mode) = if shards == 1 {
            // Degenerate case: seed and step the RNG exactly like
            // `GibbsSampler::new` so the trajectories coincide bit-for-bit.
            let mut rng = seeded_rng(seed);
            let global = CountState::init_random(&config, &posts, graph, &mut rng);
            let scratch = Box::new(Scratch::for_config(&config));
            (global, ShardMode::Sequential { rng, scratch })
        } else {
            let factory = RngFactory::new(seed);
            let mut init_rng = factory.stream(u64::MAX);
            let global = CountState::init_random(&config, &posts, graph, &mut init_rng);
            let workers = match strategy {
                SyncStrategy::Delta => (0..shards).map(|_| ShardWorker::new(&global)).collect(),
                SyncStrategy::CloneMerge => Vec::new(),
            };
            (
                global,
                ShardMode::Sharded {
                    factory,
                    strategy,
                    workers,
                },
            )
        };
        let (shard_posts, shard_links, shard_neg_links, clone_sync_bytes) =
            Self::build_partitions(&posts, &global, shards);
        let this = Self {
            acc: EstimateAccumulator::new(&config),
            config,
            posts,
            shards,
            shard_posts,
            shard_links,
            shard_neg_links,
            global,
            mode,
            clone_sync_bytes,
            sweeps_done: 0,
            seed,
        };
        this.publish_partition_gauges();
        this
    }

    /// Deterministic shard assignment by greedy LPT on per-user post
    /// counts: users are placed in descending post-count order (ties:
    /// ascending user id) onto the least-loaded shard (ties: lowest shard
    /// id), and a user's links and negative pairs follow her shard. A pure
    /// function of posts, links and the shard count, so resume rebuilds
    /// the identical partition. Compared with the round-robin placement it
    /// replaces, LPT keeps heavy-tailed author distributions balanced
    /// (`parallel.shard_imbalance` tracks the achieved max/mean ratio).
    ///
    /// Also returns the byte size of the full global-counter block — the
    /// per-barrier traffic of the clone-merge baseline (§4.3: "global
    /// counters are generally only related to latent spaces which are
    /// low-dimensional").
    #[allow(clippy::type_complexity)]
    fn build_partitions(
        posts: &PostsView,
        global: &CountState,
        shards: usize,
    ) -> (Vec<Vec<usize>>, Vec<Vec<usize>>, Vec<Vec<usize>>, u64) {
        let num_users = global.n_i.len();
        let mut post_count = vec![0u64; num_users];
        for &a in &posts.authors {
            post_count[a as usize] += 1;
        }
        let mut order: Vec<u32> = (0..num_users as u32).collect();
        order.sort_by(|&a, &b| {
            post_count[b as usize]
                .cmp(&post_count[a as usize])
                .then(a.cmp(&b))
        });
        let mut load = vec![0u64; shards];
        let mut user_shard = vec![0u32; num_users];
        for &i in &order {
            let s = (0..shards)
                .min_by_key(|&s| (load[s], s))
                .expect("at least one shard");
            user_shard[i as usize] = s as u32;
            load[s] += post_count[i as usize];
        }
        let mut shard_posts: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for d in 0..posts.len() {
            shard_posts[user_shard[posts.authors[d] as usize] as usize].push(d);
        }
        let mut shard_links: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (e, &(i, _)) in global.links.iter().enumerate() {
            shard_links[user_shard[i as usize] as usize].push(e);
        }
        let mut shard_neg_links: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (e, &(i, _)) in global.neg_links.iter().enumerate() {
            shard_neg_links[user_shard[i as usize] as usize].push(e);
        }
        let clone_sync_bytes = 4
            * (global.n_ck.len()
                + global.n_c.len()
                + global.n_ckt.len()
                + global.n_kv.len()
                + global.n_k.len()
                + global.n_cc.len()) as u64;
        (shard_posts, shard_links, shard_neg_links, clone_sync_bytes)
    }

    /// Max/mean owned post ops across shards (1.0 = perfectly balanced).
    fn shard_imbalance(&self) -> f64 {
        let mean = self.posts.len() as f64 / self.shards as f64;
        if mean == 0.0 {
            return 1.0;
        }
        let max = self.shard_posts.iter().map(|p| p.len()).max().unwrap_or(0) as f64;
        max / mean
    }

    /// Publish the partition-shape gauges (idempotent; called at
    /// construction and resume so dashboards see them even for runs driven
    /// by `superstep` directly).
    fn publish_partition_gauges(&self) {
        let metrics = &self.config.metrics.0;
        metrics.gauge_set("parallel.shards", self.shards as f64);
        metrics.gauge_set("parallel.shard_imbalance", self.shard_imbalance());
    }

    /// Rebuild a parallel sampler from a `cold-ckpt/v1` checkpoint,
    /// positioned at the superstep barrier where it was written. The shard
    /// count is pinned by the checkpoint (resharding would change both the
    /// partition and the RNG streams). Resume is **bit-identical**: the
    /// single-shard mode restores its sequential RNG stream, and the
    /// sharded mode's per-(superstep, shard) streams are pure functions of
    /// the base seed, so they need no serialized state at all. Delta-mode
    /// replicas are barrier-local (each equals the checkpointed state's
    /// counters), so the checkpoint format carries nothing extra for them.
    ///
    /// [`ParallelStats`] restart at zero — work metering is per-process,
    /// not part of the training state.
    pub fn resume(
        corpus: &Corpus,
        config: ColdConfig,
        ckpt: Checkpoint,
    ) -> Result<Self, CkptError> {
        if ckpt.kind != CheckpointKind::Parallel {
            return Err(CkptError::Format(format!(
                "expected a parallel-engine checkpoint, found {:?}",
                ckpt.kind
            )));
        }
        ckpt.check_config(&config)?;
        let posts = PostsView::from_corpus(corpus);
        if posts.len() != ckpt.state.post_comm.len() {
            return Err(CkptError::ConfigMismatch(format!(
                "corpus has {} posts but the checkpoint assigns {}",
                posts.len(),
                ckpt.state.post_comm.len()
            )));
        }
        let shards = ckpt.shards;
        // Checkpoints always carry dense counters; re-apply the configured
        // storage policy before the shard replicas clone the global, so a
        // resumed run uses the same backends a fresh one would.
        let mut global = ckpt.state;
        global.select_storage(config.counter_storage);
        let mode = if shards == 1 {
            if ckpt.rng.len() != 4 {
                return Err(CkptError::Format(format!(
                    "single-shard checkpoint needs 4 RNG words, got {}",
                    ckpt.rng.len()
                )));
            }
            let mut words = [0u64; 4];
            words.copy_from_slice(&ckpt.rng);
            ShardMode::Sequential {
                rng: Rng::from_raw_state(words),
                scratch: Box::new(Scratch::for_config(&config)),
            }
        } else {
            ShardMode::Sharded {
                factory: RngFactory::new(ckpt.seed),
                strategy: SyncStrategy::Delta,
                workers: (0..shards).map(|_| ShardWorker::new(&global)).collect(),
            }
        };
        let (shard_posts, shard_links, shard_neg_links, clone_sync_bytes) =
            Self::build_partitions(&posts, &global, shards);
        let this = Self {
            config,
            posts,
            shards,
            shard_posts,
            shard_links,
            shard_neg_links,
            global,
            mode,
            clone_sync_bytes,
            sweeps_done: ckpt.sweeps_done,
            acc: ckpt.acc,
            seed: ckpt.seed,
        };
        this.publish_partition_gauges();
        // The `resume` trace event consumes the preceding `ckpt_load` in
        // the replay model — every resume must pair with exactly one
        // loaded checkpoint.
        let metrics = &this.config.metrics.0;
        if metrics.trace_enabled() {
            metrics.trace_event(
                "resume",
                vec![
                    field("sweep", this.sweeps_done),
                    field("shards", this.shards),
                ],
            );
        }
        Ok(this)
    }

    /// Snapshot the complete training state at the current superstep
    /// barrier. Never consumes sampler randomness.
    pub fn checkpoint(&self) -> Checkpoint {
        let rng = match &self.mode {
            ShardMode::Sequential { rng, .. } => rng.raw_state().to_vec(),
            // Sharded streams are derived per (superstep, shard) from the
            // base seed — nothing to serialize. Delta replicas equal the
            // barrier state, so they are rebuilt on resume, not stored.
            ShardMode::Sharded { .. } => Vec::new(),
        };
        Checkpoint {
            kind: CheckpointKind::Parallel,
            seed: self.seed,
            shards: self.shards,
            sweeps_done: self.sweeps_done,
            rng,
            config: self.config.clone(),
            state: self.global.clone(),
            trace: TrainTrace::default(),
            acc: self.acc.clone(),
            posts: None,
            online: None,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Completed supersteps so far.
    pub fn sweeps_done(&self) -> usize {
        self.sweeps_done
    }

    /// Read access to the authoritative state.
    pub fn state(&self) -> &CountState {
        &self.global
    }

    /// Complete-data log-likelihood of the training data at the current
    /// barrier — the same §4.3 convergence monitor the sequential sampler
    /// reports, evaluated on the authoritative state.
    pub fn log_likelihood(&self) -> f64 {
        complete_log_likelihood(&self.global, &self.posts, &self.config.hyper)
    }

    /// One superstep + the bookkeeping that belongs to its barrier:
    /// timing, sample collection, and (if a checkpointer is attached and
    /// the cadence hits) a durable checkpoint.
    fn step_once(
        &mut self,
        stats: Option<&mut ParallelStats>,
        ckpt: Option<&Checkpointer>,
    ) -> Result<(), CkptError> {
        let sweep = self.sweeps_done;
        let t_step = std::time::Instant::now();
        let work = self.superstep(sweep);
        // Superstep timing stops here: sample collection and checkpoint
        // I/O below are barrier add-ons, not superstep work, and are
        // accounted under their own metrics (`ckpt.*`).
        if let Some(stats) = stats {
            stats.superstep_seconds.push(t_step.elapsed().as_secs_f64());
            stats.supersteps.push(work);
        }
        if sweep >= self.config.burn_in
            && (sweep - self.config.burn_in).is_multiple_of(self.config.sample_lag)
        {
            self.acc.collect(&self.global);
        }
        if let Some(ckptr) = ckpt {
            if due_after_sweep(&self.config, sweep) {
                let metrics = self.config.metrics.0.clone();
                let t_snap = metrics.start();
                let snapshot = self.checkpoint();
                metrics.observe_since("ckpt.snapshot_seconds", t_snap);
                ckptr.write(&snapshot)?;
            }
        }
        Ok(())
    }

    /// Run until the configured iteration count, from wherever the sampler
    /// currently is (fresh or resumed).
    fn run_to_completion(
        mut self,
        ckpt: Option<&Checkpointer>,
    ) -> Result<(ColdModel, ParallelStats), CkptError> {
        let mut stats = ParallelStats::default();
        let start = std::time::Instant::now();
        while self.sweeps_done < self.config.iterations {
            self.step_once(Some(&mut stats), ckpt)?;
        }
        stats.wall_seconds = start.elapsed().as_secs_f64();
        self.publish_final_gauges(stats.wall_seconds);
        Ok((self.acc.finalize(), stats))
    }

    /// Publish the end-of-run gauges (`parallel.wall_seconds` and the
    /// partition shape). [`run`](Self::run) and
    /// [`run_checkpointed`](Self::run_checkpointed) call this themselves;
    /// callers driving the sampler manually via
    /// [`run_sweeps`](Self::run_sweeps) should call it once training ends.
    pub fn publish_final_gauges(&self, wall_seconds: f64) {
        let metrics = &self.config.metrics.0;
        metrics.gauge_set("parallel.wall_seconds", wall_seconds);
        self.publish_partition_gauges();
        self.global.publish_storage_gauges(metrics);
    }

    /// Run the configured sweeps; returns the fitted model and work stats.
    pub fn run(self) -> (ColdModel, ParallelStats) {
        self.run_to_completion(None)
            .expect("checkpoint-free run cannot fail")
    }

    /// [`run`](Self::run), writing a checkpoint through `ckpt` at every
    /// `checkpoint_every`-th superstep barrier (default: every 10th) plus
    /// the final one.
    pub fn run_checkpointed(
        self,
        ckpt: &Checkpointer,
    ) -> Result<(ColdModel, ParallelStats), CkptError> {
        self.run_to_completion(Some(ckpt))
    }

    /// Advance to superstep `upto` (capped at the configured iterations)
    /// without finalizing, optionally checkpointing at the barriers. Lets
    /// tests stop a run exactly where a crash would.
    pub fn run_sweeps(
        &mut self,
        upto: usize,
        ckpt: Option<&Checkpointer>,
    ) -> Result<(), CkptError> {
        let upto = upto.min(self.config.iterations);
        while self.sweeps_done < upto {
            self.step_once(None, ckpt)?;
        }
        Ok(())
    }

    /// Average the samples collected so far into a model.
    ///
    /// # Panics
    /// Panics if no post-burn-in sample was ever collected.
    pub fn finish(self) -> ColdModel {
        self.acc.finalize()
    }

    /// One bulk-synchronous superstep: every shard resamples its items
    /// against stale counters + its own updates; the barrier reconciles
    /// under the configured [`SyncStrategy`]. With a single shard this
    /// degenerates to an in-place sequential sweep (see [`ShardMode`]).
    pub fn superstep(&mut self, sweep: usize) -> SuperstepWork {
        let metrics = self.config.metrics.0.clone();
        let sync = match &self.mode {
            ShardMode::Sequential { .. } => "seq",
            ShardMode::Sharded {
                strategy: SyncStrategy::CloneMerge,
                ..
            } => "clone",
            ShardMode::Sharded {
                strategy: SyncStrategy::Delta,
                ..
            } => "delta",
        };
        self.trace_superstep("superstep_begin", sweep, sync);
        let t_step = metrics.start();
        let work = match &self.mode {
            ShardMode::Sequential { .. } => self.superstep_sequential(sweep),
            ShardMode::Sharded {
                strategy: SyncStrategy::CloneMerge,
                ..
            } => self.superstep_clone_merge(sweep),
            ShardMode::Sharded {
                strategy: SyncStrategy::Delta,
                ..
            } => self.superstep_delta(sweep),
        };
        metrics.observe_since("parallel.superstep_seconds", t_step);
        metrics.counter_add("parallel.supersteps", 1);
        metrics.counter_add("parallel.sync_bytes", work.sync_bytes);
        self.trace_superstep("superstep_end", sweep, sync);
        self.sweeps_done += 1;
        work
    }

    /// Emit one `cold-trace/v1` superstep boundary event: the sweep, shard
    /// count, sync mode and the eleven per-family counter sums of the
    /// authoritative state — the values the replay model checks delta
    /// conservation against. No-op (and sum-free) when tracing is off.
    fn trace_superstep(&self, kind: &str, sweep: usize, sync: &str) {
        let metrics = &self.config.metrics.0;
        if !metrics.trace_enabled() {
            return;
        }
        let mut fields = vec![
            field("sweep", sweep),
            field("shards", self.shards),
            field("sync", sync),
        ];
        for (name, store) in self.global.families() {
            fields.push(field(format!("sum_{name}"), store.sum()));
        }
        metrics.trace_event(kind, fields);
    }

    /// The shards=1 superstep: one in-place sweep with the persistent RNG
    /// and kernel caches, mirroring `GibbsSampler::sweep` exactly.
    fn superstep_sequential(&mut self, sweep: usize) -> SuperstepWork {
        let metrics = self.config.metrics.0.clone();
        let hyper = self.config.hyper;
        let rho = annealed_rho(&self.config, sweep);
        let ShardMode::Sequential { rng, scratch } = &mut self.mode else {
            unreachable!("dispatched on mode");
        };
        let t_apply = metrics.start();
        scratch.begin_sweep(&self.global);
        for d in 0..self.posts.len() {
            resample_post(&mut self.global, &self.posts, d, &hyper, rho, rng, scratch);
        }
        let n_links = self.global.links.len();
        for e in 0..n_links {
            resample_link(&mut self.global, e, &hyper, rho, rng, scratch);
        }
        let n_neg = self.global.neg_links.len();
        for e in 0..n_neg {
            resample_negative_link(&mut self.global, e, &hyper, rho, rng, scratch);
        }
        metrics.observe_since("parallel.apply_seconds", t_apply);
        if metrics.is_enabled() {
            metrics.counter_add("parallel.shard.0.post_draws", self.posts.len() as u64);
            metrics.counter_add("parallel.shard.0.link_draws", (n_links + n_neg) as u64);
            scratch
                .take_counters()
                .flush_into(&metrics, self.config.kernel);
        }
        debug_assert!(self.global.check_consistency(&self.posts).is_ok());
        SuperstepWork {
            post_ops: vec![self.posts.len() as u64],
            link_ops: vec![(n_links + n_neg) as u64],
            sync_bytes: self.clone_sync_bytes,
            shard_sync_bytes: Vec::new(),
        }
    }

    /// The clone-everything baseline superstep (pre-delta engine).
    fn superstep_clone_merge(&mut self, sweep: usize) -> SuperstepWork {
        let metrics = self.config.metrics.0.clone();
        let hyper = self.config.hyper;
        let rho = annealed_rho(&self.config, sweep);
        let snapshot = &self.global;
        let ShardMode::Sharded { factory, .. } = &self.mode else {
            unreachable!("dispatched on mode");
        };
        // Each worker gets a private clone of the full state. Assignments
        // are partitioned (each item has exactly one owner shard), so the
        // merge below is conflict-free on assignments; counters merge by
        // delta addition.
        let results: Vec<(CountState, KernelCounters)> = std::thread::scope(|scope| {
            let posts = &self.posts;
            let shard_posts = &self.shard_posts;
            let shard_links = &self.shard_links;
            let shard_neg_links = &self.shard_neg_links;
            let config = &self.config;
            let handles: Vec<_> = (0..self.shards)
                .map(|s| {
                    let metrics = metrics.clone();
                    scope.spawn(move || {
                        // Gather phase: snapshot the stale global counters
                        // and rebuild the kernel caches against them (the
                        // AliasMh proposals are re-snapshotted per
                        // superstep, matching the sequential sampler's
                        // per-sweep refresh).
                        let t_gather = metrics.start();
                        let mut local = snapshot.clone();
                        let mut rng = factory.stream((sweep as u64) << 16 | s as u64);
                        let mut scratch = Scratch::for_config(config);
                        scratch.begin_sweep(&local);
                        metrics.observe_since("parallel.gather_seconds", t_gather);
                        // Apply phase: resample every owned item.
                        let t_apply = metrics.start();
                        for &d in &shard_posts[s] {
                            resample_post(
                                &mut local,
                                posts,
                                d,
                                &hyper,
                                rho,
                                &mut rng,
                                &mut scratch,
                            );
                        }
                        for &e in &shard_links[s] {
                            resample_link(&mut local, e, &hyper, rho, &mut rng, &mut scratch);
                        }
                        for &e in &shard_neg_links[s] {
                            resample_negative_link(
                                &mut local,
                                e,
                                &hyper,
                                rho,
                                &mut rng,
                                &mut scratch,
                            );
                        }
                        metrics.observe_since("parallel.apply_seconds", t_apply);
                        (local, scratch.take_counters())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });

        // Barrier: fold counter deltas and collect assignments.
        let mut next = self.global.clone();
        let mut kernel_counters = KernelCounters::default();
        for (s, (local, counters)) in results.iter().enumerate() {
            let t_merge = metrics.start();
            for &d in &self.shard_posts[s] {
                next.post_comm[d] = local.post_comm[d];
                next.post_topic[d] = local.post_topic[d];
            }
            for &e in &self.shard_links[s] {
                next.link_src_comm[e] = local.link_src_comm[e];
                next.link_dst_comm[e] = local.link_dst_comm[e];
            }
            for &e in &self.shard_neg_links[s] {
                next.neg_src_comm[e] = local.neg_src_comm[e];
                next.neg_dst_comm[e] = local.neg_dst_comm[e];
            }
            merge_delta(&mut next.n_ic, &local.n_ic, &self.global.n_ic);
            merge_delta(&mut next.n_i, &local.n_i, &self.global.n_i);
            merge_delta(&mut next.n_ck, &local.n_ck, &self.global.n_ck);
            merge_delta(&mut next.n_c, &local.n_c, &self.global.n_c);
            merge_delta(&mut next.n_ckt, &local.n_ckt, &self.global.n_ckt);
            merge_delta(&mut next.n_kv, &local.n_kv, &self.global.n_kv);
            // The word-major mirror and the posts-per-topic counter merge
            // like any other counter (they are *not* synced over the wire:
            // each worker derives them from n_kv / n_ck locally, so
            // sync_bytes is unchanged).
            merge_delta(&mut next.n_vk, &local.n_vk, &self.global.n_vk);
            merge_delta(&mut next.n_post_k, &local.n_post_k, &self.global.n_post_k);
            merge_delta(&mut next.n_k, &local.n_k, &self.global.n_k);
            merge_delta(&mut next.n_cc, &local.n_cc, &self.global.n_cc);
            merge_delta(&mut next.n0_cc, &local.n0_cc, &self.global.n0_cc);
            metrics.observe_since("parallel.merge_seconds", t_merge);
            kernel_counters.merge(counters);
        }
        self.global = next;
        if metrics.is_enabled() {
            self.publish_shard_draw_counters(&metrics);
            kernel_counters.flush_into(&metrics, self.config.kernel);
        }
        debug_assert!(self.global.check_consistency(&self.posts).is_ok());
        self.sharded_work(self.clone_sync_bytes, Vec::new())
    }

    /// The delta-sync superstep: persistent replicas sample in place,
    /// recording sparse [`CountDelta`]s; the barrier applies them in shard
    /// order and broadcasts each to the other replicas.
    fn superstep_delta(&mut self, sweep: usize) -> SuperstepWork {
        let metrics = self.config.metrics.0.clone();
        let hyper = self.config.hyper;
        let rho = annealed_rho(&self.config, sweep);
        let ShardMode::Sharded {
            factory, workers, ..
        } = &mut self.mode
        else {
            unreachable!("dispatched on mode");
        };
        let factory = &*factory;
        let deltas: Vec<(CountDelta, KernelCounters)> = std::thread::scope(|scope| {
            let posts = &self.posts;
            let shard_posts = &self.shard_posts;
            let shard_links = &self.shard_links;
            let shard_neg_links = &self.shard_neg_links;
            let config = &self.config;
            let handles: Vec<_> = workers
                .iter_mut()
                .enumerate()
                .map(|(s, worker)| {
                    let metrics = metrics.clone();
                    scope.spawn(move || {
                        // Gather phase: the replica's counters already
                        // equal the barrier state, so there is nothing to
                        // copy — only the kernel caches are rebuilt
                        // (per superstep, like the clone baseline, which
                        // is what keeps the two paths bit-identical).
                        let t_gather = metrics.start();
                        let mut rng = factory.stream((sweep as u64) << 16 | s as u64);
                        let mut scratch = Scratch::for_config(config);
                        scratch.begin_sweep(&worker.replica);
                        scratch.attach_delta(
                            worker.acc.take().expect("accumulator parked at barrier"),
                        );
                        metrics.observe_since("parallel.gather_seconds", t_gather);
                        // Apply phase: resample every owned item in place,
                        // mirroring each counter update into the delta.
                        let t_apply = metrics.start();
                        for &d in &shard_posts[s] {
                            resample_post(
                                &mut worker.replica,
                                posts,
                                d,
                                &hyper,
                                rho,
                                &mut rng,
                                &mut scratch,
                            );
                        }
                        for &e in &shard_links[s] {
                            resample_link(
                                &mut worker.replica,
                                e,
                                &hyper,
                                rho,
                                &mut rng,
                                &mut scratch,
                            );
                        }
                        for &e in &shard_neg_links[s] {
                            resample_negative_link(
                                &mut worker.replica,
                                e,
                                &hyper,
                                rho,
                                &mut rng,
                                &mut scratch,
                            );
                        }
                        metrics.observe_since("parallel.apply_seconds", t_apply);
                        let mut acc = scratch.detach_delta().expect("attached above");
                        let delta = acc.drain();
                        worker.acc = Some(acc);
                        (delta, scratch.take_counters())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });

        // Trace announcements: one `shard_delta` summary per shard —
        // epoch, per-family cell counts and net changes, and an FNV digest
        // of the `cold-delta/v1` wire bytes — emitted before any apply, as
        // a distributed barrier would receive them.
        let traced = metrics.trace_enabled();
        let mut digests: Vec<u64> = Vec::new();
        if traced {
            for (s, (delta, _)) in deltas.iter().enumerate() {
                let encoded = delta.encode();
                let digest = fnv1a64(&encoded);
                digests.push(digest);
                let mut fields = vec![
                    field("sweep", sweep),
                    field("shard", s),
                    field("cells", delta.cells()),
                    field("bytes", encoded.len()),
                    field("digest", hex_digest(digest)),
                ];
                for (name, cells) in delta_families(delta) {
                    let net: i64 = cells.iter().map(|&(_, d)| i64::from(d)).sum();
                    fields.push(field(format!("cells_{name}"), cells.len()));
                    fields.push(field(format!("net_{name}"), net));
                }
                metrics.trace_event("shard_delta", fields);
            }
        }

        // Barrier, step 1: apply each shard's delta to the authoritative
        // state in ascending shard order. The order is fixed (and cell
        // updates are exact integer addition), so the result is
        // deterministic and equal to the clone baseline's merge.
        let t_merge = metrics.start();
        let mut kernel_counters = KernelCounters::default();
        let mut shard_sync_bytes = Vec::with_capacity(self.shards);
        let mut delta_cells = 0u64;
        for (s, (delta, counters)) in deltas.iter().enumerate() {
            self.global.apply_delta(delta);
            if traced {
                metrics.trace_event(
                    "delta_apply",
                    vec![
                        field("sweep", sweep),
                        field("shard", s),
                        field("digest", hex_digest(digests[s])),
                    ],
                );
            }
            shard_sync_bytes.push(delta.encoded_len());
            delta_cells += delta.cells();
            kernel_counters.merge(counters);
        }
        metrics.observe_since("parallel.merge.apply_seconds", t_merge);
        // Barrier, step 2: broadcast every delta's counter cells to the
        // *other* shards' replicas. Addition commutes, so each replica
        // lands on exactly the authoritative counters regardless of
        // order. Assignments are not broadcast: a replica only ever reads
        // the assignments of items it owns, and those it wrote itself.
        let t_broadcast = metrics.start();
        for (r, worker) in workers.iter_mut().enumerate() {
            for (s, (delta, _)) in deltas.iter().enumerate() {
                if s != r {
                    delta.apply_counters(&mut worker.replica);
                }
            }
        }
        metrics.observe_since("parallel.merge.broadcast_seconds", t_broadcast);
        metrics.observe_since("parallel.merge_seconds", t_merge);
        metrics.counter_add("parallel.delta_cells", delta_cells);
        #[cfg(debug_assertions)]
        for worker in workers.iter() {
            debug_assert_eq!(worker.replica.n_ic, self.global.n_ic);
            debug_assert_eq!(worker.replica.n_kv, self.global.n_kv);
            debug_assert_eq!(worker.replica.n_vk, self.global.n_vk);
            debug_assert_eq!(worker.replica.n_post_k, self.global.n_post_k);
            debug_assert_eq!(worker.replica.n_ckt, self.global.n_ckt);
            debug_assert_eq!(worker.replica.n_cc, self.global.n_cc);
        }
        if metrics.is_enabled() {
            for (s, &bytes) in shard_sync_bytes.iter().enumerate() {
                metrics.counter_add(&format!("parallel.shard.{s}.sync_bytes"), bytes);
            }
            self.publish_shard_draw_counters(&metrics);
            kernel_counters.flush_into(&metrics, self.config.kernel);
        }
        debug_assert!(self.global.check_consistency(&self.posts).is_ok());
        let total: u64 = shard_sync_bytes.iter().sum();
        self.sharded_work(total, shard_sync_bytes)
    }

    /// Per-shard draw counters, shared by both sharded strategies.
    fn publish_shard_draw_counters(&self, metrics: &cold_core::Metrics) {
        for s in 0..self.shards {
            metrics.counter_add(
                &format!("parallel.shard.{s}.post_draws"),
                self.shard_posts[s].len() as u64,
            );
            metrics.counter_add(
                &format!("parallel.shard.{s}.link_draws"),
                (self.shard_links[s].len() + self.shard_neg_links[s].len()) as u64,
            );
        }
    }

    /// The metered work of one sharded superstep.
    fn sharded_work(&self, sync_bytes: u64, shard_sync_bytes: Vec<u64>) -> SuperstepWork {
        SuperstepWork {
            post_ops: self.shard_posts.iter().map(|p| p.len() as u64).collect(),
            // Explicitly-modeled negative pairs cost the same O(C²) draw as
            // positive links; meter them together.
            link_ops: self
                .shard_links
                .iter()
                .zip(&self.shard_neg_links)
                .map(|(l, n)| (l.len() + n.len()) as u64)
                .collect(),
            sync_bytes,
            shard_sync_bytes,
        }
    }
}

/// The nine independent counter families a [`CountDelta`] carries, with
/// their wire names in `cold-delta/v1` declaration order. The trace
/// recorder summarizes each family per shard (`cells_*` / `net_*`), which
/// is what lets the replay model check per-epoch conservation without the
/// full cell lists.
fn delta_families(delta: &CountDelta) -> [(&'static str, &Vec<(u32, i32)>); 9] {
    [
        ("n_ic", &delta.n_ic),
        ("n_i", &delta.n_i),
        ("n_ck", &delta.n_ck),
        ("n_c", &delta.n_c),
        ("n_ckt", &delta.n_ckt),
        ("n_kv", &delta.n_kv),
        ("n_k", &delta.n_k),
        ("n_cc", &delta.n_cc),
        ("n0_cc", &delta.n0_cc),
    ]
}

/// Mirror of the sequential sampler's annealing schedule.
fn annealed_rho(config: &ColdConfig, sweep: usize) -> f64 {
    let rho = config.hyper.rho;
    if sweep >= config.anneal_sweeps || config.anneal_sweeps == 0 {
        return rho;
    }
    let progress = sweep as f64 / config.anneal_sweeps as f64;
    rho * (config.anneal_boost + (1.0 - config.anneal_boost) * progress)
}

/// `into += local - base`, element-wise, with wrap-free arithmetic.
fn merge_delta(into: &mut CounterStore, local: &CounterStore, base: &CounterStore) {
    debug_assert_eq!(into.len(), local.len());
    debug_assert_eq!(into.len(), base.len());
    if let (CounterStore::Dense(dst), CounterStore::Dense(l), CounterStore::Dense(b)) =
        (&mut *into, local, base)
    {
        // All-dense fast path: one linear fused pass.
        for ((dst, &l), &b) in dst.iter_mut().zip(l).zip(b) {
            // Deltas can be negative; do the arithmetic in i64.
            let v = *dst as i64 + l as i64 - b as i64;
            debug_assert!(v >= 0, "counter went negative during delta merge");
            *dst = v as u32;
        }
        return;
    }
    for i in 0..into.len() {
        let d = i64::from(local.get(i)) - i64::from(base.get(i));
        if d != 0 {
            into.add_i64(i, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_text::CorpusBuilder;

    fn data() -> (Corpus, CsrGraph) {
        let mut b = CorpusBuilder::new();
        let sports = ["football", "goal", "match"];
        let movie = ["film", "oscar", "actor"];
        for u in 0..4u32 {
            for rep in 0..5u16 {
                b.push_text(u, rep % 2, &sports);
            }
        }
        for u in 4..8u32 {
            for rep in 0..5u16 {
                b.push_text(u, 2 + rep % 2, &movie);
            }
        }
        let corpus = b.build();
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for bb in 0..4u32 {
                if a != bb {
                    edges.push((a, bb));
                    edges.push((a + 4, bb + 4));
                }
            }
        }
        (corpus, CsrGraph::from_edges(8, &edges))
    }

    fn config(corpus: &Corpus, graph: &CsrGraph) -> ColdConfig {
        ColdConfig::builder(2, 2)
            .iterations(60)
            .burn_in(50)
            .hyperparams(cold_core::Hyperparams {
                alpha: 0.5,
                beta: 0.01,
                epsilon: 0.05,
                rho: 1.0,
                lambda0: 5.0,
                lambda1: 0.1,
            })
            .build(corpus, graph)
    }

    #[test]
    fn counters_stay_consistent_across_supersteps() {
        let (corpus, graph) = data();
        let mut pg = ParallelGibbs::new(&corpus, &graph, config(&corpus, &graph), 3, 7);
        for sweep in 0..3 {
            pg.superstep(sweep);
            pg.state().check_consistency(&pg.posts).unwrap();
        }
    }

    #[test]
    fn single_shard_behaves_like_a_valid_sampler() {
        let (corpus, graph) = data();
        let (model, stats) =
            ParallelGibbs::new(&corpus, &graph, config(&corpus, &graph), 1, 8).run();
        assert_eq!(stats.supersteps.len(), 60);
        for i in 0..8 {
            assert!((model.user_memberships(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sharded_run_separates_planted_topics() {
        let (corpus, graph) = data();
        let (model, _) = ParallelGibbs::new(&corpus, &graph, config(&corpus, &graph), 4, 9).run();
        let fb = corpus.vocab().id_of("football").unwrap() as usize;
        let film = corpus.vocab().id_of("film").unwrap() as usize;
        let k_fb = if model.topic_words(0)[fb] > model.topic_words(1)[fb] {
            0
        } else {
            1
        };
        assert!(model.topic_words(1 - k_fb)[film] > model.topic_words(k_fb)[film]);
    }

    /// The delta barrier and the clone-merge baseline must walk the exact
    /// same trajectory: same partition, same RNG streams, same draws.
    #[test]
    fn delta_strategy_is_bit_identical_to_clone_merge() {
        let (corpus, graph) = data();
        let mut delta = ParallelGibbs::with_strategy(
            &corpus,
            &graph,
            config(&corpus, &graph),
            3,
            21,
            SyncStrategy::Delta,
        );
        let mut clone = ParallelGibbs::with_strategy(
            &corpus,
            &graph,
            config(&corpus, &graph),
            3,
            21,
            SyncStrategy::CloneMerge,
        );
        for sweep in 0..6 {
            delta.superstep(sweep);
            clone.superstep(sweep);
            assert_eq!(delta.state(), clone.state(), "diverged at sweep {sweep}");
        }
    }

    /// Delta-mode sync accounting is honest: per-shard bytes are reported,
    /// they sum to the superstep total, and each is the serialized size of
    /// an actual wire message (non-zero while the chain is still moving).
    #[test]
    fn delta_sync_bytes_are_measured_per_shard() {
        let (corpus, graph) = data();
        let mut pg = ParallelGibbs::new(&corpus, &graph, config(&corpus, &graph), 4, 10);
        let work = pg.superstep(0);
        assert_eq!(work.shard_sync_bytes.len(), 4);
        assert_eq!(work.sync_bytes, work.shard_sync_bytes.iter().sum::<u64>());
        // Sweep 0 starts from a random init, so every shard changes state.
        for (s, &bytes) in work.shard_sync_bytes.iter().enumerate() {
            assert!(bytes > 0, "shard {s} reported an empty delta at sweep 0");
        }
        // The clone baseline reports the static counter-block estimate and
        // measures no per-shard wire size.
        let mut clone = ParallelGibbs::with_strategy(
            &corpus,
            &graph,
            config(&corpus, &graph),
            4,
            10,
            SyncStrategy::CloneMerge,
        );
        let work = clone.superstep(0);
        assert!(work.shard_sync_bytes.is_empty());
        assert!(work.sync_bytes > 0);
    }

    #[test]
    fn work_metering_is_complete_and_balanced() {
        let (corpus, graph) = data();
        let mut pg = ParallelGibbs::new(&corpus, &graph, config(&corpus, &graph), 4, 10);
        let work = pg.superstep(0);
        assert_eq!(work.post_ops.iter().sum::<u64>(), corpus.num_posts() as u64);
        assert_eq!(work.link_ops.iter().sum::<u64>(), graph.num_edges() as u64);
        assert!(work.sync_bytes > 0);
        // LPT placement on per-user post counts keeps shards balanced.
        let max = *work.post_ops.iter().max().unwrap();
        let min = *work.post_ops.iter().min().unwrap();
        assert!(max - min <= 10, "{work:?}");
    }

    /// Greedy LPT packs a heavy-tailed author distribution much tighter
    /// than round-robin user placement would.
    #[test]
    fn lpt_partition_balances_heavy_tailed_authors() {
        let mut b = CorpusBuilder::new();
        // User 0 posts 16×; users 1..8 post twice each — round-robin over
        // 4 shards would put users {0, 4} (18 posts) against {3, 7}
        // (4 posts). LPT packs to at most 8 per shard (30 posts total).
        for rep in 0..16u16 {
            b.push_text(0, rep % 4, &["alpha", "beta"]);
        }
        for u in 1..8u32 {
            for rep in 0..2u16 {
                b.push_text(u, rep % 4, &["gamma", "delta"]);
            }
        }
        let corpus = b.build();
        let graph = CsrGraph::from_edges(8, &[(0, 1), (2, 3), (4, 5), (6, 7)]);
        let cfg = ColdConfig::builder(2, 2)
            .iterations(4)
            .build(&corpus, &graph);
        let mut pg = ParallelGibbs::new(&corpus, &graph, cfg, 4, 3);
        let work = pg.superstep(0);
        let max = *work.post_ops.iter().max().unwrap();
        assert_eq!(work.post_ops.iter().sum::<u64>(), 30);
        assert!(max <= 16, "heaviest user bounds the heaviest shard");
        // The heavy user sits alone; the small users pack the other shards
        // to ~5 posts each, so max/mean stays close to the LPT bound.
        let imbalance = max as f64 / (30.0 / 4.0);
        assert!(imbalance < 2.2, "imbalance {imbalance}");
    }

    #[test]
    fn deterministic_given_seed_and_shards() {
        let (corpus, graph) = data();
        let (m1, _) = ParallelGibbs::new(&corpus, &graph, config(&corpus, &graph), 3, 11).run();
        let (m2, _) = ParallelGibbs::new(&corpus, &graph, config(&corpus, &graph), 3, 11).run();
        assert_eq!(m1.user_memberships(0), m2.user_memberships(0));
        assert_eq!(m1.topic_words(0), m2.topic_words(0));
    }

    /// Stop a run at a superstep barrier, round-trip the checkpoint
    /// through the on-disk byte format, resume, and finish: the model must
    /// be bit-identical to the uninterrupted run — for the single-shard
    /// (persistent RNG stream) and sharded (derived streams) modes alike.
    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let (corpus, graph) = data();
        for shards in [1usize, 3] {
            let cfg = config(&corpus, &graph);
            let (full, _) = ParallelGibbs::new(&corpus, &graph, cfg.clone(), shards, 13).run();
            let mut pg = ParallelGibbs::new(&corpus, &graph, cfg.clone(), shards, 13);
            // Stop after burn-in so the accumulator already holds partial
            // averages that the checkpoint must not lose.
            pg.run_sweeps(55, None).unwrap();
            let ckpt = Checkpoint::decode(&pg.checkpoint().encode()).unwrap();
            drop(pg);
            let resumed = ParallelGibbs::resume(&corpus, cfg, ckpt).unwrap();
            let (model, _) = resumed.run();
            assert_eq!(
                model.to_json(),
                full.to_json(),
                "{shards}-shard resume diverged from the uninterrupted run"
            );
        }
    }

    /// A parallel checkpoint refuses to resume under a different
    /// configuration or kind.
    #[test]
    fn resume_rejects_mismatches() {
        let (corpus, graph) = data();
        let cfg = config(&corpus, &graph);
        let mut pg = ParallelGibbs::new(&corpus, &graph, cfg.clone(), 2, 14);
        pg.run_sweeps(10, None).unwrap();
        let ckpt = pg.checkpoint();
        let other = ColdConfig::builder(2, 2)
            .iterations(61)
            .burn_in(50)
            .build(&corpus, &graph);
        assert!(matches!(
            ParallelGibbs::resume(&corpus, other, ckpt.clone()),
            Err(CkptError::ConfigMismatch(_))
        ));
        let mut wrong_kind = ckpt;
        wrong_kind.kind = CheckpointKind::Sequential;
        assert!(matches!(
            ParallelGibbs::resume(&corpus, cfg, wrong_kind),
            Err(CkptError::Format(_))
        ));
    }

    #[test]
    fn simulated_time_decreases_with_nodes_on_large_work() {
        // The test fixture is tiny, so scale the metered work to a size
        // where compute dominates synchronization (as in Fig. 13b's
        // regime); at the fixture's raw size sync dominates and more nodes
        // rightly do not help.
        let (corpus, graph) = data();
        let (_, mut stats) =
            ParallelGibbs::new(&corpus, &graph, config(&corpus, &graph), 8, 12).run();
        for w in &mut stats.supersteps {
            for ops in w.post_ops.iter_mut().chain(w.link_ops.iter_mut()) {
                *ops *= 50_000;
            }
        }
        let model = ClusterCostModel::default();
        let t1 = stats.simulated_seconds(&model, 1);
        let t4 = stats.simulated_seconds(&model, 4);
        let t8 = stats.simulated_seconds(&model, 8);
        assert!(t4 < t1 / 2.0, "{t4} vs {t1}");
        assert!(t8 < t4, "{t8} vs {t4}");
    }
}
