//! GraphLab-substitute parallel inference engine.
//!
//! The paper parallelizes its collapsed Gibbs sampler on distributed
//! GraphLab (§4.3): the data is abstracted as a bipartite user/time-stamp
//! graph fused with the user–user network (Fig. 4), a vertex program in the
//! **gather–apply–scatter** (GAS) model maintains the counters and draws
//! new assignments (Alg. 2), and global counters — which live in the
//! low-dimensional latent spaces — are exchanged periodically.
//!
//! GraphLab itself is long unmaintained and a physical cluster is out of
//! scope, so this crate rebuilds the same execution model:
//!
//! * [`gas`] — a small synchronous vertex-centric engine (vertices, typed
//!   edges, a [`gas::VertexProgram`] trait, superstep scheduler). Generic:
//!   the tests run PageRank on it.
//! * [`parallel`] — the COLD Gibbs sampler expressed as sharded supersteps
//!   with **stale global counters** folded at each barrier. This is the
//!   standard approximation (AD-LDA and every GraphLab-hosted collapsed
//!   sampler make it): within a superstep each shard samples against a
//!   snapshot plus its own updates; the barrier reconciles deltas.
//! * [`cluster`] — a deterministic cost model that converts the measured
//!   per-shard work and synchronized bytes into simulated cluster wall
//!   time, reproducing the load-balance and communication-volume behaviour
//!   of Fig. 13 on a single machine. Real threads still run the shards, so
//!   single-machine wall time is measured too.

pub mod cluster;
pub mod gas;
pub mod parallel;

pub use cluster::ClusterCostModel;
pub use parallel::{ParallelGibbs, ParallelStats, SyncStrategy};
