//! Deterministic cluster cost model.
//!
//! The paper's Fig. 13 measures training time on a physical GraphLab
//! cluster. This host has a single CPU core, so multi-node speedup cannot
//! be observed physically; instead the parallel sampler **meters** its work
//! (sampling operations per shard, counter bytes exchanged per barrier) and
//! this model converts the meters into simulated wall time:
//!
//! ```text
//! time = Σ_supersteps [ max_shard(ops_shard · per_op) + sync(bytes, nodes) ]
//! ```
//!
//! The two properties Fig. 13 demonstrates — linear scaling in data size
//! (13a) and ~1/N scaling in node count until synchronization dominates
//! (13b) — both fall out of the measured quantities, not of assumptions:
//! load balance determines `max_shard`, and the global counters' size (low-
//! dimensional latent spaces, §4.3) determines the sync term.

use serde::{Deserialize, Serialize};

/// Cost parameters of the simulated cluster, loosely calibrated to the
/// paper's hardware (2.4 GHz cores, commodity gigabit interconnect).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterCostModel {
    /// Seconds per sampling operation (one post ≈ one operation; one link
    /// ≈ one operation; includes the O(C) / O(C²) inner loops via the
    /// per-op weights below).
    pub seconds_per_post_op: f64,
    /// Seconds per link operation.
    pub seconds_per_link_op: f64,
    /// Interconnect throughput, bytes/second, for counter exchange.
    pub network_bytes_per_second: f64,
    /// Per-barrier fixed latency (seconds) — scales with node count as
    /// `latency · ln(nodes + 1)` (tree reduction).
    pub barrier_latency: f64,
}

impl Default for ClusterCostModel {
    fn default() -> Self {
        Self {
            seconds_per_post_op: 2.0e-6,
            seconds_per_link_op: 1.0e-6,
            network_bytes_per_second: 100.0e6,
            barrier_latency: 2.0e-3,
        }
    }
}

/// Work metered for one superstep.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SuperstepWork {
    /// Post-sampling operations per shard.
    pub post_ops: Vec<u64>,
    /// Link-sampling operations per shard.
    pub link_ops: Vec<u64>,
    /// Bytes of global counters exchanged at the barrier. Under the
    /// delta-sync strategy this is the measured serialized size of the
    /// shards' `CountDelta`s; under the clone-merge baseline it is the
    /// static full-counter-block estimate the pre-delta engine shipped.
    pub sync_bytes: u64,
    /// Measured serialized delta bytes contributed by each shard at the
    /// barrier (delta-sync supersteps only; empty when the superstep ran
    /// the clone-merge baseline or the sequential degenerate path, where
    /// no per-shard wire size exists to measure).
    pub shard_sync_bytes: Vec<u64>,
}

impl ClusterCostModel {
    /// Simulated wall time of one superstep on `nodes` machines, with the
    /// shards distributed round-robin over the nodes.
    pub fn superstep_seconds(&self, work: &SuperstepWork, nodes: usize) -> f64 {
        assert!(nodes >= 1);
        let shards = work.post_ops.len().max(work.link_ops.len());
        // Round-robin shard placement: node n executes shards n, n+nodes, …
        let mut node_time = vec![0.0f64; nodes];
        for s in 0..shards {
            let post = work.post_ops.get(s).copied().unwrap_or(0) as f64;
            let link = work.link_ops.get(s).copied().unwrap_or(0) as f64;
            node_time[s % nodes] +=
                post * self.seconds_per_post_op + link * self.seconds_per_link_op;
        }
        let compute = node_time.iter().copied().fold(0.0, f64::max);
        // Each node exchanges the global counters with the coordinator.
        let sync = work.sync_bytes as f64 * nodes as f64 / self.network_bytes_per_second
            + self.barrier_latency * ((nodes + 1) as f64).ln();
        compute + sync
    }

    /// Simulated total for a training run.
    pub fn total_seconds(&self, supersteps: &[SuperstepWork], nodes: usize) -> f64 {
        supersteps
            .iter()
            .map(|w| self.superstep_seconds(w, nodes))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced(shards: usize, ops: u64) -> SuperstepWork {
        SuperstepWork {
            post_ops: vec![ops; shards],
            link_ops: vec![ops / 2; shards],
            sync_bytes: 1_000_000,
            shard_sync_bytes: Vec::new(),
        }
    }

    #[test]
    fn more_nodes_reduce_compute_time() {
        let model = ClusterCostModel::default();
        let work = balanced(16, 1_000_000);
        let t1 = model.superstep_seconds(&work, 1);
        let t4 = model.superstep_seconds(&work, 4);
        let t16 = model.superstep_seconds(&work, 16);
        assert!(t4 < t1, "{t4} vs {t1}");
        assert!(t16 < t4, "{t16} vs {t4}");
        // Speedup is sublinear because of the sync term.
        assert!(t1 / t16 < 16.0);
        assert!(t1 / t4 > 2.0, "speedup {}", t1 / t4);
    }

    #[test]
    fn sync_dominates_at_high_node_counts() {
        let model = ClusterCostModel::default();
        // Tiny compute, so communication dominates quickly.
        let work = balanced(64, 100);
        let t2 = model.superstep_seconds(&work, 2);
        let t64 = model.superstep_seconds(&work, 64);
        assert!(t64 > t2, "sync should dominate: {t64} vs {t2}");
    }

    #[test]
    fn time_scales_linearly_with_work() {
        let model = ClusterCostModel::default();
        let small = balanced(4, 100_000);
        let big = balanced(4, 400_000);
        let ts = model.superstep_seconds(&small, 4);
        let tb = model.superstep_seconds(&big, 4);
        // Compute part scales 4×; sync is constant — ratio below 4 but well
        // above 1.
        assert!(tb > 2.0 * ts, "{tb} vs {ts}");
    }

    #[test]
    fn imbalanced_shards_bound_the_superstep() {
        let model = ClusterCostModel::default();
        let mut work = balanced(4, 100_000);
        work.post_ops[0] = 1_000_000; // straggler shard
        let balanced_t = model.superstep_seconds(&balanced(4, 100_000), 4);
        let straggler_t = model.superstep_seconds(&work, 4);
        assert!(straggler_t > 5.0 * balanced_t);
    }

    #[test]
    fn totals_accumulate() {
        let model = ClusterCostModel::default();
        let w = balanced(2, 1000);
        let one = model.superstep_seconds(&w, 2);
        let total = model.total_seconds(&[w.clone(), w], 2);
        assert!((total - 2.0 * one).abs() < 1e-12);
    }
}
