//! Metrics invariants for the parallel engine: the observability layer
//! must tell a story that is *arithmetically consistent* with the work the
//! sampler actually did — per-shard draw counters sum to the corpus size,
//! synced bytes match the serialized counter footprint, MH bookkeeping
//! balances, and wall-clock accounting adds up.

use cold_core::{ColdConfig, Metrics, SamplerKernel};
use cold_engine::ParallelGibbs;
use cold_graph::CsrGraph;
use cold_text::{Corpus, CorpusBuilder};

fn data() -> (Corpus, CsrGraph) {
    let mut b = CorpusBuilder::new();
    let sports = ["football", "goal", "match"];
    let movie = ["film", "oscar", "actor"];
    for u in 0..4u32 {
        for rep in 0..5u16 {
            b.push_text(u, rep % 2, &sports);
        }
    }
    for u in 4..8u32 {
        for rep in 0..5u16 {
            b.push_text(u, 2 + rep % 2, &movie);
        }
    }
    let corpus = b.build();
    let mut edges = Vec::new();
    for a in 0..4u32 {
        for bb in 0..4u32 {
            if a != bb {
                edges.push((a, bb));
                edges.push((a + 4, bb + 4));
            }
        }
    }
    (corpus, CsrGraph::from_edges(8, &edges))
}

fn config(corpus: &Corpus, graph: &CsrGraph, metrics: Metrics) -> ColdConfig {
    ColdConfig::builder(2, 2)
        .iterations(12)
        .burn_in(8)
        .metrics(metrics)
        .hyperparams(cold_core::Hyperparams {
            alpha: 0.5,
            beta: 0.01,
            epsilon: 0.05,
            rho: 1.0,
            lambda0: 5.0,
            lambda1: 0.1,
        })
        .build(corpus, graph)
}

/// Per-shard post/link counters must sum to the corpus totals each sweep,
/// and the synced-bytes accounting must be internally consistent: the
/// `parallel.sync_bytes` counter equals the sum over supersteps of the
/// per-superstep measured totals, which in turn equal the sum of the
/// per-shard serialized delta sizes (`parallel.shard.<s>.sync_bytes`).
#[test]
fn shard_counters_and_sync_bytes_account_for_all_work() {
    let (corpus, graph) = data();
    let metrics = Metrics::enabled();
    let cfg = config(&corpus, &graph, metrics.clone());
    let mut pg = ParallelGibbs::new(&corpus, &graph, cfg, 3, 7);
    let n_posts = corpus.num_posts() as u64;
    let n_links = (pg.state().links.len() + pg.state().neg_links.len()) as u64;
    let sweeps = 5u64;
    let mut work_sync_total = 0u64;
    for sweep in 0..sweeps as usize {
        let work = pg.superstep(sweep);
        // The delta strategy measures real wire sizes per shard; they must
        // sum to the superstep total.
        assert_eq!(work.shard_sync_bytes.len(), 3);
        assert_eq!(work.sync_bytes, work.shard_sync_bytes.iter().sum::<u64>());
        work_sync_total += work.sync_bytes;
    }
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("parallel.supersteps"), sweeps);
    assert_eq!(snap.counter("parallel.sync_bytes"), work_sync_total);
    let mut shard_sync = 0u64;
    let mut post_draws = 0;
    let mut link_draws = 0;
    for s in 0..3 {
        shard_sync += snap.counter(&format!("parallel.shard.{s}.sync_bytes"));
        post_draws += snap.counter(&format!("parallel.shard.{s}.post_draws"));
        link_draws += snap.counter(&format!("parallel.shard.{s}.link_draws"));
    }
    assert_eq!(shard_sync, work_sync_total);
    // Deltas are sparse but never empty while the chain is moving, and a
    // shard's serialized delta is bounded by (a small multiple of) the
    // counter cells its items can touch.
    assert!(work_sync_total > 0);
    assert!(snap.counter("parallel.delta_cells") > 0);
    assert_eq!(post_draws, sweeps * n_posts);
    assert_eq!(link_draws, sweeps * n_links);
    // Every shard owns users, so every shard reports work.
    for s in 0..3 {
        assert!(snap.counter(&format!("parallel.shard.{s}.post_draws")) > 0);
    }
    // The imbalance gauge is published and sane (max/mean ≥ 1).
    let imbalance = snap.gauge("parallel.shard_imbalance").unwrap();
    assert!((1.0..3.0).contains(&imbalance), "{imbalance}");
}

/// The MH bookkeeping must balance even when proposals are drawn
/// concurrently across shards: accepted + rejected == proposals, and each
/// post draw pays exactly MH_STEPS_PER_DRAW proposals.
#[test]
fn mh_counters_balance_across_shards() {
    let (corpus, graph) = data();
    let metrics = Metrics::enabled();
    let cfg = {
        let base = config(&corpus, &graph, metrics.clone());
        ColdConfig {
            kernel: SamplerKernel::AliasMh,
            ..base
        }
    };
    let mut pg = ParallelGibbs::new(&corpus, &graph, cfg, 3, 11);
    for sweep in 0..4 {
        pg.superstep(sweep);
    }
    let snap = metrics.snapshot();
    let proposals = snap.counter("kernel.alias_mh.mh_proposals");
    let accepted = snap.counter("kernel.alias_mh.mh_accepted");
    let rejected = snap.counter("kernel.alias_mh.mh_rejected");
    assert!(proposals > 0);
    assert_eq!(accepted + rejected, proposals);
    let topic_draws = snap.counter("kernel.alias_mh.topic_draws");
    assert_eq!(topic_draws, 4 * corpus.num_posts() as u64);
    assert_eq!(
        proposals,
        topic_draws * cold_core::conditionals::MH_STEPS_PER_DRAW as u64
    );
}

/// `ParallelStats.wall_seconds` must be populated, positive, and
/// consistent with both the per-superstep timings and the
/// `parallel.wall_seconds` gauge.
#[test]
fn wall_seconds_is_populated_and_consistent() {
    let (corpus, graph) = data();
    let metrics = Metrics::enabled();
    let cfg = config(&corpus, &graph, metrics.clone());
    let iterations = cfg.iterations;
    let (_model, stats) = ParallelGibbs::new(&corpus, &graph, cfg, 3, 9).run();
    assert!(stats.wall_seconds > 0.0);
    assert_eq!(stats.superstep_seconds.len(), iterations);
    assert_eq!(stats.supersteps.len(), iterations);
    let summed: f64 = stats.superstep_seconds.iter().sum();
    assert!(
        summed <= stats.wall_seconds + 1e-6,
        "superstep timings {summed} exceed wall time {}",
        stats.wall_seconds
    );
    let snap = metrics.snapshot();
    assert_eq!(
        snap.gauge("parallel.wall_seconds"),
        Some(stats.wall_seconds)
    );
    assert_eq!(snap.gauge("parallel.shards"), Some(3.0));
    let hist = snap
        .histogram("parallel.superstep_seconds")
        .expect("superstep histogram recorded");
    assert_eq!(hist.count, iterations as u64);
    assert!(hist.sum <= stats.wall_seconds + 1e-6);
}

/// The shards=1 degenerate path reports its work under shard 0 and keeps
/// the same global invariants.
#[test]
fn single_shard_metrics_cover_the_whole_corpus() {
    let (corpus, graph) = data();
    let metrics = Metrics::enabled();
    let cfg = config(&corpus, &graph, metrics.clone());
    let iterations = cfg.iterations as u64;
    let (_model, stats) = ParallelGibbs::new(&corpus, &graph, cfg, 1, 5).run();
    assert!(stats.wall_seconds > 0.0);
    let snap = metrics.snapshot();
    assert_eq!(
        snap.counter("parallel.shard.0.post_draws"),
        iterations * corpus.num_posts() as u64
    );
    assert_eq!(snap.counter("parallel.supersteps"), iterations);
    assert_eq!(snap.gauge("parallel.shards"), Some(1.0));
    // The exact kernel draws one community and one topic per post draw.
    assert_eq!(
        snap.counter("kernel.cached_log.comm_draws"),
        iterations * corpus.num_posts() as u64
    );
}
