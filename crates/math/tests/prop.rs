//! Property-based tests for the numerics substrate.

use cold_math::categorical::{sample_categorical, sample_log_categorical, AliasTable};
use cold_math::rng::seeded_rng;
use cold_math::special::{lgamma, log_ascending_factorial};
use cold_math::stats::{log_sum_exp, normalize_in_place, variance_of_distribution};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ln Γ satisfies its defining recurrence for arbitrary positive x.
    #[test]
    fn lgamma_recurrence(x in 0.05f64..500.0) {
        let lhs = lgamma(x + 1.0);
        let rhs = x.ln() + lgamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + rhs.abs()));
    }

    /// The ascending-factorial shortcut agrees with the direct product.
    #[test]
    fn ascending_factorial_consistent(x in 0.01f64..50.0, n in 0u32..64) {
        let direct: f64 = (0..n).map(|q| (x + q as f64).ln()).sum();
        let fast = log_ascending_factorial(x, n);
        prop_assert!((fast - direct).abs() < 1e-8 * (1.0 + direct.abs()));
    }

    /// log_sum_exp is invariant to a constant shift (up to fp noise).
    #[test]
    fn lse_shift_invariant(xs in prop::collection::vec(-50.0f64..50.0, 1..20), shift in -300.0f64..300.0) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let a = log_sum_exp(&xs) + shift;
        let b = log_sum_exp(&shifted);
        prop_assert!((a - b).abs() < 1e-8 * (1.0 + a.abs()));
    }

    /// Normalization yields a probability vector whenever total mass > 0.
    #[test]
    fn normalize_yields_simplex(mut xs in prop::collection::vec(0.0f64..10.0, 1..30)) {
        normalize_in_place(&mut xs);
        let total: f64 = xs.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(xs.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
    }

    /// Alias-table sampling only returns indices with positive weight.
    #[test]
    fn alias_respects_support(weights in prop::collection::vec(0.0f64..5.0, 1..40), seed in 0u64..1000) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights);
        let mut rng = seeded_rng(seed);
        for _ in 0..200 {
            let idx = table.sample(&mut rng);
            prop_assert!(idx < weights.len());
            prop_assert!(weights[idx] > 0.0, "sampled zero-weight index {idx}");
        }
    }

    /// The linear-scan sampler stays on the support too.
    #[test]
    fn categorical_respects_support(weights in prop::collection::vec(0.0f64..5.0, 1..40), seed in 0u64..1000) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = seeded_rng(seed);
        for _ in 0..100 {
            let idx = sample_categorical(&mut rng, &weights).expect("positive mass");
            prop_assert!(weights[idx] > 0.0);
        }
    }

    /// Log-space and linear-space samplers agree on the support.
    #[test]
    fn log_categorical_respects_support(weights in prop::collection::vec(0.001f64..5.0, 1..20), seed in 0u64..1000) {
        let logs: Vec<f64> = weights.iter().map(|w| w.ln()).collect();
        let mut rng = seeded_rng(seed);
        for _ in 0..50 {
            let idx = sample_log_categorical(&mut rng, &logs).expect("finite mass");
            prop_assert!(idx < weights.len());
        }
    }

    /// Index-variance of a distribution is maximized away from point masses.
    #[test]
    fn point_mass_minimizes_variance(dim in 2usize..20, at in 0usize..20) {
        let at = at % dim;
        let mut point = vec![0.0; dim];
        point[at] = 1.0;
        prop_assert_eq!(variance_of_distribution(&point), 0.0);
        let uniform = vec![1.0 / dim as f64; dim];
        prop_assert!(variance_of_distribution(&uniform) > 0.0);
    }
}
