//! Memoized logarithms of shifted integer counters.
//!
//! The collapsed Gibbs conditionals (Eq. 3 in particular) spend most of
//! their time evaluating `ln(n + const)` where `n` is a non-negative
//! integer counter and `const` is a fixed hyper-parameter combination
//! (`β`, `α`, `ε`, `T·ε`, `V·β`). Counters revisit the same small values
//! millions of times per training run, so a flat lazily-grown table per
//! constant turns each `ln` (tens of cycles) into a load.
//!
//! **Bit-exactness contract**: every cached value is produced by exactly
//! the same floating-point expression as the uncached mirror functions
//! [`ln_shifted`] / [`log_ascending_factorial_shifted`] /
//! [`lgamma_shifted`]. A sampler that switches between the cached and the
//! direct evaluation therefore draws bit-identical chains — the cache is a
//! pure memoization, never an approximation.

use crate::special::lgamma;

/// Direct evaluation of `ln(n + shift)` — the uncached mirror of
/// [`ShiftedLogTable::ln`].
#[inline]
pub fn ln_shifted(n: u32, shift: f64) -> f64 {
    (n as f64 + shift).ln()
}

/// Direct evaluation of `ln Γ(n + shift)` — the uncached mirror of
/// [`ShiftedLogTable::lgamma`].
#[inline]
pub fn lgamma_shifted(n: u32, shift: f64) -> f64 {
    lgamma(n as f64 + shift)
}

/// Log ascending factorial over a shifted integer counter:
/// `ln (n+shift)(n+1+shift)…(n+cnt-1+shift)`, in the canonical
/// integer-plus-shift evaluation order — the uncached mirror of
/// [`ShiftedLogTable::log_ascending_factorial`].
///
/// For `cnt ≤ 8` this is the direct sum of logs (fast and exact for the
/// small repeat counts of micro-blog posts); beyond that it switches to the
/// `ln Γ` form.
#[inline]
pub fn log_ascending_factorial_shifted(n: u32, cnt: u32, shift: f64) -> f64 {
    if cnt == 0 {
        return 0.0;
    }
    if cnt <= 8 {
        let mut acc = 0.0;
        for q in 0..cnt {
            acc += ln_shifted(n + q, shift);
        }
        acc
    } else {
        lgamma_shifted(n + cnt, shift) - lgamma_shifted(n, shift)
    }
}

/// Lazily-grown memo table for `ln(n + shift)` and `ln Γ(n + shift)` over
/// integer `n`, for one fixed `shift`.
#[derive(Debug, Clone)]
pub struct ShiftedLogTable {
    shift: f64,
    ln_table: Vec<f64>,
    lgamma_table: Vec<f64>,
    misses: u64,
}

impl ShiftedLogTable {
    /// Empty table for the given constant shift (must be positive: the
    /// samplers only ever shift by positive hyper-parameters).
    pub fn new(shift: f64) -> Self {
        assert!(
            shift > 0.0 && shift.is_finite(),
            "shift must be positive and finite, got {shift}"
        );
        Self {
            shift,
            ln_table: Vec::new(),
            lgamma_table: Vec::new(),
            misses: 0,
        }
    }

    /// Number of cache misses so far — lookups that had to materialize new
    /// entries (block growth counts as one miss per triggering lookup).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The constant this table was built for.
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Entries currently materialized in the `ln` table.
    pub fn len(&self) -> usize {
        self.ln_table.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.ln_table.is_empty()
    }

    /// Memoized `ln(n + shift)`.
    #[inline]
    pub fn ln(&mut self, n: u32) -> f64 {
        let idx = n as usize;
        if idx >= self.ln_table.len() {
            self.grow_ln(idx);
        }
        self.ln_table[idx]
    }

    /// Memoized `ln Γ(n + shift)`.
    #[inline]
    pub fn lgamma(&mut self, n: u32) -> f64 {
        let idx = n as usize;
        if idx >= self.lgamma_table.len() {
            self.grow_lgamma(idx);
        }
        self.lgamma_table[idx]
    }

    /// Memoized log ascending factorial, bit-identical to
    /// [`log_ascending_factorial_shifted`].
    #[inline]
    pub fn log_ascending_factorial(&mut self, n: u32, cnt: u32) -> f64 {
        if cnt == 0 {
            return 0.0;
        }
        if cnt <= 8 {
            // Touch the top index first so the table grows once, not per q.
            let _ = self.ln(n + cnt - 1);
            let mut acc = 0.0;
            for q in 0..cnt {
                acc += self.ln_table[(n + q) as usize];
            }
            acc
        } else {
            self.lgamma(n + cnt) - self.lgamma(n)
        }
    }

    #[cold]
    fn grow_ln(&mut self, idx: usize) {
        self.misses += 1;
        // Grow in blocks so a steadily climbing counter does not pay a
        // branch-and-push per draw.
        let target = (idx + 1).next_power_of_two().max(64);
        for i in self.ln_table.len()..target {
            self.ln_table.push(ln_shifted(i as u32, self.shift));
        }
    }

    #[cold]
    fn grow_lgamma(&mut self, idx: usize) {
        self.misses += 1;
        let target = (idx + 1).next_power_of_two().max(64);
        for i in self.lgamma_table.len()..target {
            self.lgamma_table.push(lgamma_shifted(i as u32, self.shift));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_ln_is_bit_identical_to_direct() {
        let mut t = ShiftedLogTable::new(0.01);
        // Out-of-order access exercises block growth.
        for &n in &[5u32, 0, 1000, 17, 63, 64, 65, 4096, 2] {
            assert_eq!(t.ln(n).to_bits(), ln_shifted(n, 0.01).to_bits());
        }
    }

    #[test]
    fn cached_lgamma_is_bit_identical_to_direct() {
        let mut t = ShiftedLogTable::new(6.0);
        for &n in &[0u32, 1, 9, 100, 2048] {
            assert_eq!(t.lgamma(n).to_bits(), lgamma_shifted(n, 6.0).to_bits());
        }
    }

    #[test]
    fn cached_ascending_factorial_matches_mirror_bitwise() {
        let mut t = ShiftedLogTable::new(0.5);
        for n in [0u32, 1, 7, 200] {
            for cnt in [0u32, 1, 2, 8, 9, 50] {
                let cached = t.log_ascending_factorial(n, cnt);
                let direct = log_ascending_factorial_shifted(n, cnt, 0.5);
                assert_eq!(cached.to_bits(), direct.to_bits(), "n={n} cnt={cnt}");
            }
        }
    }

    #[test]
    fn shifted_form_agrees_with_float_form_numerically() {
        // The canonical integer-plus-shift order and the legacy
        // float-argument order agree to floating-point accuracy (they may
        // differ in the last ulp, which is why the kernels standardize on
        // one of them).
        for n in [0u32, 3, 40] {
            for cnt in [1u32, 4, 12] {
                let a = log_ascending_factorial_shifted(n, cnt, 0.01);
                let b = crate::special::log_ascending_factorial(n as f64 + 0.01, cnt);
                assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_shift() {
        let _ = ShiftedLogTable::new(0.0);
    }
}
