//! Probability and numerics substrate for the COLD reproduction.
//!
//! Every stochastic component of the workspace (the collapsed Gibbs sampler,
//! the synthetic data generator, the baseline models, the cascade simulator)
//! builds on the primitives in this crate:
//!
//! * [`special`] — log-gamma, digamma, log-beta and ascending factorials,
//!   needed by the collapsed conditionals (Eqs. 1–3 of the paper).
//! * [`rng`] — deterministic, splittable random-number-generator plumbing so
//!   experiments are reproducible run to run.
//! * [`categorical`] — categorical sampling over unnormalized weights, both
//!   one-shot (linear scan, as the Gibbs inner loop wants) and amortized
//!   ([`categorical::AliasTable`] for the data generator's static
//!   distributions).
//! * [`dirichlet`] — Dirichlet / Beta / Gamma variate generation for the
//!   generative process of Alg. 1.
//! * [`stats`] — normalization, entropy, moments, medians and other small
//!   statistics used by the diffusion-pattern analyses (§5.3).

pub mod categorical;
pub mod dirichlet;
pub mod logcache;
pub mod rng;
pub mod special;
pub mod stats;

pub use categorical::{sample_categorical, sample_log_categorical, AliasTable};
pub use dirichlet::{sample_beta, sample_dirichlet, sample_gamma};
pub use logcache::ShiftedLogTable;
pub use rng::{seeded_rng, RngFactory};
pub use special::{lgamma, log_ascending_factorial, log_beta_fn};
pub use stats::{entropy, log_sum_exp, normalize_in_place, variance_of_distribution};
