//! Categorical sampling.
//!
//! Two regimes matter in this workspace:
//!
//! * The Gibbs inner loops build a fresh weight vector per draw; a single
//!   linear scan ([`sample_categorical`]) is optimal there.
//! * The synthetic data generator draws millions of words from *static*
//!   distributions; the [`AliasTable`] gives O(1) draws after O(n) setup.

use rand::Rng;

/// Draw an index proportional to `weights` (unnormalized, non-negative).
///
/// Returns `None` if the total mass is zero or not finite — callers treat
/// that as "fall back to uniform" or as a hard error depending on context.
pub fn sample_categorical<R: Rng>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().sum();
    // NaN-aware: `!(total > 0.0)` is true for NaN, which `total <= 0.0`
    // would miss.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(total > 0.0) || !total.is_finite() {
        return None;
    }
    let mut u = rng.gen::<f64>() * total;
    for (idx, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return Some(idx);
        }
    }
    // Floating-point round-off can leave a sliver; return the last positive
    // weight rather than an out-of-range index.
    weights.iter().rposition(|&w| w > 0.0)
}

/// Draw an index proportional to `exp(log_weights)`, stably.
///
/// Shifts by the maximum before exponentiating so the collapsed conditionals
/// (which are products of many count ratios) never underflow.
pub fn sample_log_categorical<R: Rng>(rng: &mut R, log_weights: &[f64]) -> Option<usize> {
    let max = log_weights
        .iter()
        .copied()
        .filter(|w| w.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return None;
    }
    let total: f64 = log_weights.iter().map(|&w| (w - max).exp()).sum();
    let mut u = rng.gen::<f64>() * total;
    for (idx, &w) in log_weights.iter().enumerate() {
        u -= (w - max).exp();
        if u <= 0.0 {
            return Some(idx);
        }
    }
    log_weights.iter().rposition(|w| w.is_finite())
}

/// Walker's alias method: O(1) sampling from a fixed categorical
/// distribution after O(n) preprocessing.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of each bucket's "own" outcome.
    prob: Vec<f64>,
    /// The alternative outcome of each bucket.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from unnormalized non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "alias table needs at least one outcome"
        );
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "alias table needs positive finite total mass, got {total}"
        );
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "invalid weight {w}");
        }
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are numerically 1.0.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if there are no outcomes (never: the constructor forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let bucket = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[bucket] {
            bucket
        } else {
            self.alias[bucket] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn empirical(weights: &[f64], n: usize, seed: u64) -> Vec<f64> {
        let table = AliasTable::new(weights);
        let mut rng = seeded_rng(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / n as f64).collect()
    }

    #[test]
    fn alias_matches_distribution() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let total: f64 = weights.iter().sum();
        let freq = empirical(&weights, 200_000, 3);
        for (f, w) in freq.iter().zip(&weights) {
            assert!((f - w / total).abs() < 0.01, "{f} vs {}", w / total);
        }
    }

    #[test]
    fn alias_handles_zero_weights() {
        let freq = empirical(&[0.0, 1.0, 0.0, 1.0], 50_000, 9);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[2], 0.0);
        assert!((freq[1] - 0.5).abs() < 0.02);
    }

    #[test]
    fn alias_single_outcome() {
        let table = AliasTable::new(&[2.5]);
        let mut rng = seeded_rng(0);
        for _ in 0..10 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn linear_scan_matches_distribution() {
        let weights = [0.5, 0.0, 2.0, 1.5];
        let total: f64 = weights.iter().sum();
        let mut rng = seeded_rng(4);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..100_000 {
            counts[sample_categorical(&mut rng, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        for (c, w) in counts.iter().zip(&weights) {
            assert!((*c as f64 / 100_000.0 - w / total).abs() < 0.01);
        }
    }

    #[test]
    fn degenerate_weights_return_none() {
        let mut rng = seeded_rng(1);
        assert_eq!(sample_categorical(&mut rng, &[0.0, 0.0]), None);
        assert_eq!(sample_categorical(&mut rng, &[]), None);
        assert_eq!(
            sample_log_categorical(&mut rng, &[f64::NEG_INFINITY, f64::NEG_INFINITY]),
            None
        );
    }

    #[test]
    fn log_sampler_matches_linear_sampler_distribution() {
        let weights: [f64; 3] = [1.0, 4.0, 0.5];
        let logs: Vec<f64> = weights.iter().map(|w| w.ln() - 700.0).collect();
        let total: f64 = weights.iter().sum();
        let mut rng = seeded_rng(5);
        let mut counts = [0usize; 3];
        for _ in 0..100_000 {
            counts[sample_log_categorical(&mut rng, &logs).unwrap()] += 1;
        }
        for (c, w) in counts.iter().zip(&weights) {
            assert!((*c as f64 / 100_000.0 - w / total).abs() < 0.01);
        }
    }
}
