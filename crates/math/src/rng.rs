//! Deterministic random-number-generator plumbing.
//!
//! Every experiment binary, test and bench in the workspace derives its
//! randomness from an explicit `u64` seed so results are reproducible. The
//! [`RngFactory`] additionally supports *splitting*: the parallel engine
//! hands each shard an independent stream derived from (seed, shard id), so
//! the parallel sampler's output does not depend on scheduling order.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The concrete RNG used across the workspace.
///
/// `SmallRng` (xoshiro256++ on 64-bit platforms) is fast, high quality for
/// simulation purposes, and seedable — the properties the samplers need.
pub type Rng = SmallRng;

/// Build a deterministic RNG from a `u64` seed.
pub fn seeded_rng(seed: u64) -> Rng {
    SmallRng::seed_from_u64(splitmix64(seed))
}

/// A factory that derives independent RNG streams from a base seed.
///
/// Stream derivation uses SplitMix64 over `(base, stream)` which is the
/// standard way to decorrelate seeds that differ in few bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    base: u64,
}

impl RngFactory {
    /// Create a factory rooted at `base`.
    pub fn new(base: u64) -> Self {
        Self { base }
    }

    /// The RNG for logical stream `stream` (e.g. a shard id or fold index).
    pub fn stream(&self, stream: u64) -> Rng {
        let mixed = splitmix64(self.base ^ splitmix64(stream.wrapping_add(0x9E37_79B9_7F4A_7C15)));
        SmallRng::seed_from_u64(mixed)
    }

    /// A derived factory, for nested fan-out (fold -> shard, say).
    pub fn child(&self, stream: u64) -> Self {
        Self {
            base: splitmix64(self.base ^ splitmix64(stream)),
        }
    }
}

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn factory_streams_are_deterministic_and_distinct() {
        let f = RngFactory::new(42);
        let mut s0a = f.stream(0);
        let mut s0b = f.stream(0);
        let mut s1 = f.stream(1);
        let a: Vec<u64> = (0..8).map(|_| s0a.gen()).collect();
        let b: Vec<u64> = (0..8).map(|_| s0b.gen()).collect();
        let c: Vec<u64> = (0..8).map(|_| s1.gen()).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn nearby_streams_are_decorrelated() {
        // Adjacent stream ids should not produce obviously correlated output:
        // compare the fraction of equal bits; expect close to 1/2.
        let f = RngFactory::new(1);
        let mut x = f.stream(100);
        let mut y = f.stream(101);
        let mut equal_bits = 0u32;
        const WORDS: u32 = 256;
        for _ in 0..WORDS {
            equal_bits += (!(x.gen::<u64>() ^ y.gen::<u64>())).count_ones();
        }
        let frac = f64::from(equal_bits) / f64::from(WORDS * 64);
        assert!((0.45..0.55).contains(&frac), "bit-equality fraction {frac}");
    }
}
