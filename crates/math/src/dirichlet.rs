//! Gamma / Beta / Dirichlet variate generation.
//!
//! These drive the *generative* side of the reproduction: the synthetic
//! data generator executes Alg. 1 of the paper literally, sampling
//! `φ_k ~ Dir(β)`, `θ_c ~ Dir(α)`, `ψ_kc ~ Dir(ε)`, `π_i ~ Dir(ρ)` and
//! `η_cc' ~ Beta(λ0, λ1)`.

use rand::Rng;

/// Sample from Gamma(shape, 1) using Marsaglia–Tsang's squeeze method.
///
/// Handles `shape < 1` via the standard boosting identity
/// `Gamma(a) = Gamma(a+1) · U^{1/a}`.
pub fn sample_gamma<R: Rng>(rng: &mut R, shape: f64) -> f64 {
    debug_assert!(shape > 0.0, "gamma shape must be positive, got {shape}");
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller (avoids a rand_distr dependency).
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Sample from Beta(a, b) as a ratio of Gammas.
pub fn sample_beta<R: Rng>(rng: &mut R, a: f64, b: f64) -> f64 {
    let x = sample_gamma(rng, a);
    let y = sample_gamma(rng, b);
    let s = x + y;
    if s > 0.0 {
        x / s
    } else {
        0.5
    }
}

/// Sample a point on the simplex from a symmetric Dirichlet Dir(conc) of
/// dimension `dim`.
pub fn sample_dirichlet<R: Rng>(rng: &mut R, conc: f64, dim: usize) -> Vec<f64> {
    sample_dirichlet_with(rng, &vec![conc; dim])
}

/// Sample from a general Dirichlet with per-component concentrations.
pub fn sample_dirichlet_with<R: Rng>(rng: &mut R, conc: &[f64]) -> Vec<f64> {
    debug_assert!(!conc.is_empty());
    let mut draws: Vec<f64> = conc.iter().map(|&a| sample_gamma(rng, a)).collect();
    let total: f64 = draws.iter().sum();
    if total > 0.0 {
        for d in &mut draws {
            *d /= total;
        }
    } else {
        let uniform = 1.0 / draws.len() as f64;
        draws.fill(uniform);
    }
    draws
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn gamma_moments() {
        let mut rng = seeded_rng(11);
        for &shape in &[0.3, 1.0, 2.5, 9.0] {
            let n = 80_000;
            let samples: Vec<f64> = (0..n).map(|_| sample_gamma(&mut rng, shape)).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1) as f64;
            // Gamma(k,1): mean = k, var = k.
            assert!(
                (mean - shape).abs() < 0.05 * shape.max(1.0),
                "mean {mean} for {shape}"
            );
            assert!(
                (var - shape).abs() < 0.15 * shape.max(1.0),
                "var {var} for {shape}"
            );
        }
    }

    #[test]
    fn beta_moments() {
        let mut rng = seeded_rng(12);
        let (a, b) = (2.0, 5.0);
        let n = 80_000;
        let mean: f64 = (0..n).map(|_| sample_beta(&mut rng, a, b)).sum::<f64>() / n as f64;
        assert!((mean - a / (a + b)).abs() < 0.005, "beta mean {mean}");
    }

    #[test]
    fn beta_stays_in_unit_interval() {
        let mut rng = seeded_rng(13);
        for _ in 0..1_000 {
            let v = sample_beta(&mut rng, 0.2, 0.1);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn dirichlet_sums_to_one_and_matches_mean() {
        let mut rng = seeded_rng(14);
        let dim = 5;
        let mut mean = vec![0.0; dim];
        let n = 20_000;
        for _ in 0..n {
            let p = sample_dirichlet(&mut rng, 0.5, dim);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for (m, v) in mean.iter_mut().zip(&p) {
                *m += v;
            }
        }
        for m in &mean {
            assert!((m / n as f64 - 1.0 / dim as f64).abs() < 0.01);
        }
    }

    #[test]
    fn asymmetric_dirichlet_respects_concentrations() {
        let mut rng = seeded_rng(15);
        let conc = [8.0, 1.0, 1.0];
        let n = 20_000;
        let mut mean = [0.0f64; 3];
        for _ in 0..n {
            let p = sample_dirichlet_with(&mut rng, &conc);
            for (m, v) in mean.iter_mut().zip(&p) {
                *m += v;
            }
        }
        let total: f64 = conc.iter().sum();
        for (m, &a) in mean.iter().zip(&conc) {
            assert!((m / n as f64 - a / total).abs() < 0.01);
        }
    }
}
