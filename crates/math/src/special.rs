//! Special functions: log-gamma, digamma, log-beta, ascending factorials.
//!
//! The collapsed Gibbs conditionals of the paper (Eq. 3 in particular) are
//! ratios of Gamma functions; evaluating them stably requires log-space
//! arithmetic. We implement a Lanczos approximation of `ln Γ(x)` rather than
//! relying on platform `libm` so results are bit-stable across hosts.

/// Lanczos coefficients for g = 7, n = 9 (Godfrey's tableau).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

const LN_SQRT_TWO_PI: f64 = 0.918_938_533_204_672_7;

/// Natural log of the Gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Accuracy is ~1e-13 relative over the range exercised by the samplers
/// (counts ≥ 0 plus small Dirichlet concentrations).
///
/// # Panics
/// Panics (debug builds) if `x <= 0`; the reflection branch only needs
/// `x < 0.5`, which still requires positive `x` overall.
pub fn lgamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "lgamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - lgamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    LN_SQRT_TWO_PI + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Uses the standard recurrence to push the argument above 6 and then the
/// asymptotic series. Exposed for hyper-parameter optimization extensions
/// (fixed-point Minka updates), and used by tests as an independent check on
/// [`lgamma`].
pub fn digamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)))
}

/// Log of the Beta function, `ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a+b)`.
pub fn log_beta_fn(a: f64, b: f64) -> f64 {
    lgamma(a) + lgamma(b) - lgamma(a + b)
}

/// Log of the ascending factorial `(x)_n = x (x+1) … (x+n-1)`.
///
/// This is exactly the per-word product that appears in the collapsed topic
/// conditional (Eq. 3): `Π_{q=0}^{n-1} (n_k^{(v)} + q + β)`. For the small `n`
/// typical of micro-blog posts (a word rarely repeats more than a handful of
/// times) the direct product is faster and exact; for large `n` we switch to
/// the Gamma-function form.
pub fn log_ascending_factorial(x: f64, n: u32) -> f64 {
    debug_assert!(x > 0.0);
    if n == 0 {
        return 0.0;
    }
    if n <= 8 {
        let mut acc = 0.0;
        for q in 0..n {
            acc += (x + q as f64).ln();
        }
        acc
    } else {
        lgamma(x + n as f64) - lgamma(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{a} vs {b}");
    }

    #[test]
    fn lgamma_matches_known_values() {
        close(lgamma(1.0), 0.0, 1e-12);
        close(lgamma(2.0), 0.0, 1e-12);
        close(lgamma(3.0), std::f64::consts::LN_2, 1e-12);
        close(lgamma(4.0), 6.0_f64.ln(), 1e-12);
        // Γ(0.5) = sqrt(π)
        close(lgamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
        // Γ(10) = 9! = 362880
        close(lgamma(10.0), 362_880.0_f64.ln(), 1e-12);
    }

    #[test]
    fn lgamma_recurrence_holds() {
        // ln Γ(x+1) = ln x + ln Γ(x) across a wide range.
        for &x in &[0.1, 0.7, 1.3, 5.5, 42.0, 1_000.5] {
            close(lgamma(x + 1.0), x.ln() + lgamma(x), 1e-11);
        }
    }

    #[test]
    fn digamma_matches_known_values() {
        const EULER: f64 = 0.577_215_664_901_532_9;
        close(digamma(1.0), -EULER, 1e-10);
        close(digamma(2.0), 1.0 - EULER, 1e-10);
        close(digamma(0.5), -EULER - 2.0 * std::f64::consts::LN_2, 1e-10);
    }

    #[test]
    fn digamma_is_derivative_of_lgamma() {
        for &x in &[0.8, 2.3, 7.0, 55.0] {
            let h = 1e-6;
            let numeric = (lgamma(x + h) - lgamma(x - h)) / (2.0 * h);
            close(digamma(x), numeric, 1e-5);
        }
    }

    #[test]
    fn log_beta_symmetry() {
        close(log_beta_fn(2.5, 7.0), log_beta_fn(7.0, 2.5), 1e-14);
        // B(1, b) = 1/b
        close(log_beta_fn(1.0, 4.0), -(4.0_f64.ln()), 1e-12);
    }

    #[test]
    fn ascending_factorial_small_and_large_agree() {
        for &x in &[0.01, 0.5, 3.0, 17.5] {
            for n in [0u32, 1, 5, 8, 9, 20, 100] {
                let direct: f64 = (0..n).map(|q| (x + q as f64).ln()).sum();
                close(log_ascending_factorial(x, n), direct, 1e-10);
            }
        }
    }
}
