//! Small statistics used throughout the workspace.
//!
//! The diffusion-pattern analyses of §5.3 need the *variance of a temporal
//! distribution* (fluctuation intensity of `ψ_kc`), medians of aligned
//! curves, and CDFs of interest strengths; the evaluation needs stable
//! log-sum-exp; the estimators need in-place normalization.

/// Numerically stable `ln Σ exp(x_i)`.
pub fn log_sum_exp(values: &[f64]) -> f64 {
    let max = values
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = values.iter().map(|&v| (v - max).exp()).sum();
    max + sum.ln()
}

/// Normalize `values` to sum to one, in place. Returns the original total.
///
/// If the total is not positive the vector is set to uniform (the behaviour
/// estimators want for never-observed rows).
pub fn normalize_in_place(values: &mut [f64]) -> f64 {
    let total: f64 = values.iter().sum();
    if total > 0.0 && total.is_finite() {
        for v in values.iter_mut() {
            *v /= total;
        }
    } else if !values.is_empty() {
        let uniform = 1.0 / values.len() as f64;
        values.fill(uniform);
    }
    total
}

/// Shannon entropy (nats) of a probability vector.
pub fn entropy(probs: &[f64]) -> f64 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Variance of the *index* under a probability distribution over indices.
///
/// This is the paper's fluctuation-intensity measure for the temporal
/// distribution `ψ_kc` (§5.3, Fig. 6): treating the time slice as a random
/// variable with law `ψ_kc`, a bursty topic concentrates mass in few slices
/// and a flat one spreads it.
pub fn variance_of_distribution(probs: &[f64]) -> f64 {
    let mean: f64 = probs.iter().enumerate().map(|(i, &p)| i as f64 * p).sum();
    probs
        .iter()
        .enumerate()
        .map(|(i, &p)| p * (i as f64 - mean) * (i as f64 - mean))
        .sum()
}

/// Mean of a slice. Returns 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Unbiased sample variance. Returns 0.0 for slices shorter than 2.
pub fn sample_variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Median of a slice (average of the two middle elements for even length).
/// Returns `None` for an empty slice.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in median input"));
    let mid = sorted.len() / 2;
    Some(if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    })
}

/// Empirical CDF evaluation points: returns `(sorted_values, cumulative
/// fraction ≤ value)` pairs, one per input value.
pub fn empirical_cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in cdf input"));
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Kullback–Leibler divergence KL(p ‖ q) in nats.
///
/// Components where `p = 0` contribute zero; components where `p > 0` but
/// `q = 0` make the divergence infinite.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    p.iter()
        .zip(q)
        .filter(|(&pi, _)| pi > 0.0)
        .map(|(&pi, &qi)| {
            if qi > 0.0 {
                pi * (pi / qi).ln()
            } else {
                f64::INFINITY
            }
        })
        .sum()
}

/// Online mean/variance accumulator (Welford).
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0.0 before any observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased variance (0.0 before two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_matches_direct() {
        let xs: [f64; 3] = [0.1, -2.0, 3.5];
        let direct: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - direct).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_survives_large_magnitudes() {
        let v = log_sum_exp(&[-1000.0, -1000.0]);
        assert!((v - (-1000.0 + std::f64::consts::LN_2)).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    fn normalize_handles_zero_mass() {
        let mut v = [0.0, 0.0, 0.0];
        normalize_in_place(&mut v);
        assert!(v.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-12));
        let mut w = [2.0, 6.0];
        let total = normalize_in_place(&mut w);
        assert_eq!(total, 8.0);
        assert!((w[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn entropy_uniform_is_log_n() {
        let p = [0.25; 4];
        assert!((entropy(&p) - 4.0_f64.ln()).abs() < 1e-12);
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn distribution_variance_point_mass_zero_uniform_max() {
        assert_eq!(variance_of_distribution(&[0.0, 1.0, 0.0]), 0.0);
        // Uniform on {0,1,2}: variance = 2/3.
        let u = [1.0 / 3.0; 3];
        assert!((variance_of_distribution(&u) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let cdf = empirical_cdf(&[0.3, 0.1, 0.2, 0.2]);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn kl_zero_iff_equal() {
        let p = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-14);
        let q = [0.5, 0.3, 0.2];
        assert!(kl_divergence(&p, &q) > 0.0);
        assert_eq!(kl_divergence(&[1.0, 0.0], &[0.0, 1.0]), f64::INFINITY);
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [1.0, 4.0, 2.0, 8.0, 5.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        assert!((w.variance() - sample_variance(&xs)).abs() < 1e-12);
        assert_eq!(w.count(), 5);
    }
}
