//! Influence maximization over a weighted diffusion graph.
//!
//! The paper positions COLD as *complementary* to influence-maximization
//! work (Kempe et al. [13], Tang et al. [29]): those methods assume the
//! influence strengths are given, and COLD estimates them. We provide the
//! classic **greedy algorithm with CELF lazy evaluation** plus the degree
//! heuristic, so the viral-marketing application (§6.6) is runnable end to
//! end.

use crate::ic::{IndependentCascade, WeightedDigraph};
use cold_math::rng::Rng;

/// The outcome of a seed-selection run.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedSelection {
    /// Chosen seeds, in selection order.
    pub seeds: Vec<u32>,
    /// Expected spread after each selection (monotone non-decreasing).
    pub spread: Vec<f64>,
}

/// Greedy maximization with CELF lazy evaluation: marginal gains are kept
/// in a lazy max-heap and only re-evaluated when stale, exploiting
/// submodularity of the IC spread.
pub fn greedy_celf(
    graph: &WeightedDigraph,
    budget: usize,
    simulations: usize,
    rng: &mut Rng,
) -> SeedSelection {
    let n = graph.num_nodes();
    let budget = budget.min(n as usize);
    let ic = IndependentCascade::new(graph, simulations);
    // (gain, node, round-evaluated) max-heap via sorted Vec (N is small at
    // community granularity; user-level callers pass a candidate subset).
    let mut heap: Vec<(f64, u32, usize)> = (0..n)
        .map(|v| (ic.expected_spread(&[v], rng), v, 0usize))
        .collect();
    heap.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let mut seeds: Vec<u32> = Vec::with_capacity(budget);
    let mut spreads: Vec<f64> = Vec::with_capacity(budget);
    let mut current_spread = 0.0;
    for round in 1..=budget {
        loop {
            let &(gain, node, evaluated) = heap.last().expect("non-empty heap");
            if evaluated == round {
                // Fresh for this round: take it.
                heap.pop();
                seeds.push(node);
                current_spread += gain;
                spreads.push(current_spread);
                break;
            }
            // Stale: re-evaluate the marginal gain against current seeds.
            heap.pop();
            let mut with = seeds.clone();
            with.push(node);
            let fresh_gain = ic.expected_spread(&with, rng) - current_spread;
            let pos = heap.partition_point(|&(g, _, _)| g < fresh_gain);
            heap.insert(pos, (fresh_gain, node, round));
        }
    }
    SeedSelection {
        seeds,
        spread: spreads,
    }
}

/// The out-degree-weighted heuristic: pick the `budget` nodes with the
/// largest total outgoing probability mass. Fast, no simulation.
pub fn degree_heuristic(graph: &WeightedDigraph, budget: usize) -> SeedSelection {
    let n = graph.num_nodes();
    let mut scored: Vec<(f64, u32)> = (0..n)
        .map(|v| (graph.out_edges(v).map(|(_, p)| p).sum::<f64>(), v))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    let seeds: Vec<u32> = scored.iter().take(budget).map(|&(_, v)| v).collect();
    SeedSelection {
        spread: vec![0.0; seeds.len()],
        seeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_math::rng::seeded_rng;

    /// Two independent stars; the larger star's hub is the best first seed,
    /// the smaller star's hub the best second.
    fn two_stars() -> WeightedDigraph {
        let mut edges = Vec::new();
        for leaf in 1..=6u32 {
            edges.push((0, leaf, 0.9));
        }
        for leaf in 8..=10u32 {
            edges.push((7, leaf, 0.9));
        }
        WeightedDigraph::from_edges(11, &edges)
    }

    #[test]
    fn greedy_picks_both_hubs() {
        let g = two_stars();
        let mut rng = seeded_rng(6);
        let sel = greedy_celf(&g, 2, 2_000, &mut rng);
        assert_eq!(sel.seeds.len(), 2);
        assert!(sel.seeds.contains(&0), "{:?}", sel.seeds);
        assert!(sel.seeds.contains(&7), "{:?}", sel.seeds);
        assert_eq!(sel.seeds[0], 0, "bigger hub first");
        // Spread is monotone and exceeds seed count.
        assert!(sel.spread[1] > sel.spread[0]);
        assert!(sel.spread[1] > 8.0, "{:?}", sel.spread);
    }

    #[test]
    fn degree_heuristic_agrees_on_stars() {
        let g = two_stars();
        let sel = degree_heuristic(&g, 2);
        assert_eq!(sel.seeds, vec![0, 7]);
    }

    #[test]
    fn budget_is_clamped_to_graph_size() {
        let g = WeightedDigraph::from_edges(3, &[(0, 1, 0.5)]);
        let mut rng = seeded_rng(7);
        let sel = greedy_celf(&g, 10, 200, &mut rng);
        assert_eq!(sel.seeds.len(), 3);
    }

    #[test]
    fn greedy_spread_dominates_random_seed() {
        let g = two_stars();
        let mut rng = seeded_rng(8);
        let greedy = greedy_celf(&g, 1, 3_000, &mut rng);
        let ic = IndependentCascade::new(&g, 3_000);
        let random = ic.expected_spread(&[3], &mut rng); // a leaf
        assert!(
            greedy.spread[0] > random,
            "{} vs {random}",
            greedy.spread[0]
        );
    }
}
