//! Influence analysis on the extracted community-level diffusion graph.
//!
//! §6.6 of the paper applies the **Independent Cascade** model (Goldenberg
//! et al.) to the community-level diffusion graph that COLD extracts, to
//! identify the most influential communities for viral marketing, and
//! ranks users by an analogous influence degree (Fig. 16's point sizes).
//!
//! * [`ic`] — the Independent Cascade model over an arbitrary weighted
//!   directed graph, with Monte-Carlo spread estimation.
//! * [`maximize`] — greedy influence maximization with CELF lazy
//!   evaluation, plus the degree heuristic as a baseline (the paper cites
//!   Kempe et al.; COLD supplies the influence strengths those methods
//!   assume as given).
//! * [`community`] — influential-community identification: single-seed IC
//!   spread over the `ζ`-weighted community graph for a chosen topic, and
//!   user influence degrees over the interaction network.
//! * [`pentagon`] — the Fig. 16 visualization data: users embedded as
//!   membership-weighted convex combinations of polygon corners.

// Latent-variable code indexes parallel flat arrays by semantically
// meaningful ids (community c, topic k, user i); iterator rewrites of
// those loops obscure the math they mirror.
#![allow(clippy::needless_range_loop)]

pub mod community;
pub mod ic;
pub mod maximize;
pub mod pentagon;

pub use community::{community_influence, user_influence, CommunityInfluence};
pub use ic::{IndependentCascade, WeightedDigraph};
pub use maximize::{degree_heuristic, greedy_celf, SeedSelection};
pub use pentagon::{pentagon_embedding, PentagonPoint};
