//! The Independent Cascade model (Goldenberg, Libai, Muller — the paper's
//! reference [8]).
//!
//! Every newly-activated node gets one chance to activate each inactive
//! out-neighbour `v` with the edge's probability; the process runs until no
//! new activations occur. Spread is estimated by Monte-Carlo repetition.

use cold_math::rng::Rng;
use rand::Rng as _;

/// A directed graph with per-edge activation probabilities, in CSR form.
#[derive(Debug, Clone)]
pub struct WeightedDigraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    probs: Vec<f64>,
}

impl WeightedDigraph {
    /// Build from `(src, dst, probability)` triples.
    ///
    /// # Panics
    /// Panics if a probability is outside `[0, 1]` or an endpoint is out of
    /// range.
    pub fn from_edges(num_nodes: u32, edges: &[(u32, u32, f64)]) -> Self {
        for &(s, t, p) in edges {
            assert!(
                s < num_nodes && t < num_nodes,
                "edge ({s},{t}) out of range"
            );
            assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
        let mut sorted: Vec<(u32, u32, f64)> = edges.to_vec();
        sorted.sort_by_key(|a| (a.0, a.1));
        let mut offsets = vec![0u32; num_nodes as usize + 1];
        for &(s, _, _) in &sorted {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..num_nodes as usize {
            offsets[i + 1] += offsets[i];
        }
        Self {
            offsets,
            targets: sorted.iter().map(|&(_, t, _)| t).collect(),
            probs: sorted.iter().map(|&(_, _, p)| p).collect(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Out-edges of `u` as `(target, probability)` pairs.
    pub fn out_edges(&self, u: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.probs[lo..hi].iter().copied())
    }
}

/// Monte-Carlo Independent Cascade simulator.
pub struct IndependentCascade<'g> {
    graph: &'g WeightedDigraph,
    /// Simulations per spread estimate.
    pub simulations: usize,
}

impl<'g> IndependentCascade<'g> {
    /// Simulator over `graph` with `simulations` Monte-Carlo repetitions.
    pub fn new(graph: &'g WeightedDigraph, simulations: usize) -> Self {
        assert!(simulations > 0);
        Self { graph, simulations }
    }

    /// One cascade realization from `seeds`; returns the activated set
    /// size (including seeds).
    pub fn simulate_once(&self, seeds: &[u32], rng: &mut Rng) -> usize {
        let n = self.graph.num_nodes() as usize;
        let mut active = vec![false; n];
        let mut frontier: Vec<u32> = Vec::with_capacity(seeds.len());
        let mut count = 0usize;
        for &s in seeds {
            if !active[s as usize] {
                active[s as usize] = true;
                frontier.push(s);
                count += 1;
            }
        }
        let mut next: Vec<u32> = Vec::new();
        while !frontier.is_empty() {
            next.clear();
            for &u in &frontier {
                for (v, p) in self.graph.out_edges(u) {
                    if !active[v as usize] && rng.gen::<f64>() < p {
                        active[v as usize] = true;
                        next.push(v);
                        count += 1;
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        count
    }

    /// Expected spread of `seeds` (mean over the configured simulations).
    pub fn expected_spread(&self, seeds: &[u32], rng: &mut Rng) -> f64 {
        let total: usize = (0..self.simulations)
            .map(|_| self.simulate_once(seeds, rng))
            .sum();
        total as f64 / self.simulations as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_math::rng::seeded_rng;

    /// A chain 0 -> 1 -> 2 -> 3 with deterministic edges.
    fn chain(p: f64) -> WeightedDigraph {
        WeightedDigraph::from_edges(4, &[(0, 1, p), (1, 2, p), (2, 3, p)])
    }

    #[test]
    fn deterministic_chain_fully_activates() {
        let g = chain(1.0);
        let ic = IndependentCascade::new(&g, 10);
        let mut rng = seeded_rng(1);
        assert_eq!(ic.expected_spread(&[0], &mut rng), 4.0);
        assert_eq!(ic.expected_spread(&[2], &mut rng), 2.0);
    }

    #[test]
    fn zero_probability_spreads_nothing() {
        let g = chain(0.0);
        let ic = IndependentCascade::new(&g, 10);
        let mut rng = seeded_rng(2);
        assert_eq!(ic.expected_spread(&[0], &mut rng), 1.0);
    }

    #[test]
    fn expected_spread_matches_analytic_chain() {
        // Chain with p = 0.5: E[spread from 0] = 1 + 1/2 + 1/4 + 1/8 = 1.875.
        let g = chain(0.5);
        let ic = IndependentCascade::new(&g, 60_000);
        let mut rng = seeded_rng(3);
        let spread = ic.expected_spread(&[0], &mut rng);
        assert!((spread - 1.875).abs() < 0.02, "spread {spread}");
    }

    #[test]
    fn duplicate_seeds_count_once() {
        let g = chain(1.0);
        let ic = IndependentCascade::new(&g, 5);
        let mut rng = seeded_rng(4);
        assert_eq!(ic.simulate_once(&[0, 0, 1], &mut rng), 4);
    }

    #[test]
    fn spread_is_monotone_in_seed_set() {
        let g = WeightedDigraph::from_edges(
            6,
            &[
                (0, 1, 0.4),
                (1, 2, 0.4),
                (3, 4, 0.4),
                (4, 5, 0.4),
                (0, 3, 0.2),
            ],
        );
        let ic = IndependentCascade::new(&g, 20_000);
        let mut rng = seeded_rng(5);
        let s1 = ic.expected_spread(&[0], &mut rng);
        let s2 = ic.expected_spread(&[0, 3], &mut rng);
        assert!(s2 > s1, "{s2} vs {s1}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = WeightedDigraph::from_edges(2, &[(0, 1, 1.5)]);
    }
}
