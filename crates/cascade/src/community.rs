//! Influential-community identification (§6.6, Fig. 16).
//!
//! "We compute the influence degree of each community by setting the single
//! community as the seed set and applying the well-known Independent
//! Cascade model on the extracted community level diffusion graph."

use crate::ic::{IndependentCascade, WeightedDigraph};
use cold_core::{ColdModel, CommunityDiffusionGraph};
use cold_graph::CsrGraph;
use cold_math::rng::Rng;
use serde::{Deserialize, Serialize};

/// A community's influence degree on one topic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommunityInfluence {
    /// Community id.
    pub community: usize,
    /// Expected IC spread (in communities reached) from this single seed.
    pub influence: f64,
    /// The community's own interest in the topic (`θ_ck`).
    pub interest: f64,
}

/// Rank all communities by single-seed IC spread over the `ζ`-weighted
/// community diffusion graph of `topic`.
///
/// Raw `ζ = θθη` values are products of probabilities and therefore small;
/// following weighted-cascade practice the edge strengths are normalized so
/// the strongest edge activates with probability 0.5 — the *relative*
/// strengths (which is what `ζ` asserts) drive the ranking.
pub fn community_influence(
    model: &ColdModel,
    topic: usize,
    simulations: usize,
    rng: &mut Rng,
) -> Vec<CommunityInfluence> {
    let c = model.dims().num_communities;
    let diffusion = CommunityDiffusionGraph::extract(model, topic, 0.0, 5, 0.0);
    let max_strength = diffusion
        .edges
        .iter()
        .map(|e| e.strength)
        .fold(f64::MIN_POSITIVE, f64::max);
    let edges: Vec<(u32, u32, f64)> = diffusion
        .edges
        .iter()
        .map(|e| {
            (
                e.from as u32,
                e.to as u32,
                (e.strength / max_strength * 0.5).clamp(0.0, 1.0),
            )
        })
        .collect();
    let graph = WeightedDigraph::from_edges(c as u32, &edges);
    let ic = IndependentCascade::new(&graph, simulations);
    let mut out: Vec<CommunityInfluence> = (0..c)
        .map(|cc| CommunityInfluence {
            community: cc,
            influence: ic.expected_spread(&[cc as u32], rng),
            interest: model.community_topics(cc)[topic],
        })
        .collect();
    out.sort_by(|a, b| b.influence.partial_cmp(&a.influence).expect("finite"));
    out
}

/// User influence degrees on one topic (the point sizes of Fig. 16):
/// expected IC spread from each user over the interaction network, with
/// each link `(i, i')` weighted by the model's topic-specific strength
/// `Σ_{c,c'} π_ic π_i'c' ζ_kcc'` restricted to top memberships.
pub fn user_influence(
    model: &ColdModel,
    interaction: &CsrGraph,
    topic: usize,
    top_comm: usize,
    simulations: usize,
    rng: &mut Rng,
) -> Vec<f64> {
    let n = interaction.num_nodes();
    let mut edges: Vec<(u32, u32, f64)> = Vec::with_capacity(interaction.num_edges());
    // Precompute top communities once.
    let tops: Vec<Vec<usize>> = (0..n).map(|i| model.top_communities(i, top_comm)).collect();
    for (i, j) in interaction.edges() {
        let pi_i = model.user_memberships(i);
        let pi_j = model.user_memberships(j);
        let mut p = 0.0;
        for &c in &tops[i as usize] {
            for &c2 in &tops[j as usize] {
                p += pi_i[c] * pi_j[c2] * model.zeta(topic, c, c2);
            }
        }
        edges.push((i, j, p));
    }
    // Weighted-cascade normalization (see `community_influence`).
    let max_p = edges
        .iter()
        .map(|&(_, _, p)| p)
        .fold(f64::MIN_POSITIVE, f64::max);
    for (_, _, p) in &mut edges {
        *p = (*p / max_p * 0.5).clamp(0.0, 1.0);
    }
    let graph = WeightedDigraph::from_edges(n, &edges);
    let ic = IndependentCascade::new(&graph, simulations);
    (0..n).map(|u| ic.expected_spread(&[u], rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_core::{ColdConfig, GibbsSampler};
    use cold_math::rng::seeded_rng;
    use cold_text::CorpusBuilder;

    fn fitted() -> (ColdModel, CsrGraph) {
        let mut b = CorpusBuilder::new();
        for u in 0..3u32 {
            for t in 0..3u16 {
                b.push_text(u, t, &["football", "goal"]);
            }
        }
        for u in 3..6u32 {
            for t in 0..3u16 {
                b.push_text(u, t, &["film", "oscar"]);
            }
        }
        let corpus = b.build();
        let edges = [
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 4),
            (4, 5),
            (5, 3),
            (0, 4),
            (1, 5),
        ];
        let graph = CsrGraph::from_edges(6, &edges);
        let config = ColdConfig::builder(2, 2)
            .iterations(50)
            .burn_in(40)
            .build(&corpus, &graph);
        (GibbsSampler::new(&corpus, &graph, config, 3).run(), graph)
    }

    #[test]
    fn community_ranking_is_sorted_and_complete() {
        let (model, _) = fitted();
        let mut rng = seeded_rng(10);
        let ranking = community_influence(&model, 0, 500, &mut rng);
        assert_eq!(ranking.len(), 2);
        assert!(ranking[0].influence >= ranking[1].influence);
        for r in &ranking {
            assert!(r.influence >= 1.0, "seed itself always counts");
            assert!((0.0..=1.0).contains(&r.interest));
        }
    }

    #[test]
    fn user_influence_covers_all_users_and_is_at_least_one() {
        let (model, graph) = fitted();
        let mut rng = seeded_rng(11);
        let inf = user_influence(&model, &graph, 0, 2, 200, &mut rng);
        assert_eq!(inf.len(), 6);
        for &v in &inf {
            assert!(v >= 1.0);
        }
    }

    #[test]
    fn isolated_user_has_unit_influence() {
        let (model, _) = fitted();
        let graph = CsrGraph::from_edges(6, &[(0, 1)]);
        let mut rng = seeded_rng(12);
        let inf = user_influence(&model, &graph, 0, 2, 100, &mut rng);
        assert_eq!(inf[5], 1.0);
    }
}
