//! The Fig. 16 "pentagon" embedding.
//!
//! The paper visualizes the most influential communities as corners of a
//! regular polygon and places every user at the membership-weighted convex
//! combination of the corners: single-membership users sit at corners,
//! two-community users on sides/diagonals. Communities beyond the top few
//! are aggregated into one "other communities" corner.

use cold_core::ColdModel;
use serde::{Deserialize, Serialize};

/// One plotted user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PentagonPoint {
    /// User id.
    pub user: u32,
    /// X coordinate in `[-1, 1]`.
    pub x: f64,
    /// Y coordinate in `[-1, 1]`.
    pub y: f64,
    /// Point size (the user's influence degree, if provided).
    pub size: f64,
    /// The user's dominant corner (index into the corner list).
    pub dominant_corner: usize,
}

/// Embed users against `corner_communities` (the top communities of the
/// figure) plus an implicit final "others" corner; `sizes` are optional
/// influence degrees (defaults to 1.0).
///
/// Corner `i` of the `(n+1)`-gon sits at angle `90° + i·360°/(n+1)`.
pub fn pentagon_embedding(
    model: &ColdModel,
    corner_communities: &[usize],
    sizes: Option<&[f64]>,
) -> (Vec<(f64, f64)>, Vec<PentagonPoint>) {
    let corners_n = corner_communities.len() + 1; // + "others"
    let corners: Vec<(f64, f64)> = (0..corners_n)
        .map(|i| {
            let angle =
                std::f64::consts::FRAC_PI_2 + i as f64 * std::f64::consts::TAU / corners_n as f64;
            (angle.cos(), angle.sin())
        })
        .collect();
    let u = model.dims().num_users;
    let points = (0..u)
        .map(|user| {
            let pi = model.user_memberships(user);
            // Corner weights: named communities keep their mass; all other
            // communities pool into the last corner.
            let mut weights = vec![0.0f64; corners_n];
            let mut named_total = 0.0;
            for (ci, &cc) in corner_communities.iter().enumerate() {
                weights[ci] = pi[cc];
                named_total += pi[cc];
            }
            weights[corners_n - 1] = (1.0 - named_total).max(0.0);
            let total: f64 = weights.iter().sum();
            let (mut x, mut y) = (0.0, 0.0);
            for (w, &(cx, cy)) in weights.iter().zip(&corners) {
                x += w / total * cx;
                y += w / total * cy;
            }
            let dominant = weights
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .unwrap_or(0);
            PentagonPoint {
                user,
                x,
                y,
                size: sizes.map_or(1.0, |s| s[user as usize]),
                dominant_corner: dominant,
            }
        })
        .collect();
    (corners, points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_core::{ColdConfig, GibbsSampler};
    use cold_graph::CsrGraph;
    use cold_text::CorpusBuilder;

    fn fitted() -> ColdModel {
        let mut b = CorpusBuilder::new();
        for u in 0..2u32 {
            b.push_text(u, 0, &["football", "goal"]);
        }
        for u in 2..4u32 {
            b.push_text(u, 1, &["film", "oscar"]);
        }
        let corpus = b.build();
        let graph = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let config = ColdConfig::builder(2, 2)
            .iterations(40)
            .burn_in(30)
            .hyperparams(cold_core::Hyperparams {
                alpha: 0.5,
                beta: 0.01,
                epsilon: 0.1,
                rho: 0.5,
                lambda0: 3.0,
                lambda1: 0.1,
            })
            .build(&corpus, &graph);
        GibbsSampler::new(&corpus, &graph, config, 5).run()
    }

    #[test]
    fn points_stay_inside_the_polygon_hull() {
        let model = fitted();
        let (corners, points) = pentagon_embedding(&model, &[0, 1], None);
        assert_eq!(corners.len(), 3);
        assert_eq!(points.len(), 4);
        for p in &points {
            // Convex combination of unit-circle corners stays in the disk.
            assert!(p.x * p.x + p.y * p.y <= 1.0 + 1e-9);
            assert!(p.dominant_corner < 3);
            assert_eq!(p.size, 1.0);
        }
    }

    #[test]
    fn concentrated_users_sit_near_their_corner() {
        let model = fitted();
        let (corners, points) = pentagon_embedding(&model, &[0, 1], None);
        for p in &points {
            let pi = model.user_memberships(p.user);
            let strongest = if pi[0] > pi[1] { 0 } else { 1 };
            if pi[strongest] > 0.9 {
                let (cx, cy) = corners[strongest];
                let d = ((p.x - cx).powi(2) + (p.y - cy).powi(2)).sqrt();
                assert!(d < 0.35, "user {} at distance {d}", p.user);
            }
        }
    }

    #[test]
    fn sizes_are_threaded_through() {
        let model = fitted();
        let sizes = vec![3.0, 1.0, 2.0, 5.0];
        let (_, points) = pentagon_embedding(&model, &[0], Some(&sizes));
        for p in &points {
            assert_eq!(p.size, sizes[p.user as usize]);
        }
    }
}
