//! Property tests for the Independent Cascade machinery.

use cold_cascade::{degree_heuristic, greedy_celf, IndependentCascade, WeightedDigraph};
use cold_math::rng::seeded_rng;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u32, u32, f64)>)> {
    (3u32..12).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n, 0.0f64..1.0), 0..40);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Spread always counts the seeds and never exceeds the node count.
    #[test]
    fn spread_is_bounded((n, edges) in arb_graph(), seed in 0u64..500) {
        let edges: Vec<_> = edges.into_iter().filter(|&(s, t, _)| s != t).collect();
        let g = WeightedDigraph::from_edges(n, &edges);
        let ic = IndependentCascade::new(&g, 50);
        let mut rng = seeded_rng(seed);
        let seeds = [0u32, n - 1];
        let spread = ic.expected_spread(&seeds, &mut rng);
        let distinct = if n > 1 { 2.0 } else { 1.0 };
        prop_assert!(spread >= distinct - 1e-9);
        prop_assert!(spread <= n as f64 + 1e-9);
    }

    /// Raising every edge probability cannot reduce expected spread.
    #[test]
    fn spread_is_monotone_in_probabilities((n, edges) in arb_graph(), seed in 0u64..500) {
        let edges: Vec<_> = edges.into_iter().filter(|&(s, t, _)| s != t).collect();
        prop_assume!(!edges.is_empty());
        let weak = WeightedDigraph::from_edges(n, &edges);
        let strong_edges: Vec<_> = edges
            .iter()
            .map(|&(s, t, p)| (s, t, (p + 0.3).min(1.0)))
            .collect();
        let strong = WeightedDigraph::from_edges(n, &strong_edges);
        let mut rng = seeded_rng(seed);
        let ic_weak = IndependentCascade::new(&weak, 800);
        let ic_strong = IndependentCascade::new(&strong, 800);
        let s_weak = ic_weak.expected_spread(&[0], &mut rng);
        let s_strong = ic_strong.expected_spread(&[0], &mut rng);
        // Monte-Carlo noise tolerance.
        prop_assert!(s_strong >= s_weak - 0.35, "{s_strong} vs {s_weak}");
    }

    /// Greedy selection returns distinct seeds with non-decreasing spread.
    #[test]
    fn greedy_output_is_well_formed((n, edges) in arb_graph(), seed in 0u64..500) {
        let edges: Vec<_> = edges.into_iter().filter(|&(s, t, _)| s != t).collect();
        let g = WeightedDigraph::from_edges(n, &edges);
        let mut rng = seeded_rng(seed);
        let sel = greedy_celf(&g, 3, 60, &mut rng);
        prop_assert_eq!(sel.seeds.len(), 3.min(n as usize));
        let mut sorted = sel.seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sel.seeds.len(), "duplicate seeds");
        for w in sel.spread.windows(2) {
            prop_assert!(w[1] >= w[0] - 0.3, "spread decreased: {:?}", sel.spread);
        }
    }

    /// The degree heuristic returns the highest-out-mass nodes.
    #[test]
    fn degree_heuristic_is_sorted((n, edges) in arb_graph()) {
        let edges: Vec<_> = edges.into_iter().filter(|&(s, t, _)| s != t).collect();
        let g = WeightedDigraph::from_edges(n, &edges);
        let sel = degree_heuristic(&g, n as usize);
        let mass = |v: u32| g.out_edges(v).map(|(_, p)| p).sum::<f64>();
        for w in sel.seeds.windows(2) {
            prop_assert!(mass(w[0]) >= mass(w[1]) - 1e-12);
        }
    }
}
