//! The planted-truth generator: a literal execution of the paper's Alg. 1
//! plus the cascade replay.

use crate::cascade::RetweetTuple;
use crate::truth::{GroundTruth, TOPIC_NAMES};
use crate::world::{SocialDataset, WorldConfig};
use cold_graph::GraphBuilder;
use cold_math::categorical::AliasTable;
use cold_math::dirichlet::sample_dirichlet;
use cold_math::rng::{seeded_rng, Rng};
use cold_math::stats::normalize_in_place;
use cold_text::{CorpusBuilder, Post, Vocabulary};
use rand::Rng as _;

/// Generate a complete dataset from `config` with deterministic `seed`.
///
/// # Panics
/// Panics if the configuration fails validation.
pub fn generate(config: &WorldConfig, seed: u64) -> SocialDataset {
    config.validate().expect("invalid world configuration");
    let mut rng = seeded_rng(seed);
    let c = config.num_communities;
    let k = config.num_topics;
    let t = config.num_time_slices as usize;
    let v = config.vocab_size;
    let u = config.num_users as usize;

    let topic_names: Vec<String> = (0..k)
        .map(|kk| {
            let base = TOPIC_NAMES[kk % TOPIC_NAMES.len()];
            if kk < TOPIC_NAMES.len() {
                base.to_owned()
            } else {
                format!("{base}{}", kk / TOPIC_NAMES.len() + 1)
            }
        })
        .collect();

    // --- Vocabulary: one named block per topic. ---
    let mut vocab = Vocabulary::new();
    for w in 0..v {
        let block = w * k / v; // contiguous blocks of ~V/K words
        vocab.intern(&format!("{}.w{w:05}", topic_names[block.min(k - 1)]));
    }

    let phi = planted_phi(&mut rng, config);
    let theta = planted_theta(&mut rng, config);
    let eta = planted_eta(&mut rng, config);
    let psi = planted_psi(&mut rng, config, &theta);
    let (pi, primary) = planted_pi(&mut rng, config);

    // --- Links: Alg. 1 step 3(c) over sampled candidate pairs. ---
    let pi_tables: Vec<AliasTable> = (0..u)
        .map(|i| AliasTable::new(&pi[i * c..(i + 1) * c]))
        .collect();
    let mut gb = GraphBuilder::with_nodes(config.num_users);
    for i in 0..config.num_users {
        for _ in 0..config.link_candidates_per_user {
            let j = loop {
                let j = rng.gen_range(0..config.num_users);
                if j != i {
                    break j;
                }
            };
            let s = pi_tables[i as usize].sample(&mut rng);
            let s2 = pi_tables[j as usize].sample(&mut rng);
            if rng.gen::<f64>() < eta[s * c + s2] {
                gb.add_edge(i, j);
            }
        }
    }
    let graph = gb.build();

    // --- Posts: Alg. 1 step 3(b). ---
    let theta_tables: Vec<AliasTable> = (0..c)
        .map(|cc| AliasTable::new(&theta[cc * k..(cc + 1) * k]))
        .collect();
    let phi_tables: Vec<AliasTable> = (0..k)
        .map(|kk| AliasTable::new(&phi[kk * v..(kk + 1) * v]))
        .collect();
    let psi_tables: Vec<AliasTable> = (0..c * k)
        .map(|row| AliasTable::new(&psi[row * t..(row + 1) * t]))
        .collect();
    let mut builder = CorpusBuilder::with_vocab(vocab);
    builder.ensure_users(config.num_users);
    let mut post_assignments: Vec<(u32, u32)> = Vec::new();
    for i in 0..u {
        let n_posts = poisson(&mut rng, config.posts_per_user).max(1);
        for _ in 0..n_posts {
            let cc = pi_tables[i].sample(&mut rng);
            let kk = theta_tables[cc].sample(&mut rng);
            let tt = psi_tables[cc * k + kk].sample(&mut rng) as u16;
            let len = poisson(&mut rng, config.words_per_post).max(2);
            let mut words = Vec::with_capacity(len);
            for _ in 0..len {
                let w = if rng.gen::<f64>() < config.word_noise {
                    rng.gen_range(0..v)
                } else {
                    phi_tables[kk].sample(&mut rng)
                };
                words.push(w as u32);
            }
            builder.push(Post::new(i as u32, tt, words));
            post_assignments.push((cc as u32, kk as u32));
        }
    }
    // Pin the time grid to T even if some tail slice drew no post.
    builder.push(Post::new(
        0,
        config.num_time_slices - 1,
        vec![0, 1.min(v as u32 - 1)],
    ));
    post_assignments.push((0, 0));
    let corpus = builder.build();

    // --- Cascades: replay follower decisions through the planted ζ. ---
    let truth = GroundTruth {
        num_communities: c,
        num_topics: k,
        num_time_slices: t,
        vocab_size: v,
        pi,
        primary_community: primary,
        theta,
        eta,
        phi,
        psi,
        topic_names,
        post_assignments,
    };
    let cascades = replay_cascades(&mut rng, config, &corpus, &graph, &truth);

    SocialDataset {
        corpus,
        graph,
        cascades,
        truth,
    }
}

/// Planted topic-word distributions: Zipfian mass inside the topic's own
/// vocabulary block, a small uniform spill elsewhere.
fn planted_phi(rng: &mut Rng, config: &WorldConfig) -> Vec<f64> {
    let (k, v) = (config.num_topics, config.vocab_size);
    let spill = 0.05;
    let mut phi = vec![0.0f64; k * v];
    for kk in 0..k {
        let lo = kk * v / k;
        let hi = ((kk + 1) * v / k).max(lo + 1);
        let row = &mut phi[kk * v..(kk + 1) * v];
        for (rank, w) in (lo..hi).enumerate() {
            // Zipf with mild exponent, jittered so topics differ in shape.
            let jitter: f64 = rng.gen_range(0.8..1.2);
            row[w] = jitter / (rank + 1) as f64;
        }
        let in_block: f64 = row.iter().sum();
        for w in 0..v {
            row[w] = row[w] / in_block * (1.0 - spill) + spill / v as f64;
        }
        normalize_in_place(row);
    }
    phi
}

/// Planted community interests: 1–2 dominant topics per community plus a
/// Dirichlet tail, so interests overlap but are identifiable.
fn planted_theta(rng: &mut Rng, config: &WorldConfig) -> Vec<f64> {
    let (c, k) = (config.num_communities, config.num_topics);
    let mut theta = vec![0.0f64; c * k];
    for cc in 0..c {
        let primary = cc % k;
        let secondary = (cc + 1) % k;
        let tail = sample_dirichlet(rng, 0.5, k);
        let row = &mut theta[cc * k..(cc + 1) * k];
        for kk in 0..k {
            row[kk] = (1.0 - config.interest_focus) * tail[kk];
        }
        row[primary] += config.interest_focus * 0.75;
        row[secondary] += config.interest_focus * 0.25;
        normalize_in_place(row);
    }
    theta
}

/// Planted inter-community strengths: strong diagonal, weak jittered
/// off-diagonal, with per-community "influence" row scales so some
/// communities are net exporters of attention (the Fig. 5 asymmetry).
fn planted_eta(rng: &mut Rng, config: &WorldConfig) -> Vec<f64> {
    let c = config.num_communities;
    let mut eta = vec![0.0f64; c * c];
    let row_scale: Vec<f64> = (0..c).map(|_| rng.gen_range(0.6..1.6)).collect();
    for cc in 0..c {
        for c2 in 0..c {
            let base = if cc == c2 {
                config.eta_intra
            } else if c2 == (cc + 1) % c && config.weak_tie_strength > 0.0 {
                // A strong *directed* cross-community channel: the weak-tie
                // structure the paper builds on ("the strength of weak
                // ties"). Assortative models (PMTLM's shared-factor links)
                // cannot represent these asymmetric off-diagonal strengths;
                // COLD's full η matrix can.
                config.eta_intra * config.weak_tie_strength
            } else {
                config.eta_inter * rng.gen_range(0.5..1.5)
            };
            eta[cc * c + c2] = (base * row_scale[cc]).clamp(0.0, 0.95);
        }
    }
    eta
}

/// Planted temporal profiles, encoding the paper's two §5.3 findings:
///
/// * **Time lag (Fig. 7)** — each topic's burst onset lags behind its
///   most-interested communities by up to `burst_lag` slices.
/// * **Interest-vs-fluctuation (Fig. 6)** — highly-interested communities
///   get *broad, steady* engagement curves; medium-interested ones get
///   *narrow, spiky, often multimodal* curves (attention rises and falls
///   hard); barely-interested ones get near-flat background chatter. The
///   multimodal cases are also why COLD models `ψ` as a multinomial rather
///   than TOT's unimodal Beta.
fn planted_psi(rng: &mut Rng, config: &WorldConfig, theta: &[f64]) -> Vec<f64> {
    let (c, k) = (config.num_communities, config.num_topics);
    let t = config.num_time_slices as usize;
    let mut psi = vec![0.0f64; c * k * t];
    // Base peak of each topic, early-to-mid timeline.
    let peaks: Vec<f64> = (0..k)
        .map(|_| rng.gen_range(0.15..0.55) * t as f64)
        .collect();
    for kk in 0..k {
        // Interest threshold: only the most-interested community bursts on
        // time; everyone else lags in proportion to their (lack of)
        // interest. This makes a topic's timing genuinely community-
        // specific — the structure COLD's ψ_kc models and aggregate
        // temporal models cannot represent.
        let mut interests: Vec<f64> = (0..c).map(|cc| theta[cc * k + kk]).collect();
        interests.sort_by(|a, b| b.partial_cmp(a).expect("theta has no NaN"));
        let cut = interests[0];
        for cc in 0..c {
            let interest = theta[cc * k + kk];
            let high = interest >= cut * 0.999;
            let low = interest < 0.05 * cut;
            let lag = if high {
                0.0
            } else {
                config.burst_lag as f64 * (1.0 - interest / cut.max(1e-12))
            };
            let center = (peaks[kk] + lag).min(t as f64 - 1.0);
            let row = &mut psi[(cc * k + kk) * t..(cc * k + kk) * t + t];
            // Width and floor by interest class: broad/steady for high,
            // narrow/spiky for medium, flat chatter for low.
            let (width, bump_scale, floor) = if high {
                (config.burst_width * 2.5, 1.0, 0.03)
            } else if low {
                (config.burst_width * 2.0, 0.10, 0.30)
            } else {
                (config.burst_width, 1.0, 0.02)
            };
            for (tt, p) in row.iter_mut().enumerate() {
                let d = (tt as f64 - center) / width;
                *p = bump_scale * (-0.5 * d * d).exp();
            }
            // Medium-interest pairs get a second bump: multimodal dynamics.
            // The bump is clamped (not wrapped) so it stays *after* the
            // main burst — attention that re-surges, not one that predates
            // the trigger.
            if !high && !low {
                let center2 = (center + t as f64 * 0.4).min(t as f64 - 1.0);
                for (tt, p) in row.iter_mut().enumerate() {
                    let d = (tt as f64 - center2) / config.burst_width;
                    *p += 0.6 * (-0.5 * d * d).exp();
                }
            }
            for p in row.iter_mut() {
                *p += floor;
            }
            normalize_in_place(row);
        }
    }
    psi
}

/// Planted memberships: a primary community per user plus a Dirichlet tail;
/// one user in ten is genuinely mixed between two communities.
fn planted_pi(rng: &mut Rng, config: &WorldConfig) -> (Vec<f64>, Vec<u32>) {
    let c = config.num_communities;
    let u = config.num_users as usize;
    let mut pi = vec![0.0f64; u * c];
    let mut primary = vec![0u32; u];
    for i in 0..u {
        let main = i % c;
        primary[i] = main as u32;
        let tail = sample_dirichlet(rng, 0.3, c);
        let row = &mut pi[i * c..(i + 1) * c];
        for cc in 0..c {
            row[cc] = (1.0 - config.membership_focus) * tail[cc];
        }
        if i % 10 == 9 && c > 1 {
            // Mixed-membership user: split the focus across two communities.
            let other = (main + 1 + rng.gen_range(0..c - 1)) % c;
            row[main] += config.membership_focus * 0.55;
            row[other] += config.membership_focus * 0.45;
        } else {
            row[main] += config.membership_focus;
        }
        normalize_in_place(row);
    }
    (pi, primary)
}

/// Replay each selected post through every follower's decision: retweet
/// with probability `amplification · Σ_c' π_jc' ζ_kcc'` (clamped), where
/// `(c, k)` is the post's true assignment, then flip with `retweet_noise`.
fn replay_cascades(
    rng: &mut Rng,
    config: &WorldConfig,
    corpus: &cold_text::Corpus,
    graph: &cold_graph::CsrGraph,
    truth: &GroundTruth,
) -> Vec<RetweetTuple> {
    let c = truth.num_communities;
    let mut tuples = Vec::new();
    for (d, post) in corpus.posts().iter().enumerate() {
        if rng.gen::<f64>() >= config.cascade_fraction {
            continue;
        }
        let publisher = post.author;
        let followers = graph.out_neighbors(publisher);
        if followers.is_empty() {
            continue;
        }
        let (pc, pk) = truth.post_assignments[d];
        let (pc, pk) = (pc as usize, pk as usize);
        let mut retweeters = Vec::new();
        let mut ignorers = Vec::new();
        for &j in followers {
            let pi_j = truth.pi_row(j);
            let mut p = 0.0;
            for c2 in 0..c {
                p += pi_j[c2] * truth.zeta(pk, pc, c2);
            }
            let mut p = (p * config.retweet_amplification).clamp(0.005, 0.95);
            if rng.gen::<f64>() < config.retweet_noise {
                p = 1.0 - p;
            }
            if rng.gen::<f64>() < p {
                retweeters.push(j);
            } else {
                ignorers.push(j);
            }
        }
        tuples.push(RetweetTuple {
            publisher,
            post: d as u32,
            retweeters,
            ignorers,
        });
    }
    tuples
}

/// Knuth's Poisson sampler for small means, normal approximation above 30.
fn poisson(rng: &mut Rng, mean: f64) -> usize {
    debug_assert!(mean > 0.0);
    if mean > 30.0 {
        // Normal approximation with continuity correction.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        return (mean + z * mean.sqrt()).round().max(0.0) as usize;
    }
    let limit = (-mean).exp();
    let mut product: f64 = rng.gen();
    let mut count = 0usize;
    while product > limit {
        product *= rng.gen::<f64>();
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn tiny_world_generates_consistent_dataset() {
        let data = generate(&WorldConfig::tiny(), 42);
        assert_eq!(data.corpus.num_users(), 60);
        assert!(data.corpus.num_posts() > 60); // ≥1 per user + pin post
        assert_eq!(data.truth.post_assignments.len(), data.corpus.num_posts());
        assert_eq!(data.corpus.num_time_slices(), 12);
        assert_eq!(data.corpus.vocab_size(), 120);
        assert!(data.graph.num_edges() > 0);
        // Planted matrices are normalized.
        for i in 0..60 {
            assert!((data.truth.pi_row(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        for cc in 0..3 {
            assert!((data.truth.theta_row(cc).iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for kk in 0..3 {
                assert!((data.truth.psi_row(kk, cc).iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
        }
        for kk in 0..3 {
            assert!((data.truth.phi_row(kk).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&WorldConfig::tiny(), 7);
        let b = generate(&WorldConfig::tiny(), 7);
        assert_eq!(a.corpus.num_posts(), b.corpus.num_posts());
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.truth.pi, b.truth.pi);
        assert_eq!(a.cascades.len(), b.cascades.len());
        let c = generate(&WorldConfig::tiny(), 8);
        assert_ne!(a.truth.pi, c.truth.pi);
    }

    #[test]
    fn links_respect_block_structure() {
        let data = generate(&WorldConfig::tiny(), 11);
        let truth = &data.truth;
        let c = truth.num_communities as u32;
        // Three planted link categories: intra-community, the directed
        // weak-tie channel c -> c+1, and everything else.
        let (mut intra, mut channel, mut other) = (0usize, 0usize, 0usize);
        for (s, t) in data.graph.edges() {
            let cs = truth.primary_community[s as usize];
            let ct = truth.primary_community[t as usize];
            if cs == ct {
                intra += 1;
            } else if ct == (cs + 1) % c {
                channel += 1;
            } else {
                other += 1;
            }
        }
        assert!(intra > other, "intra {intra} vs other {other}");
        assert!(channel > other, "channel {channel} vs other {other}");
    }

    #[test]
    fn topic_words_come_from_their_block() {
        let data = generate(&WorldConfig::tiny(), 13);
        // For each post, most words should carry the topic's block prefix.
        let mut hits = 0usize;
        let mut total = 0usize;
        for (d, post) in data.corpus.posts().iter().enumerate() {
            let (_, k) = data.truth.post_assignments[d];
            let name = &data.truth.topic_names[k as usize];
            for &w in &post.words {
                total += 1;
                if data.corpus.vocab().word(w).starts_with(name.as_str()) {
                    hits += 1;
                }
            }
        }
        let frac = hits as f64 / total as f64;
        assert!(frac > 0.6, "topical word fraction {frac}");
    }

    #[test]
    fn cascades_are_well_formed_and_follow_zeta() {
        let data = generate(&WorldConfig::tiny(), 17);
        assert!(!data.cascades.is_empty());
        for tuple in &data.cascades {
            assert!(tuple.audience() > 0);
            let followers: std::collections::HashSet<u32> = data
                .graph
                .out_neighbors(tuple.publisher)
                .iter()
                .copied()
                .collect();
            for r in tuple.retweeters.iter().chain(&tuple.ignorers) {
                assert!(followers.contains(r), "non-follower in tuple");
            }
            assert_eq!(
                data.corpus.post(tuple.post).author,
                tuple.publisher,
                "tuple post must belong to the publisher"
            );
        }
    }

    #[test]
    fn poisson_mean_is_respected() {
        let mut rng = seeded_rng(23);
        for &mean in &[2.0f64, 8.0, 50.0] {
            let n = 20_000;
            let total: usize = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let emp = total as f64 / n as f64;
            assert!((emp - mean).abs() < 0.05 * mean + 0.1, "{emp} vs {mean}");
        }
    }
}
