//! The planted ground truth behind a generated dataset.

use serde::{Deserialize, Serialize};

/// Names for the synthetic topical word blocks; cycled when `K` exceeds the
/// list. These make Fig. 8-style word-cloud output readable.
pub const TOPIC_NAMES: &[&str] = &[
    "sports",
    "movies",
    "music",
    "politics",
    "technology",
    "food",
    "travel",
    "finance",
    "fashion",
    "science",
    "gaming",
    "weather",
    "health",
    "education",
    "traffic",
    "literature",
];

/// The parameters Alg. 1 was executed with.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Number of communities `C*`.
    pub num_communities: usize,
    /// Number of topics `K*`.
    pub num_topics: usize,
    /// Number of time slices `T`.
    pub num_time_slices: usize,
    /// Vocabulary size `V`.
    pub vocab_size: usize,
    /// Planted user memberships `π`, row-major `U×C`.
    pub pi: Vec<f64>,
    /// Primary (arg-max) community per user.
    pub primary_community: Vec<u32>,
    /// Planted community interests `θ`, row-major `C×K`.
    pub theta: Vec<f64>,
    /// Planted inter-community strengths `η`, row-major `C×C`.
    pub eta: Vec<f64>,
    /// Planted topic-word distributions `φ`, row-major `K×V`.
    pub phi: Vec<f64>,
    /// Planted temporal profiles `ψ`, row-major `C×K×T`.
    pub psi: Vec<f64>,
    /// Human-readable name of each topic's word block.
    pub topic_names: Vec<String>,
    /// True `(community, topic)` assignment of every generated post.
    pub post_assignments: Vec<(u32, u32)>,
}

impl GroundTruth {
    /// Planted `θ_c` row.
    pub fn theta_row(&self, community: usize) -> &[f64] {
        &self.theta[community * self.num_topics..(community + 1) * self.num_topics]
    }

    /// Planted `π_i` row.
    pub fn pi_row(&self, user: u32) -> &[f64] {
        &self.pi[user as usize * self.num_communities..(user as usize + 1) * self.num_communities]
    }

    /// Planted `φ_k` row.
    pub fn phi_row(&self, topic: usize) -> &[f64] {
        &self.phi[topic * self.vocab_size..(topic + 1) * self.vocab_size]
    }

    /// Planted `ψ_kc` row.
    pub fn psi_row(&self, topic: usize, community: usize) -> &[f64] {
        let base = (community * self.num_topics + topic) * self.num_time_slices;
        &self.psi[base..base + self.num_time_slices]
    }

    /// Planted `η_cc'`.
    pub fn eta_at(&self, c: usize, c2: usize) -> f64 {
        self.eta[c * self.num_communities + c2]
    }

    /// Ground-truth topic-sensitive influence `ζ_kcc'` (Eq. 4 applied to the
    /// planted parameters) — the quantity the cascades are replayed through.
    pub fn zeta(&self, topic: usize, c: usize, c2: usize) -> f64 {
        self.theta_row(c)[topic] * self.theta_row(c2)[topic] * self.eta_at(c, c2)
    }

    /// True per-post topics, for recovery scoring.
    pub fn post_topics(&self) -> Vec<u32> {
        self.post_assignments.iter().map(|&(_, k)| k).collect()
    }

    /// True per-post communities.
    pub fn post_communities(&self) -> Vec<u32> {
        self.post_assignments.iter().map(|&(c, _)| c).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_truth() -> GroundTruth {
        GroundTruth {
            num_communities: 2,
            num_topics: 2,
            num_time_slices: 3,
            vocab_size: 4,
            pi: vec![0.9, 0.1, 0.2, 0.8],
            primary_community: vec![0, 1],
            theta: vec![0.7, 0.3, 0.4, 0.6],
            eta: vec![0.5, 0.1, 0.2, 0.6],
            phi: vec![0.4, 0.4, 0.1, 0.1, 0.1, 0.1, 0.4, 0.4],
            psi: vec![
                // c=0: k=0, k=1
                0.8, 0.1, 0.1, 0.2, 0.6, 0.2, // c=1
                0.1, 0.8, 0.1, 0.2, 0.2, 0.6,
            ],
            topic_names: vec!["sports".into(), "movies".into()],
            post_assignments: vec![(0, 0), (1, 1), (0, 1)],
        }
    }

    #[test]
    fn row_accessors_slice_correctly() {
        let t = tiny_truth();
        assert_eq!(t.pi_row(1), &[0.2, 0.8]);
        assert_eq!(t.theta_row(1), &[0.4, 0.6]);
        assert_eq!(t.phi_row(1), &[0.1, 0.1, 0.4, 0.4]);
        assert_eq!(t.psi_row(1, 0), &[0.2, 0.6, 0.2]);
        assert_eq!(t.psi_row(0, 1), &[0.1, 0.8, 0.1]);
        assert_eq!(t.eta_at(0, 1), 0.1);
    }

    #[test]
    fn zeta_matches_eq4() {
        let t = tiny_truth();
        let z = t.zeta(0, 0, 1);
        assert!((z - 0.7 * 0.4 * 0.1).abs() < 1e-12);
    }

    #[test]
    fn post_label_projections() {
        let t = tiny_truth();
        assert_eq!(t.post_topics(), vec![0, 1, 1]);
        assert_eq!(t.post_communities(), vec![0, 1, 0]);
    }
}
