//! Synthetic social-media dataset substrate.
//!
//! The paper evaluates on two crawled Sina Weibo datasets that are not
//! publicly available. This crate substitutes a **planted-truth generator**
//! that executes the paper's own generative process (Alg. 1) with
//! controlled, realistic structure:
//!
//! * a Zipfian vocabulary partitioned into named topical word blocks
//!   (so Fig. 8's word clouds have recognizable subjects);
//! * overlapping communities with 1–2 dominant interests each and
//!   mixed-membership users;
//! * **bursty, community-lagged temporal profiles**: each topic bursts
//!   earliest inside its highly-interested communities and `lag` slices
//!   later elsewhere — the ground truth behind the Fig. 7 time-lag finding;
//! * a block-structured interaction network with asymmetric influence
//!   (some communities are net exporters of attention, as in Fig. 5);
//! * **retweet cascades** replayed through the ground-truth topic-sensitive
//!   influence `ζ_kcc' = θ_ck θ_c'k η_cc'`, yielding the labelled
//!   `(i, d, U_id, Ū_id)` tuples the diffusion-prediction evaluation needs
//!   (Fig. 12), with controllable behavioural noise.
//!
//! Because every evaluated quantity is defined with respect to the data-
//! generating process, relative model comparisons on this substrate
//! exercise the same code paths and stress the same modeling assumptions as
//! the paper's crawled data.

// Latent-variable code indexes parallel flat arrays by semantically
// meaningful ids (community c, topic k, user i); iterator rewrites of
// those loops obscure the math they mirror.
#![allow(clippy::needless_range_loop)]

pub mod cascade;
pub mod generator;
pub mod truth;
pub mod world;

pub use cascade::RetweetTuple;
pub use generator::generate;
pub use truth::GroundTruth;
pub use world::{SocialDataset, WorldConfig};
