//! Retweet-cascade materialization.
//!
//! For a sampled fraction of posts the generator replays the diffusion
//! decision of every follower through the planted topic-sensitive influence
//! `ζ` (Eq. 4), producing the labelled tuples
//! `RT_id = (i, d, U_id, Ū_id)` the diffusion-prediction evaluation of
//! §6.3 ranks (Fig. 12).

use serde::{Deserialize, Serialize};

/// One labelled retweet tuple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetweetTuple {
    /// The publisher `i`.
    pub publisher: u32,
    /// The post id `d` (indexes the dataset's corpus).
    pub post: u32,
    /// Followers who retweeted (`U_id`).
    pub retweeters: Vec<u32>,
    /// Followers who saw and ignored the post (`Ū_id`).
    pub ignorers: Vec<u32>,
}

impl RetweetTuple {
    /// Whether the tuple can contribute to an AUC (needs both classes).
    pub fn is_scorable(&self) -> bool {
        !self.retweeters.is_empty() && !self.ignorers.is_empty()
    }

    /// Total followers that saw the post.
    pub fn audience(&self) -> usize {
        self.retweeters.len() + self.ignorers.len()
    }
}

/// Split tuples into train/test by index parity of a shuffled order — the
/// 20% hold-out of §6.3.
pub fn split_tuples<R: rand::Rng>(
    rng: &mut R,
    tuples: &[RetweetTuple],
    test_fraction: f64,
) -> (Vec<RetweetTuple>, Vec<RetweetTuple>) {
    use rand::seq::SliceRandom;
    assert!((0.0..1.0).contains(&test_fraction));
    let mut order: Vec<usize> = (0..tuples.len()).collect();
    order.shuffle(rng);
    let test_count = (tuples.len() as f64 * test_fraction).round() as usize;
    let (test_idx, train_idx) = order.split_at(test_count);
    let take = |idx: &[usize]| idx.iter().map(|&i| tuples[i].clone()).collect::<Vec<_>>();
    (take(train_idx), take(test_idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_math::rng::seeded_rng;

    fn tuples(n: usize) -> Vec<RetweetTuple> {
        (0..n)
            .map(|i| RetweetTuple {
                publisher: i as u32,
                post: i as u32,
                retweeters: if i % 3 == 0 { vec![1] } else { vec![] },
                ignorers: vec![2, 3],
            })
            .collect()
    }

    #[test]
    fn scorability_requires_both_classes() {
        let ts = tuples(4);
        assert!(ts[0].is_scorable());
        assert!(!ts[1].is_scorable());
        assert_eq!(ts[0].audience(), 3);
    }

    #[test]
    fn split_partitions_tuples() {
        let ts = tuples(20);
        let mut rng = seeded_rng(3);
        let (train, test) = split_tuples(&mut rng, &ts, 0.2);
        assert_eq!(test.len(), 4);
        assert_eq!(train.len() + test.len(), 20);
        // No tuple lost or duplicated: publishers are unique ids here.
        let mut all: Vec<u32> = train.iter().chain(&test).map(|t| t.publisher).collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }
}
