//! Dataset container and generation parameters.

use crate::cascade::RetweetTuple;
use crate::truth::GroundTruth;
use cold_graph::CsrGraph;
use cold_text::Corpus;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic world.
///
/// The defaults describe a laptop-scale analogue of the paper's Dataset 1;
/// [`WorldConfig::scaled`] shrinks or grows every size-like knob together
/// for the Fig. 13a scaling sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of users `U`.
    pub num_users: u32,
    /// Number of planted communities `C*`.
    pub num_communities: usize,
    /// Number of planted topics `K*`.
    pub num_topics: usize,
    /// Number of time slices `T`.
    pub num_time_slices: u16,
    /// Vocabulary size `V`.
    pub vocab_size: usize,
    /// Mean posts per user (geometric-ish spread around the mean).
    pub posts_per_user: f64,
    /// Mean words per post.
    pub words_per_post: f64,
    /// Candidate partners examined per user when wiring links.
    pub link_candidates_per_user: usize,
    /// Intra-community link probability (`η` diagonal scale).
    pub eta_intra: f64,
    /// Inter-community link probability (`η` off-diagonal scale).
    pub eta_inter: f64,
    /// Strength of the directed weak-tie channel `c → c+1`, as a fraction
    /// of `eta_intra`. The "strength of weak ties" structure the paper
    /// builds on; 0 disables it.
    pub weak_tie_strength: f64,
    /// Concentration of user memberships: fraction of `π_i` mass on the
    /// user's primary community (the rest is spread by a Dirichlet draw).
    pub membership_focus: f64,
    /// Fraction of `θ_c` mass on the community's 1–2 dominant topics.
    pub interest_focus: f64,
    /// Time-slice lag of a topic's burst in medium-interested communities
    /// relative to highly-interested ones (the Fig. 7 ground truth).
    pub burst_lag: u16,
    /// Width (std dev, in slices) of each topical burst.
    pub burst_width: f64,
    /// Fraction of words drawn uniformly from the whole vocabulary instead
    /// of the post's topic (lexical noise).
    pub word_noise: f64,
    /// Probability that a follower's retweet decision is flipped at random
    /// (behavioural noise in the cascades).
    pub retweet_noise: f64,
    /// Scale factor applied to the ground-truth `ζ` when converting it to a
    /// per-follower retweet probability.
    pub retweet_amplification: f64,
    /// Fraction of posts for which a retweet tuple is materialized.
    pub cascade_fraction: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            num_users: 400,
            num_communities: 8,
            num_topics: 8,
            num_time_slices: 24,
            vocab_size: 1_200,
            posts_per_user: 20.0,
            words_per_post: 8.0,
            link_candidates_per_user: 60,
            eta_intra: 0.35,
            eta_inter: 0.02,
            weak_tie_strength: 0.45,
            membership_focus: 0.75,
            interest_focus: 0.75,
            burst_lag: 4,
            burst_width: 1.5,
            word_noise: 0.10,
            retweet_noise: 0.05,
            retweet_amplification: 4.0,
            cascade_fraction: 0.25,
        }
    }
}

impl WorldConfig {
    /// A tiny world for unit tests (hundreds of posts, trains in
    /// milliseconds even in debug builds).
    pub fn tiny() -> Self {
        Self {
            num_users: 60,
            num_communities: 3,
            num_topics: 3,
            num_time_slices: 12,
            vocab_size: 120,
            posts_per_user: 8.0,
            words_per_post: 6.0,
            link_candidates_per_user: 25,
            ..Self::default()
        }
    }

    /// Scale every size-like knob by `factor` (users, vocabulary, posts,
    /// link candidates), keeping the latent structure fixed — the workload
    /// series for the Fig. 13a scaling experiment.
    pub fn scaled(&self, factor: f64) -> Self {
        let mut c = self.clone();
        c.num_users = ((self.num_users as f64 * factor).round() as u32).max(10);
        c.vocab_size = ((self.vocab_size as f64 * factor).round() as usize).max(50);
        c.posts_per_user = self.posts_per_user; // per-user volume fixed
        c
    }

    /// Basic sanity constraints.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_users < 2 {
            return Err("need at least two users".into());
        }
        if self.num_communities == 0 || self.num_topics == 0 {
            return Err("need at least one community and one topic".into());
        }
        if self.vocab_size < self.num_topics {
            return Err("vocabulary must be at least as large as the topic count".into());
        }
        if self.num_time_slices == 0 {
            return Err("need at least one time slice".into());
        }
        for (name, v, lo, hi) in [
            ("membership_focus", self.membership_focus, 0.0, 1.0),
            ("interest_focus", self.interest_focus, 0.0, 1.0),
            ("word_noise", self.word_noise, 0.0, 1.0),
            ("retweet_noise", self.retweet_noise, 0.0, 0.5),
            ("cascade_fraction", self.cascade_fraction, 0.0, 1.0),
            ("eta_intra", self.eta_intra, 0.0, 1.0),
            ("eta_inter", self.eta_inter, 0.0, 1.0),
            ("weak_tie_strength", self.weak_tie_strength, 0.0, 1.0),
        ] {
            if !(lo..=hi).contains(&v) {
                return Err(format!("{name} = {v} outside [{lo}, {hi}]"));
            }
        }
        Ok(())
    }
}

/// A complete generated dataset: text + network + cascades + planted truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SocialDataset {
    /// The time-stamped post collection.
    pub corpus: Corpus,
    /// The interaction network (link `(i, i')` = `i'` consumes from `i`).
    pub graph: CsrGraph,
    /// Labelled retweet tuples for diffusion-prediction evaluation.
    pub cascades: Vec<RetweetTuple>,
    /// The planted parameters the generator sampled from.
    pub truth: GroundTruth,
}

impl SocialDataset {
    /// Human-readable one-line summary (dataset reports, bench logs).
    pub fn summary(&self) -> String {
        format!(
            "{} users, {} links, {} posts, {} tokens, {} cascade tuples, V={}, T={}",
            self.corpus.num_users(),
            self.graph.num_edges(),
            self.corpus.num_posts(),
            self.corpus.num_tokens(),
            self.cascades.len(),
            self.corpus.vocab_size(),
            self.corpus.num_time_slices(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        WorldConfig::default().validate().unwrap();
        WorldConfig::tiny().validate().unwrap();
    }

    #[test]
    fn scaling_moves_size_knobs_only() {
        let base = WorldConfig::default();
        let half = base.scaled(0.5);
        assert_eq!(half.num_users, 200);
        assert_eq!(half.vocab_size, 600);
        assert_eq!(half.num_communities, base.num_communities);
        assert_eq!(half.num_topics, base.num_topics);
        half.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_ranges() {
        let mut c = WorldConfig::tiny();
        c.word_noise = 1.5;
        assert!(c.validate().is_err());
        let mut c = WorldConfig::tiny();
        c.num_users = 1;
        assert!(c.validate().is_err());
        let mut c = WorldConfig::tiny();
        c.vocab_size = 1;
        assert!(c.validate().is_err());
    }
}
