//! Trace-replay verification for the delta-sync and checkpoint protocols.
//!
//! [`ReplayModel`] is a pure state machine (no I/O) that consumes a
//! `cold-trace/v1` event stream — as recorded by a trace-enabled
//! [`cold_obs::Metrics`] handle — and checks every event against the
//! protocol's preconditions plus a set of global invariants:
//!
//! - **Delta conservation**: within each `delta`-synced superstep, the
//!   per-family counter sums observed at the barrier equal the sums at
//!   superstep begin plus the nets announced by every shard (including the
//!   derived mirrors `n_vk` ← `n_kv` and `n_post_k` ← `n_ck`).
//! - **Apply-order determinism**: every announced delta is applied exactly
//!   once, in ascending shard order, within the superstep that announced
//!   it, with a byte digest matching its announcement.
//! - **Checkpoint monotonicity**: within a process segment, checkpoint
//!   writes advance strictly in sweep order past the resume point.
//! - **Retention safety**: retention never deletes the newest live
//!   (written, not removed, not corrupt) checkpoint.
//! - **Resume soundness**: a resume consumes exactly one prior load, the
//!   load targets a file that is neither retired nor known-corrupt, and
//!   the loaded bytes digest-match what was written.
//!
//! Crash/resume runs record one trace segment per process; chain the
//! segments (in order) into a single event slice before verifying, so the
//! model can carry checkpoint knowledge across the crash.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use cold_obs::trace::TraceEvent;

pub mod fault;
pub mod synth;

/// The nine counter families carried per shard inside a `CountDelta`.
pub const DELTA_FAMILIES: [&str; 9] = [
    "n_ic", "n_i", "n_ck", "n_c", "n_ckt", "n_kv", "n_k", "n_cc", "n0_cc",
];

/// All eleven counter families summed at superstep boundaries.
pub const STATE_FAMILIES: [&str; 11] = [
    "n_ic", "n_i", "n_ck", "n_c", "n_ckt", "n_kv", "n_vk", "n_k", "n_post_k", "n_cc", "n0_cc",
];

/// Mirror stores that are not shipped in deltas but must track a shipped
/// family exactly: `(mirror, source)`.
pub const DERIVED_FAMILIES: [(&str, &str); 2] = [("n_vk", "n_kv"), ("n_post_k", "n_ck")];

/// What a trace did wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Structurally bad event: missing/mistyped field, inconsistent
    /// summary, or unknown sync label.
    Malformed,
    /// An event kind the `cold-trace/v1` protocol does not define.
    UnknownEvent,
    /// An event arrived in a state that forbids it (superstep already
    /// open, checkpoint op inside a superstep, unconsumed load, …).
    UnexpectedEvent,
    /// A superstep boundary carries the wrong sweep number.
    EpochMismatch,
    /// The shard count changed mid-run without a resume.
    ShardMismatch,
    /// A delta event names a shard outside the partition.
    UnknownShard,
    /// A shard announced two deltas in one superstep.
    DuplicateDelta,
    /// A delta event carries a sweep number from a different (stale) epoch.
    StaleEpoch,
    /// An apply for a shard that never announced a delta this superstep.
    UnannouncedApply,
    /// A shard's delta was applied twice in one superstep.
    DuplicateApply,
    /// Applies departed from ascending shard order.
    ApplyOrder,
    /// A shard never announced a delta in a `delta`-synced superstep.
    MissingDelta,
    /// An announced delta was never applied before the barrier closed.
    UnappliedDelta,
    /// An apply's or load's digest does not match the recorded bytes.
    DigestMismatch,
    /// Per-family sums at the barrier do not equal begin + announced nets.
    Conservation,
    /// A checkpoint write did not advance past the segment's floor.
    CkptMonotonicity,
    /// Retention removed a checkpoint the trace never saw written (or
    /// removed one twice).
    RetentionUnknown,
    /// Retention removed the newest live checkpoint.
    RetentionNewest,
    /// A load targeted a checkpoint previously skipped as corrupt.
    CorruptLoad,
    /// A load targeted a checkpoint that retention had removed.
    RetiredLoad,
    /// A resume without a matching pending load.
    ResumeMismatch,
    /// The trace ended mid-superstep or with an unconsumed load.
    TruncatedTrace,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One rejected event, with the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Sequence number of the offending event (per-segment numbering).
    pub seq: u64,
    /// The invariant or precondition that failed.
    pub kind: ViolationKind,
    /// Human-readable evidence.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq {}: {}: {}", self.seq, self.kind, self.detail)
    }
}

/// What a clean replay covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Report {
    /// Events consumed.
    pub events: usize,
    /// Completed supersteps (begin/end pairs).
    pub supersteps: usize,
    /// Shard delta announcements checked.
    pub deltas: usize,
    /// Delta applies checked.
    pub applies: usize,
    /// Checkpoint writes observed.
    pub checkpoints: usize,
    /// Checkpoint loads observed.
    pub loads: usize,
    /// Resumes observed.
    pub resumes: usize,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events: {} supersteps, {} deltas announced, {} applied, \
             {} checkpoints, {} loads, {} resumes",
            self.events,
            self.supersteps,
            self.deltas,
            self.applies,
            self.checkpoints,
            self.loads,
            self.resumes
        )
    }
}

struct DeltaSummary {
    digest: u64,
    nets: BTreeMap<String, i64>,
}

struct OpenSuperstep {
    sweep: u64,
    shards: u64,
    sync: String,
    begin_sums: BTreeMap<String, u64>,
    announced: BTreeMap<u64, DeltaSummary>,
    applied: BTreeSet<u64>,
    last_applied: Option<u64>,
}

/// The replay state machine. Feed events with [`ReplayModel::apply`]; the
/// first violation ends the replay. Call [`ReplayModel::finish`] after the
/// last event to check end-of-trace invariants and obtain the [`Report`].
#[derive(Default)]
pub struct ReplayModel {
    shards: Option<u64>,
    expected_sweep: Option<u64>,
    open: Option<OpenSuperstep>,
    /// Checkpoint digests by sweep, as written during the trace.
    written: BTreeMap<u64, u64>,
    removed: BTreeSet<u64>,
    corrupt: BTreeSet<u64>,
    /// Highest sweep durably written or resumed-from in the current
    /// process segment; writes must move strictly past it.
    segment_floor: Option<u64>,
    pending_load: Option<u64>,
    report: Report,
}

fn violation(ev: &TraceEvent, kind: ViolationKind, detail: impl Into<String>) -> Violation {
    Violation {
        seq: ev.seq,
        kind,
        detail: detail.into(),
    }
}

fn req_uint(ev: &TraceEvent, name: &str) -> Result<u64, Violation> {
    ev.uint(name).ok_or_else(|| {
        violation(
            ev,
            ViolationKind::Malformed,
            format!("{} missing uint field \"{name}\"", ev.kind),
        )
    })
}

fn req_int(ev: &TraceEvent, name: &str) -> Result<i64, Violation> {
    ev.int(name).ok_or_else(|| {
        violation(
            ev,
            ViolationKind::Malformed,
            format!("{} missing int field \"{name}\"", ev.kind),
        )
    })
}

fn req_hex(ev: &TraceEvent, name: &str) -> Result<u64, Violation> {
    ev.hex(name).ok_or_else(|| {
        violation(
            ev,
            ViolationKind::Malformed,
            format!("{} missing hex field \"{name}\"", ev.kind),
        )
    })
}

fn req_str<'e>(ev: &'e TraceEvent, name: &str) -> Result<&'e str, Violation> {
    ev.str_field(name).ok_or_else(|| {
        violation(
            ev,
            ViolationKind::Malformed,
            format!("{} missing string field \"{name}\"", ev.kind),
        )
    })
}

impl ReplayModel {
    /// A fresh model, expecting the first event of a trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume one event; `Err` means the trace violated the protocol.
    pub fn apply(&mut self, ev: &TraceEvent) -> Result<(), Violation> {
        self.report.events += 1;
        match ev.kind.as_str() {
            "superstep_begin" => self.superstep_begin(ev),
            "superstep_end" => self.superstep_end(ev),
            "shard_delta" => self.shard_delta(ev),
            "delta_apply" => self.delta_apply(ev),
            "ckpt_write" => self.ckpt_write(ev),
            "ckpt_retain" => self.ckpt_retain(ev),
            "ckpt_skip" => self.ckpt_skip(ev),
            "ckpt_load" => self.ckpt_load(ev),
            "resume" => self.resume(ev),
            other => Err(violation(
                ev,
                ViolationKind::UnknownEvent,
                format!("\"{other}\" is not a cold-trace/v1 event"),
            )),
        }
    }

    /// Check end-of-trace invariants and return the coverage report.
    pub fn finish(self) -> Result<Report, Violation> {
        if let Some(open) = &self.open {
            return Err(Violation {
                seq: u64::MAX,
                kind: ViolationKind::TruncatedTrace,
                detail: format!("trace ends inside superstep {}", open.sweep),
            });
        }
        if let Some(sweep) = self.pending_load {
            return Err(Violation {
                seq: u64::MAX,
                kind: ViolationKind::TruncatedTrace,
                detail: format!("checkpoint for sweep {sweep} loaded but never resumed"),
            });
        }
        Ok(self.report)
    }

    fn superstep_begin(&mut self, ev: &TraceEvent) -> Result<(), Violation> {
        if let Some(open) = &self.open {
            return Err(violation(
                ev,
                ViolationKind::UnexpectedEvent,
                format!("superstep {} is still open", open.sweep),
            ));
        }
        if let Some(pending) = self.pending_load {
            return Err(violation(
                ev,
                ViolationKind::UnexpectedEvent,
                format!("checkpoint load for sweep {pending} not consumed by a resume"),
            ));
        }
        let sweep = req_uint(ev, "sweep")?;
        let shards = req_uint(ev, "shards")?;
        let sync = req_str(ev, "sync")?.to_owned();
        if !matches!(sync.as_str(), "seq" | "clone" | "delta") {
            return Err(violation(
                ev,
                ViolationKind::Malformed,
                format!("unknown sync mode \"{sync}\""),
            ));
        }
        if let Some(expected) = self.expected_sweep {
            if sweep != expected {
                return Err(violation(
                    ev,
                    ViolationKind::EpochMismatch,
                    format!("superstep_begin sweep {sweep}, expected {expected}"),
                ));
            }
        }
        match self.shards {
            Some(known) if known != shards => {
                return Err(violation(
                    ev,
                    ViolationKind::ShardMismatch,
                    format!("shard count changed {known} -> {shards} without a resume"),
                ));
            }
            _ => self.shards = Some(shards),
        }
        let mut begin_sums = BTreeMap::new();
        for fam in STATE_FAMILIES {
            begin_sums.insert(fam.to_owned(), req_uint(ev, &format!("sum_{fam}"))?);
        }
        self.expected_sweep = Some(sweep);
        self.open = Some(OpenSuperstep {
            sweep,
            shards,
            sync,
            begin_sums,
            announced: BTreeMap::new(),
            applied: BTreeSet::new(),
            last_applied: None,
        });
        Ok(())
    }

    fn shard_delta(&mut self, ev: &TraceEvent) -> Result<(), Violation> {
        let sweep = req_uint(ev, "sweep")?;
        let shard = req_uint(ev, "shard")?;
        let cells = req_uint(ev, "cells")?;
        req_uint(ev, "bytes")?;
        let digest = req_hex(ev, "digest")?;
        let mut nets = BTreeMap::new();
        let mut cell_total = 0u64;
        for fam in DELTA_FAMILIES {
            cell_total += req_uint(ev, &format!("cells_{fam}"))?;
            nets.insert(fam.to_owned(), req_int(ev, &format!("net_{fam}"))?);
        }
        if cell_total != cells {
            return Err(violation(
                ev,
                ViolationKind::Malformed,
                format!("per-family cells sum to {cell_total}, summary says {cells}"),
            ));
        }
        let open = self.open.as_mut().ok_or_else(|| {
            violation(
                ev,
                ViolationKind::UnexpectedEvent,
                "shard_delta outside any superstep",
            )
        })?;
        if open.sync != "delta" {
            return Err(violation(
                ev,
                ViolationKind::UnexpectedEvent,
                format!("shard_delta in a \"{}\"-synced superstep", open.sync),
            ));
        }
        if sweep != open.sweep {
            return Err(violation(
                ev,
                ViolationKind::StaleEpoch,
                format!(
                    "delta for sweep {sweep} announced in superstep {}",
                    open.sweep
                ),
            ));
        }
        if shard >= open.shards {
            return Err(violation(
                ev,
                ViolationKind::UnknownShard,
                format!("shard {shard} outside partition of {}", open.shards),
            ));
        }
        if open.announced.contains_key(&shard) {
            return Err(violation(
                ev,
                ViolationKind::DuplicateDelta,
                format!("shard {shard} already announced a delta for sweep {sweep}"),
            ));
        }
        open.announced.insert(shard, DeltaSummary { digest, nets });
        self.report.deltas += 1;
        Ok(())
    }

    fn delta_apply(&mut self, ev: &TraceEvent) -> Result<(), Violation> {
        let sweep = req_uint(ev, "sweep")?;
        let shard = req_uint(ev, "shard")?;
        let digest = req_hex(ev, "digest")?;
        let open = self.open.as_mut().ok_or_else(|| {
            violation(
                ev,
                ViolationKind::UnexpectedEvent,
                "delta_apply outside any superstep",
            )
        })?;
        if sweep != open.sweep {
            return Err(violation(
                ev,
                ViolationKind::StaleEpoch,
                format!(
                    "apply for sweep {sweep} replayed in superstep {}",
                    open.sweep
                ),
            ));
        }
        let summary = open.announced.get(&shard).ok_or_else(|| {
            violation(
                ev,
                ViolationKind::UnannouncedApply,
                format!("shard {shard} applied without announcing a delta"),
            )
        })?;
        if open.applied.contains(&shard) {
            return Err(violation(
                ev,
                ViolationKind::DuplicateApply,
                format!("shard {shard} delta applied twice in sweep {sweep}"),
            ));
        }
        if let Some(last) = open.last_applied {
            if shard <= last {
                return Err(violation(
                    ev,
                    ViolationKind::ApplyOrder,
                    format!("shard {shard} applied after shard {last}; order must ascend"),
                ));
            }
        }
        if summary.digest != digest {
            return Err(violation(
                ev,
                ViolationKind::DigestMismatch,
                format!(
                    "shard {shard} applied digest {digest:016x}, announced {:016x}",
                    summary.digest
                ),
            ));
        }
        open.applied.insert(shard);
        open.last_applied = Some(shard);
        self.report.applies += 1;
        Ok(())
    }

    fn superstep_end(&mut self, ev: &TraceEvent) -> Result<(), Violation> {
        let sweep = req_uint(ev, "sweep")?;
        let shards = req_uint(ev, "shards")?;
        let sync = req_str(ev, "sync")?;
        let open = self.open.as_ref().ok_or_else(|| {
            violation(
                ev,
                ViolationKind::UnexpectedEvent,
                "superstep_end without a matching begin",
            )
        })?;
        if sweep != open.sweep {
            return Err(violation(
                ev,
                ViolationKind::EpochMismatch,
                format!(
                    "superstep_end sweep {sweep}, open superstep is {}",
                    open.sweep
                ),
            ));
        }
        if shards != open.shards || sync != open.sync {
            return Err(violation(
                ev,
                ViolationKind::Malformed,
                format!(
                    "superstep_end ({shards} shards, \"{sync}\") disagrees with begin \
                     ({} shards, \"{}\")",
                    open.shards, open.sync
                ),
            ));
        }
        if open.sync == "delta" {
            if open.announced.len() as u64 != open.shards {
                let missing: Vec<u64> = (0..open.shards)
                    .filter(|s| !open.announced.contains_key(s))
                    .collect();
                return Err(violation(
                    ev,
                    ViolationKind::MissingDelta,
                    format!("shards {missing:?} never announced a delta for sweep {sweep}"),
                ));
            }
            if open.applied.len() != open.announced.len() {
                let unapplied: Vec<u64> = open
                    .announced
                    .keys()
                    .filter(|s| !open.applied.contains(s))
                    .copied()
                    .collect();
                return Err(violation(
                    ev,
                    ViolationKind::UnappliedDelta,
                    format!("deltas from shards {unapplied:?} never applied in sweep {sweep}"),
                ));
            }
            // Conservation: end sum == begin sum + Σ announced nets, per
            // family, including the derived mirror stores.
            let net_of = |fam: &str| -> i128 {
                open.announced
                    .values()
                    .map(|d| d.nets.get(fam).copied().unwrap_or(0) as i128)
                    .sum()
            };
            let mut expected_net: BTreeMap<&str, i128> =
                DELTA_FAMILIES.iter().map(|f| (*f, net_of(f))).collect();
            for (mirror, source) in DERIVED_FAMILIES {
                expected_net.insert(mirror, net_of(source));
            }
            for fam in STATE_FAMILIES {
                let begin = open.begin_sums[fam] as i128;
                let end = req_uint(ev, &format!("sum_{fam}"))? as i128;
                let net = expected_net[fam];
                if begin + net != end {
                    return Err(violation(
                        ev,
                        ViolationKind::Conservation,
                        format!(
                            "family {fam}: begin {begin} + announced net {net} = {} \
                             but barrier observed {end}",
                            begin + net
                        ),
                    ));
                }
            }
        }
        self.open = None;
        self.expected_sweep = Some(sweep + 1);
        self.report.supersteps += 1;
        Ok(())
    }

    fn no_open_superstep(&self, ev: &TraceEvent) -> Result<(), Violation> {
        match &self.open {
            Some(open) => Err(violation(
                ev,
                ViolationKind::UnexpectedEvent,
                format!("{} inside open superstep {}", ev.kind, open.sweep),
            )),
            None => Ok(()),
        }
    }

    fn ckpt_write(&mut self, ev: &TraceEvent) -> Result<(), Violation> {
        self.no_open_superstep(ev)?;
        let sweep = req_uint(ev, "sweep")?;
        req_uint(ev, "bytes")?;
        let digest = req_hex(ev, "digest")?;
        if let Some(floor) = self.segment_floor {
            if sweep <= floor {
                return Err(violation(
                    ev,
                    ViolationKind::CkptMonotonicity,
                    format!("checkpoint write at sweep {sweep} does not advance past {floor}"),
                ));
            }
        }
        self.written.insert(sweep, digest);
        self.removed.remove(&sweep);
        self.corrupt.remove(&sweep);
        self.segment_floor = Some(sweep);
        self.report.checkpoints += 1;
        Ok(())
    }

    fn ckpt_retain(&mut self, ev: &TraceEvent) -> Result<(), Violation> {
        let sweep = req_uint(ev, "sweep")?;
        if !self.written.contains_key(&sweep) || self.removed.contains(&sweep) {
            return Err(violation(
                ev,
                ViolationKind::RetentionUnknown,
                format!("retention removed sweep {sweep}, which is not a live written checkpoint"),
            ));
        }
        let newest_live = self
            .written
            .keys()
            .filter(|s| !self.removed.contains(s) && !self.corrupt.contains(s))
            .max()
            .copied();
        if newest_live == Some(sweep) {
            return Err(violation(
                ev,
                ViolationKind::RetentionNewest,
                format!("retention removed sweep {sweep}, the newest valid checkpoint"),
            ));
        }
        self.removed.insert(sweep);
        Ok(())
    }

    fn ckpt_skip(&mut self, ev: &TraceEvent) -> Result<(), Violation> {
        let sweep = req_uint(ev, "sweep")?;
        // Corruption can strike any file (torn write, external damage), so
        // a skip is always admissible; it only narrows what may be loaded.
        self.corrupt.insert(sweep);
        Ok(())
    }

    fn ckpt_load(&mut self, ev: &TraceEvent) -> Result<(), Violation> {
        self.no_open_superstep(ev)?;
        if let Some(pending) = self.pending_load {
            return Err(violation(
                ev,
                ViolationKind::UnexpectedEvent,
                format!("load while the load for sweep {pending} is still unconsumed"),
            ));
        }
        let sweep = req_uint(ev, "sweep")?;
        let digest = req_hex(ev, "digest")?;
        req_uint(ev, "skipped")?;
        if self.removed.contains(&sweep) {
            return Err(violation(
                ev,
                ViolationKind::RetiredLoad,
                format!("loaded checkpoint for sweep {sweep}, which retention removed"),
            ));
        }
        if self.corrupt.contains(&sweep) {
            return Err(violation(
                ev,
                ViolationKind::CorruptLoad,
                format!("loaded checkpoint for sweep {sweep}, previously skipped as corrupt"),
            ));
        }
        if let Some(&written) = self.written.get(&sweep) {
            if written != digest {
                return Err(violation(
                    ev,
                    ViolationKind::DigestMismatch,
                    format!(
                        "loaded sweep {sweep} with digest {digest:016x}, \
                         but {written:016x} was written"
                    ),
                ));
            }
        }
        self.pending_load = Some(sweep);
        self.report.loads += 1;
        Ok(())
    }

    fn resume(&mut self, ev: &TraceEvent) -> Result<(), Violation> {
        self.no_open_superstep(ev)?;
        let sweep = req_uint(ev, "sweep")?;
        let shards = req_uint(ev, "shards")?;
        if self.pending_load != Some(sweep) {
            return Err(violation(
                ev,
                ViolationKind::ResumeMismatch,
                match self.pending_load {
                    Some(pending) => {
                        format!("resume at sweep {sweep}, but the loaded checkpoint is {pending}")
                    }
                    None => format!("resume at sweep {sweep} without a loaded checkpoint"),
                },
            ));
        }
        self.pending_load = None;
        self.expected_sweep = Some(sweep);
        self.shards = Some(shards);
        // A new process segment begins: writes must advance past the
        // resume point, but may legitimately rewrite sweeps the crashed
        // segment had reached.
        self.segment_floor = Some(sweep);
        self.report.resumes += 1;
        Ok(())
    }
}

/// Replay a full event slice through a fresh model.
pub fn verify(events: &[TraceEvent]) -> Result<Report, Violation> {
    let mut model = ReplayModel::new();
    for ev in events {
        model.apply(ev)?;
    }
    model.finish()
}

#[cfg(test)]
mod tests {
    use super::synth::SynthTrace;
    use super::*;
    use cold_obs::trace::{field, hex_digest, TraceValue};

    fn two_shard_trace() -> SynthTrace {
        let mut t = SynthTrace::new(2);
        t.superstep(&[
            vec![("n_ck", 3), ("n_kv", -1)],
            vec![("n_ck", -2), ("n_i", 4)],
        ]);
        t.superstep(&[vec![("n_cc", 1)], vec![("n_c", -1), ("n_kv", 2)]]);
        t
    }

    #[test]
    fn clean_synthetic_trace_verifies() {
        let mut t = two_shard_trace();
        t.checkpoint();
        t.superstep(&[vec![("n_k", 1)], vec![]]);
        let report = verify(&t.events()).unwrap();
        assert_eq!(report.supersteps, 3);
        assert_eq!(report.deltas, 6);
        assert_eq!(report.applies, 6);
        assert_eq!(report.checkpoints, 1);
    }

    #[test]
    fn crash_resume_chain_verifies() {
        let mut t = two_shard_trace();
        t.checkpoint();
        t.superstep(&[vec![("n_ic", 2)], vec![("n_ic", -1)]]);
        t.crash_and_resume();
        t.superstep(&[vec![("n_ic", 2)], vec![("n_ic", -1)]]);
        t.checkpoint();
        let report = verify(&t.events()).unwrap();
        assert_eq!(report.resumes, 1);
        assert_eq!(report.loads, 1);
        assert_eq!(report.checkpoints, 2);
    }

    #[test]
    fn retention_of_old_checkpoint_is_legal() {
        let mut t = two_shard_trace();
        t.checkpoint();
        t.superstep(&[vec![], vec![]]);
        t.checkpoint();
        let old = t.checkpoint_sweeps()[0];
        t.retain(old);
        verify(&t.events()).unwrap();
    }

    fn expect_kind(events: &[TraceEvent], kind: ViolationKind) {
        let err = verify(events).unwrap_err();
        assert_eq!(err.kind, kind, "got {err}");
    }

    #[test]
    fn conservation_violation_is_caught() {
        let mut events = two_shard_trace().events();
        let end = events
            .iter()
            .position(|e| e.kind == "superstep_end")
            .unwrap();
        let sum = events[end].uint("sum_n_ck").unwrap();
        events[end].set("sum_n_ck", TraceValue::Uint(sum + 1));
        expect_kind(&events, ViolationKind::Conservation);
    }

    #[test]
    fn derived_mirror_conservation_is_checked() {
        let mut events = two_shard_trace().events();
        let end = events
            .iter()
            .position(|e| e.kind == "superstep_end")
            .unwrap();
        let sum = events[end].uint("sum_n_vk").unwrap();
        events[end].set("sum_n_vk", TraceValue::Uint(sum + 1));
        expect_kind(&events, ViolationKind::Conservation);
    }

    #[test]
    fn dropped_announcement_is_caught() {
        let mut events = two_shard_trace().events();
        let i = events.iter().position(|e| e.kind == "shard_delta").unwrap();
        let (sweep, shard) = (events[i].uint("sweep"), events[i].uint("shard"));
        events.remove(i);
        events.retain(|e| {
            !(e.kind == "delta_apply" && e.uint("sweep") == sweep && e.uint("shard") == shard)
        });
        expect_kind(&events, ViolationKind::MissingDelta);
    }

    #[test]
    fn dropped_apply_is_caught() {
        let mut events = two_shard_trace().events();
        let i = events.iter().position(|e| e.kind == "delta_apply").unwrap();
        events.remove(i);
        expect_kind(&events, ViolationKind::UnappliedDelta);
    }

    #[test]
    fn duplicate_apply_is_caught() {
        let mut events = two_shard_trace().events();
        let i = events.iter().position(|e| e.kind == "delta_apply").unwrap();
        let dup = events[i].clone();
        events.insert(i + 1, dup);
        expect_kind(&events, ViolationKind::DuplicateApply);
    }

    #[test]
    fn reordered_applies_are_caught() {
        let mut events = two_shard_trace().events();
        let i = events.iter().position(|e| e.kind == "delta_apply").unwrap();
        events.swap(i, i + 1);
        expect_kind(&events, ViolationKind::ApplyOrder);
    }

    #[test]
    fn apply_digest_mismatch_is_caught() {
        let mut events = two_shard_trace().events();
        let i = events.iter().position(|e| e.kind == "delta_apply").unwrap();
        let digest = events[i].hex("digest").unwrap();
        events[i].set("digest", TraceValue::Str(hex_digest(digest ^ 1)));
        expect_kind(&events, ViolationKind::DigestMismatch);
    }

    #[test]
    fn stale_epoch_apply_is_caught() {
        let mut events = two_shard_trace().events();
        let first_apply = events.iter().position(|e| e.kind == "delta_apply").unwrap();
        let stale = events[first_apply].clone();
        let later_begin = events
            .iter()
            .rposition(|e| e.kind == "superstep_begin")
            .unwrap();
        assert!(later_begin > first_apply);
        events.insert(later_begin + 1, stale);
        expect_kind(&events, ViolationKind::StaleEpoch);
    }

    #[test]
    fn duplicate_announcement_is_caught() {
        let mut events = two_shard_trace().events();
        let i = events.iter().position(|e| e.kind == "shard_delta").unwrap();
        let dup = events[i].clone();
        events.insert(i + 1, dup);
        expect_kind(&events, ViolationKind::DuplicateDelta);
    }

    #[test]
    fn announcement_order_is_free() {
        let mut events = two_shard_trace().events();
        let i = events.iter().position(|e| e.kind == "shard_delta").unwrap();
        events.swap(i, i + 1);
        verify(&events).unwrap();
    }

    #[test]
    fn epoch_mismatch_on_begin_is_caught() {
        let mut events = two_shard_trace().events();
        let later_begin = events
            .iter()
            .rposition(|e| e.kind == "superstep_begin")
            .unwrap();
        events[later_begin].set("sweep", TraceValue::Uint(99));
        expect_kind(&events, ViolationKind::EpochMismatch);
    }

    #[test]
    fn retention_of_newest_checkpoint_is_caught() {
        let mut t = two_shard_trace();
        t.checkpoint();
        let newest = *t.checkpoint_sweeps().last().unwrap();
        t.retain(newest);
        expect_kind(&t.events(), ViolationKind::RetentionNewest);
    }

    #[test]
    fn retention_of_unknown_checkpoint_is_caught() {
        let mut t = two_shard_trace();
        t.checkpoint();
        t.retain(12345);
        expect_kind(&t.events(), ViolationKind::RetentionUnknown);
    }

    #[test]
    fn retention_skips_corrupt_files_when_picking_newest() {
        // Two checkpoints; the newer one is corrupt. Removing the older
        // (only valid) one must be rejected.
        let mut t = two_shard_trace();
        t.checkpoint();
        t.superstep(&[vec![], vec![]]);
        t.checkpoint();
        let sweeps = t.checkpoint_sweeps();
        t.skip(sweeps[1]);
        t.retain(sweeps[0]);
        expect_kind(&t.events(), ViolationKind::RetentionNewest);
    }

    #[test]
    fn torn_checkpoint_load_is_caught() {
        let mut t = two_shard_trace();
        t.checkpoint();
        t.superstep(&[vec![], vec![]]);
        t.crash_and_resume();
        let mut events = t.events();
        let i = events.iter().position(|e| e.kind == "ckpt_load").unwrap();
        let digest = events[i].hex("digest").unwrap();
        events[i].set("digest", TraceValue::Str(hex_digest(digest ^ 1)));
        expect_kind(&events, ViolationKind::DigestMismatch);
    }

    #[test]
    fn loading_a_corrupt_checkpoint_is_caught() {
        let mut t = two_shard_trace();
        t.checkpoint();
        t.superstep(&[vec![], vec![]]);
        t.crash_and_resume();
        let mut events = t.events();
        let i = events.iter().position(|e| e.kind == "ckpt_load").unwrap();
        let sweep = events[i].uint("sweep").unwrap();
        let mut skip = events[i].clone();
        skip.kind = "ckpt_skip".into();
        skip.fields = vec![field("sweep", sweep)];
        events.insert(i, skip);
        expect_kind(&events, ViolationKind::CorruptLoad);
    }

    #[test]
    fn loading_a_retired_checkpoint_is_caught() {
        let mut t = two_shard_trace();
        t.checkpoint();
        t.superstep(&[vec![], vec![]]);
        t.checkpoint();
        let old = t.checkpoint_sweeps()[0];
        t.retain(old);
        t.superstep(&[vec![], vec![]]);
        t.crash_and_resume();
        let mut events = t.events();
        let i = events.iter().position(|e| e.kind == "ckpt_load").unwrap();
        // Redirect the load at the retired sweep (keep a digest that matches
        // what was written there, so only retirement can reject it).
        let digest = t.checkpoint_digest(old).unwrap();
        events[i].set("sweep", TraceValue::Uint(old));
        events[i].set("digest", TraceValue::Str(hex_digest(digest)));
        expect_kind(&events, ViolationKind::RetiredLoad);
    }

    #[test]
    fn resume_without_load_is_caught() {
        let mut t = two_shard_trace();
        t.checkpoint();
        t.crash_and_resume();
        let mut events = t.events();
        let i = events.iter().position(|e| e.kind == "resume").unwrap();
        let dup = events[i].clone();
        events.insert(i + 1, dup);
        expect_kind(&events, ViolationKind::ResumeMismatch);
    }

    #[test]
    fn nonmonotonic_checkpoint_write_is_caught() {
        let mut t = two_shard_trace();
        t.checkpoint();
        let mut events = t.events();
        let i = events.iter().position(|e| e.kind == "ckpt_write").unwrap();
        let dup = events[i].clone();
        events.insert(i + 1, dup);
        expect_kind(&events, ViolationKind::CkptMonotonicity);
    }

    #[test]
    fn truncated_trace_is_caught() {
        let mut events = two_shard_trace().events();
        let last_end = events
            .iter()
            .rposition(|e| e.kind == "superstep_end")
            .unwrap();
        events.truncate(last_end);
        expect_kind(&events, ViolationKind::TruncatedTrace);
    }

    #[test]
    fn unconsumed_load_at_end_is_caught() {
        let mut t = two_shard_trace();
        t.checkpoint();
        t.crash_and_resume();
        let mut events = t.events();
        let i = events.iter().position(|e| e.kind == "resume").unwrap();
        events.remove(i);
        expect_kind(&events, ViolationKind::TruncatedTrace);
    }

    #[test]
    fn unknown_event_kind_is_rejected() {
        let events = vec![TraceEvent {
            seq: 0,
            kind: "mystery".into(),
            fields: Vec::new(),
        }];
        expect_kind(&events, ViolationKind::UnknownEvent);
    }

    #[test]
    fn inconsistent_cell_summary_is_rejected() {
        let mut events = two_shard_trace().events();
        let i = events.iter().position(|e| e.kind == "shard_delta").unwrap();
        let cells = events[i].uint("cells").unwrap();
        events[i].set("cells", TraceValue::Uint(cells + 7));
        expect_kind(&events, ViolationKind::Malformed);
    }
}
