//! Synthetic `cold-trace/v1` streams for exercising the replay model.
//!
//! [`SynthTrace`] fabricates protocol-conformant event sequences without
//! running the sampler: counter sums evolve exactly by the announced nets,
//! digests are deterministic stand-ins, and crash/resume rewinds to the
//! recorded checkpoint snapshot. Tests then mutate the fabricated stream
//! to seed violations, or hand it to the fault injector.

use std::collections::BTreeMap;

use cold_obs::trace::{field, hex_digest, TraceEvent, TraceValue};

use crate::{DELTA_FAMILIES, DERIVED_FAMILIES, STATE_FAMILIES};

/// Each family starts here so small negative nets never underflow the
/// unsigned sums carried in the events.
const BASE_SUM: i64 = 1_000;

struct SynthCheckpoint {
    sweep: u64,
    digest: u64,
    sums: BTreeMap<&'static str, i64>,
}

/// A growing synthetic trace. Every mutator appends protocol-conformant
/// events; [`SynthTrace::events`] yields the stream to verify or corrupt.
pub struct SynthTrace {
    shards: u64,
    sweep: u64,
    next_seq: u64,
    sums: BTreeMap<&'static str, i64>,
    checkpoints: Vec<SynthCheckpoint>,
    events: Vec<TraceEvent>,
}

impl SynthTrace {
    /// An empty trace for a `shards`-way partition.
    pub fn new(shards: u64) -> Self {
        Self {
            shards,
            sweep: 0,
            next_seq: 0,
            sums: STATE_FAMILIES.iter().map(|f| (*f, BASE_SUM)).collect(),
            checkpoints: Vec::new(),
            events: Vec::new(),
        }
    }

    fn push(&mut self, kind: &str, fields: Vec<(String, TraceValue)>) {
        self.events.push(TraceEvent {
            seq: self.next_seq,
            kind: kind.to_owned(),
            fields,
        });
        self.next_seq += 1;
    }

    fn sum_fields(&self) -> Vec<(String, TraceValue)> {
        STATE_FAMILIES
            .iter()
            .map(|f| field(format!("sum_{f}"), self.sums[f] as u64))
            .collect()
    }

    fn boundary_fields(&self, kind_sweep: u64) -> Vec<(String, TraceValue)> {
        let mut fields = vec![
            field("sweep", kind_sweep),
            field("shards", self.shards),
            field("sync", "delta"),
        ];
        fields.extend(self.sum_fields());
        fields
    }

    /// Deterministic stand-in digest for `(sweep, shard)` deltas.
    fn delta_digest(sweep: u64, shard: u64) -> u64 {
        (sweep.wrapping_mul(31) ^ shard.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// One delta-synced superstep. `shard_nets[s]` lists the `(family,
    /// net)` changes shard `s` contributes; sums and derived mirrors
    /// evolve accordingly.
    pub fn superstep(&mut self, shard_nets: &[Vec<(&'static str, i64)>]) {
        assert_eq!(
            shard_nets.len() as u64,
            self.shards,
            "one net list per shard"
        );
        let sweep = self.sweep;
        self.push("superstep_begin", self.boundary_fields(sweep));
        for (s, nets) in shard_nets.iter().enumerate() {
            let cells = nets.len() as u64;
            let mut fields = vec![
                field("sweep", sweep),
                field("shard", s as u64),
                field("cells", cells),
                field("bytes", 16 + 8 * cells),
                field("digest", hex_digest(Self::delta_digest(sweep, s as u64))),
            ];
            for fam in DELTA_FAMILIES {
                let fam_cells = nets.iter().filter(|(f, _)| *f == fam).count() as u64;
                let net: i64 = nets.iter().filter(|(f, _)| *f == fam).map(|(_, n)| n).sum();
                fields.push(field(format!("cells_{fam}"), fam_cells));
                fields.push(field(format!("net_{fam}"), net));
            }
            self.push("shard_delta", fields);
        }
        for (s, nets) in shard_nets.iter().enumerate() {
            self.push(
                "delta_apply",
                vec![
                    field("sweep", sweep),
                    field("shard", s as u64),
                    field("digest", hex_digest(Self::delta_digest(sweep, s as u64))),
                ],
            );
            for (fam, net) in nets {
                *self.sums.get_mut(fam).unwrap() += net;
                for (mirror, source) in DERIVED_FAMILIES {
                    if source == *fam {
                        *self.sums.get_mut(mirror).unwrap() += net;
                    }
                }
            }
        }
        self.push("superstep_end", self.boundary_fields(sweep));
        self.sweep += 1;
    }

    /// Write a checkpoint at the current sweep count.
    pub fn checkpoint(&mut self) {
        let sweep = self.sweep;
        let digest = 0x00C0_FFEE_u64 ^ sweep.wrapping_mul(0x0100_0000_01b3);
        self.push(
            "ckpt_write",
            vec![
                field("sweep", sweep),
                field("bytes", 64u64),
                field("digest", hex_digest(digest)),
            ],
        );
        self.checkpoints.push(SynthCheckpoint {
            sweep,
            digest,
            sums: self.sums.clone(),
        });
    }

    /// Retention removes the checkpoint written at `sweep`.
    pub fn retain(&mut self, sweep: u64) {
        self.push("ckpt_retain", vec![field("sweep", sweep)]);
    }

    /// A load pass skipped the checkpoint at `sweep` as unreadable.
    pub fn skip(&mut self, sweep: u64) {
        self.push("ckpt_skip", vec![field("sweep", sweep)]);
    }

    /// Crash, then load the most recent checkpoint and resume from it:
    /// the sweep counter and all sums rewind to the checkpointed state.
    pub fn crash_and_resume(&mut self) {
        let ckpt = self
            .checkpoints
            .last()
            .expect("no checkpoint to resume from");
        let (sweep, digest, sums) = (ckpt.sweep, ckpt.digest, ckpt.sums.clone());
        self.push(
            "ckpt_load",
            vec![
                field("sweep", sweep),
                field("digest", hex_digest(digest)),
                field("skipped", 0u64),
            ],
        );
        self.push(
            "resume",
            vec![field("sweep", sweep), field("shards", self.shards)],
        );
        self.sweep = sweep;
        self.sums = sums;
    }

    /// Sweeps at which checkpoints were written, in write order.
    pub fn checkpoint_sweeps(&self) -> Vec<u64> {
        self.checkpoints.iter().map(|c| c.sweep).collect()
    }

    /// The digest written for the checkpoint at `sweep`, if any.
    pub fn checkpoint_digest(&self, sweep: u64) -> Option<u64> {
        self.checkpoints
            .iter()
            .find(|c| c.sweep == sweep)
            .map(|c| c.digest)
    }

    /// The fabricated event stream so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.clone()
    }
}
