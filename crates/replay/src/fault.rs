//! Seeded fault injection and schedule fuzzing for recorded traces.
//!
//! [`inject`] mutates a protocol-conformant trace to seed one concrete
//! violation of a [`FaultClass`]; the replay model must reject every
//! injected trace. [`permute_schedule`] applies a *legal* mutation —
//! reordering shard announcements within a superstep — that the model
//! must still accept. Both draw all randomness from a caller-seeded RNG,
//! so every generated case replays from its recorded seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cold_obs::trace::{field, hex_digest, TraceEvent, TraceValue};

use crate::{verify, Violation};

/// The protocol-violation families the injector can seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// A shard's delta vanishes entirely (announcement and apply).
    DroppedDelta,
    /// A delta is announced but its apply never happens.
    DroppedApply,
    /// A shard's delta is applied twice.
    DuplicatedApply,
    /// Two adjacent applies swap, breaking ascending shard order.
    ReorderedApply,
    /// An apply from an earlier epoch replays inside a later superstep.
    StaleEpochReplay,
    /// A checkpoint's bytes change between write and load (torn write).
    TornCheckpoint,
    /// Retention deletes the newest valid checkpoint.
    RetiredNewest,
    /// A resume consumes a checkpoint known to be corrupt.
    CorruptResume,
    /// A second resume fires without a second load.
    DoubleResume,
}

impl FaultClass {
    /// Every injectable class, in round-robin order.
    pub const ALL: [FaultClass; 9] = [
        FaultClass::DroppedDelta,
        FaultClass::DroppedApply,
        FaultClass::DuplicatedApply,
        FaultClass::ReorderedApply,
        FaultClass::StaleEpochReplay,
        FaultClass::TornCheckpoint,
        FaultClass::RetiredNewest,
        FaultClass::CorruptResume,
        FaultClass::DoubleResume,
    ];

    /// Stable name for reports and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::DroppedDelta => "dropped-delta",
            FaultClass::DroppedApply => "dropped-apply",
            FaultClass::DuplicatedApply => "duplicated-apply",
            FaultClass::ReorderedApply => "reordered-apply",
            FaultClass::StaleEpochReplay => "stale-epoch-replay",
            FaultClass::TornCheckpoint => "torn-checkpoint",
            FaultClass::RetiredNewest => "retired-newest",
            FaultClass::CorruptResume => "corrupt-resume",
            FaultClass::DoubleResume => "double-resume",
        }
    }
}

fn positions(events: &[TraceEvent], kind: &str) -> Vec<usize> {
    events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind == kind)
        .map(|(i, _)| i)
        .collect()
}

fn pick(rng: &mut SmallRng, candidates: &[usize]) -> Option<usize> {
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.gen_range(0..candidates.len())])
    }
}

fn renumber(events: &mut [TraceEvent]) {
    for (i, ev) in events.iter_mut().enumerate() {
        ev.seq = i as u64;
    }
}

/// The partition width recorded in the trace, for synthesized events.
fn trace_shards(events: &[TraceEvent]) -> u64 {
    events
        .iter()
        .find_map(|e| {
            (e.kind == "superstep_begin" || e.kind == "resume").then(|| e.uint("shards"))?
        })
        .unwrap_or(1)
}

/// Seed one fault of `class` into `events`. Returns the mutated trace and
/// a description of the concrete mutation, or `None` when the trace lacks
/// the structure this class needs (e.g. no checkpoints at all).
pub fn inject(
    events: &[TraceEvent],
    class: FaultClass,
    rng: &mut SmallRng,
) -> Option<(Vec<TraceEvent>, String)> {
    let mut out = events.to_vec();
    let detail = match class {
        FaultClass::DroppedDelta => {
            let i = pick(rng, &positions(events, "shard_delta"))?;
            let sweep = out[i].uint("sweep");
            let shard = out[i].uint("shard");
            out.remove(i);
            out.retain(|e| {
                !(e.kind == "delta_apply" && e.uint("sweep") == sweep && e.uint("shard") == shard)
            });
            format!("dropped shard {shard:?} delta of sweep {sweep:?}")
        }
        FaultClass::DroppedApply => {
            let i = pick(rng, &positions(events, "delta_apply"))?;
            let (sweep, shard) = (out[i].uint("sweep"), out[i].uint("shard"));
            out.remove(i);
            format!("dropped apply of shard {shard:?} in sweep {sweep:?}")
        }
        FaultClass::DuplicatedApply => {
            let i = pick(rng, &positions(events, "delta_apply"))?;
            let dup = out[i].clone();
            let (sweep, shard) = (dup.uint("sweep"), dup.uint("shard"));
            out.insert(i + 1, dup);
            format!("duplicated apply of shard {shard:?} in sweep {sweep:?}")
        }
        FaultClass::ReorderedApply => {
            // Need two adjacent applies of the same superstep to swap.
            let pairs: Vec<usize> = positions(events, "delta_apply")
                .into_iter()
                .filter(|&i| {
                    i + 1 < events.len()
                        && events[i + 1].kind == "delta_apply"
                        && events[i + 1].uint("sweep") == events[i].uint("sweep")
                })
                .collect();
            let i = pick(rng, &pairs)?;
            let sweep = out[i].uint("sweep");
            out.swap(i, i + 1);
            format!(
                "swapped applies of shards {:?} and {:?} in sweep {sweep:?}",
                out[i].uint("shard"),
                out[i + 1].uint("shard")
            )
        }
        FaultClass::StaleEpochReplay => {
            // Replay an apply inside a later superstep than its own.
            let applies = positions(events, "delta_apply");
            let begins = positions(events, "superstep_begin");
            let candidates: Vec<usize> = applies
                .iter()
                .copied()
                .filter(|&i| begins.iter().any(|&b| b > i))
                .collect();
            let i = pick(rng, &candidates)?;
            let stale = out[i].clone();
            let (sweep, shard) = (stale.uint("sweep"), stale.uint("shard"));
            let b = *begins.iter().find(|&&b| b > i).unwrap();
            out.insert(b + 1, stale);
            format!(
                "replayed shard {shard:?} apply of sweep {sweep:?} inside superstep {:?}",
                out[b].uint("sweep")
            )
        }
        FaultClass::TornCheckpoint => {
            // Flip a loaded digest; if the trace never loads, synthesize a
            // load of a written checkpoint with the wrong digest.
            let written_sweeps: Vec<u64> = events
                .iter()
                .filter(|e| e.kind == "ckpt_write")
                .filter_map(|e| e.uint("sweep"))
                .collect();
            let loads: Vec<usize> = positions(events, "ckpt_load")
                .into_iter()
                .filter(|&i| {
                    // Only loads the model can cross-check: the write must
                    // appear earlier in the trace.
                    events[i]
                        .uint("sweep")
                        .is_some_and(|s| written_sweeps.contains(&s))
                })
                .collect();
            if let Some(i) = pick(rng, &loads) {
                let digest = out[i].hex("digest")?;
                out[i].set("digest", TraceValue::Str(hex_digest(digest ^ 1)));
                format!(
                    "tore checkpoint bytes under load of sweep {:?}",
                    out[i].uint("sweep")
                )
            } else {
                let sweep = *written_sweeps.last()?;
                let digest = events
                    .iter()
                    .rfind(|e| e.kind == "ckpt_write" && e.uint("sweep") == Some(sweep))?
                    .hex("digest")?;
                out.push(TraceEvent {
                    seq: 0,
                    kind: "ckpt_load".into(),
                    fields: vec![
                        field("sweep", sweep),
                        field("digest", hex_digest(digest ^ 1)),
                        field("skipped", 0u64),
                    ],
                });
                format!("synthesized load of torn checkpoint at sweep {sweep}")
            }
        }
        FaultClass::RetiredNewest => {
            // Retire the newest checkpoint right after it is written.
            let i = *positions(events, "ckpt_write").last()?;
            let sweep = out[i].uint("sweep")?;
            out.insert(
                i + 1,
                TraceEvent {
                    seq: 0,
                    kind: "ckpt_retain".into(),
                    fields: vec![field("sweep", sweep)],
                },
            );
            format!("retention removed the newest checkpoint (sweep {sweep})")
        }
        FaultClass::CorruptResume => {
            // Mark the loaded checkpoint corrupt just before its load; if
            // the trace never loads, synthesize a skip-then-load pair.
            let skip_of = |sweep: u64| TraceEvent {
                seq: 0,
                kind: "ckpt_skip".into(),
                fields: vec![field("sweep", sweep)],
            };
            if let Some(i) = pick(rng, &positions(events, "ckpt_load")) {
                let sweep = out[i].uint("sweep")?;
                out.insert(i, skip_of(sweep));
                format!("marked the resumed checkpoint (sweep {sweep}) corrupt before its load")
            } else {
                let w = *positions(events, "ckpt_write").last()?;
                let sweep = events[w].uint("sweep")?;
                let digest = events[w].hex("digest")?;
                out.push(skip_of(sweep));
                out.push(TraceEvent {
                    seq: 0,
                    kind: "ckpt_load".into(),
                    fields: vec![
                        field("sweep", sweep),
                        field("digest", hex_digest(digest)),
                        field("skipped", 1u64),
                    ],
                });
                format!("synthesized load of a checkpoint skipped as corrupt (sweep {sweep})")
            }
        }
        FaultClass::DoubleResume => {
            if let Some(i) = pick(rng, &positions(events, "resume")) {
                let dup = out[i].clone();
                let sweep = dup.uint("sweep");
                out.insert(i + 1, dup);
                format!("resumed twice from one load (sweep {sweep:?})")
            } else {
                out.push(TraceEvent {
                    seq: 0,
                    kind: "resume".into(),
                    fields: vec![field("sweep", 0u64), field("shards", trace_shards(events))],
                });
                "synthesized a resume with no loaded checkpoint".to_owned()
            }
        }
    };
    renumber(&mut out);
    Some((out, detail))
}

/// Legally permute the trace: shuffle each superstep's run of shard
/// announcements (their order is unconstrained by the protocol). The
/// model must accept every permutation.
pub fn permute_schedule(events: &[TraceEvent], rng: &mut SmallRng) -> Vec<TraceEvent> {
    let mut out = events.to_vec();
    let mut i = 0;
    while i < out.len() {
        if out[i].kind == "shard_delta" {
            let start = i;
            while i < out.len() && out[i].kind == "shard_delta" {
                i += 1;
            }
            // Fisher-Yates over the run [start, i).
            for j in (start + 1..i).rev() {
                let k = rng.gen_range(start..j + 1);
                out.swap(j, k);
            }
        } else {
            i += 1;
        }
    }
    renumber(&mut out);
    out
}

/// One fuzzed case: what was injected, under which seed, and how the
/// model answered.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Which fault family this case seeded (`None` for a legal schedule
    /// permutation, which must pass).
    pub fault: Option<FaultClass>,
    /// RNG seed that regenerates this exact case.
    pub seed: u64,
    /// The concrete mutation applied.
    pub detail: String,
    /// The model's rejection, if any.
    pub rejection: Option<Violation>,
}

impl FuzzOutcome {
    /// Did the model answer correctly for this case? Faulted traces must
    /// be rejected; legal permutations must pass.
    pub fn ok(&self) -> bool {
        self.fault.is_some() == self.rejection.is_some()
    }
}

/// Derive the RNG seed for fuzz case `case` under `base_seed`, using the
/// same golden-ratio mixing as the proptest shim.
pub fn case_seed(base_seed: u64, case: u64) -> u64 {
    base_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Run `cases` seeded mutations against `events`: fault classes round-
/// robin, with a legal schedule permutation interleaved after each full
/// round. Classes the trace cannot express (e.g. checkpoint faults on a
/// checkpoint-free trace) are skipped. Every outcome records its seed.
pub fn fuzz(events: &[TraceEvent], cases: usize, base_seed: u64) -> Vec<FuzzOutcome> {
    let mut outcomes = Vec::new();
    let classes = FaultClass::ALL.len();
    let mut case = 0u64;
    // Per round: each fault class once, then one legal permutation. Bound
    // total draws so inexpressible classes cannot stall the loop.
    while outcomes.len() < cases && (case as usize) < cases * (classes + 1) + classes {
        let slot = case as usize % (classes + 1);
        let seed = case_seed(base_seed, case);
        case += 1;
        let mut rng = SmallRng::seed_from_u64(seed);
        if slot == classes {
            let permuted = permute_schedule(events, &mut rng);
            outcomes.push(FuzzOutcome {
                fault: None,
                seed,
                detail: "legal schedule permutation".to_owned(),
                rejection: verify(&permuted).err(),
            });
        } else {
            let class = FaultClass::ALL[slot];
            if let Some((mutated, detail)) = inject(events, class, &mut rng) {
                outcomes.push(FuzzOutcome {
                    fault: Some(class),
                    seed,
                    detail,
                    rejection: verify(&mutated).err(),
                });
            }
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthTrace;
    use crate::ViolationKind;

    fn checkpointed_trace() -> Vec<TraceEvent> {
        let mut t = SynthTrace::new(3);
        t.superstep(&[
            vec![("n_ck", 2), ("n_kv", 1)],
            vec![("n_i", -1)],
            vec![("n_cc", 3), ("n0_cc", 1)],
        ]);
        t.checkpoint();
        t.superstep(&[vec![("n_ck", -1)], vec![("n_k", 2)], vec![]]);
        t.checkpoint();
        t.superstep(&[vec![("n_ic", 1)], vec![("n_ckt", 1)], vec![("n_c", -2)]]);
        t.crash_and_resume();
        t.superstep(&[vec![("n_ic", 1)], vec![("n_ckt", 1)], vec![("n_c", -2)]]);
        t.events()
    }

    #[test]
    fn base_trace_is_clean() {
        crate::verify(&checkpointed_trace()).unwrap();
    }

    #[test]
    fn every_fault_class_is_injectable_and_rejected() {
        let events = checkpointed_trace();
        for (i, class) in FaultClass::ALL.iter().enumerate() {
            let mut rng = SmallRng::seed_from_u64(0xFA17 + i as u64);
            let (mutated, detail) = inject(&events, *class, &mut rng)
                .unwrap_or_else(|| panic!("{} not injectable", class.name()));
            let err = crate::verify(&mutated)
                .err()
                .unwrap_or_else(|| panic!("{} survived replay: {detail}", class.name()));
            assert_ne!(
                err.kind,
                ViolationKind::Malformed,
                "{}: {err}",
                class.name()
            );
        }
    }

    #[test]
    fn injection_is_deterministic_under_a_seed() {
        let events = checkpointed_trace();
        for class in FaultClass::ALL {
            let run = |seed: u64| {
                let mut rng = SmallRng::seed_from_u64(seed);
                inject(&events, class, &mut rng).map(|(ev, detail)| (ev.len(), detail))
            };
            assert_eq!(run(7), run(7), "{}", class.name());
        }
    }

    #[test]
    fn schedule_permutations_always_pass() {
        let events = checkpointed_trace();
        for seed in 0..16 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let permuted = permute_schedule(&events, &mut rng);
            assert_eq!(permuted.len(), events.len());
            crate::verify(&permuted)
                .unwrap_or_else(|e| panic!("legal permutation rejected (seed {seed}): {e}"));
        }
    }

    #[test]
    fn fuzz_covers_all_classes_and_all_cases_hold() {
        let events = checkpointed_trace();
        let outcomes = fuzz(&events, 20, 0xBA5E);
        assert_eq!(outcomes.len(), 20);
        for out in &outcomes {
            assert!(
                out.ok(),
                "case seed {:#x} ({}) answered wrong: {}",
                out.seed,
                out.fault.map_or("schedule", |c| c.name()),
                out.detail
            );
        }
        for class in FaultClass::ALL {
            assert!(
                outcomes.iter().any(|o| o.fault == Some(class)),
                "{} never fuzzed in 20 cases",
                class.name()
            );
        }
        assert!(outcomes.iter().any(|o| o.fault.is_none()));
    }

    #[test]
    fn fuzz_skips_checkpoint_faults_on_checkpoint_free_traces() {
        let mut t = SynthTrace::new(2);
        t.superstep(&[vec![("n_ck", 1)], vec![("n_i", 1)]]);
        let outcomes = fuzz(&t.events(), 12, 1);
        assert!(!outcomes.is_empty());
        for out in &outcomes {
            assert!(out.ok(), "seed {:#x}: {}", out.seed, out.detail);
            assert_ne!(out.fault, Some(FaultClass::RetiredNewest));
        }
    }
}
