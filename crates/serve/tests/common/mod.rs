//! Shared scaffolding for the serve integration tests: tiny trained
//! worlds, a configurable in-process server, and `/metrics` accessors.

#![allow(dead_code)]

use cold_core::{ColdConfig, GibbsSampler, ModelFormat};
use cold_graph::CsrGraph;
use cold_obs::Metrics;
use cold_serve::{App, HttpClient, IoMode, ServeConfig, Server};
use cold_text::CorpusBuilder;
use serde::Value;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::Duration;

pub const WORDS: [&str; 6] = ["football", "goal", "match", "film", "oscar", "actor"];

/// Train the standard two-block world with `seed` and save it as a
/// binary artifact at `dir/name`. Different seeds give models whose
/// `/predict` scores differ — what the reload tests key on.
pub fn model_file(dir: &Path, name: &str, seed: u64) -> PathBuf {
    let mut b = CorpusBuilder::new();
    let sports = &WORDS[..3];
    let movie = &WORDS[3..];
    for u in 0..3u32 {
        for rep in 0..4u16 {
            b.push_text(u, rep % 2, sports);
        }
    }
    for u in 3..6u32 {
        for rep in 0..4u16 {
            b.push_text(u, 2 + rep % 2, movie);
        }
    }
    let corpus = b.build();
    let edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)];
    let graph = CsrGraph::from_edges(6, &edges);
    let config = ColdConfig::builder(2, 2)
        .iterations(30)
        .build(&corpus, &graph);
    let model = GibbsSampler::new(&corpus, &graph, config, seed).run();
    let path = dir.join(name);
    model.save_as(&path, ModelFormat::Binary).unwrap();
    path
}

/// A world whose vocabulary has one extra word — its artifact has a
/// skewed vocab axis and must be rejected by `/reload`.
pub fn skewed_model_file(dir: &Path, name: &str) -> PathBuf {
    let mut b = CorpusBuilder::new();
    let sports = ["football", "goal", "match", "referee"];
    let movie = ["film", "oscar", "actor"];
    for u in 0..3u32 {
        for rep in 0..4u16 {
            b.push_text(u, rep % 2, &sports);
        }
    }
    for u in 3..6u32 {
        for rep in 0..4u16 {
            b.push_text(u, 2 + rep % 2, &movie);
        }
    }
    let corpus = b.build();
    let edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)];
    let graph = CsrGraph::from_edges(6, &edges);
    let config = ColdConfig::builder(2, 2)
        .iterations(10)
        .build(&corpus, &graph);
    let model = GibbsSampler::new(&corpus, &graph, config, 5).run();
    let path = dir.join(name);
    model.save_as(&path, ModelFormat::Binary).unwrap();
    path
}

pub fn vocab() -> HashMap<String, u32> {
    // Matches CorpusBuilder's insertion order in `model_file`.
    WORDS
        .iter()
        .enumerate()
        .map(|(i, w)| ((*w).to_owned(), i as u32))
        .collect()
}

pub struct TestServer {
    pub server: Option<Server>,
    pub addr: SocketAddr,
    pub dir: PathBuf,
    /// The artifact the server booted from.
    pub model: PathBuf,
}

/// The transports available on this platform — the epoll backend only
/// exists on Linux; elsewhere the suites cover the thread backend alone.
pub fn io_modes() -> Vec<IoMode> {
    #[cfg(target_os = "linux")]
    {
        vec![IoMode::Threads, IoMode::Epoll]
    }
    #[cfg(not(target_os = "linux"))]
    {
        vec![IoMode::Threads]
    }
}

impl TestServer {
    /// Start a server on a fresh tiny world; `configure` tweaks the
    /// defaults (workers 4, port 0, everything else stock).
    pub fn start(tag: &str, configure: impl FnOnce(&mut ServeConfig)) -> Self {
        Self::start_with_mode(tag, IoMode::Threads, configure)
    }

    /// [`TestServer::start`] under an explicit transport — how the
    /// chaos/reload suites prove both backends keep the same exact
    /// metric accounting.
    pub fn start_with_mode(
        tag: &str,
        io_mode: IoMode,
        configure: impl FnOnce(&mut ServeConfig),
    ) -> Self {
        let dir =
            std::env::temp_dir().join(format!("cold_serve_{tag}_{io_mode}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let model = model_file(&dir, "current.cold", 5);
        let app = App::load(&model, 2, 16, Some(vocab()), Metrics::enabled()).unwrap();
        let mut config = ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            io_mode,
            workers: 4,
            ..ServeConfig::default()
        };
        configure(&mut config);
        let server = Server::start(config, app).unwrap();
        let addr = server.addr();
        Self {
            server: Some(server),
            addr,
            dir,
            model,
        }
    }

    pub fn client(&self) -> HttpClient {
        HttpClient::connect(self.addr, Duration::from_secs(10)).unwrap()
    }

    /// Fetch `/metrics` and return the named counter (0 when absent —
    /// counters only appear after their first increment).
    pub fn counter(&self, name: &str) -> u64 {
        let body = self.client().get("/metrics").unwrap().body;
        counter_in(&body, name)
    }

    /// Poll until `counter(name)` reaches `want` or the timeout passes;
    /// returns the final value either way.
    pub fn wait_counter(&self, name: &str, want: u64, timeout: Duration) -> u64 {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let v = self.counter(name);
            if v >= want || std::time::Instant::now() >= deadline {
                return v;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Extract one counter from a `cold-obs/v1` JSONL snapshot body.
pub fn counter_in(metrics_body: &str, name: &str) -> u64 {
    let needle = format!("\"name\":\"{name}\"");
    for line in metrics_body.lines() {
        if line.contains("\"type\":\"counter\"") && line.contains(&needle) {
            let v = json(line);
            return num(v.get("value").unwrap()) as u64;
        }
    }
    0
}

pub fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

pub fn num(v: &Value) -> f64 {
    match v {
        Value::Int(n) => *n as f64,
        Value::UInt(n) => *n as f64,
        Value::Float(f) => *f,
        other => panic!("expected number, got {other:?}"),
    }
}

pub const PREDICT: &str = "{\"publisher\":0,\"consumer\":1,\"words\":[0,1]}";

/// `POST /predict` with the canonical body and return the score.
pub fn predict_score(c: &mut HttpClient) -> f64 {
    let r = c.post("/predict", PREDICT).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    num(json(&r.body).get("score").unwrap())
}
