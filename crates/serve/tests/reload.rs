//! Hot model reload: `POST /reload` and `--watch-model` against a live
//! server. The claims under test: a valid artifact swaps in atomically
//! under concurrent load (every in-flight request finishes on the model
//! it started with, and per-connection score streams are a clean
//! old-prefix/new-suffix); a corrupt or dimension-skewed artifact is
//! rejected with the old model still serving.

mod common;

use cold_serve::{HttpClient, IoMode};
use common::{json, model_file, num, predict_score, skewed_model_file, TestServer, PREDICT};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn reload_swaps_models_atomically_under_load(mode: IoMode) {
    let ts = TestServer::start_with_mode("reload_load", mode, |_| {});
    let next = model_file(&ts.dir, "next.cold", 77);
    let mut c = ts.client();
    let score_a = predict_score(&mut c);

    let stop = Arc::new(AtomicBool::new(false));
    let addr = ts.addr;
    let hammers: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr, Duration::from_secs(10)).unwrap();
                let mut scores = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let r = c.post("/predict", PREDICT).unwrap();
                    assert_eq!(r.status, 200, "{}", r.body);
                    scores.push(num(json(&r.body).get("score").unwrap()));
                }
                scores
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(100));
    let r = c
        .post("/reload", &format!("{{\"model\":\"{}\"}}", next.display()))
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let outcome = json(&r.body);
    assert_eq!(num(outcome.get("generation").unwrap()) as u64, 1);
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Ordering::Relaxed);

    let score_b = predict_score(&mut ts.client());
    assert_ne!(score_a, score_b, "retrained model must score differently");

    for h in hammers {
        let scores = h.join().unwrap();
        assert!(!scores.is_empty());
        // Atomicity, as seen from one connection: a prefix of old-model
        // scores, then only new-model scores — nothing else, no
        // interleaving back.
        let flip = scores
            .iter()
            .position(|&s| s == score_b)
            .unwrap_or(scores.len());
        for (i, &s) in scores.iter().enumerate() {
            if i < flip {
                assert_eq!(s, score_a, "pre-swap request scored on the wrong model");
            } else {
                assert_eq!(s, score_b, "post-swap request reverted to the old model");
            }
        }
    }

    // /healthz reports the new generation.
    let h = json(&ts.client().get("/healthz").unwrap().body);
    assert_eq!(num(h.get("generation").unwrap()) as u64, 1);
    assert_eq!(ts.counter("serve.reloads_ok"), 1);
}

#[test]
fn reload_swaps_models_atomically_under_load_threads() {
    reload_swaps_models_atomically_under_load(IoMode::Threads);
}

#[cfg(target_os = "linux")]
#[test]
fn reload_swaps_models_atomically_under_load_epoll() {
    reload_swaps_models_atomically_under_load(IoMode::Epoll);
}

fn corrupt_and_skewed_reloads_are_rejected_with_the_old_model_serving(mode: IoMode) {
    let ts = TestServer::start_with_mode("reload_bad", mode, |_| {});
    let mut c = ts.client();
    let score_a = predict_score(&mut c);

    // Truncated artifact: fails verification before any swap.
    let bytes = std::fs::read(&ts.model).unwrap();
    let corrupt = ts.dir.join("corrupt.cold");
    std::fs::write(&corrupt, &bytes[..200.min(bytes.len())]).unwrap();
    let r = c
        .post(
            "/reload",
            &format!("{{\"model\":\"{}\"}}", corrupt.display()),
        )
        .unwrap();
    assert_eq!(r.status, 409, "{}", r.body);
    assert!(r.body.contains("artifact rejected"), "{}", r.body);

    // Vocab-axis skew: verifies fine, but the serving vocabulary would
    // silently mis-resolve words — rejected.
    let skewed = skewed_model_file(&ts.dir, "skewed.cold");
    let r = c
        .post(
            "/reload",
            &format!("{{\"model\":\"{}\"}}", skewed.display()),
        )
        .unwrap();
    assert_eq!(r.status, 409, "{}", r.body);
    assert!(r.body.contains("vocab axis changed"), "{}", r.body);

    // Nonexistent path.
    let r = c
        .post("/reload", "{\"model\":\"/nope/missing.cold\"}")
        .unwrap();
    assert_eq!(r.status, 409, "{}", r.body);

    // Malformed body is the caller's fault, not a reload failure.
    let r = c.post("/reload", "{\"model\":42}").unwrap();
    assert_eq!(r.status, 400, "{}", r.body);

    // Through all of it the old model kept serving, bit-identically.
    assert_eq!(predict_score(&mut c), score_a);
    let h = json(&ts.client().get("/healthz").unwrap().body);
    assert_eq!(num(h.get("generation").unwrap()) as u64, 0);
    assert_eq!(ts.counter("serve.reloads_failed"), 3);
    assert_eq!(ts.counter("serve.reloads_ok"), 0);
}

#[test]
fn corrupt_and_skewed_reloads_are_rejected_threads() {
    corrupt_and_skewed_reloads_are_rejected_with_the_old_model_serving(IoMode::Threads);
}

#[cfg(target_os = "linux")]
#[test]
fn corrupt_and_skewed_reloads_are_rejected_epoll() {
    corrupt_and_skewed_reloads_are_rejected_with_the_old_model_serving(IoMode::Epoll);
}

fn watch_model_picks_up_a_replaced_artifact(mode: IoMode) {
    let ts = TestServer::start_with_mode("watch", mode, |c| {
        c.watch_model = Some(Duration::from_millis(150));
    });
    let mut c = ts.client();
    let score_a = predict_score(&mut c);

    // Stage the retrained artifact next to the live one, then swap it in
    // with an atomic rename — the watcher must verify and reload it.
    let staged = model_file(&ts.dir, "staged.cold", 77);
    std::fs::rename(&staged, &ts.model).unwrap();

    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    let score_b = loop {
        let s = predict_score(&mut ts.client());
        if s != score_a {
            break s;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "watcher never picked up the replaced artifact"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    assert_ne!(score_b, score_a);
    assert_eq!(ts.counter("serve.watch_reloads"), 1);
    let h = json(&ts.client().get("/healthz").unwrap().body);
    assert_eq!(num(h.get("generation").unwrap()) as u64, 1);
}

#[test]
fn watch_model_picks_up_a_replaced_artifact_threads() {
    watch_model_picks_up_a_replaced_artifact(IoMode::Threads);
}

#[cfg(target_os = "linux")]
#[test]
fn watch_model_picks_up_a_replaced_artifact_epoll() {
    watch_model_picks_up_a_replaced_artifact(IoMode::Epoll);
}
