//! Chaos soak: seeded network faults and injected panics against a live
//! server, with healthy traffic interleaved. The claims under test:
//! hostile peers cost the server one connection each, never a worker and
//! never a healthy client's answer; overload sheds exactly; panics are
//! contained, counted, and survived; a crash-looping pool degrades
//! loudly instead of dying.
//!
//! Every transport-agnostic claim runs against both `--io-mode`
//! backends (Linux; elsewhere the epoll variants don't exist) with the
//! same exact metric assertions — the accounting contract is part of
//! the transport abstraction, not an accident of the thread backend.

mod common;

use cold_serve::chaos::ChaosPlan;
use cold_serve::{HttpClient, IoMode};
use common::{json, num, predict_score, TestServer, PREDICT};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn healthy_traffic_survives_chaos_mix(mode: IoMode) {
    let ts = TestServer::start_with_mode("soak", mode, |_| {});
    let mut c = ts.client();
    let reference = predict_score(&mut c);
    // Release the reference connection's worker before the storm.
    drop(c);

    let addr = ts.addr;
    let healthy: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr, Duration::from_secs(10)).unwrap();
                let mut scores = Vec::new();
                for _ in 0..50 {
                    let r = c.post("/predict", PREDICT).unwrap();
                    assert_eq!(r.status, 200, "healthy request failed: {}", r.body);
                    scores.push(num(json(&r.body).get("score").unwrap()));
                }
                scores
            })
        })
        .collect();
    let chaos: Vec<_> = (0..3u64)
        .map(|seed| {
            std::thread::spawn(move || {
                let mut plan = ChaosPlan::new(0xC0FFEE ^ seed);
                plan.stall = Duration::from_millis(150);
                for _ in 0..10 {
                    let fault = plan.next_fault();
                    plan.run(addr, fault);
                }
            })
        })
        .collect();

    for h in chaos {
        h.join().unwrap();
    }
    for h in healthy {
        for s in h.join().unwrap() {
            assert_eq!(s, reference, "score drifted under chaos");
        }
    }

    // The process took every fault on the chin: no worker died, nothing
    // was shed (the healthy load is far below the queue bounds), and the
    // server still answers.
    let m = ts.client().get("/metrics").unwrap();
    assert_eq!(m.status, 200);
    cold_obs::schema::validate_jsonl(&m.body).unwrap();
    assert_eq!(common::counter_in(&m.body, "serve.worker_panics"), 0);
    assert_eq!(common::counter_in(&m.body, "serve.shed"), 0);
    assert_eq!(ts.client().get("/healthz").unwrap().status, 200);
}

#[test]
fn healthy_traffic_survives_chaos_mix_threads() {
    healthy_traffic_survives_chaos_mix(IoMode::Threads);
}

#[cfg(target_os = "linux")]
#[test]
fn healthy_traffic_survives_chaos_mix_epoll() {
    healthy_traffic_survives_chaos_mix(IoMode::Epoll);
}

fn handler_panic_is_contained_to_one_connection(mode: IoMode) {
    let ts = TestServer::start_with_mode("panic", mode, |c| c.chaos_endpoints = true);
    let mut c = ts.client();
    let reference = predict_score(&mut c);

    // The injected panic unwinds out of the handler; the transport's
    // catch_unwind turns it into a 500 on this connection only.
    let r = ts.client().post("/chaos/panic", "").unwrap();
    assert_eq!(r.status, 500, "{}", r.body);
    assert!(!r.keep_alive);

    // Same pool, same answers, exact accounting: one contained panic,
    // zero respawns (no thread died).
    assert_eq!(predict_score(&mut ts.client()), reference);
    assert_eq!(ts.counter("serve.worker_panics"), 1);
    assert_eq!(ts.counter("serve.worker_respawns"), 0);
    assert_eq!(ts.client().get("/healthz").unwrap().status, 200);
}

#[test]
fn handler_panic_is_contained_to_one_connection_threads() {
    handler_panic_is_contained_to_one_connection(IoMode::Threads);
}

#[cfg(target_os = "linux")]
#[test]
fn handler_panic_is_contained_to_one_connection_epoll() {
    handler_panic_is_contained_to_one_connection(IoMode::Epoll);
}

fn killed_workers_are_respawned_by_the_supervisor(mode: IoMode) {
    let ts = TestServer::start_with_mode("respawn", mode, |c| c.chaos_endpoints = true);
    let mut c = ts.client();
    let reference = predict_score(&mut c);

    for round in 1..=3u64 {
        let r = ts.client().post("/chaos/panic-worker", "").unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        // The worker (thread backend: connection worker; epoll backend:
        // poisoned scorer) panics after the response; the supervisor
        // notices within its poll interval and replaces it.
        let respawns = ts.wait_counter("serve.worker_respawns", round, Duration::from_secs(5));
        assert_eq!(respawns, round, "supervisor did not respawn worker");
    }

    assert_eq!(ts.counter("serve.worker_panics"), 3);
    let health = ts.client().get("/healthz").unwrap();
    assert_eq!(health.status, 200, "{}", health.body);
    assert_eq!(predict_score(&mut ts.client()), reference);
}

#[test]
fn killed_workers_are_respawned_by_the_supervisor_threads() {
    killed_workers_are_respawned_by_the_supervisor(IoMode::Threads);
}

#[cfg(target_os = "linux")]
#[test]
fn killed_workers_are_respawned_by_the_supervisor_epoll() {
    killed_workers_are_respawned_by_the_supervisor(IoMode::Epoll);
}

fn respawn_breaker_flips_healthz_to_degraded(mode: IoMode) {
    let ts = TestServer::start_with_mode("breaker", mode, |c| {
        c.chaos_endpoints = true;
        c.workers = 2;
        c.respawn_limit = 1;
    });
    let mut c = ts.client();
    let reference = predict_score(&mut c);
    // With a pool this small, a lingering keep-alive connection would
    // pin the post-breaker survivor (thread backend); release it.
    drop(c);
    std::thread::sleep(Duration::from_millis(200));

    // First kill: within budget, respawned.
    assert_eq!(
        ts.client().post("/chaos/panic-worker", "").unwrap().status,
        200
    );
    assert_eq!(
        ts.wait_counter("serve.worker_respawns", 1, Duration::from_secs(5)),
        1
    );
    // Second kill: over budget — no respawn, the breaker trips instead.
    assert_eq!(
        ts.client().post("/chaos/panic-worker", "").unwrap().status,
        200
    );
    assert_eq!(
        ts.wait_counter("serve.worker_panics", 2, Duration::from_secs(5)),
        2
    );

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let health = loop {
        let h = ts.client().get("/healthz").unwrap();
        if h.status == 503 || std::time::Instant::now() >= deadline {
            break h;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(health.status, 503, "{}", health.body);
    assert!(health.body.contains("degraded"), "{}", health.body);
    assert_eq!(
        ts.counter("serve.worker_respawns"),
        1,
        "breaker respawned past the cap"
    );

    // Degraded, not dead: the surviving worker still answers correctly.
    assert_eq!(predict_score(&mut ts.client()), reference);
}

#[test]
fn respawn_breaker_flips_healthz_to_degraded_threads() {
    respawn_breaker_flips_healthz_to_degraded(IoMode::Threads);
}

#[cfg(target_os = "linux")]
#[test]
fn respawn_breaker_flips_healthz_to_degraded_epoll() {
    respawn_breaker_flips_healthz_to_degraded(IoMode::Epoll);
}

/// Thread backend only: the shed bound under test is the
/// accepted-but-unserved queue, plugged by parking its single worker.
/// The epoll backend's open-connection cap is covered in
/// `epoll_transport.rs`.
#[test]
fn overload_sheds_exactly_beyond_the_connection_bound() {
    let ts = TestServer::start("shed", |c| {
        c.workers = 1;
        c.max_conns = 2;
        // Disable the deadline so the plug connection holds its worker
        // for as long as the test needs.
        c.request_timeout = Duration::ZERO;
    });
    let mut warm = ts.client();
    let reference = predict_score(&mut warm);
    drop(warm);
    std::thread::sleep(Duration::from_millis(200));

    // Plug the only worker with a half-sent request.
    let mut plug = TcpStream::connect(ts.addr).unwrap();
    plug.write_all(b"POST /pre").unwrap();
    plug.flush().unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // Six more connections: the queue takes 2, the other 4 are shed at
    // accept time with 503 + Retry-After. Shed responses arrive without
    // the client sending a byte; queued connections stay silent.
    let streams: Vec<TcpStream> = (0..6)
        .map(|_| {
            let s = TcpStream::connect(ts.addr).unwrap();
            s.set_read_timeout(Some(Duration::from_millis(1500)))
                .unwrap();
            s.set_nodelay(true).unwrap();
            s
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));

    let mut queued = Vec::new();
    let mut shed = 0;
    for mut s in streams {
        let mut buf = [0u8; 1024];
        match s.read(&mut buf) {
            Ok(n) if n > 0 => {
                let head = String::from_utf8_lossy(&buf[..n]).to_string();
                assert!(head.starts_with("HTTP/1.1 503"), "{head}");
                assert!(
                    head.to_ascii_lowercase().contains("retry-after: 1"),
                    "shed response lacks Retry-After: {head}"
                );
                shed += 1;
            }
            Ok(_) => panic!("connection closed without a shed response"),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                queued.push(s);
            }
            Err(e) => panic!("unexpected read error: {e}"),
        }
    }
    assert_eq!(shed, 4, "exactly the overflow must be shed");
    assert_eq!(queued.len(), 2, "queued connections must stay pending");

    // Free the worker: the two queued connections drain and answer.
    drop(plug);
    for mut s in queued {
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let request = format!(
            "POST /predict HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\
             content-type: application/json\r\ncontent-length: {}\r\n\r\n{PREDICT}",
            PREDICT.len()
        );
        s.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        s.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        assert_eq!(num(json(body).get("score").unwrap()), reference);
    }

    assert_eq!(ts.counter("serve.shed_conns"), 4);
    assert_eq!(ts.counter("serve.shed"), 4);
    assert_eq!(ts.counter("serve.worker_panics"), 0);
}

fn stalled_request_times_out_with_408_and_frees_the_worker(mode: IoMode) {
    let ts = TestServer::start_with_mode("stall408", mode, |c| {
        c.workers = 1;
        c.request_timeout = Duration::from_millis(300);
    });
    let mut warm = ts.client();
    let reference = predict_score(&mut warm);
    // Free the only worker for the stalled connection.
    drop(warm);
    std::thread::sleep(Duration::from_millis(200));

    // Arm the clock with a partial request, then stall.
    let mut stall = TcpStream::connect(ts.addr).unwrap();
    stall
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stall.write_all(b"POST /pre").unwrap();
    stall.flush().unwrap();
    let mut buf = [0u8; 256];
    let n = stall.read(&mut buf).unwrap();
    let head = String::from_utf8_lossy(&buf[..n]).to_string();
    assert!(head.starts_with("HTTP/1.1 408"), "{head}");

    // The only worker is free again and still correct.
    assert_eq!(predict_score(&mut ts.client()), reference);
    assert!(ts.counter("serve.request_timeouts") >= 1);
}

#[test]
fn stalled_request_times_out_with_408_and_frees_the_worker_threads() {
    stalled_request_times_out_with_408_and_frees_the_worker(IoMode::Threads);
}

#[cfg(target_os = "linux")]
#[test]
fn stalled_request_times_out_with_408_and_frees_the_worker_epoll() {
    stalled_request_times_out_with_408_and_frees_the_worker(IoMode::Epoll);
}
