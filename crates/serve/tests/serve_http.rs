//! End-to-end tests of `cold-serve` over a real TCP socket: every
//! endpoint, keep-alive reuse, malformed and oversized requests,
//! concurrent clients, metrics consistency, and graceful shutdown.

use cold_core::{ColdConfig, GibbsSampler, ModelFormat};
use cold_graph::CsrGraph;
use cold_obs::Metrics;
use cold_serve::{App, HttpClient, IoMode, ServeConfig, Server};
use cold_text::CorpusBuilder;
use serde::Value;
use std::collections::HashMap;
use std::time::Duration;

/// Train a small two-block model and save it as a binary artifact.
fn model_file(dir: &std::path::Path) -> std::path::PathBuf {
    let mut b = CorpusBuilder::new();
    let sports = ["football", "goal", "match"];
    let movie = ["film", "oscar", "actor"];
    for u in 0..3u32 {
        for rep in 0..4u16 {
            b.push_text(u, rep % 2, &sports);
        }
    }
    for u in 3..6u32 {
        for rep in 0..4u16 {
            b.push_text(u, 2 + rep % 2, &movie);
        }
    }
    let corpus = b.build();
    let edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)];
    let graph = CsrGraph::from_edges(6, &edges);
    let config = ColdConfig::builder(2, 2)
        .iterations(30)
        .build(&corpus, &graph);
    let model = GibbsSampler::new(&corpus, &graph, config, 5).run();
    let path = dir.join("model.cold");
    model.save_as(&path, ModelFormat::Binary).unwrap();
    path
}

fn vocab() -> HashMap<String, u32> {
    // Matches CorpusBuilder's insertion order above.
    ["football", "goal", "match", "film", "oscar", "actor"]
        .iter()
        .enumerate()
        .map(|(i, w)| ((*w).to_owned(), i as u32))
        .collect()
}

struct TestServer {
    server: Option<Server>,
    addr: std::net::SocketAddr,
    dir: std::path::PathBuf,
}

impl TestServer {
    fn start(tag: &str, mode: IoMode, max_body: usize) -> Self {
        let dir =
            std::env::temp_dir().join(format!("cold_serve_{tag}_{mode}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = model_file(&dir);
        let app = App::load(&path, 2, 16, Some(vocab()), Metrics::enabled()).unwrap();
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            io_mode: mode,
            workers: 4,
            max_body,
            ..ServeConfig::default()
        };
        let server = Server::start(config, app).unwrap();
        let addr = server.addr();
        Self {
            server: Some(server),
            addr,
            dir,
        }
    }

    fn client(&self) -> HttpClient {
        HttpClient::connect(self.addr, Duration::from_secs(10)).unwrap()
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

fn num(v: &Value) -> f64 {
    match v {
        Value::Int(n) => *n as f64,
        Value::UInt(n) => *n as f64,
        Value::Float(f) => *f,
        other => panic!("expected number, got {other:?}"),
    }
}

fn all_endpoints_answer_on_one_keepalive_connection(mode: IoMode) {
    let ts = TestServer::start("endpoints", mode, 64 * 1024);
    let mut c = ts.client();

    let health = c.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let h = json(&health.body);
    assert_eq!(h.get("status"), Some(&Value::Str("ok".into())));
    assert_eq!(h.get("backing"), Some(&Value::Str("mapped".into())));
    assert_eq!(num(h.get("users").unwrap()) as u32, 6);

    let predict = c
        .post(
            "/predict",
            "{\"publisher\":0,\"consumer\":1,\"words\":[0,1]}",
        )
        .unwrap();
    assert_eq!(predict.status, 200, "{}", predict.body);
    let p = json(&predict.body);
    let score = num(p.get("score").unwrap());
    assert!(score.is_finite() && score >= 0.0);

    // String words resolve through the vocabulary and give the same score.
    let by_name = c
        .post(
            "/predict",
            "{\"publisher\":0,\"consumer\":1,\"words\":[\"football\",\"goal\"]}",
        )
        .unwrap();
    assert_eq!(by_name.status, 200);
    assert_eq!(num(json(&by_name.body).get("score").unwrap()), score);

    let rank = c
        .post("/rank-influencers", "{\"topic\":0,\"limit\":3}")
        .unwrap();
    assert_eq!(rank.status, 200, "{}", rank.body);
    let r = json(&rank.body);
    let influencers = r.get("influencers").unwrap().as_array().unwrap();
    assert_eq!(influencers.len(), 3);
    let scores: Vec<f64> = influencers
        .iter()
        .map(|e| num(e.get("influence").unwrap()))
        .collect();
    assert!(scores.windows(2).all(|w| w[0] >= w[1]), "{scores:?}");

    let communities = c.get("/communities/2").unwrap();
    assert_eq!(communities.status, 200);
    let cm = json(&communities.body);
    assert_eq!(num(cm.get("user").unwrap()) as u32, 2);
    assert_eq!(
        cm.get("top_communities").unwrap().as_array().unwrap().len(),
        2
    );
    let pi: Vec<f64> = cm
        .get("memberships")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(num)
        .collect();
    assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);

    let metrics = c.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("serve.predict_seconds"));

    // Every one of those answers arrived on the same connection.
    assert!(metrics.keep_alive);
}

#[test]
fn all_endpoints_answer_on_one_keepalive_connection_threads() {
    all_endpoints_answer_on_one_keepalive_connection(IoMode::Threads);
}

#[cfg(target_os = "linux")]
#[test]
fn all_endpoints_answer_on_one_keepalive_connection_epoll() {
    all_endpoints_answer_on_one_keepalive_connection(IoMode::Epoll);
}

fn caller_mistakes_are_400_not_panics(mode: IoMode) {
    let ts = TestServer::start("badreq", mode, 64 * 1024);
    let mut c = ts.client();

    // Unknown user id.
    let r = c
        .post(
            "/predict",
            "{\"publisher\":999,\"consumer\":1,\"words\":[0]}",
        )
        .unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("unknown user id 999"), "{}", r.body);

    // Out-of-vocabulary word id.
    let r = c
        .post(
            "/predict",
            "{\"publisher\":0,\"consumer\":1,\"words\":[4096]}",
        )
        .unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("unknown word id"), "{}", r.body);

    // Unknown string word.
    let r = c
        .post(
            "/predict",
            "{\"publisher\":0,\"consumer\":1,\"words\":[\"zyzzy\"]}",
        )
        .unwrap();
    assert_eq!(r.status, 400);

    // Empty word list is a defined score, not an error.
    let r = c
        .post("/predict", "{\"publisher\":0,\"consumer\":0,\"words\":[]}")
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);

    // Malformed JSON.
    let r = c.post("/predict", "{not json").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("error"));

    // Missing field.
    let r = c.post("/predict", "{\"publisher\":0}").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("consumer"), "{}", r.body);

    // Unknown topic on the ranking endpoint.
    let r = c.post("/rank-influencers", "{\"topic\":42}").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("unknown topic 42"), "{}", r.body);

    // Non-numeric user segment.
    let r = c.get("/communities/bob").unwrap();
    assert_eq!(r.status, 400);

    // Unknown path and wrong method.
    assert_eq!(c.get("/nope").unwrap().status, 404);
    assert_eq!(c.get("/predict").unwrap().status, 405);

    // The server is still healthy after all of that.
    assert_eq!(c.get("/healthz").unwrap().status, 200);
}

#[test]
fn caller_mistakes_are_400_not_panics_threads() {
    caller_mistakes_are_400_not_panics(IoMode::Threads);
}

#[cfg(target_os = "linux")]
#[test]
fn caller_mistakes_are_400_not_panics_epoll() {
    caller_mistakes_are_400_not_panics(IoMode::Epoll);
}

fn oversized_body_gets_413(mode: IoMode) {
    let ts = TestServer::start("oversize", mode, 256);
    let mut c = ts.client();
    let huge = format!(
        "{{\"publisher\":0,\"consumer\":1,\"words\":[{}]}}",
        vec!["0"; 400].join(",")
    );
    let r = c.post("/predict", &huge).unwrap();
    assert_eq!(r.status, 413, "{}", r.body);
    assert!(!r.keep_alive, "oversized requests close the connection");
}

#[test]
fn oversized_body_gets_413_threads() {
    oversized_body_gets_413(IoMode::Threads);
}

#[cfg(target_os = "linux")]
#[test]
fn oversized_body_gets_413_epoll() {
    oversized_body_gets_413(IoMode::Epoll);
}

fn concurrent_clients_all_get_consistent_answers(mode: IoMode) {
    let ts = TestServer::start("concurrent", mode, 64 * 1024);
    // Reference answer on a warm connection.
    let mut c = ts.client();
    let reference = num(json(
        &c.post(
            "/predict",
            "{\"publisher\":0,\"consumer\":1,\"words\":[0,1]}",
        )
        .unwrap()
        .body,
    )
    .get("score")
    .unwrap());

    let addr = ts.addr;
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr, Duration::from_secs(10)).unwrap();
                let mut scores = Vec::new();
                for _ in 0..25 {
                    let r = c
                        .post(
                            "/predict",
                            "{\"publisher\":0,\"consumer\":1,\"words\":[0,1]}",
                        )
                        .unwrap();
                    assert_eq!(r.status, 200);
                    scores.push(num(json(&r.body).get("score").unwrap()));
                }
                scores
            })
        })
        .collect();
    for h in handles {
        for s in h.join().unwrap() {
            assert_eq!(s, reference, "same query must give the same score");
        }
    }

    // Metrics saw every request: 4 threads × 25 + the reference call.
    let m = c.get("/metrics").unwrap().body;
    let predict_line = m
        .lines()
        .find(|l| l.contains("serve.predict_seconds"))
        .expect("predict histogram present");
    let parsed = json(predict_line);
    assert_eq!(num(parsed.get("count").unwrap()) as u64, 101);
    // The snapshot is valid cold-obs/v1 JSONL.
    cold_obs::schema::validate_jsonl(&m).unwrap();
}

#[test]
fn concurrent_clients_all_get_consistent_answers_threads() {
    concurrent_clients_all_get_consistent_answers(IoMode::Threads);
}

#[cfg(target_os = "linux")]
#[test]
fn concurrent_clients_all_get_consistent_answers_epoll() {
    concurrent_clients_all_get_consistent_answers(IoMode::Epoll);
}

fn shutdown_endpoint_stops_the_server_cleanly(mode: IoMode) {
    let mut ts = TestServer::start("shutdown", mode, 64 * 1024);
    let mut c = ts.client();
    assert_eq!(c.get("/healthz").unwrap().status, 200);
    let r = c.post("/shutdown", "").unwrap();
    assert_eq!(r.status, 200);
    assert!(!r.keep_alive, "shutdown response closes the connection");
    // join() returns only after every thread exited.
    ts.server.take().unwrap().join();
    // New connections are refused (or immediately closed) afterwards.
    let after = HttpClient::connect(ts.addr, Duration::from_millis(500))
        .and_then(|mut c| c.get("/healthz"));
    assert!(after.is_err(), "server still answering after shutdown");
}

#[test]
fn shutdown_endpoint_stops_the_server_cleanly_threads() {
    shutdown_endpoint_stops_the_server_cleanly(IoMode::Threads);
}

#[cfg(target_os = "linux")]
#[test]
fn shutdown_endpoint_stops_the_server_cleanly_epoll() {
    shutdown_endpoint_stops_the_server_cleanly(IoMode::Epoll);
}
