//! Epoll-transport-specific behavior (Linux only): the open-connection
//! cap, cross-loop connection handoff, incremental parsing of split and
//! pipelined requests, and the transport's own metrics
//! (`serve.open_conns`, `serve.epoll_wakeups`, `serve.io_read_partial`,
//! `serve.io_write_partial`). Transport-agnostic semantics are covered
//! by the parameterized chaos/reload/http suites.
#![cfg(target_os = "linux")]

mod common;

use cold_serve::IoMode;
use common::{json, num, predict_score, TestServer, PREDICT};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Extract one gauge from a `cold-obs/v1` JSONL snapshot body.
fn gauge_in(metrics_body: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\":\"{name}\"");
    metrics_body
        .lines()
        .find(|l| l.contains("\"type\":\"gauge\"") && l.contains(&needle))
        .map(|l| num(json(l).get("value").unwrap()))
}

#[test]
fn open_connection_cap_sheds_with_503() {
    let ts = TestServer::start_with_mode("epoll_cap", IoMode::Epoll, |c| {
        c.max_conns = 2;
    });
    // Two live connections occupy the cap.
    let mut a = ts.client();
    let mut b = ts.client();
    assert_eq!(a.get("/healthz").unwrap().status, 200);
    assert_eq!(b.get("/healthz").unwrap().status, 200);

    // Beyond the cap: shed at accept with 503 + Retry-After, before the
    // client sends a single byte.
    for _ in 0..3 {
        let mut s = TcpStream::connect(ts.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 1024];
        let n = s.read(&mut buf).unwrap();
        let head = String::from_utf8_lossy(&buf[..n]).to_string();
        assert!(head.starts_with("HTTP/1.1 503"), "{head}");
        assert!(
            head.to_ascii_lowercase().contains("retry-after: 1"),
            "shed response lacks Retry-After: {head}"
        );
    }

    // Release a slot so the metrics fetch itself isn't shed, and give
    // the loop a tick to notice the close.
    drop(b);
    std::thread::sleep(Duration::from_millis(200));

    let m = ts.client().get("/metrics").unwrap().body;
    cold_obs::schema::validate_jsonl(&m).unwrap();
    assert_eq!(common::counter_in(&m, "serve.shed_conns"), 3);
    assert_eq!(common::counter_in(&m, "serve.shed"), 3);
    assert!(
        gauge_in(&m, "serve.open_conns_peak").unwrap_or(0.0) >= 2.0,
        "peak gauge never saw the cap"
    );
    // The capped connections still answer.
    assert_eq!(a.get("/healthz").unwrap().status, 200);
}

#[test]
fn connections_are_handed_across_io_loops() {
    let ts = TestServer::start_with_mode("epoll_handoff", IoMode::Epoll, |c| {
        c.io_threads = 2;
        c.workers = 2;
    });
    let mut c = ts.client();
    let reference = predict_score(&mut c);

    // More concurrent connections than loops: round-robin handoff puts
    // some on loop 1, whose completions travel back over its eventfd.
    let addr = ts.addr;
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = cold_serve::HttpClient::connect(addr, Duration::from_secs(10)).unwrap();
                let mut scores = Vec::new();
                for _ in 0..10 {
                    let r = c.post("/predict", PREDICT).unwrap();
                    assert_eq!(r.status, 200, "{}", r.body);
                    scores.push(num(json(&r.body).get("score").unwrap()));
                }
                (scores, c.reconnects())
            })
        })
        .collect();
    for h in handles {
        let (scores, reconnects) = h.join().unwrap();
        for s in scores {
            assert_eq!(s, reference, "score drifted across io loops");
        }
        assert_eq!(reconnects, 0, "keep-alive reuse must hold under epoll");
    }
    assert_eq!(ts.counter("serve.worker_panics"), 0);
}

#[test]
fn split_and_pipelined_requests_parse_incrementally() {
    let ts = TestServer::start_with_mode("epoll_pipeline", IoMode::Epoll, |_| {});

    // Two complete requests in one write: both answered, in order, on
    // the same connection.
    let mut s = TcpStream::connect(ts.addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.set_nodelay(true).unwrap();
    let one = "GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n";
    s.write_all(format!("{one}{one}").as_bytes()).unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while buf.windows(12).filter(|w| w == b"HTTP/1.1 200").count() < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "pipelined responses never arrived: {:?}",
            String::from_utf8_lossy(&buf)
        );
        if let Ok(n) = s.read(&mut chunk) {
            assert!(n > 0, "connection closed mid-pipeline");
            buf.extend_from_slice(&chunk[..n]);
        }
    }

    // One request split mid-header across two writes: the loop buffers
    // the partial (`serve.io_read_partial`) and finishes the parse when
    // the rest lands.
    let request = format!(
        "POST /predict HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{PREDICT}",
        PREDICT.len()
    );
    let (head, tail) = request.split_at(20);
    s.write_all(head.as_bytes()).unwrap();
    s.flush().unwrap();
    std::thread::sleep(Duration::from_millis(150));
    s.write_all(tail.as_bytes()).unwrap();
    let mut buf = [0u8; 4096];
    let n = s.read(&mut buf).unwrap();
    let head = String::from_utf8_lossy(&buf[..n]).to_string();
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");

    let m = ts.client().get("/metrics").unwrap().body;
    cold_obs::schema::validate_jsonl(&m).unwrap();
    assert!(
        common::counter_in(&m, "serve.io_read_partial") >= 1,
        "split request never counted as a partial read"
    );
    assert!(
        common::counter_in(&m, "serve.epoll_wakeups") >= 1,
        "event loop wakeups not visible in /metrics"
    );
    assert!(
        gauge_in(&m, "serve.open_conns").is_some(),
        "open-connection gauge missing"
    );
    assert!(
        gauge_in(&m, "serve.open_conns_peak").unwrap_or(0.0) >= 1.0,
        "open-connection peak never moved"
    );
}

#[test]
fn io_mode_parses_and_displays() {
    assert_eq!("epoll".parse::<IoMode>().unwrap(), IoMode::Epoll);
    assert_eq!("threads".parse::<IoMode>().unwrap(), IoMode::Threads);
    assert_eq!("THREAD".parse::<IoMode>().unwrap(), IoMode::Threads);
    assert!("kqueue".parse::<IoMode>().is_err());
    assert_eq!(IoMode::Epoll.to_string(), "epoll");
    assert_eq!(IoMode::Threads.to_string(), "threads");
}
