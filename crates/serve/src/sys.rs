//! Hand-rolled epoll/eventfd bindings — direct `extern "C"` syscall
//! declarations, no crates.io, per the workspace shims policy.
//!
//! Only what the readiness-driven transport ([`crate::epoll`]) needs:
//! an epoll instance with add/modify/delete/wait, and an eventfd used as
//! a cross-thread wakeup (scorer completions, connection handoff,
//! shutdown). Everything is wrapped in RAII types that close their fd on
//! drop; `epoll_wait` retries `EINTR` so callers never see spurious
//! interrupt errors.
//!
//! Linux-only by construction (`cfg(target_os = "linux")` at the module
//! declaration): on other platforms the thread-per-connection backend is
//! the fallback and this file is not compiled at all.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Readable (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`) — always reported, never needs arming.
pub const EPOLLERR: u32 = 0x008;
/// Peer hung up (`EPOLLHUP`).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// `struct epoll_event`. Packed on x86/x86_64, where the kernel ABI has
/// no padding between `events` and `data`.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bits (`EPOLL*`).
    pub events: u32,
    /// Caller-chosen token, handed back verbatim.
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed event, for sizing `epoll_wait` buffers.
    pub fn empty() -> Self {
        Self { events: 0, data: 0 }
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// One epoll instance; closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it out.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with the given interest bits and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest bits (and token) of a registered `fd`.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregister `fd`. Harmless if the fd is already gone.
    pub fn delete(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Wait for readiness, filling `events`; `None` blocks indefinitely.
    /// Sub-millisecond timeouts round *up* so a near deadline cannot
    /// degenerate into a busy spin. Retries `EINTR`.
    pub fn wait(&self, events: &mut [EpollEvent], timeout: Option<Duration>) -> io::Result<usize> {
        let ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as i32,
        };
        loop {
            // SAFETY: the buffer is valid for `events.len()` entries.
            let n = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd.
        unsafe { close(self.fd) };
    }
}

/// A nonblocking eventfd used as a one-way doorbell: any thread calls
/// [`EventFd::wake`], the owning event loop sees `EPOLLIN` and calls
/// [`EventFd::drain`]. Closed on drop.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// `eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    /// The raw fd, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Ring the doorbell. Infallible by design: the only failure mode of
    /// a nonblocking eventfd write is a saturated counter, which still
    /// leaves the fd readable — the wakeup is not lost.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: 8 valid bytes, as the eventfd contract requires.
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Clear the counter so level-triggered epoll stops reporting it.
    pub fn drain(&self) {
        let mut count: u64 = 0;
        // SAFETY: 8 valid bytes; EAGAIN (already drained) is fine.
        unsafe { read(self.fd, (&mut count as *mut u64).cast(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: we own the fd.
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_rings_through_epoll() {
        let ep = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        ep.add(efd.raw(), EPOLLIN, 7).unwrap();

        // Nothing pending: a zero-timeout wait returns empty.
        let mut events = vec![EpollEvent::empty(); 4];
        let n = ep.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert_eq!(n, 0);

        // Wake from "another thread", observe readiness with our token.
        efd.wake();
        let n = ep.wait(&mut events, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(n, 1);
        let (bits, token) = (events[0].events, events[0].data);
        assert_ne!(bits & EPOLLIN, 0);
        assert_eq!(token, 7);

        // Drained, the level-triggered readiness clears.
        efd.drain();
        let n = ep.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn modify_and_delete_are_honored() {
        let ep = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        ep.add(efd.raw(), EPOLLIN, 1).unwrap();
        efd.wake();
        // Interest swapped to write-only: the pending read no longer
        // reports (an eventfd is always writable, so EPOLLOUT fires —
        // the point is the token change proves MOD took effect).
        ep.modify(efd.raw(), EPOLLOUT, 2).unwrap();
        let mut events = vec![EpollEvent::empty(); 4];
        let n = ep.wait(&mut events, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(n, 1);
        let token = events[0].data;
        assert_eq!(token, 2);
        ep.delete(efd.raw());
        let n = ep.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert_eq!(n, 0);
    }
}
