//! # cold-serve — an HTTP prediction API over a fitted COLD model
//!
//! Turns a trained model (ideally the `cold-model/v1` binary artifact,
//! opened zero-copy through [`cold_core::ModelView`]) into a long-running
//! prediction service, hand-rolled over `std::net` — the build
//! environment has no crates.io, and the workspace's no-external-deps
//! rule holds for the server too.
//!
//! ## Endpoints
//!
//! | Route | Method | Body | Answer |
//! |---|---|---|---|
//! | `/predict` | POST | `{"publisher":u,"consumer":u,"words":[...]}` | Eq. 7 diffusion score |
//! | `/rank-influencers` | POST | `{"topic":k,"limit":n}` | top users by outgoing influence on `k` |
//! | `/communities/:user` | GET | — | `TopComm(i)` + full `π_i` row |
//! | `/healthz` | GET | — | model shape, backing, uptime, generation, degraded state |
//! | `/metrics` | GET | — | `cold-obs/v1` JSONL snapshot |
//! | `/reload` | POST | `{}` or `{"model": path}` | verify + atomically swap in a new artifact |
//! | `/shutdown` | POST | — | graceful stop (in-band SIGTERM) |
//!
//! `words` entries are word ids, or strings when the server was started
//! with a vocabulary. Caller mistakes (unknown user/word/topic, malformed
//! JSON) come back as HTTP 400 with `{"error": ...}` — the predict path
//! is `Result`-typed end to end ([`cold_core::PredictError`]), so no
//! request can panic a worker.
//!
//! ## Shape
//!
//! [`app::App`] holds the loaded state (model view, predictor with the
//! precomputed `ζ` tensor and `TopComm` caches, per-topic influencer
//! rankings); [`server::Server`] owns the sockets through one of two
//! transports ([`server::IoMode`]). The default thread transport runs an
//! acceptor feeding a fixed worker pool, one thread per live connection,
//! with `/predict` scoring micro-batched on a single batcher thread. The
//! epoll transport (Linux; [`ServeConfig::io_threads`]) multiplexes every
//! connection onto a few event loops over a hand-rolled `epoll`/`eventfd`
//! binding — nonblocking per-connection state machines, buffered writes,
//! deadlines enforced by timer ticks — and the worker pool becomes pure
//! CPU scorers, so thread count no longer scales with connections.
//! [`client::HttpClient`] is the minimal persistent keep-alive client
//! used by the integration tests and the `bench_serve` load generator
//! (reconnects are counted, not silent). Latency lands in
//! `serve.*_seconds` histograms (p50/p95/p99) via `cold-obs`.
//!
//! ## Robustness
//!
//! The transport layer is built to survive hostile networks and its own
//! bugs: bounded connection and predict queues shed overload with `503` +
//! `Retry-After` ([`ServeConfig::max_conns`] / [`ServeConfig::max_queue`]),
//! a per-request deadline covers parse → batch → reply
//! ([`ServeConfig::request_timeout`]), panicking handlers are contained
//! per-connection and crashed workers respawned under a breaker
//! ([`ServeConfig::respawn_limit`]), and `POST /reload` atomically swaps
//! a verified new artifact into the [`app::AppSlot`] without dropping
//! traffic. The [`chaos`] module (feature `chaos`, always on in tests)
//! injects seeded network faults to prove all of it.

pub mod app;
#[cfg(any(test, feature = "chaos"))]
pub mod chaos;
pub mod client;
#[cfg(target_os = "linux")]
mod epoll;
pub mod http;
pub mod server;
#[cfg(target_os = "linux")]
mod sys;

pub use app::{App, AppSlot, ReloadOutcome, ServeError};
pub use client::{HttpClient, Response};
pub use server::{IoMode, ServeConfig, Server};
