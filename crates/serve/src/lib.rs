//! # cold-serve — an HTTP prediction API over a fitted COLD model
//!
//! Turns a trained model (ideally the `cold-model/v1` binary artifact,
//! opened zero-copy through [`cold_core::ModelView`]) into a long-running
//! prediction service, hand-rolled over `std::net` — the build
//! environment has no crates.io, and the workspace's no-external-deps
//! rule holds for the server too.
//!
//! ## Endpoints
//!
//! | Route | Method | Body | Answer |
//! |---|---|---|---|
//! | `/predict` | POST | `{"publisher":u,"consumer":u,"words":[...]}` | Eq. 7 diffusion score |
//! | `/rank-influencers` | POST | `{"topic":k,"limit":n}` | top users by outgoing influence on `k` |
//! | `/communities/:user` | GET | — | `TopComm(i)` + full `π_i` row |
//! | `/healthz` | GET | — | model shape, backing, uptime |
//! | `/metrics` | GET | — | `cold-obs/v1` JSONL snapshot |
//! | `/shutdown` | POST | — | graceful stop (in-band SIGTERM) |
//!
//! `words` entries are word ids, or strings when the server was started
//! with a vocabulary. Caller mistakes (unknown user/word/topic, malformed
//! JSON) come back as HTTP 400 with `{"error": ...}` — the predict path
//! is `Result`-typed end to end ([`cold_core::PredictError`]), so no
//! request can panic a worker.
//!
//! ## Shape
//!
//! [`app::App`] holds the loaded state (model view, predictor with the
//! precomputed `ζ` tensor and `TopComm` caches, per-topic influencer
//! rankings); [`server::Server`] owns the sockets: an acceptor, a fixed
//! worker pool, and a `/predict` micro-batcher. [`client::HttpClient`] is
//! the minimal keep-alive client used by the integration tests and the
//! `bench_serve` load generator. Latency lands in `serve.*_seconds`
//! histograms (p50/p95/p99) via `cold-obs`.

pub mod app;
pub mod client;
pub mod http;
pub mod server;

pub use app::{App, ServeError};
pub use client::{HttpClient, Response};
pub use server::{ServeConfig, Server};
