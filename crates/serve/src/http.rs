//! Minimal HTTP/1.1 framing over `std::net`.
//!
//! Just enough of RFC 9112 for a JSON API: request-line + headers +
//! `Content-Length` bodies on the way in, fixed-length responses on the
//! way out. No chunked transfer, no TLS, no pipelining (requests on a
//! connection are handled strictly in order, which is what every
//! mainstream client does anyway). Keep-alive follows the HTTP/1.1
//! default (persistent unless `Connection: close`; HTTP/1.0 is the
//! reverse).
//!
//! Two consumers share the grammar. The blocking path
//! ([`read_request`]) polls with a short socket timeout so a worker
//! blocked on an idle keep-alive connection still notices server
//! shutdown within one poll interval — the price of doing graceful
//! shutdown with blocking sockets and no `select(2)`. The resumable path
//! ([`try_parse`]) parses straight out of an accumulated byte buffer and
//! reports how much it consumed, which is what a readiness-driven
//! (epoll) transport needs: feed it whatever the socket had, get back a
//! request or "not yet".

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Largest accepted request line or single header line, in bytes.
const MAX_LINE: usize = 8 * 1024;

/// Largest accepted header count.
const MAX_HEADERS: usize = 64;

/// The per-request deadline, armed by the request's first byte.
///
/// A fresh clock is created for every request on a connection: time spent
/// *idle* on a keep-alive connection costs nothing, but once the client
/// has started sending a request, the whole parse → batch → reply span
/// must finish inside the configured timeout. The read loops check
/// [`RequestClock::expired`] at every socket-timeout poll, so a slowloris
/// writer is cut off within one poll interval of the deadline; the
/// handler path checks [`RequestClock::remaining`] before waiting on the
/// batcher.
#[derive(Debug, Clone)]
pub struct RequestClock {
    timeout: Option<Duration>,
    started: Option<Instant>,
}

impl RequestClock {
    /// A clock with the given budget; `None` disables the deadline.
    pub fn new(timeout: Option<Duration>) -> Self {
        Self {
            timeout,
            started: None,
        }
    }

    /// Arm the clock (idempotent) — called when request bytes first land.
    pub fn mark(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    /// The absolute deadline, once armed.
    pub fn deadline(&self) -> Option<Instant> {
        Some(self.started? + self.timeout?)
    }

    /// Whether the armed deadline has passed.
    pub fn expired(&self) -> bool {
        self.deadline().is_some_and(|d| Instant::now() >= d)
    }

    /// Budget left for the rest of the request; `None` means unbounded.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline()
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Path component of the target, e.g. `/communities/3`.
    pub path: String,
    /// Lowercased header name/value pairs, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should persist after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a (lowercase) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why reading a request off a connection stopped.
#[derive(Debug)]
pub enum ReadError {
    /// Peer closed (or server shutdown interrupted an idle wait) —
    /// not an error, just the end of the connection.
    Closed,
    /// The bytes were not a parseable HTTP request → respond 400.
    BadRequest(String),
    /// Declared body length exceeds the configured cap → respond 413.
    BodyTooLarge {
        /// What the request declared.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The request's deadline passed before it was fully read → respond
    /// 408 and free the worker slot.
    TimedOut,
    /// Transport failure mid-request.
    Io(std::io::Error),
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Read one CRLF- (or bare-LF-) terminated line, polling through socket
/// timeouts until `shutdown` is raised. Partial bytes accumulated before
/// a timeout are kept (both in `line` and in the `BufReader`), so slow
/// writers are handled correctly.
fn read_line(
    reader: &mut BufReader<&TcpStream>,
    line: &mut Vec<u8>,
    shutdown: &AtomicBool,
    clock: &mut RequestClock,
) -> Result<(), ReadError> {
    loop {
        match reader.read_until(b'\n', line) {
            Ok(0) => {
                return Err(if line.is_empty() {
                    ReadError::Closed
                } else {
                    ReadError::BadRequest("connection closed mid-line".into())
                });
            }
            Ok(_) => {
                clock.mark();
                // Strip the terminator.
                if line.last() == Some(&b'\n') {
                    line.pop();
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                }
                return Ok(());
            }
            Err(e) if is_timeout(&e) => {
                // read_until may have consumed partial bytes before the
                // poll timeout — that still arms the request deadline.
                if !line.is_empty() {
                    clock.mark();
                }
                if shutdown.load(Ordering::Acquire) {
                    return Err(ReadError::Closed);
                }
                if clock.expired() {
                    return Err(ReadError::TimedOut);
                }
                if line.len() > MAX_LINE {
                    return Err(ReadError::BadRequest(format!(
                        "header line exceeds {MAX_LINE} bytes"
                    )));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
}

/// `read_exact` with the same timeout-polling contract as [`read_line`].
fn read_full(
    reader: &mut BufReader<&TcpStream>,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    clock: &mut RequestClock,
) -> Result<(), ReadError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(ReadError::BadRequest("connection closed mid-body".into())),
            Ok(n) => {
                filled += n;
                clock.mark();
            }
            Err(e) if is_timeout(&e) => {
                if shutdown.load(Ordering::Acquire) {
                    return Err(ReadError::Closed);
                }
                if clock.expired() {
                    return Err(ReadError::TimedOut);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    Ok(())
}

/// Parse `METHOD target HTTP/1.x` → `(method, target, is_http11)`.
fn parse_request_line(text: &str) -> Result<(&str, &str, bool), ReadError> {
    let mut parts = text.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(ReadError::BadRequest(format!(
                "malformed request line: {text:?}"
            )))
        }
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(ReadError::BadRequest(format!(
                "unsupported protocol version {other:?}"
            )))
        }
    };
    Ok((method, target, http11))
}

/// Parse one `Name: value` header line into lowercase-name/trimmed-value.
fn parse_header_line(text: &str) -> Result<(String, String), ReadError> {
    let (name, value) = text
        .split_once(':')
        .ok_or_else(|| ReadError::BadRequest(format!("malformed header line: {text:?}")))?;
    Ok((name.trim().to_ascii_lowercase(), value.trim().to_owned()))
}

/// Declared body length (0 when absent), bounds-checked against the cap.
fn content_length_of(headers: &[(String, String)], max_body: usize) -> Result<usize, ReadError> {
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ReadError::BadRequest(format!("bad content-length: {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(ReadError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    Ok(content_length)
}

/// Assemble the [`Request`] once method/target/headers/body are in hand.
fn finish_request(
    method: &str,
    target: &str,
    http11: bool,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
) -> Request {
    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => http11,
    };
    // Split the query string off; endpoints here don't use one.
    let path = target.split('?').next().unwrap_or(target).to_owned();
    Request {
        method: method.to_owned(),
        path,
        headers,
        body,
        keep_alive,
    }
}

/// Read and parse one request. `Err(ReadError::Closed)` is the normal end
/// of a keep-alive connection.
pub fn read_request(
    reader: &mut BufReader<&TcpStream>,
    max_body: usize,
    shutdown: &AtomicBool,
    clock: &mut RequestClock,
) -> Result<Request, ReadError> {
    let mut line = Vec::new();
    read_line(reader, &mut line, shutdown, clock)?;
    if line.len() > MAX_LINE {
        return Err(ReadError::BadRequest(format!(
            "request line exceeds {MAX_LINE} bytes"
        )));
    }
    let text = String::from_utf8(line)
        .map_err(|_| ReadError::BadRequest("request line is not UTF-8".into()))?;
    let (method, target, http11) = parse_request_line(&text)?;

    let mut headers = Vec::new();
    loop {
        let mut line = Vec::new();
        read_line(reader, &mut line, shutdown, clock)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ReadError::BadRequest(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let text = String::from_utf8(line)
            .map_err(|_| ReadError::BadRequest("header line is not UTF-8".into()))?;
        headers.push(parse_header_line(&text)?);
    }

    let content_length = content_length_of(&headers, max_body)?;
    let mut body = vec![0u8; content_length];
    read_full(reader, &mut body, shutdown, clock)?;

    Ok(finish_request(method, target, http11, headers, body))
}

/// Try to parse one complete request from the front of `buf`.
///
/// The resumable entry point for readiness-driven transports: the caller
/// accumulates socket bytes in a buffer and re-invokes this after every
/// read. `Ok(None)` means "incomplete — keep the bytes and wait for
/// more"; `Ok(Some((request, consumed)))` hands back the request plus how
/// many bytes it spanned, so the caller can drain them and leave any
/// pipelined follow-up request in place. Errors map exactly like the
/// blocking path: 400 for grammar violations, 413 via
/// [`ReadError::BodyTooLarge`] for an oversized declared body.
///
/// Grammar limits are enforced *incrementally* — an over-long line or an
/// over-long header block is rejected as soon as the buffer proves it,
/// not once a terminator arrives, so a hostile peer cannot grow the
/// buffer beyond the caps by simply never finishing a line.
pub fn try_parse(buf: &[u8], max_body: usize) -> Result<Option<(Request, usize)>, ReadError> {
    // Walk the header block line by line.
    let mut start = 0usize; // byte offset where the current line begins
    let mut lines: Vec<&[u8]> = Vec::new();
    let head_end = loop {
        let Some(nl) = buf[start..].iter().position(|&b| b == b'\n') else {
            // No terminator yet: partial line. Reject it already if it
            // cannot possibly fit the line cap.
            if buf.len() - start > MAX_LINE {
                return Err(if lines.is_empty() {
                    ReadError::BadRequest(format!("request line exceeds {MAX_LINE} bytes"))
                } else {
                    ReadError::BadRequest(format!("header line exceeds {MAX_LINE} bytes"))
                });
            }
            return Ok(None);
        };
        let end = start + nl;
        let mut line = &buf[start..end];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        if line.len() > MAX_LINE {
            return Err(if lines.is_empty() {
                ReadError::BadRequest(format!("request line exceeds {MAX_LINE} bytes"))
            } else {
                ReadError::BadRequest(format!("header line exceeds {MAX_LINE} bytes"))
            });
        }
        if line.is_empty() && !lines.is_empty() {
            break end + 1; // blank line: end of the header block
        }
        if !lines.is_empty() && lines.len() > MAX_HEADERS {
            return Err(ReadError::BadRequest(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        lines.push(line);
        start = end + 1;
    };

    let text = std::str::from_utf8(lines[0])
        .map_err(|_| ReadError::BadRequest("request line is not UTF-8".into()))?;
    let (method, target, http11) = parse_request_line(text)?;
    let mut headers = Vec::with_capacity(lines.len() - 1);
    for raw in &lines[1..] {
        let text = std::str::from_utf8(raw)
            .map_err(|_| ReadError::BadRequest("header line is not UTF-8".into()))?;
        headers.push(parse_header_line(text)?);
    }

    let content_length = content_length_of(&headers, max_body)?;
    if buf.len() < head_end + content_length {
        return Ok(None); // body still in flight
    }
    let body = buf[head_end..head_end + content_length].to_vec();
    Ok(Some((
        finish_request(method, target, http11, headers, body),
        head_end + content_length,
    )))
}

/// Reason phrase for the handful of statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete fixed-length response.
pub fn write_response(
    stream: &TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_ext(stream, status, content_type, body, keep_alive, None)
}

/// [`write_response`] with an optional `Retry-After` header — the shed
/// path's way of telling well-behaved clients when to come back.
pub fn write_response_ext(
    stream: &TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    retry_after_secs: Option<u64>,
) -> std::io::Result<()> {
    let out = format_response(status, content_type, body, keep_alive, retry_after_secs);
    let mut w = stream;
    w.write_all(&out)?;
    w.flush()
}

/// Serialize a complete fixed-length response into a byte buffer — the
/// building block both write paths share. The epoll transport queues
/// these bytes on the connection and flushes them as the socket reports
/// writability.
pub fn format_response(
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    retry_after_secs: Option<u64>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // Writing into a Vec is infallible.
    let _ = write!(
        out,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
        reason(status),
        body.len(),
    );
    if let Some(secs) = retry_after_secs {
        let _ = write!(out, "retry-after: {secs}\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::AtomicBool;

    fn roundtrip(raw: &[u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        client.flush().unwrap();
        let (server, _) = listener.accept().unwrap();
        server
            .set_read_timeout(Some(std::time::Duration::from_millis(50)))
            .unwrap();
        let shutdown = AtomicBool::new(false);
        let mut reader = BufReader::new(&server);
        let mut clock = RequestClock::new(None);
        read_request(&mut reader, 1024, &shutdown, &mut clock)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn connection_close_is_honored() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn malformed_request_line_is_bad_request() {
        let err = roundtrip(b"NONSENSE\r\n\r\n").unwrap_err();
        assert!(matches!(err, ReadError::BadRequest(_)), "{err:?}");
    }

    #[test]
    fn oversized_body_is_rejected_by_declared_length() {
        let err =
            roundtrip(b"POST /predict HTTP/1.1\r\nContent-Length: 999999\r\n\r\n").unwrap_err();
        assert!(
            matches!(
                err,
                ReadError::BodyTooLarge {
                    declared: 999999,
                    limit: 1024
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn query_strings_are_split_off() {
        let req = roundtrip(b"GET /healthz?verbose=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn stalled_request_times_out_once_the_clock_is_armed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        // Half a request line, then silence: the first byte arms the
        // deadline and the poll loop must surface TimedOut.
        client.write_all(b"POST /pred").unwrap();
        client.flush().unwrap();
        let (server, _) = listener.accept().unwrap();
        server
            .set_read_timeout(Some(std::time::Duration::from_millis(10)))
            .unwrap();
        let shutdown = AtomicBool::new(false);
        let mut reader = BufReader::new(&server);
        let mut clock = RequestClock::new(Some(Duration::from_millis(60)));
        let t0 = Instant::now();
        let err = read_request(&mut reader, 1024, &shutdown, &mut clock).unwrap_err();
        assert!(matches!(err, ReadError::TimedOut), "{err:?}");
        assert!(t0.elapsed() < Duration::from_secs(2), "timed out too late");
        // An idle connection (no bytes at all) never arms the clock.
        let clock = RequestClock::new(Some(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(5));
        assert!(!clock.expired());
        assert_eq!(clock.deadline(), None);
    }

    #[test]
    fn retry_after_header_is_emitted_on_request() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        write_response_ext(&server, 503, "application/json", b"{}", false, Some(2)).unwrap();
        drop(server);
        let mut raw = String::new();
        let mut r = BufReader::new(client);
        r.read_to_string(&mut raw).unwrap();
        assert!(
            raw.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{raw}"
        );
        assert!(raw.contains("retry-after: 2\r\n"), "{raw}");
        assert!(raw.ends_with("\r\n\r\n{}"), "{raw}");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }

    const RAW: &[u8] = b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";

    #[test]
    fn try_parse_complete_request() {
        let (req, consumed) = try_parse(RAW, 1024).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
        assert_eq!(consumed, RAW.len());
    }

    #[test]
    fn try_parse_is_resumable_byte_by_byte() {
        // Every proper prefix is Partial; the full buffer parses. This is
        // the exact contract the epoll read loop leans on.
        for cut in 0..RAW.len() {
            assert!(
                try_parse(&RAW[..cut], 1024).unwrap().is_none(),
                "prefix of {cut} bytes parsed too early"
            );
        }
        assert!(try_parse(RAW, 1024).unwrap().is_some());
    }

    #[test]
    fn try_parse_leaves_pipelined_bytes_for_the_next_round() {
        let mut two = RAW.to_vec();
        two.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        let (first, consumed) = try_parse(&two, 1024).unwrap().unwrap();
        assert_eq!(first.method, "POST");
        let (second, rest) = try_parse(&two[consumed..], 1024).unwrap().unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/healthz");
        assert_eq!(consumed + rest, two.len());
    }

    #[test]
    fn try_parse_rejects_what_the_blocking_parser_rejects() {
        let err = try_parse(b"NONSENSE\r\n\r\n", 1024).unwrap_err();
        assert!(matches!(err, ReadError::BadRequest(_)), "{err:?}");
        let err = try_parse(b"POST /p HTTP/1.1\r\nContent-Length: 9999\r\n\r\n", 1024).unwrap_err();
        assert!(
            matches!(
                err,
                ReadError::BodyTooLarge {
                    declared: 9999,
                    limit: 1024
                }
            ),
            "{err:?}"
        );
        let err = try_parse(b"GET / HTTP/2\r\n\r\n", 1024).unwrap_err();
        assert!(matches!(err, ReadError::BadRequest(_)), "{err:?}");
    }

    #[test]
    fn try_parse_caps_unterminated_lines() {
        // A request line that can no longer fit the cap is rejected even
        // without its terminator — the buffer must not grow unboundedly.
        let flood = vec![b'A'; MAX_LINE + 2];
        let err = try_parse(&flood, 1024).unwrap_err();
        assert!(matches!(err, ReadError::BadRequest(_)), "{err:?}");
        // Just under the cap stays Partial.
        assert!(try_parse(&flood[..MAX_LINE], 1024).unwrap().is_none());
    }

    #[test]
    fn format_response_matches_the_streaming_writer() {
        let bytes = format_response(503, "application/json", b"{}", false, Some(2));
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("connection: close\r\n"), "{text}");
        assert!(text.contains("retry-after: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }
}
