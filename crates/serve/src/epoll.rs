//! The readiness-driven transport (Linux): a small pool of epoll event
//! loops owns every socket; the scorer pool never touches one.
//!
//! ```text
//!                       ┌────────────────┐   Job (bounded)  ┌──────────┐
//!   listener ──────────▶│ io loop 0      │─────────────────▶│ scorer 0 │
//!   (loop 0, nonblock)  │  conns: {...}  │◀───┐             │   ...    │
//!          round-robin  ├────────────────┤    │ Completion  │ scorer N │
//!          handoff ────▶│ io loop 1..N   │────┴── eventfd ──└──────────┘
//!                       └────────────────┘
//! ```
//!
//! Each loop runs a per-connection state machine:
//!
//! ```text
//!            readable: buffer bytes, try_parse
//!   ┌─────────┐──────── complete /predict ────────▶┌───────────────┐
//!   │ Reading │                                    │ AwaitingScore │
//!   │         │◀─── completion (or deadline) ──────│  (job queued) │
//!   └─────────┘      response queued on write_buf  └───────────────┘
//!        │ any other request: route inline, queue response
//!        ▼ writable: flush write_buf, then parse pipelined bytes
//! ```
//!
//! Interest management is deliberately minimal (level-triggered, no
//! `EPOLLET`): every connection is armed `EPOLLIN | EPOLLRDHUP` for its
//! whole life, `EPOLLOUT` is added only while a response is partially
//! written (`serve.io_write_partial` counts those) and dropped as soon
//! as the buffer drains, and the only other `MOD` is a read-side pause
//! when a client pipelines more than [`PIPELINE_CAP`] bytes behind an
//! in-flight `/predict` — the epoll analogue of the thread transport's
//! TCP backpressure (it simply stops `read()`ing while scoring).
//!
//! Deadlines move from read-timeout polling onto the epoll timer tick:
//! `epoll_wait` sleeps no longer than the nearest armed deadline (capped
//! by [`POLL_INTERVAL`]) and a sweep then answers expired requests — a
//! stalled upload gets `408`, a score the pool couldn't produce in time
//! gets `503` + `Retry-After`, a peer that stops reading its response is
//! closed (`serve.write_timeouts`). A slowloris therefore costs one
//! buffer and one timer entry, never a thread.
//!
//! Metric accounting is bit-identical to the thread transport by
//! construction: both funnel through [`count_status`], both count
//! `serve.connections_total` at accept and `serve.requests_total` at
//! parse, and `serve.predict_seconds` spans dispatch → reply either way.

use crate::http::{self, ReadError, RequestClock};
use crate::server::{
    count_status, route_async, shed_body, shed_conn, Job, PredictJob, ReplySink, RouteOutcome,
    ServiceCtx, FALLBACK_WRITE_TIMEOUT, JSON, POLL_INTERVAL, RETRY_AFTER_SECS,
};
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use cold_core::PredictError;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token for the listening socket (loop 0 only).
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token for the loop's wakeup eventfd.
const TOKEN_WAKE: u64 = u64::MAX - 1;
/// Bytes read per readiness event; level-triggered epoll re-reports
/// until the socket is drained, so one bounded read per wakeup is fair
/// to the other connections on the loop.
const READ_CHUNK: usize = 64 * 1024;
/// Read-side pause threshold while a `/predict` is in flight: a client
/// may pipeline this many buffered bytes before the loop stops reading
/// from it until the score comes back.
const PIPELINE_CAP: usize = 256 * 1024;

/// Where a scorer posts a finished `/predict` for a loop-owned
/// connection: push the completion, ring the loop's eventfd.
pub(crate) struct CompletionSink {
    shared: Arc<LoopShared>,
    conn: u64,
    seq: u64,
}

impl CompletionSink {
    pub(crate) fn send(self, result: Result<f64, PredictError>) {
        self.shared
            .completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Completion {
                conn: self.conn,
                seq: self.seq,
                result,
            });
        self.shared.wake.wake();
    }
}

/// The cross-thread face of one event loop: anything that must reach it
/// (accepted-connection handoff, scorer completions, shutdown) goes
/// through here and rings the eventfd.
struct LoopShared {
    wake: Arc<EventFd>,
    inbox: Mutex<Vec<TcpStream>>,
    completions: Mutex<Vec<Completion>>,
}

struct Completion {
    conn: u64,
    /// Must match the connection's current sequence number — a reply to
    /// a request the loop already answered (deadline 503) is discarded.
    seq: u64,
    result: Result<f64, PredictError>,
}

/// What a connection is doing between readiness events.
enum ConnPhase {
    /// Accumulating request bytes (or idle keep-alive).
    Reading,
    /// A `/predict` job is queued on the scorer pool; everything needed
    /// to answer when the completion lands (or the deadline fires).
    AwaitingScore {
        app: Arc<crate::app::App>,
        publisher: u32,
        consumer: u32,
        t0: Instant,
        keep_alive: bool,
    },
}

struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already on the wire.
    written: usize,
    phase: ConnPhase,
    /// Armed by the request's first byte, spanning parse → score → reply.
    clock: RequestClock,
    /// Bumped per answered request; stale completions don't match.
    seq: u64,
    /// Close once `write_buf` drains (`connection: close` responses).
    close_after_write: bool,
    /// `EPOLLOUT` currently armed.
    want_write: bool,
    /// `EPOLLIN` currently armed (dropped only at [`PIPELINE_CAP`]).
    want_read: bool,
    /// Bound on flushing the current `write_buf`.
    write_deadline: Option<Instant>,
    /// Peer sent EOF; serve what is buffered, then close.
    peer_closed: bool,
}

impl Conn {
    fn new(stream: TcpStream, timeout: Option<Duration>) -> Self {
        Self {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            phase: ConnPhase::Reading,
            clock: RequestClock::new(timeout),
            seq: 0,
            close_after_write: false,
            want_write: false,
            want_read: true,
            write_deadline: None,
            peer_closed: false,
        }
    }

    fn interest(&self) -> u32 {
        let mut bits = EPOLLRDHUP;
        if self.want_read {
            bits |= EPOLLIN;
        }
        if self.want_write {
            bits |= EPOLLOUT;
        }
        bits
    }

    fn write_pending(&self) -> bool {
        self.written < self.write_buf.len()
    }
}

struct EventLoop {
    idx: usize,
    ep: Epoll,
    shared: Arc<LoopShared>,
    peers: Vec<Arc<LoopShared>>,
    /// Round-robin cursor for connection handoff, shared by all loops
    /// (only loop 0 accepts, but the counter surviving a loop is cheap).
    rr: Arc<AtomicUsize>,
    listener: Option<TcpListener>,
    svc: Arc<ServiceCtx>,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    live_loops: Arc<AtomicUsize>,
    draining: bool,
    drain_deadline: Option<Instant>,
}

/// Spawn `io_threads` event loops. Loop 0 owns the (nonblocking)
/// listener and hands accepted connections round-robin across the pool;
/// every loop registers its eventfd as a shutdown waker first, so a
/// trigger always lands.
pub(crate) fn spawn_loops(
    svc: &Arc<ServiceCtx>,
    listener: TcpListener,
    io_threads: usize,
    live_loops: &Arc<AtomicUsize>,
) -> std::io::Result<Vec<JoinHandle<()>>> {
    let mut shareds = Vec::with_capacity(io_threads);
    for _ in 0..io_threads {
        let shared = Arc::new(LoopShared {
            wake: Arc::new(EventFd::new()?),
            inbox: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
        });
        svc.shutdown.add_waker(Arc::clone(&shared.wake));
        shareds.push(shared);
    }
    let rr = Arc::new(AtomicUsize::new(0));
    let mut listener = Some(listener);
    let mut handles = Vec::with_capacity(io_threads);
    for idx in 0..io_threads {
        let el = EventLoop {
            idx,
            ep: Epoll::new()?,
            shared: Arc::clone(&shareds[idx]),
            peers: shareds.clone(),
            rr: Arc::clone(&rr),
            listener: if idx == 0 { listener.take() } else { None },
            svc: Arc::clone(svc),
            conns: HashMap::new(),
            next_conn: 0,
            live_loops: Arc::clone(live_loops),
            draining: false,
            drain_deadline: None,
        };
        handles.push(
            std::thread::Builder::new()
                .name(format!("cold-serve-io-{idx}"))
                .spawn(move || el.run())?,
        );
    }
    Ok(handles)
}

impl EventLoop {
    fn run(mut self) {
        // Registration failures here mean epoll itself is broken; the
        // panic surfaces as `serve.io_loop_panics` + degraded.
        self.ep
            .add(self.shared.wake.raw(), EPOLLIN, TOKEN_WAKE)
            .expect("cannot register loop eventfd");
        if let Some(l) = &self.listener {
            self.ep
                .add(l.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
                .expect("cannot register listener");
        }
        let mut events = vec![EpollEvent::empty(); 256];
        loop {
            if self.svc.shutdown.is_set() && !self.draining {
                self.begin_drain();
            }
            if self.draining
                && (self.conns.is_empty()
                    || self.drain_deadline.is_some_and(|d| Instant::now() >= d))
            {
                break;
            }
            let timeout = self.next_timeout();
            let n = match self.ep.wait(&mut events, Some(timeout)) {
                Ok(n) => n,
                Err(_) => continue,
            };
            self.svc.metrics.counter_add("serve.epoll_wakeups", 1);
            for ev in &events[..n] {
                // Copy out of the (possibly packed) struct before use.
                let (token, bits) = (ev.data, ev.events);
                match token {
                    TOKEN_WAKE => self.on_wake(),
                    TOKEN_LISTENER => self.on_accept(),
                    id => self.on_conn_event(id, bits),
                }
            }
            self.expire_deadlines();
        }
        // Force-close whatever the drain deadline cut off.
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.close_conn(id);
        }
        self.reject_inbox();
        self.live_loops.fetch_sub(1, Ordering::AcqRel);
    }

    /// The nearest armed deadline bounds the sleep (timer-tick
    /// discipline); [`POLL_INTERVAL`] is the ceiling either way.
    fn next_timeout(&self) -> Duration {
        let mut nearest: Option<Instant> = self.drain_deadline;
        let mut consider = |d: Option<Instant>| {
            if let Some(d) = d {
                nearest = Some(match nearest {
                    Some(n) => n.min(d),
                    None => d,
                });
            }
        };
        for conn in self.conns.values() {
            consider(conn.clock.deadline());
            if conn.write_pending() {
                consider(conn.write_deadline);
            }
        }
        match nearest {
            Some(d) => d
                .saturating_duration_since(Instant::now())
                .min(POLL_INTERVAL),
            None => POLL_INTERVAL,
        }
    }

    fn on_accept(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let metrics = &self.svc.metrics;
                    metrics.counter_add("serve.connections_total", 1);
                    // The live open-connection count is the shed bound
                    // here — the epoll analogue of a full accept queue.
                    if self.svc.open_conns.count() >= self.svc.max_conns as i64 {
                        shed_conn(metrics, &stream);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.svc.open_conns.inc();
                    let target = self.rr.fetch_add(1, Ordering::Relaxed) % self.peers.len();
                    if target == self.idx {
                        self.register_conn(stream);
                    } else {
                        let peer = &self.peers[target];
                        peer.inbox
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(stream);
                        peer.wake.wake();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return, // WouldBlock: drained the backlog
            }
        }
    }

    /// Adopt a connection (locally accepted or handed off by loop 0).
    /// The open-connection gauge was already bumped at accept.
    fn register_conn(&mut self, stream: TcpStream) {
        let id = self.next_conn;
        self.next_conn += 1;
        let fd = stream.as_raw_fd();
        let conn = Conn::new(stream, self.svc.request_timeout);
        if self.ep.add(fd, conn.interest(), id).is_err() {
            self.svc.open_conns.dec();
            return;
        }
        self.conns.insert(id, conn);
    }

    fn on_wake(&mut self) {
        self.shared.wake.drain();
        let handed: Vec<TcpStream> = std::mem::take(
            &mut *self
                .shared
                .inbox
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for stream in handed {
            if self.draining {
                self.svc.open_conns.dec();
            } else {
                self.register_conn(stream);
            }
        }
        let done: Vec<Completion> = std::mem::take(
            &mut *self
                .shared
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for completion in done {
            self.on_completion(completion);
        }
    }

    fn on_conn_event(&mut self, id: u64, bits: u32) {
        if !self.conns.contains_key(&id) {
            return; // stale event for a connection closed this batch
        }
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(id);
            return;
        }
        if bits & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.on_readable(id);
        } else if bits & EPOLLOUT != 0 {
            self.advance(id, false);
        }
    }

    /// One bounded read; level-triggered epoll re-reports leftovers.
    fn on_readable(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        let mut scratch = [0u8; READ_CHUNK];
        match (&conn.stream).read(&mut scratch) {
            Ok(0) => conn.peer_closed = true,
            Ok(n) => {
                conn.read_buf.extend_from_slice(&scratch[..n]);
                conn.clock.mark();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                return
            }
            Err(_) => {
                // Transport failure mid-request: same silent close as the
                // thread transport's `ReadError::Io`.
                self.close_conn(id);
                return;
            }
        }
        self.advance(id, true);
    }

    /// The per-connection driver: flush, parse, dispatch, repeat. One
    /// iterative loop (never recursion) so a pipelined burst of requests
    /// costs stack O(1).
    fn advance(&mut self, id: u64, after_read: bool) {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };

            // 1. Flush queued response bytes.
            if conn.write_pending() {
                loop {
                    match (&conn.stream).write(&conn.write_buf[conn.written..]) {
                        Ok(0) => {
                            self.close_conn(id);
                            return;
                        }
                        Ok(n) => {
                            conn.written += n;
                            if !conn.write_pending() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            // Socket buffer full: arm EPOLLOUT and come
                            // back when the peer drains it.
                            self.svc.metrics.counter_add("serve.io_write_partial", 1);
                            if !conn.want_write {
                                conn.want_write = true;
                                let fd = conn.stream.as_raw_fd();
                                let interest = conn.interest();
                                let _ = self.ep.modify(fd, interest, id);
                            }
                            return;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            self.close_conn(id);
                            return;
                        }
                    }
                }
                conn.write_buf.clear();
                conn.written = 0;
                conn.write_deadline = None;
                if conn.want_write {
                    conn.want_write = false;
                    let fd = conn.stream.as_raw_fd();
                    let interest = conn.interest();
                    let _ = self.ep.modify(fd, interest, id);
                }
                if conn.close_after_write {
                    self.close_conn(id);
                    return;
                }
                continue; // re-fetch: state may allow the next request now
            }

            // 2. A queued score answers this connection, not the parser.
            if matches!(conn.phase, ConnPhase::AwaitingScore { .. }) {
                if conn.read_buf.len() >= PIPELINE_CAP && conn.want_read {
                    // Backpressure a hyper-pipeliner: stop reading until
                    // the in-flight score is answered.
                    conn.want_read = false;
                    let fd = conn.stream.as_raw_fd();
                    let interest = conn.interest();
                    let _ = self.ep.modify(fd, interest, id);
                }
                return;
            }

            // Draining: requests not yet complete are dropped, exactly
            // like the thread transport's shutdown-interrupted read.
            if self.draining {
                self.close_conn(id);
                return;
            }

            // 3. Parse the next request out of the buffer.
            if conn.read_buf.is_empty() {
                if conn.peer_closed {
                    self.close_conn(id);
                }
                return;
            }
            conn.clock.mark();
            match http::try_parse(&conn.read_buf, self.svc.max_body) {
                Ok(Some((request, consumed))) => {
                    conn.read_buf.drain(..consumed);
                    self.svc.metrics.counter_add("serve.requests_total", 1);
                    self.dispatch(id, request);
                }
                Ok(None) => {
                    if conn.peer_closed {
                        // EOF mid-request: 400, as the blocking reader
                        // answers a connection closed mid-line/mid-body.
                        count_status(&self.svc.metrics, 400);
                        self.queue_response(
                            id,
                            400,
                            JSON,
                            b"{\"error\":\"connection closed mid-request\"}",
                            false,
                            None,
                        );
                        continue;
                    }
                    if after_read {
                        self.svc.metrics.counter_add("serve.io_read_partial", 1);
                    }
                    return;
                }
                Err(ReadError::BadRequest(msg)) => {
                    count_status(&self.svc.metrics, 400);
                    let body = format!("{{\"error\":\"{}\"}}", http::json_escape(&msg));
                    self.queue_response(id, 400, JSON, body.as_bytes(), false, None);
                }
                Err(ReadError::BodyTooLarge { declared, limit }) => {
                    count_status(&self.svc.metrics, 413);
                    let body = format!(
                        "{{\"error\":\"body of {declared} bytes exceeds the {limit}-byte limit\"}}"
                    );
                    self.queue_response(id, 413, JSON, body.as_bytes(), false, None);
                }
                Err(_) => {
                    self.close_conn(id);
                    return;
                }
            }
        }
    }

    /// Route one parsed request: inline endpoints answer immediately,
    /// `/predict` goes to the scorer pool and parks the connection.
    fn dispatch(&mut self, id: u64, request: http::Request) {
        let svc = Arc::clone(&self.svc);
        let app = svc.slot.current();
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| route_async(&svc, &app, &request)));
        match outcome {
            Err(_) => {
                // A panicking handler costs this connection a 500, never
                // the loop (same containment as the worker's catch).
                svc.metrics.counter_add("serve.worker_panics", 1);
                svc.metrics.counter_add("serve.responses_500", 1);
                self.queue_response(
                    id,
                    500,
                    JSON,
                    b"{\"error\":\"internal error; the request was aborted\"}",
                    false,
                    None,
                );
            }
            Ok(RouteOutcome::Ready(routed)) => {
                svc.metrics
                    .observe(routed.endpoint, t0.elapsed().as_secs_f64());
                count_status(&svc.metrics, routed.status);
                let keep_alive = request.keep_alive
                    && !routed.close
                    && !routed.kill_worker
                    && !svc.shutdown.is_set();
                self.queue_response(
                    id,
                    routed.status,
                    routed.content_type,
                    routed.body.as_bytes(),
                    keep_alive,
                    routed.retry_after,
                );
                if routed.kill_worker {
                    // Chaos worker-kill: poison one scorer so the
                    // supervisor respawn path runs, as in thread mode.
                    let _ = svc.job_tx.try_send(Job::Poison);
                }
            }
            Ok(RouteOutcome::Predict {
                publisher,
                consumer,
                words,
            }) => {
                let Some(conn) = self.conns.get_mut(&id) else {
                    return;
                };
                let keep_alive = request.keep_alive && !svc.shutdown.is_set();
                let job = Job::Predict(PredictJob {
                    app: Arc::clone(&app),
                    publisher,
                    consumer,
                    words,
                    deadline: conn.clock.deadline(),
                    reply: ReplySink::Loop(CompletionSink {
                        shared: Arc::clone(&self.shared),
                        conn: id,
                        seq: conn.seq,
                    }),
                });
                match svc.job_tx.try_send(job) {
                    Ok(()) => {
                        conn.phase = ConnPhase::AwaitingScore {
                            app,
                            publisher,
                            consumer,
                            t0,
                            keep_alive,
                        };
                    }
                    Err(mpsc::TrySendError::Full(_)) => {
                        svc.metrics.counter_add("serve.shed", 1);
                        svc.metrics.counter_add("serve.shed_jobs", 1);
                        svc.metrics
                            .observe("serve.predict_seconds", t0.elapsed().as_secs_f64());
                        count_status(&svc.metrics, 503);
                        self.queue_response(
                            id,
                            503,
                            JSON,
                            shed_body("predict queue full").as_bytes(),
                            keep_alive,
                            Some(RETRY_AFTER_SECS),
                        );
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => {
                        svc.metrics
                            .observe("serve.predict_seconds", t0.elapsed().as_secs_f64());
                        count_status(&svc.metrics, 503);
                        self.queue_response(
                            id,
                            503,
                            JSON,
                            b"{\"error\":\"scoring queue is gone\"}",
                            keep_alive,
                            None,
                        );
                    }
                }
            }
        }
    }

    /// A scorer finished a `/predict` for one of our connections.
    fn on_completion(&mut self, completion: Completion) {
        let Some(conn) = self.conns.get_mut(&completion.conn) else {
            return; // connection closed while the job was in flight
        };
        if completion.seq != conn.seq {
            return; // already answered (deadline 503); stale score
        }
        let phase = std::mem::replace(&mut conn.phase, ConnPhase::Reading);
        let ConnPhase::AwaitingScore {
            app,
            publisher,
            consumer,
            t0,
            keep_alive,
        } = phase
        else {
            return;
        };
        conn.seq += 1;
        let (status, body) = app.predict_response(publisher, consumer, completion.result);
        self.svc
            .metrics
            .observe("serve.predict_seconds", t0.elapsed().as_secs_f64());
        count_status(&self.svc.metrics, status);
        self.queue_response(
            completion.conn,
            status,
            JSON,
            body.as_bytes(),
            keep_alive,
            None,
        );
        self.advance(completion.conn, false);
    }

    /// Queue one response on the connection's write buffer and reset its
    /// per-request state; `advance` does the actual flushing.
    fn queue_response(
        &mut self,
        id: u64,
        status: u16,
        content_type: &str,
        body: &[u8],
        keep_alive: bool,
        retry_after: Option<u64>,
    ) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        conn.write_buf.extend_from_slice(&http::format_response(
            status,
            content_type,
            body,
            keep_alive,
            retry_after,
        ));
        conn.close_after_write = !keep_alive;
        conn.clock = RequestClock::new(self.svc.request_timeout);
        conn.write_deadline =
            Some(Instant::now() + self.svc.request_timeout.unwrap_or(FALLBACK_WRITE_TIMEOUT));
        if !conn.want_read {
            // Re-arm reads paused at the pipeline cap.
            conn.want_read = true;
            let fd = conn.stream.as_raw_fd();
            let interest = conn.interest();
            let _ = self.ep.modify(fd, interest, id);
        }
    }

    /// Timer tick: answer every expired deadline. This is where the
    /// thread transport's read-timeout polling moved to.
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue;
            };
            if conn.write_pending() {
                // A peer not reading its response: bounded patience.
                if conn.write_deadline.is_some_and(|d| now >= d) {
                    self.svc.metrics.counter_add("serve.write_timeouts", 1);
                    self.close_conn(id);
                }
                continue;
            }
            if conn.clock.deadline().is_none_or(|d| now < d) {
                continue;
            }
            match &conn.phase {
                ConnPhase::Reading => {
                    // Stalled mid-upload (slowloris): 408, close.
                    self.svc.metrics.counter_add("serve.request_timeouts", 1);
                    self.svc.metrics.counter_add("serve.responses_408", 1);
                    self.queue_response(
                        id,
                        408,
                        JSON,
                        b"{\"error\":\"request not completed within the deadline\"}",
                        false,
                        None,
                    );
                    self.advance(id, false);
                }
                ConnPhase::AwaitingScore { t0, keep_alive, .. } => {
                    // The pool couldn't score in time: 503 + Retry-After,
                    // keep-alive preserved; a late completion is stale.
                    let (t0, keep_alive) = (*t0, *keep_alive);
                    conn.seq += 1;
                    conn.phase = ConnPhase::Reading;
                    self.svc.metrics.counter_add("serve.request_timeouts", 1);
                    self.svc
                        .metrics
                        .observe("serve.predict_seconds", t0.elapsed().as_secs_f64());
                    count_status(&self.svc.metrics, 503);
                    self.queue_response(
                        id,
                        503,
                        JSON,
                        shed_body("scoring missed the request deadline").as_bytes(),
                        keep_alive,
                        Some(RETRY_AFTER_SECS),
                    );
                    self.advance(id, false);
                }
            }
        }
    }

    /// Shutdown raised: stop accepting, drop idle and mid-read
    /// connections, flush what is answerable, and bound the rest with a
    /// hard deadline.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + FALLBACK_WRITE_TIMEOUT);
        if let Some(listener) = self.listener.take() {
            self.ep.delete(listener.as_raw_fd());
        }
        self.reject_inbox();
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let Some(conn) = self.conns.get(&id) else {
                continue;
            };
            // In-flight scores get answered; queued writes get flushed;
            // everything else (idle keep-alive, partial reads) closes
            // now — thread-transport parity.
            if matches!(conn.phase, ConnPhase::Reading) && !conn.write_pending() {
                self.close_conn(id);
            }
        }
    }

    /// Connections handed off but never adopted still own a gauge slot.
    fn reject_inbox(&mut self) {
        let handed: Vec<TcpStream> = std::mem::take(
            &mut *self
                .shared
                .inbox
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for stream in handed {
            self.svc.open_conns.dec();
            drop(stream);
        }
    }

    fn close_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            self.ep.delete(conn.stream.as_raw_fd());
            self.svc.open_conns.dec();
        }
    }
}
