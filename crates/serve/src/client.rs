//! A tiny blocking HTTP/1.1 client over a persistent keep-alive
//! connection.
//!
//! Exists so the integration tests and the `bench_serve` load generator
//! can exercise the server without external tooling. Supports exactly
//! what [`crate::server`] emits: fixed-length responses on a persistent
//! connection. Every socket operation is bounded — connect, read, and
//! write all time out — so a wedged server turns into a clear error in
//! the caller instead of a hung CI job.
//!
//! Connection reuse is the default: one TCP connection carries request
//! after request until the server answers `connection: close`. A stale
//! keep-alive connection (the server closed it between requests — e.g.
//! an idle timeout or a restart) is replaced transparently with a single
//! retry, and every connection established after the first is counted in
//! [`HttpClient::reconnects`] — so a load generator can prove its
//! measured throughput wasn't spent on TCP handshakes.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body as text.
    pub body: String,
    /// Whether the server kept the connection open.
    pub keep_alive: bool,
    /// `Retry-After` seconds, present on shed (`503`) responses.
    pub retry_after: Option<u64>,
}

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A persistent connection to a `cold-serve` instance, re-established
/// on demand.
pub struct HttpClient {
    addr: SocketAddr,
    timeout: Duration,
    conn: Option<Conn>,
    reconnects: u64,
}

fn timed_out(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn with_context(e: std::io::Error, context: &str) -> std::io::Error {
    let kind = if timed_out(&e) {
        std::io::ErrorKind::TimedOut
    } else {
        e.kind()
    };
    std::io::Error::new(kind, format!("{context}: {e}"))
}

/// Did the connection die under us in a way a fresh one can fix — as
/// opposed to the server actively answering with an error?
fn stale_conn(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::UnexpectedEof
    )
}

impl HttpClient {
    /// Connect with `timeout` bounding the TCP connect itself and every
    /// subsequent read and write. A server that accepts but never
    /// answers — or never drains its receive buffer — yields
    /// `ErrorKind::TimedOut` instead of blocking forever.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        // Eager first connection: a dead server fails here, not on the
        // first request.
        let conn = Self::open(addr, timeout)?;
        Ok(Self {
            addr,
            timeout,
            conn: Some(conn),
            reconnects: 0,
        })
    }

    fn open(addr: SocketAddr, timeout: Duration) -> std::io::Result<Conn> {
        let stream = TcpStream::connect_timeout(&addr, timeout)
            .map_err(|e| with_context(e, &format!("cannot connect to {addr}")))?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Conn { stream, reader })
    }

    /// Connections established beyond the first — how often keep-alive
    /// reuse failed (server closed between requests, `connection:
    /// close` responses, transparent retries).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, json: &str) -> std::io::Result<Response> {
        self.request("POST", path, Some(json))
    }

    /// Issue one request, reusing the persistent connection. If a held
    /// keep-alive connection turns out to be dead (closed server-side
    /// since the last request), it is replaced and the request retried
    /// once on the fresh connection.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<Response> {
        let body = body.unwrap_or("");
        let had_conn = self.conn.is_some();
        match self.try_request(method, path, body) {
            Ok(response) => Ok(response),
            Err(e) if had_conn && stale_conn(&e) => {
                self.conn = None;
                self.try_request(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<Response> {
        if self.conn.is_none() {
            self.conn = Some(Self::open(self.addr, self.timeout)?);
            self.reconnects += 1;
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        let sent = write!(
            conn.stream,
            "{method} {path} HTTP/1.1\r\nhost: cold-serve\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .and_then(|()| conn.stream.flush());
        if let Err(e) = sent {
            self.conn = None;
            return Err(with_context(e, &format!("cannot send {method} {path}")));
        }
        match Self::read_response(conn) {
            Ok(response) => {
                if !response.keep_alive {
                    // The server is closing this connection; don't let
                    // the next request trip over the corpse.
                    self.conn = None;
                }
                Ok(response)
            }
            Err(e) => {
                self.conn = None;
                Err(with_context(e, &format!("no response to {method} {path}")))
            }
        }
    }

    fn read_line(conn: &mut Conn) -> std::io::Result<String> {
        let mut line = String::new();
        if conn.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_owned())
    }

    fn read_response(conn: &mut Conn) -> std::io::Result<Response> {
        let status_line = Self::read_line(conn)?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line: {status_line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        let mut keep_alive = true;
        let mut retry_after = None;
        loop {
            let line = Self::read_line(conn)?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad content-length: {value:?}"),
                    )
                })?;
            } else if name == "connection" {
                keep_alive = !value.eq_ignore_ascii_case("close");
            } else if name == "retry-after" {
                retry_after = value.parse().ok();
            }
        }
        let mut body = vec![0u8; content_length];
        conn.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "body is not UTF-8")
        })?;
        Ok(Response {
            status,
            body,
            keep_alive,
            retry_after,
        })
    }
}
