//! A tiny blocking HTTP/1.1 client over one keep-alive connection.
//!
//! Exists so the integration tests and the `bench_serve` load generator
//! can exercise the server without external tooling. Supports exactly
//! what [`crate::server`] emits: fixed-length responses on a persistent
//! connection. Every socket operation is bounded — connect, read, and
//! write all time out — so a wedged server turns into a clear error in
//! the caller instead of a hung CI job.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body as text.
    pub body: String,
    /// Whether the server kept the connection open.
    pub keep_alive: bool,
    /// `Retry-After` seconds, present on shed (`503`) responses.
    pub retry_after: Option<u64>,
}

/// One persistent connection to a `cold-serve` instance.
pub struct HttpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

fn timed_out(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn with_context(e: std::io::Error, context: &str) -> std::io::Error {
    let kind = if timed_out(&e) {
        std::io::ErrorKind::TimedOut
    } else {
        e.kind()
    };
    std::io::Error::new(kind, format!("{context}: {e}"))
}

impl HttpClient {
    /// Connect with `timeout` bounding the TCP connect itself and every
    /// subsequent read and write. A server that accepts but never
    /// answers — or never drains its receive buffer — yields
    /// `ErrorKind::TimedOut` instead of blocking forever.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)
            .map_err(|e| with_context(e, &format!("cannot connect to {addr}")))?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { stream, reader })
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, json: &str) -> std::io::Result<Response> {
        self.request("POST", path, Some(json))
    }

    /// Issue one request on the persistent connection.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<Response> {
        let body = body.unwrap_or("");
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nhost: cold-serve\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .map_err(|e| with_context(e, &format!("cannot send {method} {path}")))?;
        self.stream
            .flush()
            .map_err(|e| with_context(e, &format!("cannot send {method} {path}")))?;
        self.read_response()
            .map_err(|e| with_context(e, &format!("no response to {method} {path}")))
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_owned())
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line: {status_line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        let mut keep_alive = true;
        let mut retry_after = None;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad content-length: {value:?}"),
                    )
                })?;
            } else if name == "connection" {
                keep_alive = !value.eq_ignore_ascii_case("close");
            } else if name == "retry-after" {
                retry_after = value.parse().ok();
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "body is not UTF-8")
        })?;
        Ok(Response {
            status,
            body,
            keep_alive,
            retry_after,
        })
    }
}
