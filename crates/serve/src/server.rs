//! The transport layer: listener, worker pool, batcher, supervisor,
//! shutdown.
//!
//! Two transports share this module's routing and accounting
//! ([`IoMode`]). Below is the default thread transport; the epoll
//! transport (`crate::epoll`, Linux) replaces the acceptor + pinned
//! workers with a few event loops over nonblocking connection state
//! machines and reuses the same scorer loop, shed policy, supervisor,
//! and status counters — the integration suites assert both modes keep
//! bit-identical metric accounting.
//!
//! ```text
//!                    ┌─────────┐  TcpStream   ┌──────────┐
//!   accept() loop ──▶│ bounded │─────────────▶│ worker 0 │──┐
//!    (sheds 503)     │ channel │              │   ...    │  │ PredictJob
//!                    └─────────┘              │ worker N │──┤ (bounded)
//!                                             └──────────┘  ▼
//!                                               ▲       ┌─────────┐
//!                                    supervisor ┘       │ batcher │
//!                                  (respawns on panic)  └─────────┘
//! ```
//!
//! * **Acceptor** — one thread on `accept()`; accepted connections go
//!   down a *bounded* channel (`max_conns`). When it is full the server
//!   is saturated: the acceptor sheds the connection immediately with
//!   `503` + `Retry-After` instead of buffering without bound — memory
//!   stays flat and well-behaved clients back off.
//! * **Workers** — a fixed pool; each pulls a connection and serves it to
//!   completion (keep-alive: many requests per connection). Per-connection
//!   handling runs under `catch_unwind`: a panicking handler costs that
//!   connection a `500`, never the worker. Each request runs against the
//!   app the [`AppSlot`] held at dispatch, and under a deadline
//!   ([`ServeConfig::request_timeout`]) spanning parse → batch → reply.
//! * **Supervisor** — watches the pool and respawns workers whose panics
//!   escape the per-connection catch (`serve.worker_respawns`). A capped
//!   respawn breaker ([`ServeConfig::respawn_limit`]) stops a
//!   crash-loop: past the cap the pool is left shrunken and `/healthz`
//!   flips to `503 degraded` so load balancers route away.
//! * **Batcher** — one thread that drains `/predict` jobs into
//!   micro-batches (up to `batch_max` jobs or `batch_wait`, whichever
//!   first), scores them back-to-back, and answers each job's reply
//!   channel. Jobs carry their dispatch-time `Arc<App>`, so a hot reload
//!   mid-batch cannot change what an in-flight job scores against.
//! * **Watcher** (optional) — polls the serving artifact for changes
//!   (`--watch-model`) and triggers the same verified reload as
//!   `POST /reload`.
//! * **Shutdown** — `POST /shutdown` (or [`Server::shutdown`]) raises a
//!   flag; the acceptor is woken by a self-connection and stops; workers
//!   finish their in-flight request, answer with `connection: close`, and
//!   exit; the supervisor joins them; the batcher drains and exits when
//!   the last job sender hangs up.

use crate::app::{App, AppSlot, ServeError};
use crate::http::{self, ReadError, Request, RequestClock};
use cold_core::{ModelView, PredictError};
use cold_obs::Metrics;
use cold_text::WordId;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// Which transport carries connections to the compute pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// Thread per in-flight connection: an acceptor feeds a bounded
    /// channel drained by `workers` threads, each owning one connection
    /// end to end. Portable, simple, and the measured baseline — but a
    /// keep-alive connection pins a thread even while idle, so
    /// concurrency is capped at the pool size.
    #[default]
    Threads,
    /// Readiness-driven event loops (Linux only): `io_threads` epoll
    /// loops own all sockets via nonblocking state machines and hand
    /// `/predict` work to `workers` scorer threads. Connections scale
    /// past the thread count; idle or slow sockets cost a buffer, not a
    /// thread.
    Epoll,
}

impl std::str::FromStr for IoMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "threads" | "thread" => Ok(IoMode::Threads),
            "epoll" => Ok(IoMode::Epoll),
            other => Err(format!(
                "unknown io mode {other:?} (expected \"threads\" or \"epoll\")"
            )),
        }
    }
}

impl std::fmt::Display for IoMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoMode::Threads => "threads",
            IoMode::Epoll => "epoll",
        })
    }
}

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8391` (port 0 picks a free port).
    pub addr: String,
    /// Transport selection; see [`IoMode`].
    pub io_mode: IoMode,
    /// Event-loop threads in [`IoMode::Epoll`]; ignored by
    /// [`IoMode::Threads`].
    pub io_threads: usize,
    /// Scoring threads. In [`IoMode::Threads`] each also owns the
    /// connection it is serving (the concurrency bound); in
    /// [`IoMode::Epoll`] they form a pure CPU pool draining `/predict`
    /// micro-batches.
    pub workers: usize,
    /// Max `/predict` jobs scored per micro-batch.
    pub batch_max: usize,
    /// Max time the batcher waits to fill a batch once it holds a job.
    pub batch_wait: Duration,
    /// Request body cap in bytes (`413` beyond it).
    pub max_body: usize,
    /// Open-connection bound. In [`IoMode::Threads`] it bounds the
    /// accepted-but-unserved queue; in [`IoMode::Epoll`] it caps
    /// concurrently open connections. Beyond it, connections are shed
    /// with `503` + `Retry-After` (`serve.shed_conns`).
    pub max_conns: usize,
    /// Predict-job queue bound: jobs beyond this are shed with `503` +
    /// `Retry-After` (`serve.shed_jobs`).
    pub max_queue: usize,
    /// Per-request deadline covering parse → batch → reply, armed by the
    /// request's first byte. `Duration::ZERO` disables it. A stalled
    /// upload gets `408`; a reply the batcher cannot produce in time gets
    /// `503` + `Retry-After`; response writes are bounded by the same
    /// budget via `set_write_timeout`.
    pub request_timeout: Duration,
    /// Respawn breaker: after this many worker respawns the supervisor
    /// stops replacing crashed workers and flips `/healthz` to
    /// `503 degraded` rather than crash-looping.
    pub respawn_limit: u32,
    /// Expose `POST /chaos/panic` and `POST /chaos/panic-worker`
    /// (fault-injection hooks for the chaos harness). Never enable in
    /// production.
    pub chaos_endpoints: bool,
    /// Poll the serving artifact at this interval and hot-reload it when
    /// the file changes (after re-verification). `None` disables.
    pub watch_model: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8391".to_owned(),
            io_mode: IoMode::default(),
            io_threads: 2,
            workers: 8,
            batch_max: 32,
            batch_wait: Duration::from_micros(500),
            max_body: 1024 * 1024,
            max_conns: 1024,
            max_queue: 1024,
            request_timeout: Duration::from_secs(10),
            respawn_limit: 8,
            chaos_endpoints: false,
            watch_model: None,
        }
    }
}

/// How often blocked reads wake up to check the shutdown flag; also the
/// epoll loops' timer-tick ceiling for deadline scans.
pub(crate) const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Write bound used when the request deadline is disabled, and for the
/// acceptor's shed responses (which must never block the accept loop).
pub(crate) const FALLBACK_WRITE_TIMEOUT: Duration = Duration::from_secs(10);
pub(crate) const SHED_WRITE_TIMEOUT: Duration = Duration::from_millis(250);

pub(crate) const JSON: &str = "application/json";
pub(crate) const RETRY_AFTER_SECS: u64 = 1;

pub(crate) fn shed_body(what: &str) -> String {
    format!("{{\"error\":\"server overloaded: {what}; retry shortly\"}}")
}

/// One queued `/predict` computation, pinned to the app that dispatched
/// it — a concurrent hot reload never changes what an in-flight job
/// scores against.
pub(crate) struct PredictJob {
    pub(crate) app: Arc<App>,
    pub(crate) publisher: u32,
    pub(crate) consumer: u32,
    pub(crate) words: Vec<WordId>,
    /// Request deadline; the scorer skips jobs that expired in-queue.
    pub(crate) deadline: Option<Instant>,
    pub(crate) reply: ReplySink,
}

/// Where a scored `/predict` result goes back to.
pub(crate) enum ReplySink {
    /// Thread transport: the dispatching worker blocks on a rendezvous
    /// channel.
    Channel(mpsc::SyncSender<Result<f64, PredictError>>),
    /// Epoll transport: push onto the owning event loop's completion
    /// queue and ring its eventfd.
    #[cfg(target_os = "linux")]
    Loop(crate::epoll::CompletionSink),
}

impl ReplySink {
    fn send(self, result: Result<f64, PredictError>) {
        match self {
            ReplySink::Channel(tx) => {
                let _ = tx.send(result);
            }
            #[cfg(target_os = "linux")]
            ReplySink::Loop(sink) => sink.send(result),
        }
    }
}

/// Work for the scorer pool.
pub(crate) enum Job {
    Predict(PredictJob),
    /// Chaos `POST /chaos/panic-worker` under the epoll transport: the
    /// scorer that drains this panics *outside* its per-job catch, so
    /// the supervisor's respawn path is exercised with the same metric
    /// accounting as a thread-transport worker kill.
    Poison,
}

/// Shared shutdown signal; `trigger` is idempotent.
pub(crate) struct ShutdownFlag {
    pub(crate) flag: AtomicBool,
    addr: SocketAddr,
    /// Eventfds of running epoll loops; rung on trigger so a loop parked
    /// in `epoll_wait` notices shutdown immediately.
    #[cfg(target_os = "linux")]
    wakers: Mutex<Vec<Arc<crate::sys::EventFd>>>,
}

impl ShutdownFlag {
    fn new(addr: SocketAddr) -> Self {
        Self {
            flag: AtomicBool::new(false),
            addr,
            #[cfg(target_os = "linux")]
            wakers: Mutex::new(Vec::new()),
        }
    }

    #[cfg(target_os = "linux")]
    pub(crate) fn add_waker(&self, wake: Arc<crate::sys::EventFd>) {
        self.wakers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(wake);
    }

    pub(crate) fn trigger(&self) {
        if !self.flag.swap(true, Ordering::AcqRel) {
            #[cfg(target_os = "linux")]
            {
                let wakers = self.wakers.lock().unwrap_or_else(PoisonError::into_inner);
                if !wakers.is_empty() {
                    for w in wakers.iter() {
                        w.wake();
                    }
                    return;
                }
            }
            // Wake the acceptor out of its blocking accept().
            let _ = TcpStream::connect(self.addr);
        }
    }

    pub(crate) fn is_set(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Live open-connection accounting behind the `serve.open_conns` gauge
/// (with a monotonic `serve.open_conns_peak` high-water mark). Both
/// transports feed it; the epoll transport also uses the live count as
/// its `max_conns` shed bound.
pub(crate) struct ConnGauge {
    metrics: Metrics,
    open: AtomicI64,
    peak: AtomicI64,
}

impl ConnGauge {
    fn new(metrics: Metrics) -> Self {
        metrics.gauge_set("serve.open_conns", 0.0);
        metrics.gauge_set("serve.open_conns_peak", 0.0);
        Self {
            metrics,
            open: AtomicI64::new(0),
            peak: AtomicI64::new(0),
        }
    }

    pub(crate) fn inc(&self) {
        let v = self.open.fetch_add(1, Ordering::AcqRel) + 1;
        self.metrics.gauge_set("serve.open_conns", v as f64);
        if v > self.peak.fetch_max(v, Ordering::AcqRel) {
            self.metrics.gauge_set("serve.open_conns_peak", v as f64);
        }
    }

    pub(crate) fn dec(&self) {
        let v = self.open.fetch_sub(1, Ordering::AcqRel) - 1;
        self.metrics.gauge_set("serve.open_conns", v as f64);
    }

    pub(crate) fn count(&self) -> i64 {
        self.open.load(Ordering::Acquire)
    }
}

/// Transport-agnostic service state: everything routing and scoring
/// need, shared by the thread workers and the epoll loops alike.
pub(crate) struct ServiceCtx {
    pub(crate) slot: Arc<AppSlot>,
    pub(crate) metrics: Metrics,
    pub(crate) shutdown: Arc<ShutdownFlag>,
    pub(crate) degraded: Arc<AtomicBool>,
    pub(crate) job_tx: mpsc::SyncSender<Job>,
    pub(crate) max_body: usize,
    pub(crate) max_conns: usize,
    pub(crate) request_timeout: Option<Duration>,
    pub(crate) chaos_endpoints: bool,
    pub(crate) open_conns: ConnGauge,
}

/// Everything a thread-transport worker (or its supervisor-spawned
/// replacement) needs: the shared service state plus the connection
/// queue.
struct WorkerCtx {
    svc: Arc<ServiceCtx>,
    conn_rx: Mutex<mpsc::Receiver<TcpStream>>,
}

/// A running service; dropping it without calling [`Server::shutdown`]
/// or [`Server::join`] detaches the threads.
pub struct Server {
    addr: SocketAddr,
    slot: Arc<AppSlot>,
    shutdown: Arc<ShutdownFlag>,
    acceptor: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the transport and compute threads, and start serving
    /// `app` under the configured [`IoMode`].
    pub fn start(config: ServeConfig, app: App) -> Result<Server, ServeError> {
        match config.io_mode {
            IoMode::Threads => Self::start_threads(config, app),
            #[cfg(target_os = "linux")]
            IoMode::Epoll => Self::start_epoll(config, app),
            #[cfg(not(target_os = "linux"))]
            IoMode::Epoll => Err(ServeError::Io {
                context: "io-mode epoll is only available on Linux; use io-mode threads".to_owned(),
                source: std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "epoll syscalls unavailable on this platform",
                ),
            }),
        }
    }

    /// Bind and build the pieces both transports share: app slot,
    /// metrics, shutdown flag, job queue, service context.
    fn start_common(
        config: &ServeConfig,
        app: App,
    ) -> Result<
        (
            TcpListener,
            SocketAddr,
            Arc<ServiceCtx>,
            mpsc::Receiver<Job>,
        ),
        ServeError,
    > {
        let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Io {
            context: format!("cannot bind {}", config.addr),
            source,
        })?;
        let addr = listener.local_addr().map_err(|source| ServeError::Io {
            context: "cannot read bound address".to_owned(),
            source,
        })?;
        let slot = Arc::new(AppSlot::new(app));
        let metrics = slot.metrics().clone();
        metrics.gauge_set("serve.workers", config.workers.max(1) as f64);
        metrics.gauge_set("serve.degraded", 0.0);
        let shutdown = Arc::new(ShutdownFlag::new(addr));
        let degraded = Arc::new(AtomicBool::new(false));
        // Bounded job queue: saturation shows up as fast sheds, not as
        // unbounded buffering.
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.max_queue.max(1));
        let svc = Arc::new(ServiceCtx {
            slot,
            metrics: metrics.clone(),
            shutdown,
            degraded,
            job_tx,
            max_body: config.max_body,
            max_conns: config.max_conns.max(1),
            request_timeout: (config.request_timeout > Duration::ZERO)
                .then_some(config.request_timeout),
            chaos_endpoints: config.chaos_endpoints,
            open_conns: ConnGauge::new(metrics),
        });
        Ok((listener, addr, svc, job_rx))
    }

    fn spawn_watcher(
        svc: &Arc<ServiceCtx>,
        watch_model: Option<Duration>,
    ) -> Result<Option<JoinHandle<()>>, ServeError> {
        let Some(interval) = watch_model else {
            return Ok(None);
        };
        let slot = Arc::clone(&svc.slot);
        let shutdown = Arc::clone(&svc.shutdown);
        // Capture the baseline signature before the thread exists: a
        // freshly spawned thread can be scheduled arbitrarily late, and an
        // artifact replaced in that window would be mistaken for the
        // baseline and never reloaded.
        let baseline = stat_sig(slot.current().model_path());
        let handle = std::thread::Builder::new()
            .name("cold-serve-watcher".into())
            .spawn(move || watcher_loop(&slot, &shutdown, interval, baseline))
            .map_err(|source| ServeError::Io {
                context: "cannot spawn watcher thread".to_owned(),
                source,
            })?;
        Ok(Some(handle))
    }

    /// The thread-per-connection transport (the portable baseline).
    fn start_threads(config: ServeConfig, app: App) -> Result<Server, ServeError> {
        let (listener, addr, svc, job_rx) = Self::start_common(&config, app)?;

        // Bounded connection queue, drained by the worker pool.
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(config.max_conns.max(1));

        let batcher = {
            let metrics = svc.metrics.clone();
            let batch_max = config.batch_max.max(1);
            let batch_wait = config.batch_wait;
            let job_rx = Mutex::new(job_rx);
            std::thread::Builder::new()
                .name("cold-serve-batcher".into())
                .spawn(move || scorer_loop(&metrics, &job_rx, batch_max, batch_wait, None))
                .map_err(|source| ServeError::Io {
                    context: "cannot spawn batcher thread".to_owned(),
                    source,
                })?
        };

        let ctx = Arc::new(WorkerCtx {
            svc: Arc::clone(&svc),
            conn_rx: Mutex::new(conn_rx),
        });

        let worker_names = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for _ in 0..config.workers.max(1) {
            workers.push(
                spawn_worker(&ctx, &worker_names).map_err(|source| ServeError::Io {
                    context: "cannot spawn worker thread".to_owned(),
                    source,
                })?,
            );
        }

        let supervisor = {
            let svc = Arc::clone(&svc);
            let respawn_limit = config.respawn_limit;
            let respawn = {
                let ctx = Arc::clone(&ctx);
                let worker_names = Arc::clone(&worker_names);
                move || spawn_worker(&ctx, &worker_names)
            };
            std::thread::Builder::new()
                .name("cold-serve-supervisor".into())
                .spawn(move || supervisor_loop(&svc, workers, respawn_limit, respawn, Vec::new()))
                .map_err(|source| ServeError::Io {
                    context: "cannot spawn supervisor thread".to_owned(),
                    source,
                })?
        };

        let watcher = Self::spawn_watcher(&svc, config.watch_model)?;

        let acceptor = {
            let svc = Arc::clone(&svc);
            let write_timeout = if config.request_timeout > Duration::ZERO {
                config.request_timeout
            } else {
                FALLBACK_WRITE_TIMEOUT
            };
            std::thread::Builder::new()
                .name("cold-serve-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &svc, &conn_tx, write_timeout))
                .map_err(|source| ServeError::Io {
                    context: "cannot spawn acceptor thread".to_owned(),
                    source,
                })?
        };

        Ok(Server {
            addr,
            slot: Arc::clone(&svc.slot),
            shutdown: Arc::clone(&svc.shutdown),
            acceptor: Some(acceptor),
            supervisor: Some(supervisor),
            batcher: Some(batcher),
            watcher,
        })
    }

    /// The readiness-driven transport: epoll event loops own every
    /// socket; the worker pool becomes a pure scorer pool.
    #[cfg(target_os = "linux")]
    fn start_epoll(config: ServeConfig, app: App) -> Result<Server, ServeError> {
        let (listener, addr, svc, job_rx) = Self::start_common(&config, app)?;
        listener
            .set_nonblocking(true)
            .map_err(|source| ServeError::Io {
                context: "cannot set listener nonblocking".to_owned(),
                source,
            })?;
        let io_threads = config.io_threads.max(1);
        svc.metrics.gauge_set("serve.io_threads", io_threads as f64);

        // Event loops first: they register their eventfds as shutdown
        // wakers and own the listener.
        let live_loops = Arc::new(AtomicUsize::new(io_threads));
        let loop_handles = crate::epoll::spawn_loops(&svc, listener, io_threads, &live_loops)
            .map_err(|source| ServeError::Io {
                context: "cannot start epoll event loops".to_owned(),
                source,
            })?;

        // Scorer pool: `workers` threads draining micro-batches, each
        // respawnable by the supervisor under the same breaker as the
        // thread transport's workers.
        let job_rx = Arc::new(Mutex::new(job_rx));
        let scorer_names = Arc::new(AtomicUsize::new(0));
        let spawn_scorer = {
            let metrics = svc.metrics.clone();
            let shutdown = Arc::clone(&svc.shutdown);
            let live_loops = Arc::clone(&live_loops);
            let batch_max = config.batch_max.max(1);
            let batch_wait = config.batch_wait;
            move || -> std::io::Result<JoinHandle<()>> {
                let id = scorer_names.fetch_add(1, Ordering::Relaxed);
                let metrics = metrics.clone();
                let job_rx = Arc::clone(&job_rx);
                let shutdown = Arc::clone(&shutdown);
                let live_loops = Arc::clone(&live_loops);
                std::thread::Builder::new()
                    .name(format!("cold-serve-scorer-{id}"))
                    .spawn(move || {
                        scorer_loop(
                            &metrics,
                            &job_rx,
                            batch_max,
                            batch_wait,
                            Some((&shutdown, &live_loops)),
                        )
                    })
            }
        };
        let mut scorers = Vec::with_capacity(config.workers.max(1));
        for _ in 0..config.workers.max(1) {
            scorers.push(spawn_scorer().map_err(|source| ServeError::Io {
                context: "cannot spawn scorer thread".to_owned(),
                source,
            })?);
        }

        let supervisor = {
            let svc = Arc::clone(&svc);
            let respawn_limit = config.respawn_limit;
            std::thread::Builder::new()
                .name("cold-serve-supervisor".into())
                .spawn(move || {
                    supervisor_loop(&svc, scorers, respawn_limit, spawn_scorer, loop_handles)
                })
                .map_err(|source| ServeError::Io {
                    context: "cannot spawn supervisor thread".to_owned(),
                    source,
                })?
        };

        let watcher = Self::spawn_watcher(&svc, config.watch_model)?;

        Ok(Server {
            addr,
            slot: Arc::clone(&svc.slot),
            shutdown: Arc::clone(&svc.shutdown),
            acceptor: None,
            supervisor: Some(supervisor),
            batcher: None,
            watcher,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving slot — current model generation, programmatic reload.
    pub fn app_slot(&self) -> &Arc<AppSlot> {
        &self.slot
    }

    /// Raise the shutdown flag and wait for every thread to finish its
    /// in-flight work and exit.
    pub fn shutdown(mut self) {
        self.shutdown.trigger();
        self.join_threads();
    }

    /// Block until shutdown is triggered elsewhere (`POST /shutdown`),
    /// then reap the threads.
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // The supervisor joins every worker (original or respawned).
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.watcher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

fn spawn_worker(ctx: &Arc<WorkerCtx>, names: &AtomicUsize) -> std::io::Result<JoinHandle<()>> {
    let id = names.fetch_add(1, Ordering::Relaxed);
    let ctx = Arc::clone(ctx);
    std::thread::Builder::new()
        .name(format!("cold-serve-worker-{id}"))
        .spawn(move || worker_loop(&ctx))
}

fn acceptor_loop(
    listener: &TcpListener,
    svc: &ServiceCtx,
    conn_tx: &mpsc::SyncSender<TcpStream>,
    write_timeout: Duration,
) {
    let metrics = &svc.metrics;
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if svc.shutdown.is_set() {
                    // The wake-up connection (or a straggler): drop it.
                    return;
                }
                metrics.counter_add("serve.connections_total", 1);
                let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                let _ = stream.set_write_timeout(Some(write_timeout));
                let _ = stream.set_nodelay(true);
                match conn_tx.try_send(stream) {
                    Ok(()) => svc.open_conns.inc(),
                    Err(mpsc::TrySendError::Full(stream)) => {
                        // Saturated: shed now, with a bounded write so a
                        // dead peer cannot stall the accept loop.
                        shed_conn(metrics, &stream);
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                if svc.shutdown.is_set() {
                    return;
                }
            }
        }
    }
}

/// Shed one connection at accept time: count it, answer `503` +
/// `Retry-After` with a bounded write, close. Shared by both transports.
pub(crate) fn shed_conn(metrics: &Metrics, stream: &TcpStream) {
    metrics.counter_add("serve.shed", 1);
    metrics.counter_add("serve.shed_conns", 1);
    metrics.counter_add("serve.responses_503", 1);
    let _ = stream.set_write_timeout(Some(SHED_WRITE_TIMEOUT));
    let _ = http::write_response_ext(
        stream,
        503,
        JSON,
        shed_body("connection queue full").as_bytes(),
        false,
        Some(RETRY_AFTER_SECS),
    );
}

/// Watch every worker (thread transport: connection workers; epoll
/// transport: scorers) and replace the ones whose panics escape the
/// per-connection / per-job catch. The breaker caps total respawns: past
/// `respawn_limit` the pool stays shrunken and `/healthz` goes degraded —
/// a persistently crashing handler must not turn into a crash-loop.
///
/// `io_loops` (epoll transport) are watched but never respawned: an
/// event loop carries live connection state that cannot be rebuilt, so a
/// loop death flips straight to degraded. At shutdown the loops are
/// joined first — the scorers only exit once the last loop (job
/// producer) is gone and the queue has drained.
fn supervisor_loop(
    svc: &ServiceCtx,
    mut workers: Vec<JoinHandle<()>>,
    respawn_limit: u32,
    respawn: impl Fn() -> std::io::Result<JoinHandle<()>>,
    mut io_loops: Vec<JoinHandle<()>>,
) {
    let mut respawns = 0u32;
    loop {
        let mut i = 0;
        while i < workers.len() {
            if !workers[i].is_finished() {
                i += 1;
                continue;
            }
            let panicked = workers.swap_remove(i).join().is_err();
            if svc.shutdown.is_set() || !panicked {
                // Clean exits (drain, or channel teardown) need no action.
                continue;
            }
            // A panic that escaped the per-connection / per-job catch
            // killed the whole thread (chaos worker-kill, or a bug in
            // the loop itself).
            svc.metrics.counter_add("serve.worker_panics", 1);
            if respawns >= respawn_limit {
                if !svc.degraded.swap(true, Ordering::AcqRel) {
                    svc.metrics.gauge_set("serve.degraded", 1.0);
                }
            } else if let Ok(handle) = respawn() {
                respawns += 1;
                svc.metrics.counter_add("serve.worker_respawns", 1);
                workers.push(handle);
            }
            svc.metrics.gauge_set("serve.workers", workers.len() as f64);
        }
        let mut i = 0;
        while i < io_loops.len() {
            if !io_loops[i].is_finished() {
                i += 1;
                continue;
            }
            let panicked = io_loops.swap_remove(i).join().is_err();
            if panicked && !svc.shutdown.is_set() {
                svc.metrics.counter_add("serve.io_loop_panics", 1);
                if !svc.degraded.swap(true, Ordering::AcqRel) {
                    svc.metrics.gauge_set("serve.degraded", 1.0);
                }
            }
        }
        if svc.shutdown.is_set() {
            for handle in io_loops {
                let _ = handle.join();
            }
            for handle in workers {
                let _ = handle.join();
            }
            return;
        }
        std::thread::sleep(POLL_INTERVAL);
    }
}

/// Poll the serving artifact; when the file changes, re-verify and
/// hot-reload it through the [`AppSlot`]. A half-copied or corrupt file
/// is retried on the next change of its stat signature, never swapped in.
/// Change signature for the watcher's cheap polling: `(mtime, len)` plus
/// the file's trailing 8 bytes. The tail matters: file mtimes come from
/// the kernel's coarse clock (one scheduler tick of granularity), and a
/// retrained same-shape artifact has the same byte length, so `(mtime,
/// len)` alone can read as unchanged when the file is replaced quickly.
/// For `cold-model/v1` the tail is the FNV-1a64 checksum footer — a true
/// content fingerprint.
type StatSig = (SystemTime, u64, [u8; 8]);

fn stat_sig(path: &str) -> Option<StatSig> {
    use std::io::{Read, Seek, SeekFrom};
    let mut file = std::fs::File::open(path).ok()?;
    let meta = file.metadata().ok()?;
    let mut tail = [0u8; 8];
    if meta.len() >= 8 {
        file.seek(SeekFrom::End(-8)).ok()?;
        file.read_exact(&mut tail).ok()?;
    }
    Some((meta.modified().ok()?, meta.len(), tail))
}

fn watcher_loop(
    slot: &AppSlot,
    shutdown: &ShutdownFlag,
    interval: Duration,
    baseline: Option<StatSig>,
) {
    let metrics = slot.metrics().clone();
    let mut last = baseline;
    let mut last_rejected: Option<StatSig> = None;
    loop {
        // Sleep `interval` in short slices so shutdown stays responsive.
        let mut slept = Duration::ZERO;
        while slept < interval {
            if shutdown.is_set() {
                return;
            }
            let step = POLL_INTERVAL.min(interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
        if shutdown.is_set() {
            return;
        }
        let path = slot.current().model_path().to_owned();
        let now = stat_sig(&path);
        if now.is_none() || now == last || now == last_rejected {
            continue;
        }
        // Cheap verification first: a copy still in flight fails the
        // checksum and is retried once its stat signature changes again.
        match ModelView::verify_file(&path) {
            Ok(_) => match slot.reload(None) {
                Ok(outcome) => {
                    metrics.counter_add("serve.watch_reloads", 1);
                    last = now;
                    last_rejected = None;
                    let _ = outcome;
                }
                Err(_) => last_rejected = now,
            },
            Err(_) => last_rejected = now,
        }
    }
}

fn worker_loop(ctx: &WorkerCtx) {
    let svc = &*ctx.svc;
    loop {
        // Hold the lock only long enough to poll; holding it across a
        // blocking recv() would serialize the pool on one mutex. A
        // poisoned mutex just means some worker panicked while holding
        // it — the receiver inside is still sound, so recover instead of
        // cascading the panic through the whole pool.
        let next = {
            let rx = ctx.conn_rx.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv_timeout(POLL_INTERVAL)
        };
        match next {
            Ok(stream) => {
                let outcome = catch_unwind(AssertUnwindSafe(|| serve_connection(svc, &stream)));
                svc.open_conns.dec();
                match outcome {
                    Ok(ConnOutcome::Done) => {}
                    Ok(ConnOutcome::KillWorker) => {
                        // Chaos hook: die *outside* the catch so the
                        // supervisor's respawn path gets exercised.
                        panic!("chaos: injected worker kill");
                    }
                    Err(_) => {
                        // The handler panicked: this connection is lost,
                        // the worker is not.
                        svc.metrics.counter_add("serve.worker_panics", 1);
                        svc.metrics.counter_add("serve.responses_500", 1);
                        let _ = http::write_response(
                            &stream,
                            500,
                            JSON,
                            b"{\"error\":\"internal error; the request was aborted\"}",
                            false,
                        );
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if svc.shutdown.is_set() {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// What serving a connection asks of the worker afterwards.
enum ConnOutcome {
    Done,
    /// Chaos `POST /chaos/panic-worker`: panic outside the catch.
    KillWorker,
}

/// One routed response, plus its transport side effects.
pub(crate) struct Routed {
    pub(crate) endpoint: &'static str,
    pub(crate) status: u16,
    pub(crate) content_type: &'static str,
    pub(crate) body: String,
    pub(crate) retry_after: Option<u64>,
    pub(crate) close: bool,
    pub(crate) kill_worker: bool,
}

impl Routed {
    fn new(endpoint: &'static str, status: u16, content_type: &'static str, body: String) -> Self {
        Self {
            endpoint,
            status,
            content_type,
            body,
            retry_after: None,
            close: false,
            kill_worker: false,
        }
    }
}

/// Map a response status onto its `serve.responses_*` counter. Both
/// transports report through this, which is what keeps their metric
/// accounting bit-identical.
pub(crate) fn count_status(metrics: &Metrics, status: u16) {
    match status {
        400 => metrics.counter_add("serve.responses_400", 1),
        404 | 405 => metrics.counter_add("serve.responses_404", 1),
        408 => metrics.counter_add("serve.responses_408", 1),
        409 => metrics.counter_add("serve.responses_409", 1),
        413 => metrics.counter_add("serve.responses_413", 1),
        500 => metrics.counter_add("serve.responses_500", 1),
        503 => metrics.counter_add("serve.responses_503", 1),
        _ => metrics.counter_add("serve.responses_200", 1),
    }
}

/// Serve one connection until it closes, errors, times out, or shutdown.
fn serve_connection(ctx: &ServiceCtx, stream: &TcpStream) -> ConnOutcome {
    let metrics = &ctx.metrics;
    let mut reader = BufReader::new(stream);
    loop {
        // A fresh deadline per request: idle keep-alive time is free, but
        // once the first byte lands the whole parse → batch → reply span
        // runs on the clock.
        let mut clock = RequestClock::new(ctx.request_timeout);
        let request =
            match http::read_request(&mut reader, ctx.max_body, &ctx.shutdown.flag, &mut clock) {
                Ok(r) => r,
                Err(ReadError::Closed) => return ConnOutcome::Done,
                Err(ReadError::TimedOut) => {
                    metrics.counter_add("serve.request_timeouts", 1);
                    metrics.counter_add("serve.responses_408", 1);
                    let _ = http::write_response(
                        stream,
                        408,
                        JSON,
                        b"{\"error\":\"request not completed within the deadline\"}",
                        false,
                    );
                    return ConnOutcome::Done;
                }
                Err(ReadError::BadRequest(msg)) => {
                    metrics.counter_add("serve.responses_400", 1);
                    let body = format!("{{\"error\":\"{}\"}}", http::json_escape(&msg));
                    let _ = http::write_response(stream, 400, JSON, body.as_bytes(), false);
                    return ConnOutcome::Done;
                }
                Err(ReadError::BodyTooLarge { declared, limit }) => {
                    metrics.counter_add("serve.responses_413", 1);
                    let body = format!(
                        "{{\"error\":\"body of {declared} bytes exceeds the {limit}-byte limit\"}}"
                    );
                    let _ = http::write_response(stream, 413, JSON, body.as_bytes(), false);
                    return ConnOutcome::Done;
                }
                Err(ReadError::Io(_)) => return ConnOutcome::Done,
            };
        metrics.counter_add("serve.requests_total", 1);

        // Pin the serving app for this request: a concurrent hot reload
        // swaps the slot, not anything this request can observe.
        let app = ctx.slot.current();

        let t0 = Instant::now();
        let routed = route(ctx, &app, &request, &clock);
        metrics.observe(routed.endpoint, t0.elapsed().as_secs_f64());
        count_status(metrics, routed.status);

        // Once shutdown is underway, answer but stop keeping alive.
        let keep_alive =
            request.keep_alive && !routed.close && !routed.kill_worker && !ctx.shutdown.is_set();
        if let Err(e) = http::write_response_ext(
            stream,
            routed.status,
            routed.content_type,
            routed.body.as_bytes(),
            keep_alive,
            routed.retry_after,
        ) {
            // A peer that stopped reading hits the socket write timeout;
            // dropping the connection here is the slowloris-write
            // equivalent of the read-side poll discipline.
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                metrics.counter_add("serve.write_timeouts", 1);
            }
            return ConnOutcome::Done;
        }
        if routed.kill_worker {
            return ConnOutcome::KillWorker;
        }
        if !keep_alive {
            return ConnOutcome::Done;
        }
    }
}

/// What routing decided, for transports that score asynchronously.
pub(crate) enum RouteOutcome {
    /// Answer now.
    Ready(Routed),
    /// A parseable `POST /predict`: hand it to the scorer pool however
    /// the transport likes.
    Predict {
        publisher: u32,
        consumer: u32,
        words: Vec<WordId>,
    },
}

/// Dispatch one request against the pinned `app`, stopping short of the
/// scoring rendezvous — the transport decides how to wait for a score.
pub(crate) fn route_async(ctx: &ServiceCtx, app: &Arc<App>, request: &Request) -> RouteOutcome {
    if request.method == "POST" && request.path == "/predict" {
        return match app.parse_predict(&request.body) {
            Ok((publisher, consumer, words)) => RouteOutcome::Predict {
                publisher,
                consumer,
                words,
            },
            Err(msg) => RouteOutcome::Ready(Routed::new(
                "serve.predict_seconds",
                400,
                JSON,
                format!("{{\"error\":\"{}\"}}", http::json_escape(&msg)),
            )),
        };
    }
    RouteOutcome::Ready(route_inline(ctx, app, request))
}

/// Dispatch one request against the pinned `app` (blocking transport).
fn route(ctx: &ServiceCtx, app: &Arc<App>, request: &Request, clock: &RequestClock) -> Routed {
    match route_async(ctx, app, request) {
        RouteOutcome::Ready(routed) => routed,
        RouteOutcome::Predict {
            publisher,
            consumer,
            words,
        } => predict(ctx, app, clock, publisher, consumer, words),
    }
}

/// Every endpoint except `/predict` — answered inline on whichever
/// thread routed it.
fn route_inline(ctx: &ServiceCtx, app: &Arc<App>, request: &Request) -> Routed {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/rank-influencers") => {
            let (status, body) = app.rank_influencers(&request.body);
            Routed::new("serve.rank_seconds", status, JSON, body)
        }
        ("GET", path) if path.starts_with("/communities/") => {
            let segment = &path["/communities/".len()..];
            let (status, body) = app.communities(segment);
            Routed::new("serve.communities_seconds", status, JSON, body)
        }
        ("GET", "/healthz") => {
            let (status, body) =
                app.healthz(ctx.slot.generation(), ctx.degraded.load(Ordering::Acquire));
            Routed::new("serve.healthz_seconds", status, JSON, body)
        }
        ("GET", "/metrics") => Routed::new(
            "serve.metrics_seconds",
            200,
            "application/jsonl",
            ctx.metrics.snapshot().to_jsonl(),
        ),
        ("POST", "/reload") => reload(ctx, request),
        ("POST", "/shutdown") => {
            ctx.shutdown.trigger();
            Routed::new(
                "serve.shutdown_seconds",
                200,
                JSON,
                "{\"status\":\"shutting down\"}".to_owned(),
            )
        }
        ("POST", "/chaos/panic") if ctx.chaos_endpoints => {
            // Injected handler panic: must be contained by the worker's
            // catch_unwind, costing only this connection.
            panic!("chaos: injected handler panic");
        }
        ("POST", "/chaos/panic-worker") if ctx.chaos_endpoints => {
            // Answer first, then die outside the catch (the worker loop
            // panics after the response is on the wire) so the
            // supervisor's respawn path is exercised end to end.
            let mut routed = Routed::new(
                "serve.chaos_seconds",
                200,
                JSON,
                "{\"status\":\"worker will panic\"}".to_owned(),
            );
            routed.close = true;
            routed.kill_worker = true;
            routed
        }
        (
            _,
            "/predict" | "/rank-influencers" | "/healthz" | "/metrics" | "/reload" | "/shutdown",
        ) => Routed::new(
            "serve.other_seconds",
            405,
            JSON,
            "{\"error\":\"method not allowed\"}".to_owned(),
        ),
        _ => Routed::new(
            "serve.other_seconds",
            404,
            JSON,
            "{\"error\":\"no such endpoint\"}".to_owned(),
        ),
    }
}

/// `POST /reload` — verify and swap in a new artifact; any failure leaves
/// the old model serving and reports `409`.
fn reload(ctx: &ServiceCtx, request: &Request) -> Routed {
    let path = match App::parse_reload(&request.body) {
        Ok(p) => p,
        Err(msg) => {
            return Routed::new(
                "serve.reload_endpoint_seconds",
                400,
                JSON,
                format!("{{\"error\":\"{}\"}}", http::json_escape(&msg)),
            )
        }
    };
    match ctx.slot.reload(path.as_deref()) {
        Ok(outcome) => Routed::new(
            "serve.reload_endpoint_seconds",
            200,
            JSON,
            format!(
                "{{\"status\":\"reloaded\",\"generation\":{},\"model\":\"{}\",\"users\":{}}}",
                outcome.generation,
                http::json_escape(&outcome.model_path),
                outcome.users,
            ),
        ),
        Err(msg) => Routed::new(
            "serve.reload_endpoint_seconds",
            409,
            JSON,
            format!("{{\"error\":\"{}\"}}", http::json_escape(&msg)),
        ),
    }
}

/// Enqueue on the scorer pool (bounded) and block for the score
/// (bounded) — the thread transport's `/predict` rendezvous.
fn predict(
    ctx: &ServiceCtx,
    app: &Arc<App>,
    clock: &RequestClock,
    publisher: u32,
    consumer: u32,
    words: Vec<WordId>,
) -> Routed {
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let deadline = clock.deadline();
    let job = Job::Predict(PredictJob {
        app: Arc::clone(app),
        publisher,
        consumer,
        words,
        deadline,
        reply: ReplySink::Channel(reply_tx),
    });
    match ctx.job_tx.try_send(job) {
        Ok(()) => {}
        Err(mpsc::TrySendError::Full(_)) => {
            ctx.metrics.counter_add("serve.shed", 1);
            ctx.metrics.counter_add("serve.shed_jobs", 1);
            let mut routed = Routed::new(
                "serve.predict_seconds",
                503,
                JSON,
                shed_body("predict queue full"),
            );
            routed.retry_after = Some(RETRY_AFTER_SECS);
            return routed;
        }
        Err(mpsc::TrySendError::Disconnected(_)) => {
            return Routed::new(
                "serve.predict_seconds",
                503,
                JSON,
                "{\"error\":\"scoring queue is gone\"}".to_owned(),
            )
        }
    }
    // Wait no longer than the request deadline allows: a stalled batcher
    // becomes a clean 503, never a hung client slot.
    let wait = clock.remaining().unwrap_or(Duration::from_secs(3600));
    match reply_rx.recv_timeout(wait) {
        Ok(result) => {
            let (status, body) = app.predict_response(publisher, consumer, result);
            Routed::new("serve.predict_seconds", status, JSON, body)
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            ctx.metrics.counter_add("serve.request_timeouts", 1);
            let mut routed = Routed::new(
                "serve.predict_seconds",
                503,
                JSON,
                shed_body("scoring missed the request deadline"),
            );
            routed.retry_after = Some(RETRY_AFTER_SECS);
            routed
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => Routed::new(
            "serve.predict_seconds",
            503,
            JSON,
            "{\"error\":\"scoring queue is gone\"}".to_owned(),
        ),
    }
}

/// Drain jobs into micro-batches and score them, each against the app it
/// was dispatched with. One body serves both transports: the thread
/// transport runs a single instance (the batcher), the epoll transport
/// runs `workers` instances contending on the shared receiver — whoever
/// wins the lock fills a whole batch, so batching semantics are
/// unchanged.
///
/// Exit discipline differs by transport. The thread transport's batcher
/// exits only when every job sender hangs up (`Disconnected`): workers
/// still submit jobs while draining in-flight requests, so shutdown
/// alone must not stop scoring. The epoll transport's scorers pass
/// `drain_exit`: the event loops are the only producers and exit first,
/// so a scorer leaves once shutdown is up, the last loop is gone, and
/// the queue has run dry.
fn scorer_loop(
    metrics: &Metrics,
    job_rx: &Mutex<mpsc::Receiver<Job>>,
    batch_max: usize,
    batch_wait: Duration,
    drain_exit: Option<(&ShutdownFlag, &AtomicUsize)>,
) {
    let mut batch: Vec<PredictJob> = Vec::with_capacity(batch_max);
    loop {
        let mut poison = false;
        {
            // Hold the lock across the whole batch fill: one scorer
            // collecting a full micro-batch beats N scorers stealing
            // single jobs (identical to the dedicated-batcher behavior).
            let rx = job_rx.lock().unwrap_or_else(PoisonError::into_inner);
            match rx.recv_timeout(POLL_INTERVAL) {
                Ok(Job::Predict(job)) => batch.push(job),
                Ok(Job::Poison) => poison = true,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if let Some((shutdown, live_loops)) = drain_exit {
                        if shutdown.is_set() && live_loops.load(Ordering::Acquire) == 0 {
                            return;
                        }
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
            if !poison {
                let deadline = Instant::now() + batch_wait;
                while batch.len() < batch_max {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match rx.recv_timeout(deadline - now) {
                        Ok(Job::Predict(job)) => batch.push(job),
                        Ok(Job::Poison) => {
                            poison = true;
                            break;
                        }
                        Err(_) => break,
                    }
                }
            }
        }
        if !batch.is_empty() {
            metrics.observe("serve.batch_size", batch.len() as f64);
        }
        for job in batch.drain(..) {
            // A job that expired while queued is dead weight: its client
            // already got a 503, so scoring it would only delay live
            // jobs further. Dropping the reply sink unblocks any
            // straggler receiver.
            if job.deadline.is_some_and(|d| Instant::now() >= d) {
                metrics.counter_add("serve.batch_expired", 1);
                continue;
            }
            // Contain scoring panics to the one job: the reply sink
            // drops, its client gets a 503, and the scorer lives on.
            let result = catch_unwind(AssertUnwindSafe(|| {
                job.app
                    .predictor()
                    .diffusion_score(job.publisher, job.consumer, &job.words)
            }));
            match result {
                Ok(score) => job.reply.send(score),
                Err(_) => metrics.counter_add("serve.worker_panics", 1),
            }
        }
        if poison {
            // Chaos worker-kill under the epoll transport: every real job
            // in the batch was answered above; now die *outside* the
            // per-job catch so the supervisor respawn path runs.
            panic!("chaos: injected worker kill");
        }
    }
}
