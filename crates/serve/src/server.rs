//! The transport layer: listener, worker pool, batcher, shutdown.
//!
//! ```text
//!                    ┌─────────┐  TcpStream   ┌──────────┐
//!   accept() loop ──▶│ channel │─────────────▶│ worker 0 │──┐
//!                    └─────────┘              │   ...    │  │ PredictJob
//!                                             │ worker N │──┤
//!                                             └──────────┘  ▼
//!                                                       ┌─────────┐
//!                                                       │ batcher │
//!                                                       └─────────┘
//! ```
//!
//! * **Acceptor** — one thread on `accept()`; accepted connections go
//!   down an mpsc channel.
//! * **Workers** — a fixed pool; each pulls a connection and serves it to
//!   completion (keep-alive: many requests per connection). Concurrency
//!   is therefore bounded by the pool size; surplus connections queue.
//! * **Batcher** — one thread that drains `/predict` jobs into
//!   micro-batches (up to `batch_max` jobs or `batch_wait`, whichever
//!   first), scores them back-to-back through the shared predictor, and
//!   answers each job's reply channel. Batching amortizes channel wakeups
//!   and keeps the score loop hot; the achieved sizes are visible in the
//!   `serve.batch_size` histogram.
//! * **Shutdown** — `POST /shutdown` (or [`Server::shutdown`]) raises a
//!   flag; the acceptor is woken by a self-connection and stops; workers
//!   finish their in-flight request, answer with `connection: close`, and
//!   exit; the batcher drains and exits when the last worker hangs up.
//!   The process equivalent of SIGTERM handling, done in-band because
//!   `std` exposes no signal API.

use crate::app::{App, ServeError};
use crate::http::{self, ReadError, Request};
use cold_core::PredictError;
use cold_text::WordId;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8391` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads — the connection concurrency bound.
    pub workers: usize,
    /// Max `/predict` jobs scored per micro-batch.
    pub batch_max: usize,
    /// Max time the batcher waits to fill a batch once it holds a job.
    pub batch_wait: Duration,
    /// Request body cap in bytes (`413` beyond it).
    pub max_body: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8391".to_owned(),
            workers: 8,
            batch_max: 32,
            batch_wait: Duration::from_micros(500),
            max_body: 1024 * 1024,
        }
    }
}

/// How often blocked reads wake up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// One queued `/predict` computation.
struct PredictJob {
    publisher: u32,
    consumer: u32,
    words: Vec<WordId>,
    reply: mpsc::SyncSender<Result<f64, PredictError>>,
}

/// Shared shutdown signal; `trigger` is idempotent.
struct ShutdownFlag {
    flag: AtomicBool,
    addr: SocketAddr,
}

impl ShutdownFlag {
    fn trigger(&self) {
        if !self.flag.swap(true, Ordering::AcqRel) {
            // Wake the acceptor out of its blocking accept().
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn is_set(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A running service; dropping it without calling [`Server::shutdown`]
/// or [`Server::join`] detaches the threads.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<ShutdownFlag>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the thread pool, and start serving `app`.
    pub fn start(config: ServeConfig, app: App) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Io {
            context: format!("cannot bind {}", config.addr),
            source,
        })?;
        let addr = listener.local_addr().map_err(|source| ServeError::Io {
            context: "cannot read bound address".to_owned(),
            source,
        })?;
        let app = Arc::new(app);
        let metrics = app.metrics().clone();
        metrics.gauge_set("serve.workers", config.workers as f64);
        let shutdown = Arc::new(ShutdownFlag {
            flag: AtomicBool::new(false),
            addr,
        });

        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let (job_tx, job_rx) = mpsc::channel::<PredictJob>();

        let batcher = {
            let app = Arc::clone(&app);
            let batch_max = config.batch_max.max(1);
            let batch_wait = config.batch_wait;
            std::thread::Builder::new()
                .name("cold-serve-batcher".into())
                .spawn(move || batcher_loop(&app, &job_rx, batch_max, batch_wait))
                .map_err(|source| ServeError::Io {
                    context: "cannot spawn batcher thread".to_owned(),
                    source,
                })?
        };

        let mut workers = Vec::with_capacity(config.workers);
        for w in 0..config.workers.max(1) {
            let app = Arc::clone(&app);
            let shutdown = Arc::clone(&shutdown);
            let conn_rx = Arc::clone(&conn_rx);
            let job_tx = job_tx.clone();
            let max_body = config.max_body;
            let handle = std::thread::Builder::new()
                .name(format!("cold-serve-worker-{w}"))
                .spawn(move || worker_loop(&app, &shutdown, &conn_rx, &job_tx, max_body))
                .map_err(|source| ServeError::Io {
                    context: format!("cannot spawn worker thread {w}"),
                    source,
                })?;
            workers.push(handle);
        }
        // Workers hold the only job senders now, so the batcher exits
        // exactly when the last worker does.
        drop(job_tx);

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("cold-serve-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shutdown, &conn_tx, &metrics))
                .map_err(|source| ServeError::Io {
                    context: "cannot spawn acceptor thread".to_owned(),
                    source,
                })?
        };

        Ok(Server {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            batcher: Some(batcher),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Raise the shutdown flag and wait for every thread to finish its
    /// in-flight work and exit.
    pub fn shutdown(mut self) {
        self.shutdown.trigger();
        self.join_threads();
    }

    /// Block until shutdown is triggered elsewhere (`POST /shutdown`),
    /// then reap the threads.
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    shutdown: &ShutdownFlag,
    conn_tx: &mpsc::Sender<TcpStream>,
    metrics: &cold_obs::Metrics,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shutdown.is_set() {
                    // The wake-up connection (or a straggler): drop it.
                    return;
                }
                metrics.counter_add("serve.connections_total", 1);
                let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                let _ = stream.set_nodelay(true);
                if conn_tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                if shutdown.is_set() {
                    return;
                }
            }
        }
    }
}

fn worker_loop(
    app: &App,
    shutdown: &ShutdownFlag,
    conn_rx: &Mutex<mpsc::Receiver<TcpStream>>,
    job_tx: &mpsc::Sender<PredictJob>,
    max_body: usize,
) {
    loop {
        // Hold the lock only long enough to poll; holding it across a
        // blocking recv() would serialize the pool on one mutex.
        let next = {
            let rx = conn_rx.lock().expect("connection queue poisoned");
            rx.recv_timeout(POLL_INTERVAL)
        };
        match next {
            Ok(stream) => serve_connection(app, shutdown, &stream, job_tx, max_body),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.is_set() {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serve one connection until it closes, errors, or shutdown.
fn serve_connection(
    app: &App,
    shutdown: &ShutdownFlag,
    stream: &TcpStream,
    job_tx: &mpsc::Sender<PredictJob>,
    max_body: usize,
) {
    let metrics = app.metrics();
    let mut reader = BufReader::new(stream);
    loop {
        let request = match http::read_request(&mut reader, max_body, &shutdown.flag) {
            Ok(r) => r,
            Err(ReadError::Closed) => return,
            Err(ReadError::BadRequest(msg)) => {
                metrics.counter_add("serve.responses_400", 1);
                let body = format!("{{\"error\":\"{}\"}}", http::json_escape(&msg));
                let _ =
                    http::write_response(stream, 400, "application/json", body.as_bytes(), false);
                return;
            }
            Err(ReadError::BodyTooLarge { declared, limit }) => {
                metrics.counter_add("serve.responses_413", 1);
                let body = format!(
                    "{{\"error\":\"body of {declared} bytes exceeds the {limit}-byte limit\"}}"
                );
                let _ =
                    http::write_response(stream, 413, "application/json", body.as_bytes(), false);
                return;
            }
            Err(ReadError::Io(_)) => return,
        };
        metrics.counter_add("serve.requests_total", 1);

        let t0 = Instant::now();
        let (endpoint, status, content_type, body) = route(app, shutdown, &request, job_tx);
        metrics.observe(endpoint, t0.elapsed().as_secs_f64());
        match status {
            400 => metrics.counter_add("serve.responses_400", 1),
            404 | 405 => metrics.counter_add("serve.responses_404", 1),
            _ => metrics.counter_add("serve.responses_200", 1),
        }

        // Once shutdown is underway, answer but stop keeping alive.
        let keep_alive = request.keep_alive && !shutdown.is_set();
        if http::write_response(stream, status, content_type, body.as_bytes(), keep_alive).is_err()
        {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// Dispatch one request; returns `(latency histogram, status, content
/// type, body)`.
fn route(
    app: &App,
    shutdown: &ShutdownFlag,
    request: &Request,
    job_tx: &mpsc::Sender<PredictJob>,
) -> (&'static str, u16, &'static str, String) {
    const JSON: &str = "application/json";
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/predict") => {
            let (status, body) = predict(app, request, job_tx);
            ("serve.predict_seconds", status, JSON, body)
        }
        ("POST", "/rank-influencers") => {
            let (status, body) = app.rank_influencers(&request.body);
            ("serve.rank_seconds", status, JSON, body)
        }
        ("GET", path) if path.starts_with("/communities/") => {
            let segment = &path["/communities/".len()..];
            let (status, body) = app.communities(segment);
            ("serve.communities_seconds", status, JSON, body)
        }
        ("GET", "/healthz") => {
            let (status, body) = app.healthz();
            ("serve.healthz_seconds", status, JSON, body)
        }
        ("GET", "/metrics") => (
            "serve.metrics_seconds",
            200,
            "application/jsonl",
            app.metrics_jsonl(),
        ),
        ("POST", "/shutdown") => {
            shutdown.trigger();
            (
                "serve.shutdown_seconds",
                200,
                JSON,
                "{\"status\":\"shutting down\"}".to_owned(),
            )
        }
        (_, "/predict" | "/rank-influencers" | "/healthz" | "/metrics" | "/shutdown") => (
            "serve.other_seconds",
            405,
            JSON,
            "{\"error\":\"method not allowed\"}".to_owned(),
        ),
        _ => (
            "serve.other_seconds",
            404,
            JSON,
            "{\"error\":\"no such endpoint\"}".to_owned(),
        ),
    }
}

/// Parse, enqueue on the batcher, await the score.
fn predict(app: &App, request: &Request, job_tx: &mpsc::Sender<PredictJob>) -> (u16, String) {
    let (publisher, consumer, words) = match app.parse_predict(&request.body) {
        Ok(p) => p,
        Err(msg) => {
            return (
                400,
                format!("{{\"error\":\"{}\"}}", http::json_escape(&msg)),
            )
        }
    };
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let job = PredictJob {
        publisher,
        consumer,
        words,
        reply: reply_tx,
    };
    if job_tx.send(job).is_err() {
        return (503, "{\"error\":\"scoring queue is gone\"}".to_owned());
    }
    match reply_rx.recv() {
        Ok(result) => app.predict_response(publisher, consumer, result),
        Err(_) => (503, "{\"error\":\"scoring queue is gone\"}".to_owned()),
    }
}

/// Drain jobs into micro-batches and score them.
fn batcher_loop(
    app: &App,
    job_rx: &mpsc::Receiver<PredictJob>,
    batch_max: usize,
    batch_wait: Duration,
) {
    let metrics = app.metrics();
    let mut batch = Vec::with_capacity(batch_max);
    loop {
        match job_rx.recv() {
            Ok(job) => batch.push(job),
            Err(_) => return, // every worker hung up
        }
        let deadline = Instant::now() + batch_wait;
        while batch.len() < batch_max {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match job_rx.recv_timeout(deadline - now) {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        metrics.observe("serve.batch_size", batch.len() as f64);
        for job in batch.drain(..) {
            let result = app
                .predictor()
                .diffusion_score(job.publisher, job.consumer, &job.words);
            let _ = job.reply.send(result);
        }
    }
}
