//! The transport layer: listener, worker pool, batcher, supervisor,
//! shutdown.
//!
//! ```text
//!                    ┌─────────┐  TcpStream   ┌──────────┐
//!   accept() loop ──▶│ bounded │─────────────▶│ worker 0 │──┐
//!    (sheds 503)     │ channel │              │   ...    │  │ PredictJob
//!                    └─────────┘              │ worker N │──┤ (bounded)
//!                                             └──────────┘  ▼
//!                                               ▲       ┌─────────┐
//!                                    supervisor ┘       │ batcher │
//!                                  (respawns on panic)  └─────────┘
//! ```
//!
//! * **Acceptor** — one thread on `accept()`; accepted connections go
//!   down a *bounded* channel (`max_conns`). When it is full the server
//!   is saturated: the acceptor sheds the connection immediately with
//!   `503` + `Retry-After` instead of buffering without bound — memory
//!   stays flat and well-behaved clients back off.
//! * **Workers** — a fixed pool; each pulls a connection and serves it to
//!   completion (keep-alive: many requests per connection). Per-connection
//!   handling runs under `catch_unwind`: a panicking handler costs that
//!   connection a `500`, never the worker. Each request runs against the
//!   app the [`AppSlot`] held at dispatch, and under a deadline
//!   ([`ServeConfig::request_timeout`]) spanning parse → batch → reply.
//! * **Supervisor** — watches the pool and respawns workers whose panics
//!   escape the per-connection catch (`serve.worker_respawns`). A capped
//!   respawn breaker ([`ServeConfig::respawn_limit`]) stops a
//!   crash-loop: past the cap the pool is left shrunken and `/healthz`
//!   flips to `503 degraded` so load balancers route away.
//! * **Batcher** — one thread that drains `/predict` jobs into
//!   micro-batches (up to `batch_max` jobs or `batch_wait`, whichever
//!   first), scores them back-to-back, and answers each job's reply
//!   channel. Jobs carry their dispatch-time `Arc<App>`, so a hot reload
//!   mid-batch cannot change what an in-flight job scores against.
//! * **Watcher** (optional) — polls the serving artifact for changes
//!   (`--watch-model`) and triggers the same verified reload as
//!   `POST /reload`.
//! * **Shutdown** — `POST /shutdown` (or [`Server::shutdown`]) raises a
//!   flag; the acceptor is woken by a self-connection and stops; workers
//!   finish their in-flight request, answer with `connection: close`, and
//!   exit; the supervisor joins them; the batcher drains and exits when
//!   the last job sender hangs up.

use crate::app::{App, AppSlot, ServeError};
use crate::http::{self, ReadError, Request, RequestClock};
use cold_core::{ModelView, PredictError};
use cold_obs::Metrics;
use cold_text::WordId;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8391` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads — the connection concurrency bound.
    pub workers: usize,
    /// Max `/predict` jobs scored per micro-batch.
    pub batch_max: usize,
    /// Max time the batcher waits to fill a batch once it holds a job.
    pub batch_wait: Duration,
    /// Request body cap in bytes (`413` beyond it).
    pub max_body: usize,
    /// Connection queue bound: accepted-but-unserved connections beyond
    /// this are shed with `503` + `Retry-After` (`serve.shed_conns`).
    pub max_conns: usize,
    /// Predict-job queue bound: jobs beyond this are shed with `503` +
    /// `Retry-After` (`serve.shed_jobs`).
    pub max_queue: usize,
    /// Per-request deadline covering parse → batch → reply, armed by the
    /// request's first byte. `Duration::ZERO` disables it. A stalled
    /// upload gets `408`; a reply the batcher cannot produce in time gets
    /// `503` + `Retry-After`; response writes are bounded by the same
    /// budget via `set_write_timeout`.
    pub request_timeout: Duration,
    /// Respawn breaker: after this many worker respawns the supervisor
    /// stops replacing crashed workers and flips `/healthz` to
    /// `503 degraded` rather than crash-looping.
    pub respawn_limit: u32,
    /// Expose `POST /chaos/panic` and `POST /chaos/panic-worker`
    /// (fault-injection hooks for the chaos harness). Never enable in
    /// production.
    pub chaos_endpoints: bool,
    /// Poll the serving artifact at this interval and hot-reload it when
    /// the file changes (after re-verification). `None` disables.
    pub watch_model: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8391".to_owned(),
            workers: 8,
            batch_max: 32,
            batch_wait: Duration::from_micros(500),
            max_body: 1024 * 1024,
            max_conns: 1024,
            max_queue: 1024,
            request_timeout: Duration::from_secs(10),
            respawn_limit: 8,
            chaos_endpoints: false,
            watch_model: None,
        }
    }
}

/// How often blocked reads wake up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Write bound used when the request deadline is disabled, and for the
/// acceptor's shed responses (which must never block the accept loop).
const FALLBACK_WRITE_TIMEOUT: Duration = Duration::from_secs(10);
const SHED_WRITE_TIMEOUT: Duration = Duration::from_millis(250);

const JSON: &str = "application/json";
const RETRY_AFTER_SECS: u64 = 1;

fn shed_body(what: &str) -> String {
    format!("{{\"error\":\"server overloaded: {what}; retry shortly\"}}")
}

/// One queued `/predict` computation, pinned to the app that dispatched
/// it — a concurrent hot reload never changes what an in-flight job
/// scores against.
struct PredictJob {
    app: Arc<App>,
    publisher: u32,
    consumer: u32,
    words: Vec<WordId>,
    /// Request deadline; the batcher skips jobs that expired in-queue.
    deadline: Option<Instant>,
    reply: mpsc::SyncSender<Result<f64, PredictError>>,
}

/// Shared shutdown signal; `trigger` is idempotent.
struct ShutdownFlag {
    flag: AtomicBool,
    addr: SocketAddr,
}

impl ShutdownFlag {
    fn trigger(&self) {
        if !self.flag.swap(true, Ordering::AcqRel) {
            // Wake the acceptor out of its blocking accept().
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn is_set(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Everything a worker (or its supervisor-spawned replacement) needs.
struct WorkerCtx {
    slot: Arc<AppSlot>,
    metrics: Metrics,
    shutdown: Arc<ShutdownFlag>,
    degraded: Arc<AtomicBool>,
    conn_rx: Mutex<mpsc::Receiver<TcpStream>>,
    job_tx: mpsc::SyncSender<PredictJob>,
    max_body: usize,
    request_timeout: Option<Duration>,
    chaos_endpoints: bool,
}

/// A running service; dropping it without calling [`Server::shutdown`]
/// or [`Server::join`] detaches the threads.
pub struct Server {
    addr: SocketAddr,
    slot: Arc<AppSlot>,
    shutdown: Arc<ShutdownFlag>,
    acceptor: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the thread pool, and start serving `app`.
    pub fn start(config: ServeConfig, app: App) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Io {
            context: format!("cannot bind {}", config.addr),
            source,
        })?;
        let addr = listener.local_addr().map_err(|source| ServeError::Io {
            context: "cannot read bound address".to_owned(),
            source,
        })?;
        let slot = Arc::new(AppSlot::new(app));
        let metrics = slot.metrics().clone();
        metrics.gauge_set("serve.workers", config.workers.max(1) as f64);
        metrics.gauge_set("serve.degraded", 0.0);
        let shutdown = Arc::new(ShutdownFlag {
            flag: AtomicBool::new(false),
            addr,
        });
        let degraded = Arc::new(AtomicBool::new(false));

        // Bounded queues: saturation shows up as fast sheds, not as
        // unbounded buffering.
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(config.max_conns.max(1));
        let (job_tx, job_rx) = mpsc::sync_channel::<PredictJob>(config.max_queue.max(1));

        let batcher = {
            let metrics = metrics.clone();
            let batch_max = config.batch_max.max(1);
            let batch_wait = config.batch_wait;
            std::thread::Builder::new()
                .name("cold-serve-batcher".into())
                .spawn(move || batcher_loop(&metrics, &job_rx, batch_max, batch_wait))
                .map_err(|source| ServeError::Io {
                    context: "cannot spawn batcher thread".to_owned(),
                    source,
                })?
        };

        let ctx = Arc::new(WorkerCtx {
            slot: Arc::clone(&slot),
            metrics: metrics.clone(),
            shutdown: Arc::clone(&shutdown),
            degraded: Arc::clone(&degraded),
            conn_rx: Mutex::new(conn_rx),
            job_tx,
            max_body: config.max_body,
            request_timeout: (config.request_timeout > Duration::ZERO)
                .then_some(config.request_timeout),
            chaos_endpoints: config.chaos_endpoints,
        });

        let worker_names = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for _ in 0..config.workers.max(1) {
            workers.push(
                spawn_worker(&ctx, &worker_names).map_err(|source| ServeError::Io {
                    context: "cannot spawn worker thread".to_owned(),
                    source,
                })?,
            );
        }

        let supervisor = {
            let ctx = Arc::clone(&ctx);
            let respawn_limit = config.respawn_limit;
            let worker_names = Arc::clone(&worker_names);
            std::thread::Builder::new()
                .name("cold-serve-supervisor".into())
                .spawn(move || supervisor_loop(&ctx, workers, respawn_limit, &worker_names))
                .map_err(|source| ServeError::Io {
                    context: "cannot spawn supervisor thread".to_owned(),
                    source,
                })?
        };

        let watcher = match config.watch_model {
            Some(interval) => {
                let slot = Arc::clone(&slot);
                let shutdown = Arc::clone(&shutdown);
                let handle = std::thread::Builder::new()
                    .name("cold-serve-watcher".into())
                    .spawn(move || watcher_loop(&slot, &shutdown, interval))
                    .map_err(|source| ServeError::Io {
                        context: "cannot spawn watcher thread".to_owned(),
                        source,
                    })?;
                Some(handle)
            }
            None => None,
        };

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let write_timeout = if config.request_timeout > Duration::ZERO {
                config.request_timeout
            } else {
                FALLBACK_WRITE_TIMEOUT
            };
            std::thread::Builder::new()
                .name("cold-serve-acceptor".into())
                .spawn(move || {
                    acceptor_loop(&listener, &shutdown, &conn_tx, &metrics, write_timeout)
                })
                .map_err(|source| ServeError::Io {
                    context: "cannot spawn acceptor thread".to_owned(),
                    source,
                })?
        };

        Ok(Server {
            addr,
            slot,
            shutdown,
            acceptor: Some(acceptor),
            supervisor: Some(supervisor),
            batcher: Some(batcher),
            watcher,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving slot — current model generation, programmatic reload.
    pub fn app_slot(&self) -> &Arc<AppSlot> {
        &self.slot
    }

    /// Raise the shutdown flag and wait for every thread to finish its
    /// in-flight work and exit.
    pub fn shutdown(mut self) {
        self.shutdown.trigger();
        self.join_threads();
    }

    /// Block until shutdown is triggered elsewhere (`POST /shutdown`),
    /// then reap the threads.
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // The supervisor joins every worker (original or respawned).
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.watcher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

fn spawn_worker(ctx: &Arc<WorkerCtx>, names: &AtomicUsize) -> std::io::Result<JoinHandle<()>> {
    let id = names.fetch_add(1, Ordering::Relaxed);
    let ctx = Arc::clone(ctx);
    std::thread::Builder::new()
        .name(format!("cold-serve-worker-{id}"))
        .spawn(move || worker_loop(&ctx))
}

fn acceptor_loop(
    listener: &TcpListener,
    shutdown: &ShutdownFlag,
    conn_tx: &mpsc::SyncSender<TcpStream>,
    metrics: &Metrics,
    write_timeout: Duration,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shutdown.is_set() {
                    // The wake-up connection (or a straggler): drop it.
                    return;
                }
                metrics.counter_add("serve.connections_total", 1);
                let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                let _ = stream.set_write_timeout(Some(write_timeout));
                let _ = stream.set_nodelay(true);
                match conn_tx.try_send(stream) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(stream)) => {
                        // Saturated: shed now, with a bounded write so a
                        // dead peer cannot stall the accept loop.
                        metrics.counter_add("serve.shed", 1);
                        metrics.counter_add("serve.shed_conns", 1);
                        metrics.counter_add("serve.responses_503", 1);
                        let _ = stream.set_write_timeout(Some(SHED_WRITE_TIMEOUT));
                        let _ = http::write_response_ext(
                            &stream,
                            503,
                            JSON,
                            shed_body("connection queue full").as_bytes(),
                            false,
                            Some(RETRY_AFTER_SECS),
                        );
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                if shutdown.is_set() {
                    return;
                }
            }
        }
    }
}

/// Watch every worker; replace the ones whose panics escape the
/// per-connection catch. The breaker caps total respawns: past
/// `respawn_limit` the pool stays shrunken and `/healthz` goes degraded —
/// a persistently crashing handler must not turn into a crash-loop.
fn supervisor_loop(
    ctx: &Arc<WorkerCtx>,
    mut workers: Vec<JoinHandle<()>>,
    respawn_limit: u32,
    names: &AtomicUsize,
) {
    let mut respawns = 0u32;
    loop {
        let mut i = 0;
        while i < workers.len() {
            if !workers[i].is_finished() {
                i += 1;
                continue;
            }
            let panicked = workers.swap_remove(i).join().is_err();
            if ctx.shutdown.is_set() || !panicked {
                // Clean exits (drain, or channel teardown) need no action.
                continue;
            }
            // A panic that escaped serve_connection's catch_unwind killed
            // the whole thread (chaos worker-kill, or a bug in the
            // transport loop itself).
            ctx.metrics.counter_add("serve.worker_panics", 1);
            if respawns >= respawn_limit {
                if !ctx.degraded.swap(true, Ordering::AcqRel) {
                    ctx.metrics.gauge_set("serve.degraded", 1.0);
                }
            } else if let Ok(handle) = spawn_worker(ctx, names) {
                respawns += 1;
                ctx.metrics.counter_add("serve.worker_respawns", 1);
                workers.push(handle);
            }
            ctx.metrics.gauge_set("serve.workers", workers.len() as f64);
        }
        if ctx.shutdown.is_set() {
            for handle in workers {
                let _ = handle.join();
            }
            return;
        }
        std::thread::sleep(POLL_INTERVAL);
    }
}

/// Poll the serving artifact; when the file changes, re-verify and
/// hot-reload it through the [`AppSlot`]. A half-copied or corrupt file
/// is retried on the next change of its stat signature, never swapped in.
fn watcher_loop(slot: &AppSlot, shutdown: &ShutdownFlag, interval: Duration) {
    fn stat_sig(path: &str) -> Option<(SystemTime, u64)> {
        let meta = std::fs::metadata(path).ok()?;
        Some((meta.modified().ok()?, meta.len()))
    }

    let metrics = slot.metrics().clone();
    let mut last = stat_sig(slot.current().model_path());
    let mut last_rejected: Option<(SystemTime, u64)> = None;
    loop {
        // Sleep `interval` in short slices so shutdown stays responsive.
        let mut slept = Duration::ZERO;
        while slept < interval {
            if shutdown.is_set() {
                return;
            }
            let step = POLL_INTERVAL.min(interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
        if shutdown.is_set() {
            return;
        }
        let path = slot.current().model_path().to_owned();
        let now = stat_sig(&path);
        if now.is_none() || now == last || now == last_rejected {
            continue;
        }
        // Cheap verification first: a copy still in flight fails the
        // checksum and is retried once its stat signature changes again.
        match ModelView::verify_file(&path) {
            Ok(_) => match slot.reload(None) {
                Ok(outcome) => {
                    metrics.counter_add("serve.watch_reloads", 1);
                    last = now;
                    last_rejected = None;
                    let _ = outcome;
                }
                Err(_) => last_rejected = now,
            },
            Err(_) => last_rejected = now,
        }
    }
}

fn worker_loop(ctx: &WorkerCtx) {
    loop {
        // Hold the lock only long enough to poll; holding it across a
        // blocking recv() would serialize the pool on one mutex. A
        // poisoned mutex just means some worker panicked while holding
        // it — the receiver inside is still sound, so recover instead of
        // cascading the panic through the whole pool.
        let next = {
            let rx = ctx.conn_rx.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv_timeout(POLL_INTERVAL)
        };
        match next {
            Ok(stream) => {
                let outcome = catch_unwind(AssertUnwindSafe(|| serve_connection(ctx, &stream)));
                match outcome {
                    Ok(ConnOutcome::Done) => {}
                    Ok(ConnOutcome::KillWorker) => {
                        // Chaos hook: die *outside* the catch so the
                        // supervisor's respawn path gets exercised.
                        panic!("chaos: injected worker kill");
                    }
                    Err(_) => {
                        // The handler panicked: this connection is lost,
                        // the worker is not.
                        ctx.metrics.counter_add("serve.worker_panics", 1);
                        ctx.metrics.counter_add("serve.responses_500", 1);
                        let _ = http::write_response(
                            &stream,
                            500,
                            JSON,
                            b"{\"error\":\"internal error; the request was aborted\"}",
                            false,
                        );
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if ctx.shutdown.is_set() {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// What serving a connection asks of the worker afterwards.
enum ConnOutcome {
    Done,
    /// Chaos `POST /chaos/panic-worker`: panic outside the catch.
    KillWorker,
}

/// One routed response, plus its transport side effects.
struct Routed {
    endpoint: &'static str,
    status: u16,
    content_type: &'static str,
    body: String,
    retry_after: Option<u64>,
    close: bool,
    kill_worker: bool,
}

impl Routed {
    fn new(endpoint: &'static str, status: u16, content_type: &'static str, body: String) -> Self {
        Self {
            endpoint,
            status,
            content_type,
            body,
            retry_after: None,
            close: false,
            kill_worker: false,
        }
    }
}

/// Serve one connection until it closes, errors, times out, or shutdown.
fn serve_connection(ctx: &WorkerCtx, stream: &TcpStream) -> ConnOutcome {
    let metrics = &ctx.metrics;
    let mut reader = BufReader::new(stream);
    loop {
        // A fresh deadline per request: idle keep-alive time is free, but
        // once the first byte lands the whole parse → batch → reply span
        // runs on the clock.
        let mut clock = RequestClock::new(ctx.request_timeout);
        let request =
            match http::read_request(&mut reader, ctx.max_body, &ctx.shutdown.flag, &mut clock) {
                Ok(r) => r,
                Err(ReadError::Closed) => return ConnOutcome::Done,
                Err(ReadError::TimedOut) => {
                    metrics.counter_add("serve.request_timeouts", 1);
                    metrics.counter_add("serve.responses_408", 1);
                    let _ = http::write_response(
                        stream,
                        408,
                        JSON,
                        b"{\"error\":\"request not completed within the deadline\"}",
                        false,
                    );
                    return ConnOutcome::Done;
                }
                Err(ReadError::BadRequest(msg)) => {
                    metrics.counter_add("serve.responses_400", 1);
                    let body = format!("{{\"error\":\"{}\"}}", http::json_escape(&msg));
                    let _ = http::write_response(stream, 400, JSON, body.as_bytes(), false);
                    return ConnOutcome::Done;
                }
                Err(ReadError::BodyTooLarge { declared, limit }) => {
                    metrics.counter_add("serve.responses_413", 1);
                    let body = format!(
                        "{{\"error\":\"body of {declared} bytes exceeds the {limit}-byte limit\"}}"
                    );
                    let _ = http::write_response(stream, 413, JSON, body.as_bytes(), false);
                    return ConnOutcome::Done;
                }
                Err(ReadError::Io(_)) => return ConnOutcome::Done,
            };
        metrics.counter_add("serve.requests_total", 1);

        // Pin the serving app for this request: a concurrent hot reload
        // swaps the slot, not anything this request can observe.
        let app = ctx.slot.current();

        let t0 = Instant::now();
        let routed = route(ctx, &app, &request, &clock);
        metrics.observe(routed.endpoint, t0.elapsed().as_secs_f64());
        match routed.status {
            400 => metrics.counter_add("serve.responses_400", 1),
            404 | 405 => metrics.counter_add("serve.responses_404", 1),
            408 => metrics.counter_add("serve.responses_408", 1),
            409 => metrics.counter_add("serve.responses_409", 1),
            413 => metrics.counter_add("serve.responses_413", 1),
            500 => metrics.counter_add("serve.responses_500", 1),
            503 => metrics.counter_add("serve.responses_503", 1),
            _ => metrics.counter_add("serve.responses_200", 1),
        }

        // Once shutdown is underway, answer but stop keeping alive.
        let keep_alive =
            request.keep_alive && !routed.close && !routed.kill_worker && !ctx.shutdown.is_set();
        if let Err(e) = http::write_response_ext(
            stream,
            routed.status,
            routed.content_type,
            routed.body.as_bytes(),
            keep_alive,
            routed.retry_after,
        ) {
            // A peer that stopped reading hits the socket write timeout;
            // dropping the connection here is the slowloris-write
            // equivalent of the read-side poll discipline.
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                metrics.counter_add("serve.write_timeouts", 1);
            }
            return ConnOutcome::Done;
        }
        if routed.kill_worker {
            return ConnOutcome::KillWorker;
        }
        if !keep_alive {
            return ConnOutcome::Done;
        }
    }
}

/// Dispatch one request against the pinned `app`.
fn route(ctx: &WorkerCtx, app: &Arc<App>, request: &Request, clock: &RequestClock) -> Routed {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/predict") => predict(ctx, app, request, clock),
        ("POST", "/rank-influencers") => {
            let (status, body) = app.rank_influencers(&request.body);
            Routed::new("serve.rank_seconds", status, JSON, body)
        }
        ("GET", path) if path.starts_with("/communities/") => {
            let segment = &path["/communities/".len()..];
            let (status, body) = app.communities(segment);
            Routed::new("serve.communities_seconds", status, JSON, body)
        }
        ("GET", "/healthz") => {
            let (status, body) =
                app.healthz(ctx.slot.generation(), ctx.degraded.load(Ordering::Acquire));
            Routed::new("serve.healthz_seconds", status, JSON, body)
        }
        ("GET", "/metrics") => Routed::new(
            "serve.metrics_seconds",
            200,
            "application/jsonl",
            ctx.metrics.snapshot().to_jsonl(),
        ),
        ("POST", "/reload") => reload(ctx, request),
        ("POST", "/shutdown") => {
            ctx.shutdown.trigger();
            Routed::new(
                "serve.shutdown_seconds",
                200,
                JSON,
                "{\"status\":\"shutting down\"}".to_owned(),
            )
        }
        ("POST", "/chaos/panic") if ctx.chaos_endpoints => {
            // Injected handler panic: must be contained by the worker's
            // catch_unwind, costing only this connection.
            panic!("chaos: injected handler panic");
        }
        ("POST", "/chaos/panic-worker") if ctx.chaos_endpoints => {
            // Answer first, then die outside the catch (the worker loop
            // panics after the response is on the wire) so the
            // supervisor's respawn path is exercised end to end.
            let mut routed = Routed::new(
                "serve.chaos_seconds",
                200,
                JSON,
                "{\"status\":\"worker will panic\"}".to_owned(),
            );
            routed.close = true;
            routed.kill_worker = true;
            routed
        }
        (
            _,
            "/predict" | "/rank-influencers" | "/healthz" | "/metrics" | "/reload" | "/shutdown",
        ) => Routed::new(
            "serve.other_seconds",
            405,
            JSON,
            "{\"error\":\"method not allowed\"}".to_owned(),
        ),
        _ => Routed::new(
            "serve.other_seconds",
            404,
            JSON,
            "{\"error\":\"no such endpoint\"}".to_owned(),
        ),
    }
}

/// `POST /reload` — verify and swap in a new artifact; any failure leaves
/// the old model serving and reports `409`.
fn reload(ctx: &WorkerCtx, request: &Request) -> Routed {
    let path = match App::parse_reload(&request.body) {
        Ok(p) => p,
        Err(msg) => {
            return Routed::new(
                "serve.reload_endpoint_seconds",
                400,
                JSON,
                format!("{{\"error\":\"{}\"}}", http::json_escape(&msg)),
            )
        }
    };
    match ctx.slot.reload(path.as_deref()) {
        Ok(outcome) => Routed::new(
            "serve.reload_endpoint_seconds",
            200,
            JSON,
            format!(
                "{{\"status\":\"reloaded\",\"generation\":{},\"model\":\"{}\",\"users\":{}}}",
                outcome.generation,
                http::json_escape(&outcome.model_path),
                outcome.users,
            ),
        ),
        Err(msg) => Routed::new(
            "serve.reload_endpoint_seconds",
            409,
            JSON,
            format!("{{\"error\":\"{}\"}}", http::json_escape(&msg)),
        ),
    }
}

/// Parse, enqueue on the batcher (bounded), await the score (bounded).
fn predict(ctx: &WorkerCtx, app: &Arc<App>, request: &Request, clock: &RequestClock) -> Routed {
    let (publisher, consumer, words) = match app.parse_predict(&request.body) {
        Ok(p) => p,
        Err(msg) => {
            return Routed::new(
                "serve.predict_seconds",
                400,
                JSON,
                format!("{{\"error\":\"{}\"}}", http::json_escape(&msg)),
            )
        }
    };
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let deadline = clock.deadline();
    let job = PredictJob {
        app: Arc::clone(app),
        publisher,
        consumer,
        words,
        deadline,
        reply: reply_tx,
    };
    match ctx.job_tx.try_send(job) {
        Ok(()) => {}
        Err(mpsc::TrySendError::Full(_)) => {
            ctx.metrics.counter_add("serve.shed", 1);
            ctx.metrics.counter_add("serve.shed_jobs", 1);
            let mut routed = Routed::new(
                "serve.predict_seconds",
                503,
                JSON,
                shed_body("predict queue full"),
            );
            routed.retry_after = Some(RETRY_AFTER_SECS);
            return routed;
        }
        Err(mpsc::TrySendError::Disconnected(_)) => {
            return Routed::new(
                "serve.predict_seconds",
                503,
                JSON,
                "{\"error\":\"scoring queue is gone\"}".to_owned(),
            )
        }
    }
    // Wait no longer than the request deadline allows: a stalled batcher
    // becomes a clean 503, never a hung client slot.
    let wait = clock.remaining().unwrap_or(Duration::from_secs(3600));
    match reply_rx.recv_timeout(wait) {
        Ok(result) => {
            let (status, body) = app.predict_response(publisher, consumer, result);
            Routed::new("serve.predict_seconds", status, JSON, body)
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            ctx.metrics.counter_add("serve.request_timeouts", 1);
            let mut routed = Routed::new(
                "serve.predict_seconds",
                503,
                JSON,
                shed_body("scoring missed the request deadline"),
            );
            routed.retry_after = Some(RETRY_AFTER_SECS);
            routed
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => Routed::new(
            "serve.predict_seconds",
            503,
            JSON,
            "{\"error\":\"scoring queue is gone\"}".to_owned(),
        ),
    }
}

/// Drain jobs into micro-batches and score them, each against the app it
/// was dispatched with.
fn batcher_loop(
    metrics: &Metrics,
    job_rx: &mpsc::Receiver<PredictJob>,
    batch_max: usize,
    batch_wait: Duration,
) {
    let mut batch = Vec::with_capacity(batch_max);
    loop {
        match job_rx.recv() {
            Ok(job) => batch.push(job),
            Err(_) => return, // every job sender hung up
        }
        let deadline = Instant::now() + batch_wait;
        while batch.len() < batch_max {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match job_rx.recv_timeout(deadline - now) {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        metrics.observe("serve.batch_size", batch.len() as f64);
        for job in batch.drain(..) {
            // A job that expired while queued is dead weight: its worker
            // already answered 503, so scoring it would only delay live
            // jobs further. Dropping the reply sender unblocks any
            // straggler receiver.
            if job.deadline.is_some_and(|d| Instant::now() >= d) {
                metrics.counter_add("serve.batch_expired", 1);
                continue;
            }
            // Contain scoring panics to the one job: the reply channel
            // drops, its worker answers 503, and the batcher lives on.
            let result = catch_unwind(AssertUnwindSafe(|| {
                job.app
                    .predictor()
                    .diffusion_score(job.publisher, job.consumer, &job.words)
            }));
            match result {
                Ok(score) => {
                    let _ = job.reply.send(score);
                }
                Err(_) => metrics.counter_add("serve.worker_panics", 1),
            }
        }
    }
}
