//! Endpoint logic: the model-facing half of `cold-serve`.
//!
//! [`App`] owns everything request handlers need — the shared
//! [`ModelView`], the precomputed [`DiffusionPredictor`], the per-topic
//! influencer rankings, the optional vocabulary, and the metrics handle —
//! and exposes one method per endpoint returning `(status, json)`.
//! Transport (sockets, framing, batching) lives in [`crate::server`]; this
//! module never touches a socket, which is what makes it unit-testable.

use crate::http::json_escape;
use cold_core::{DiffusionPredictor, ModelRead, ModelView, PersistError, PredictError};
use cold_obs::Metrics;
use cold_text::WordId;
use serde::{Deserialize, Value};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// How the service failed to come up (never used on the request path).
#[derive(Debug)]
pub enum ServeError {
    /// The model file could not be opened or failed verification.
    Model {
        /// The path we tried.
        path: String,
        /// The underlying persistence failure.
        source: PersistError,
    },
    /// The predictor rejected its configuration.
    Predict(PredictError),
    /// Socket-level failure (bind, accept).
    Io {
        /// What we were doing.
        context: String,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Model { path, source } => {
                write!(f, "cannot open model {path}: {source}")
            }
            ServeError::Predict(e) => write!(f, "cannot build predictor: {e}"),
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Model { source, .. } => Some(source),
            ServeError::Predict(e) => Some(e),
            ServeError::Io { source, .. } => Some(source),
        }
    }
}

/// A JSON response: status code plus body.
pub type JsonResponse = (u16, String);

fn error_json(status: u16, msg: &str) -> JsonResponse {
    (status, format!("{{\"error\":\"{}\"}}", json_escape(msg)))
}

fn f64_json(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        // JSON has no Infinity/NaN literals; degrade to null rather than
        // emit an unparseable document.
        "null".to_owned()
    }
}

/// Per-topic influencer ranking entry.
#[derive(Debug, Clone, Copy)]
struct RankedUser {
    user: u32,
    score: f64,
}

/// The loaded service state shared by every worker.
///
/// An `App` is immutable once built — hot reload builds a *new* `App`
/// and swaps it into the serving [`AppSlot`]; requests hold an
/// `Arc<App>` for their whole lifetime, so in-flight work always
/// finishes on the model it started with.
pub struct App {
    view: Arc<ModelView>,
    predictor: DiffusionPredictor<Arc<ModelView>>,
    /// Per-topic top users by aggregate outgoing influence, best first.
    rank: Vec<Vec<RankedUser>>,
    /// `top_comm` this app was built with (reload reuses it).
    top_comm: usize,
    /// Ranking depth each entry of `rank` was truncated to.
    rank_depth: usize,
    /// Optional word → id lookup, enabling string words in `/predict`.
    vocab: Option<HashMap<String, WordId>>,
    metrics: Metrics,
    model_path: String,
    started: Instant,
}

impl App {
    /// Open `model_path`, precompute the predictor tables and the
    /// per-topic influencer rankings, and return the ready state.
    ///
    /// `top_comm` follows [`DiffusionPredictor`] semantics (clamped to
    /// `C`); `rank_depth` bounds `/rank-influencers` answers.
    pub fn load(
        model_path: impl AsRef<Path>,
        top_comm: usize,
        rank_depth: usize,
        vocab: Option<HashMap<String, WordId>>,
        metrics: Metrics,
    ) -> Result<Self, ServeError> {
        let path_str = model_path.as_ref().display().to_string();
        let t0 = metrics.start();
        let view = Arc::new(
            ModelView::open(&model_path).map_err(|source| ServeError::Model {
                path: path_str.clone(),
                source,
            })?,
        );
        metrics.observe_since("serve.model_open_seconds", t0);

        let t0 = metrics.start();
        let predictor =
            DiffusionPredictor::with_metrics(Arc::clone(&view), top_comm, metrics.clone())
                .map_err(ServeError::Predict)?;
        metrics.observe_since("serve.precompute_seconds", t0);

        let t0 = metrics.start();
        let rank = build_rankings(&*view, &predictor, rank_depth);
        metrics.observe_since("serve.rank_precompute_seconds", t0);

        let dims = view.dims();
        metrics.gauge_set("serve.model_users", f64::from(dims.num_users));
        metrics.gauge_set("serve.model_communities", dims.num_communities as f64);
        metrics.gauge_set("serve.model_topics", dims.num_topics as f64);

        Ok(Self {
            view,
            predictor,
            rank,
            top_comm,
            rank_depth,
            vocab,
            metrics,
            model_path: path_str,
            started: Instant::now(),
        })
    }

    /// The metrics handle shared with the transport layer.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The path this app's model was opened from.
    pub fn model_path(&self) -> &str {
        &self.model_path
    }

    /// The predictor (the batcher scores through it directly).
    pub fn predictor(&self) -> &DiffusionPredictor<Arc<ModelView>> {
        &self.predictor
    }

    /// Parse a `/predict` body into `(publisher, consumer, words)`.
    ///
    /// Words may be numeric ids, or strings when a vocabulary was
    /// provided at load.
    pub fn parse_predict(&self, body: &[u8]) -> Result<(u32, u32, Vec<WordId>), String> {
        let v = parse_json_object(body)?;
        let publisher = field_u32(&v, "publisher")?;
        let consumer = field_u32(&v, "consumer")?;
        let words_v = v
            .get("words")
            .ok_or_else(|| "missing field `words`".to_owned())?;
        let items = words_v
            .as_array()
            .ok_or_else(|| format!("`words` must be an array, got {}", words_v.kind()))?;
        let mut words = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            match item {
                Value::Int(n) if *n >= 0 && *n <= u32::MAX as i64 => words.push(*n as u32),
                Value::Int(n) => return Err(format!("words[{i}] = {n} is not a valid word id")),
                Value::Str(s) => match &self.vocab {
                    Some(vocab) => match vocab.get(s.as_str()) {
                        Some(&id) => words.push(id),
                        None => return Err(format!("unknown word {s:?}")),
                    },
                    None => {
                        return Err(format!(
                            "words[{i}] is a string but the server was started without \
                             a vocabulary (pass --data at `cold serve` time)"
                        ))
                    }
                },
                other => {
                    return Err(format!(
                        "words[{i}] must be a word id or string, got {}",
                        other.kind()
                    ))
                }
            }
        }
        Ok((publisher, consumer, words))
    }

    /// Render a `/predict` result (the batcher produced the score).
    pub fn predict_response(
        &self,
        publisher: u32,
        consumer: u32,
        result: Result<f64, PredictError>,
    ) -> JsonResponse {
        match result {
            Ok(score) => (
                200,
                format!(
                    "{{\"publisher\":{publisher},\"consumer\":{consumer},\"score\":{}}}",
                    f64_json(score)
                ),
            ),
            Err(e) => error_json(400, &e.to_string()),
        }
    }

    /// `POST /rank-influencers` — body `{"topic": k, "limit": n}`.
    pub fn rank_influencers(&self, body: &[u8]) -> JsonResponse {
        let parsed = (|| -> Result<(usize, usize), String> {
            let v = parse_json_object(body)?;
            let topic = field_u32(&v, "topic")? as usize;
            let limit = match v.get("limit") {
                None | Some(Value::Null) => 10,
                Some(x) => u32::from_value(x).map_err(|e| format!("field `limit`: {e}"))? as usize,
            };
            Ok((topic, limit))
        })();
        let (topic, limit) = match parsed {
            Ok(p) => p,
            Err(msg) => return error_json(400, &msg),
        };
        let num_topics = self.view.dims().num_topics;
        if topic >= num_topics {
            return error_json(
                400,
                &PredictError::UnknownTopic { topic, num_topics }.to_string(),
            );
        }
        let limit = limit.min(self.rank_depth);
        let entries: Vec<String> = self.rank[topic]
            .iter()
            .take(limit)
            .map(|r| {
                format!(
                    "{{\"user\":{},\"influence\":{}}}",
                    r.user,
                    f64_json(r.score)
                )
            })
            .collect();
        (
            200,
            format!(
                "{{\"topic\":{topic},\"limit\":{limit},\"influencers\":[{}]}}",
                entries.join(",")
            ),
        )
    }

    /// `GET /communities/:user`.
    pub fn communities(&self, user_segment: &str) -> JsonResponse {
        let user: u32 = match user_segment.parse() {
            Ok(u) => u,
            Err(_) => {
                return error_json(400, &format!("user id {user_segment:?} is not an integer"))
            }
        };
        let top = match self.predictor.top_communities(user) {
            Ok(t) => t,
            Err(e) => return error_json(400, &e.to_string()),
        };
        let memberships = self.view.user_memberships(user);
        let top_json: Vec<String> = top.iter().map(|c| c.to_string()).collect();
        let pi_json: Vec<String> = memberships.iter().map(|&p| f64_json(p)).collect();
        (
            200,
            format!(
                "{{\"user\":{user},\"top_communities\":[{}],\"memberships\":[{}]}}",
                top_json.join(","),
                pi_json.join(",")
            ),
        )
    }

    /// `GET /healthz`.
    ///
    /// `generation` counts completed hot reloads; `degraded` (the worker
    /// supervisor's respawn breaker has tripped) turns the answer into a
    /// `503` so load balancers stop routing here while the pool is
    /// impaired — the server keeps answering what it still can.
    pub fn healthz(&self, generation: u64, degraded: bool) -> JsonResponse {
        let d = self.view.dims();
        let (status, word) = if degraded {
            (503, "degraded")
        } else {
            (200, "ok")
        };
        (
            status,
            format!(
                "{{\"status\":\"{word}\",\"backing\":\"{}\",\"model\":\"{}\",\
                 \"generation\":{generation},\
                 \"users\":{},\"communities\":{},\"topics\":{},\
                 \"time_slices\":{},\"vocab\":{},\"samples\":{},\
                 \"uptime_seconds\":{}}}",
                self.view.backing(),
                json_escape(&self.model_path),
                d.num_users,
                d.num_communities,
                d.num_topics,
                d.num_time_slices,
                d.vocab_size,
                self.view.num_samples(),
                f64_json(self.started.elapsed().as_secs_f64()),
            ),
        )
    }

    /// Parse a `/reload` body: empty (or `{}`) re-opens the current
    /// artifact path, `{"model": "path"}` switches to a new one.
    pub fn parse_reload(body: &[u8]) -> Result<Option<String>, String> {
        if body.iter().all(|b| b.is_ascii_whitespace()) {
            return Ok(None);
        }
        let v = parse_json_object(body)?;
        match v.get("model") {
            None | Some(Value::Null) => Ok(None),
            Some(Value::Str(s)) => Ok(Some(s.clone())),
            Some(other) => Err(format!(
                "`model` must be a path string, got {}",
                other.kind()
            )),
        }
    }

    /// `GET /metrics` — the `cold-obs/v1` JSONL snapshot.
    pub fn metrics_jsonl(&self) -> String {
        self.metrics.snapshot().to_jsonl()
    }
}

/// What a successful hot reload swapped in.
#[derive(Debug)]
pub struct ReloadOutcome {
    /// Completed-reload count after this swap (starts at 0 at boot).
    pub generation: u64,
    /// The artifact path now being served.
    pub model_path: String,
    /// User axis of the new model.
    pub users: u32,
}

/// The hot-swappable serving slot.
///
/// Holds the current [`App`] behind a mutex-guarded `Arc` (the
/// ArcSwap pattern with std parts): request dispatch takes the lock just
/// long enough to clone the `Arc`, so a swap is atomic from the workers'
/// point of view and in-flight requests keep the model they started
/// with. [`AppSlot::reload`] builds the replacement *outside* that lock —
/// traffic keeps flowing on the old model during the (potentially
/// seconds-long) verify + precompute — and only a fully validated app is
/// ever swapped in. A corrupt, truncated, or dimension-skewed artifact is
/// rejected with the old model still serving.
pub struct AppSlot {
    current: Mutex<Arc<App>>,
    /// Completed reloads; also published as the `serve.model_generation`
    /// gauge and in `/healthz`.
    generation: AtomicU64,
    /// Serializes reloads end to end (verify → build → swap) so two
    /// concurrent `/reload`s cannot interleave their swaps.
    reload_lock: Mutex<()>,
    metrics: Metrics,
}

impl AppSlot {
    /// Wrap the boot-time app as generation 0.
    pub fn new(app: App) -> Self {
        let metrics = app.metrics().clone();
        metrics.gauge_set("serve.model_generation", 0.0);
        Self {
            current: Mutex::new(Arc::new(app)),
            generation: AtomicU64::new(0),
            reload_lock: Mutex::new(()),
            metrics,
        }
    }

    /// The app serving right now. Callers hold the returned `Arc` for the
    /// whole request, pinning the model across any concurrent swap.
    pub fn current(&self) -> Arc<App> {
        Arc::clone(&self.current.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Completed reload count.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The metrics handle shared across generations.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Re-open the serving artifact (or `new_path`) into a fresh [`App`]
    /// and atomically swap it in.
    ///
    /// The new artifact is re-verified first ([`ModelView::verify_file`]:
    /// header, length, and checksum for `cold-model/v1`; full parse for
    /// JSON) and, when a vocabulary is attached, must keep the old
    /// model's vocab axis — `/predict`'s string→id map would otherwise
    /// silently mis-resolve. Any failure leaves the old model serving and
    /// returns the reason (the transport answers `409`).
    pub fn reload(&self, new_path: Option<&str>) -> Result<ReloadOutcome, String> {
        let _guard = self
            .reload_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let t0 = self.metrics.start();
        let old = self.current();
        let path = new_path.unwrap_or_else(|| old.model_path()).to_owned();
        let outcome = self.reload_inner(&old, &path);
        match &outcome {
            Ok(_) => {
                self.metrics.counter_add("serve.reloads_ok", 1);
                self.metrics.observe_since("serve.reload_seconds", t0);
            }
            Err(_) => self.metrics.counter_add("serve.reloads_failed", 1),
        }
        outcome
    }

    fn reload_inner(&self, old: &App, path: &str) -> Result<ReloadOutcome, String> {
        let dims = ModelView::verify_file(path).map_err(|e| format!("artifact rejected: {e}"))?;
        if old.vocab.is_some() && dims.vocab_size != old.view.dims().vocab_size {
            return Err(format!(
                "artifact rejected: vocab axis changed from {} to {} but the server's \
                 word→id vocabulary is fixed at startup (restart with matching --data)",
                old.view.dims().vocab_size,
                dims.vocab_size,
            ));
        }
        let app = App::load(
            path,
            old.top_comm,
            old.rank_depth,
            old.vocab.clone(),
            self.metrics.clone(),
        )
        .map_err(|e| format!("artifact rejected: {e}"))?;
        let users = app.view.dims().num_users;
        *self.current.lock().unwrap_or_else(PoisonError::into_inner) = Arc::new(app);
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        self.metrics
            .gauge_set("serve.model_generation", generation as f64);
        Ok(ReloadOutcome {
            generation,
            model_path: path.to_owned(),
            users,
        })
    }
}

/// Build the per-topic influencer rankings.
///
/// A user's aggregate outgoing influence on topic `k` is
/// `Σ_{c∈Top(i)} π_ic · z_kc` with `z_kc = Σ_c' ζ_kcc'` — the expected
/// community-level influence their `TopComm` mass exerts, marginalized
/// over receiving communities. Coarse work (the `z` table, the per-user
/// fold, the top-`depth` selection) happens once at load; `/rank-
/// influencers` then answers from the table (the ADR-style
/// coarse-at-load / fine-per-request split).
fn build_rankings<M: ModelRead>(
    view: &M,
    predictor: &DiffusionPredictor<Arc<ModelView>>,
    depth: usize,
) -> Vec<Vec<RankedUser>> {
    let dims = view.dims();
    let (u, c, k) = (
        dims.num_users as usize,
        dims.num_communities,
        dims.num_topics,
    );
    // z_kc = Σ_c' ζ_kcc'
    let mut z = vec![0.0f64; k * c];
    for ci in 0..c {
        let theta_i = view.community_topics(ci);
        for cj in 0..c {
            let theta_j = view.community_topics(cj);
            let e = view.eta(ci, cj);
            for (kk, zk) in z.chunks_exact_mut(c).enumerate() {
                zk[ci] += theta_i[kk] * theta_j[kk] * e;
            }
        }
    }
    let mut rank = Vec::with_capacity(k);
    for kk in 0..k {
        let zk = &z[kk * c..(kk + 1) * c];
        let mut scored: Vec<RankedUser> = (0..u)
            .map(|i| {
                let pi = view.user_memberships(i as u32);
                let top = predictor
                    .top_communities(i as u32)
                    .expect("user index in range");
                let score = top
                    .iter()
                    .map(|&cc| pi[cc as usize] * zk[cc as usize])
                    .sum();
                RankedUser {
                    user: i as u32,
                    score,
                }
            })
            .collect();
        let keep = depth.min(scored.len());
        if keep > 0 && keep < scored.len() {
            scored.select_nth_unstable_by(keep - 1, |a, b| b.score.total_cmp(&a.score));
            scored.truncate(keep);
        }
        scored.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.user.cmp(&b.user)));
        rank.push(scored);
    }
    rank
}

fn parse_json_object(body: &[u8]) -> Result<Value, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let v: Value =
        serde_json::from_str(text).map_err(|e| format!("body is not valid JSON: {e}"))?;
    if v.as_object().is_none() {
        return Err(format!("body must be a JSON object, got {}", v.kind()));
    }
    Ok(v)
}

fn field_u32(v: &Value, key: &str) -> Result<u32, String> {
    let field = v.get(key).ok_or_else(|| format!("missing field `{key}`"))?;
    u32::from_value(field).map_err(|e| format!("field `{key}`: {e}"))
}
