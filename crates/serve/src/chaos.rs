//! Seeded network fault injection against a running `cold-serve`.
//!
//! The soak tests and `chaos_client` load generator drive these faults at
//! a live server socket to prove the robustness claims the transport
//! layer makes: a misbehaving peer costs the server *one connection*,
//! never a worker, never a byte of unbounded buffering, and never a
//! healthy client's response. All randomness comes from a caller-seeded
//! RNG — the same seeded-fault-class discipline `cold-replay::fault`
//! uses — so every chaotic run replays from its recorded seed.
//!
//! Two fault families are deliberate *server cooperation* hooks rather
//! than raw socket abuse: [`Fault::HandlerPanic`] and
//! [`Fault::WorkerKill`] hit the `/chaos/*` endpoints (available when the
//! server runs with chaos endpoints enabled) to exercise the
//! `catch_unwind` containment and the supervisor's respawn path.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Every chaos socket gets bounded timeouts: the *injector* must never
/// hang either, or a harness bug looks like a server bug.
const CHAOS_TIMEOUT: Duration = Duration::from_secs(5);

/// The injectable fault families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Send part of a valid request, then close abruptly mid-request.
    ResetMidRequest,
    /// Send a few header bytes, stall, then vanish (slowloris read).
    StalledRead,
    /// Declare a body length, deliver only part of it, then close.
    PartialWrite,
    /// Send random garbage that never parses as HTTP.
    Garbage,
    /// Send a valid request but never read the response (stalled write
    /// side), then close with the response unread.
    SlowReader,
    /// `POST /chaos/panic`: panic inside the handler; the worker's
    /// `catch_unwind` must contain it to this one connection.
    HandlerPanic,
    /// `POST /chaos/panic-worker`: kill the whole worker thread; the
    /// supervisor must respawn it.
    WorkerKill,
}

impl Fault {
    /// The purely network-level faults — safe against any server, no
    /// chaos endpoints required.
    pub const NETWORK: [Fault; 5] = [
        Fault::ResetMidRequest,
        Fault::StalledRead,
        Fault::PartialWrite,
        Fault::Garbage,
        Fault::SlowReader,
    ];

    /// Stable name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Fault::ResetMidRequest => "reset-mid-request",
            Fault::StalledRead => "stalled-read",
            Fault::PartialWrite => "partial-write",
            Fault::Garbage => "garbage",
            Fault::SlowReader => "slow-reader",
            Fault::HandlerPanic => "handler-panic",
            Fault::WorkerKill => "worker-kill",
        }
    }
}

/// A seeded, replayable schedule of faults.
pub struct ChaosPlan {
    rng: SmallRng,
    /// How long stall-style faults hold the socket open.
    pub stall: Duration,
}

impl ChaosPlan {
    /// A plan whose entire fault stream derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            stall: Duration::from_millis(300),
        }
    }

    /// Draw the next network-level fault from the seeded stream.
    pub fn next_fault(&mut self) -> Fault {
        Fault::NETWORK[self.rng.gen_range(0..Fault::NETWORK.len())]
    }

    /// Run one fault against `addr`. I/O errors are the *expected*
    /// outcome of abusing a socket (the server resets it, times it out,
    /// or closes it) and are swallowed; only the injection happens here,
    /// the assertions live in the harness.
    pub fn run(&mut self, addr: SocketAddr, fault: Fault) {
        let _ = run_fault(addr, fault, &mut self.rng, self.stall);
    }
}

fn connect(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(&addr, CHAOS_TIMEOUT)?;
    stream.set_read_timeout(Some(CHAOS_TIMEOUT))?;
    stream.set_write_timeout(Some(CHAOS_TIMEOUT))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

fn predict_request(body_len_lie: Option<usize>, body: &str) -> String {
    let declared = body_len_lie.unwrap_or(body.len());
    format!(
        "POST /predict HTTP/1.1\r\nhost: chaos\r\ncontent-type: application/json\r\ncontent-length: {declared}\r\n\r\n{body}"
    )
}

/// Execute one fault against `addr`, drawing any needed randomness from
/// `rng`. Returns `Ok` even when the server (correctly) slams the door.
pub fn run_fault(
    addr: SocketAddr,
    fault: Fault,
    rng: &mut SmallRng,
    stall: Duration,
) -> std::io::Result<()> {
    match fault {
        Fault::ResetMidRequest => {
            let mut stream = connect(addr)?;
            let request = predict_request(None, "{\"publisher\":0,\"consumer\":1}");
            let cut = rng.gen_range(1..request.len());
            stream.write_all(&request.as_bytes()[..cut])?;
            stream.flush()?;
            // Drop without finishing: the server sees a truncated
            // request and must free the slot.
        }
        Fault::StalledRead => {
            let mut stream = connect(addr)?;
            stream.write_all(b"POST /pre")?;
            stream.flush()?;
            // Hold the half-request open: the armed request clock (or
            // the shutdown poll) must reclaim the worker.
            std::thread::sleep(stall);
        }
        Fault::PartialWrite => {
            let mut stream = connect(addr)?;
            let body = "{\"publisher\":0,\"consumer\":1}";
            let lie = body.len() + rng.gen_range(8..64usize);
            stream.write_all(predict_request(Some(lie), body).as_bytes())?;
            stream.flush()?;
            std::thread::sleep(stall.min(Duration::from_millis(50)));
            // Close with the declared body short: a clean 408/timeout on
            // the server side, never a wedge.
        }
        Fault::Garbage => {
            let mut stream = connect(addr)?;
            let mut junk = vec![0u8; rng.gen_range(16..256usize)];
            for b in &mut junk {
                *b = rng.gen_range(0..256u32) as u8;
            }
            stream.write_all(&junk)?;
            stream.flush()?;
            // Read whatever the server says (likely a 400) and go away.
            let mut sink = [0u8; 512];
            let _ = stream.read(&mut sink);
        }
        Fault::SlowReader => {
            let mut stream = connect(addr)?;
            stream
                .write_all(predict_request(None, "{\"publisher\":0,\"consumer\":1}").as_bytes())?;
            stream.flush()?;
            // Never read the response; the server's write either lands
            // in the kernel buffer or hits its write timeout.
            std::thread::sleep(stall);
        }
        Fault::HandlerPanic => {
            let mut stream = connect(addr)?;
            stream.write_all(
                b"POST /chaos/panic HTTP/1.1\r\nhost: chaos\r\ncontent-length: 0\r\n\r\n",
            )?;
            stream.flush()?;
            // The panic is caught; the worker answers 500 and closes, or
            // just closes. Either way the read terminates.
            let mut sink = [0u8; 512];
            let _ = stream.read(&mut sink);
        }
        Fault::WorkerKill => {
            let mut stream = connect(addr)?;
            stream.write_all(
                b"POST /chaos/panic-worker HTTP/1.1\r\nhost: chaos\r\ncontent-length: 0\r\n\r\n",
            )?;
            stream.flush()?;
            let mut sink = [0u8; 512];
            let _ = stream.read(&mut sink);
        }
    }
    Ok(())
}
