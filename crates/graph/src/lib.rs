//! Social interaction-network substrate for the COLD reproduction.
//!
//! The paper's Definition 1 models the input as a directed *interaction
//! network* `G = (U, E)` where a link `(i, i')` means information flowed
//! from user `i` to `i'` (e.g. `i'` retweeted `i`). This crate provides:
//!
//! * [`csr::CsrGraph`] — a compact compressed-sparse-row directed graph with
//!   both out- and in-adjacency, the storage every model in the workspace
//!   trains against.
//! * [`builder::GraphBuilder`] — incremental, deduplicating construction.
//! * [`generators`] — stochastic-block / Erdős–Rényi generators used by the
//!   synthetic dataset substrate and by tests.
//! * [`sampling`] — positive/negative link sampling for the link-prediction
//!   evaluation (§6.2 of the paper holds out 20% of positives and 1% of
//!   negatives).
//! * [`stats`] — degree and density summaries used by dataset reports.

pub mod builder;
pub mod csr;
pub mod generators;
pub mod sampling;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;

/// A user identifier: dense indices `0..U`.
pub type UserId = u32;

/// A directed interaction link `(source, target)`: target consumed content
/// from source (e.g. target retweeted source).
pub type Link = (UserId, UserId);
