//! Degree and density summaries, used by dataset reports and the
//! scalability experiment's workload descriptions.

use crate::CsrGraph;
use serde::{Deserialize, Serialize};

/// Aggregate structural statistics of an interaction network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of users `U`.
    pub num_nodes: u32,
    /// Number of positive links `|E|`.
    pub num_edges: usize,
    /// Edge density `|E| / (U(U-1))`.
    pub density: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Mean out-degree.
    pub mean_out_degree: f64,
    /// Fraction of reciprocated links (both `(s,t)` and `(t,s)` present).
    pub reciprocity: f64,
    /// Number of nodes with no links in either direction.
    pub isolated_nodes: u32,
}

impl GraphStats {
    /// Compute the summary for `graph`.
    pub fn compute(graph: &CsrGraph) -> Self {
        let n = graph.num_nodes();
        let m = graph.num_edges();
        let mut max_out = 0usize;
        let mut max_in = 0usize;
        let mut isolated = 0u32;
        let mut reciprocated = 0usize;
        for u in 0..n {
            let od = graph.out_degree(u);
            let id = graph.in_degree(u);
            max_out = max_out.max(od);
            max_in = max_in.max(id);
            if od == 0 && id == 0 {
                isolated += 1;
            }
            for &v in graph.out_neighbors(u) {
                if graph.has_edge(v, u) {
                    reciprocated += 1;
                }
            }
        }
        let possible = (n as f64) * (n as f64 - 1.0);
        Self {
            num_nodes: n,
            num_edges: m,
            density: if possible > 0.0 {
                m as f64 / possible
            } else {
                0.0
            },
            max_out_degree: max_out,
            max_in_degree: max_in,
            mean_out_degree: if n > 0 { m as f64 / n as f64 } else { 0.0 },
            reciprocity: if m > 0 {
                reciprocated as f64 / m as f64
            } else {
                0.0
            },
            isolated_nodes: isolated,
        }
    }
}

/// Out-degree histogram: `hist[d]` = number of nodes with out-degree `d`.
pub fn out_degree_histogram(graph: &CsrGraph) -> Vec<u32> {
    let max = (0..graph.num_nodes())
        .map(|u| graph.out_degree(u))
        .max()
        .unwrap_or(0);
    let mut hist = vec![0u32; max + 1];
    for u in 0..graph.num_nodes() {
        hist[graph.out_degree(u)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_small_graph() {
        // 0 <-> 1, 0 -> 2; node 3 isolated.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (0, 2)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.isolated_nodes, 1);
        assert!((s.reciprocity - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.density - 3.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn degree_histogram_sums_to_node_count() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let hist = out_degree_histogram(&g);
        assert_eq!(hist.iter().sum::<u32>(), 5);
        assert_eq!(hist[3], 1); // node 0
        assert_eq!(hist[0], 3); // nodes 2,3,4
    }

    #[test]
    fn stats_on_empty_graph() {
        let g = CsrGraph::from_edges(1, &[]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.reciprocity, 0.0);
        assert_eq!(s.isolated_nodes, 1);
    }
}
