//! Compressed-sparse-row directed graph.
//!
//! Both directions are materialized: the Gibbs sampler walks *out*-links
//! (the paper samples `(s_ii', s'_ii')` per positive link), while the
//! diffusion-prediction evaluation needs *in*-links ("followers of `i`" are
//! the users who retweet from `i`, i.e. the out-neighbourhood of `i` in the
//! interaction direction — and predictors score candidate consumers, which
//! requires the reverse view too).

use crate::{Link, UserId};
use serde::{Deserialize, Serialize};

/// An immutable directed graph in CSR form with a mirrored reverse index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    num_nodes: u32,
    /// Out-adjacency: `out_targets[out_offsets[u]..out_offsets[u+1]]`,
    /// sorted ascending within each node.
    out_offsets: Vec<u32>,
    out_targets: Vec<UserId>,
    /// In-adjacency (reverse edges), same layout.
    in_offsets: Vec<u32>,
    in_sources: Vec<UserId>,
}

impl CsrGraph {
    /// Build from an edge list. Edges are deduplicated; self-loops are
    /// dropped (a user does not "retweet herself" in the paper's data model).
    ///
    /// # Panics
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: u32, edges: &[Link]) -> Self {
        for &(s, t) in edges {
            assert!(
                s < num_nodes && t < num_nodes,
                "edge ({s},{t}) out of range for {num_nodes} nodes"
            );
        }
        let mut cleaned: Vec<Link> = edges.iter().copied().filter(|&(s, t)| s != t).collect();
        cleaned.sort_unstable();
        cleaned.dedup();

        let (out_offsets, out_targets) = Self::pack(num_nodes, cleaned.iter().copied());
        let mut reversed: Vec<Link> = cleaned.iter().map(|&(s, t)| (t, s)).collect();
        reversed.sort_unstable();
        let (in_offsets, in_sources) = Self::pack(num_nodes, reversed.into_iter());

        Self {
            num_nodes,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }

    /// Pack a sorted edge iterator into (offsets, targets).
    fn pack(num_nodes: u32, edges: impl Iterator<Item = Link>) -> (Vec<u32>, Vec<UserId>) {
        let mut offsets = vec![0u32; num_nodes as usize + 1];
        let mut targets = Vec::new();
        for (s, t) in edges {
            offsets[s as usize + 1] += 1;
            targets.push(t);
        }
        for i in 0..num_nodes as usize {
            offsets[i + 1] += offsets[i];
        }
        (offsets, targets)
    }

    /// Number of nodes `U`.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of directed edges `|E|` (after dedup / self-loop removal).
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbours of `u`, ascending.
    pub fn out_neighbors(&self, u: UserId) -> &[UserId] {
        let lo = self.out_offsets[u as usize] as usize;
        let hi = self.out_offsets[u as usize + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// In-neighbours of `u` (users with an edge *into* `u`), ascending.
    pub fn in_neighbors(&self, u: UserId) -> &[UserId] {
        let lo = self.in_offsets[u as usize] as usize;
        let hi = self.in_offsets[u as usize + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: UserId) -> usize {
        self.out_neighbors(u).len()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: UserId) -> usize {
        self.in_neighbors(u).len()
    }

    /// Whether the directed edge `(s, t)` exists. O(log deg(s)).
    pub fn has_edge(&self, s: UserId, t: UserId) -> bool {
        self.out_neighbors(s).binary_search(&t).is_ok()
    }

    /// Iterate all edges in `(source, target)` order.
    pub fn edges(&self) -> impl Iterator<Item = Link> + '_ {
        (0..self.num_nodes).flat_map(move |s| self.out_neighbors(s).iter().map(move |&t| (s, t)))
    }

    /// Number of *absent* directed node pairs `U(U-1) - |E|`; the paper's
    /// `n_neg`, used to calibrate the Beta prior `λ0` (§3.3).
    pub fn num_negative_links(&self) -> u64 {
        let u = self.num_nodes as u64;
        u * (u.saturating_sub(1)) - self.num_edges() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])
    }

    #[test]
    fn adjacency_round_trip() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[3]);
        assert_eq!(g.out_degree(3), 1);
        assert_eq!(g.in_degree(1), 1);
    }

    #[test]
    fn dedup_and_self_loop_removal() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 1), (1, 1), (2, 0)]);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn edges_iterator_is_sorted_and_complete() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]);
    }

    #[test]
    fn negative_link_count() {
        let g = diamond();
        // 4*3 = 12 ordered pairs, 5 present.
        assert_eq!(g.num_negative_links(), 7);
    }

    #[test]
    fn empty_and_isolated_nodes() {
        let g = CsrGraph::from_edges(3, &[]);
        assert_eq!(g.num_edges(), 0);
        assert!(g.out_neighbors(1).is_empty());
        assert!(g.in_neighbors(2).is_empty());
        assert_eq!(g.num_negative_links(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = CsrGraph::from_edges(2, &[(0, 5)]);
    }
}
