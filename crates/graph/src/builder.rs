//! Incremental graph construction.

use crate::{CsrGraph, Link, UserId};

/// Accumulates edges (growing the node count as needed) and finalizes into a
/// [`CsrGraph`]. Duplicate edges and self-loops are tolerated on input and
/// removed at build time.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    num_nodes: u32,
    edges: Vec<Link>,
}

impl GraphBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder that pre-declares `num_nodes` nodes (ids `0..num_nodes`).
    pub fn with_nodes(num_nodes: u32) -> Self {
        Self {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Ensure node `u` exists.
    pub fn ensure_node(&mut self, u: UserId) -> &mut Self {
        self.num_nodes = self.num_nodes.max(u + 1);
        self
    }

    /// Add a directed edge, growing the node range to cover both endpoints.
    pub fn add_edge(&mut self, source: UserId, target: UserId) -> &mut Self {
        self.num_nodes = self.num_nodes.max(source + 1).max(target + 1);
        self.edges.push((source, target));
        self
    }

    /// Add many edges at once.
    pub fn extend_edges(&mut self, edges: impl IntoIterator<Item = Link>) -> &mut Self {
        for (s, t) in edges {
            self.add_edge(s, t);
        }
        self
    }

    /// Number of edges currently buffered (before dedup).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalize into an immutable CSR graph.
    pub fn build(self) -> CsrGraph {
        CsrGraph::from_edges(self.num_nodes, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_grows_node_range() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 7).add_edge(3, 1);
        let g = b.build();
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn builder_with_isolated_tail_nodes() {
        let mut b = GraphBuilder::with_nodes(10);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_nodes(), 10);
        assert!(g.out_neighbors(9).is_empty());
    }

    #[test]
    fn extend_and_pending() {
        let mut b = GraphBuilder::new();
        b.extend_edges([(0, 1), (0, 1), (1, 1)]);
        assert_eq!(b.pending_edges(), 3);
        let g = b.build();
        assert_eq!(g.num_edges(), 1); // dedup + self-loop removal
    }
}
