//! Link sampling for evaluation.
//!
//! The paper's link-prediction protocol (§6.2) holds out 20% of positive
//! links and pairs them with a 1% sample of negative links, then ranks both
//! by predicted probability (AUC). These helpers produce those samples
//! deterministically given a seed.

use crate::{CsrGraph, Link};
use rand::seq::SliceRandom;
use rand::Rng;

/// Uniformly sample `count` *negative* links — ordered pairs `(s, t)` with
/// `s != t` and no edge in `graph` — by rejection.
///
/// # Panics
/// Panics if the graph has fewer than 2 nodes or if `count` exceeds the
/// number of available negative pairs.
pub fn sample_negative_links<R: Rng>(rng: &mut R, graph: &CsrGraph, count: usize) -> Vec<Link> {
    let n = graph.num_nodes();
    assert!(n >= 2, "need at least two nodes to sample negatives");
    assert!(
        (count as u64) <= graph.num_negative_links(),
        "requested {count} negatives but only {} exist",
        graph.num_negative_links()
    );
    let mut out = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::with_capacity(count * 2);
    while out.len() < count {
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        if s == t || graph.has_edge(s, t) {
            continue;
        }
        if seen.insert((s, t)) {
            out.push((s, t));
        }
    }
    out
}

/// Split the positive links into `k` folds for cross-validation.
///
/// Returns `k` disjoint link sets whose union is the full edge set; links
/// are shuffled first so folds are unbiased.
pub fn link_folds<R: Rng>(rng: &mut R, graph: &CsrGraph, k: usize) -> Vec<Vec<Link>> {
    assert!(k >= 2, "need at least 2 folds");
    let mut edges: Vec<Link> = graph.edges().collect();
    edges.shuffle(rng);
    let mut folds: Vec<Vec<Link>> = (0..k).map(|_| Vec::new()).collect();
    for (idx, e) in edges.into_iter().enumerate() {
        folds[idx % k].push(e);
    }
    folds
}

/// The complement of one fold: all edges not held out, i.e. the training
/// link set for that fold.
pub fn training_links(graph: &CsrGraph, held_out: &[Link]) -> Vec<Link> {
    let held: std::collections::HashSet<Link> = held_out.iter().copied().collect();
    graph.edges().filter(|e| !held.contains(e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_math::rng::seeded_rng;

    fn ring(n: u32) -> CsrGraph {
        let edges: Vec<Link> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn negatives_are_truly_negative_and_distinct() {
        let g = ring(50);
        let mut rng = seeded_rng(31);
        let negs = sample_negative_links(&mut rng, &g, 200);
        assert_eq!(negs.len(), 200);
        let set: std::collections::HashSet<_> = negs.iter().collect();
        assert_eq!(set.len(), 200, "negatives must be distinct");
        for &(s, t) in &negs {
            assert_ne!(s, t);
            assert!(!g.has_edge(s, t));
        }
    }

    #[test]
    fn folds_partition_edges() {
        let g = ring(30);
        let mut rng = seeded_rng(32);
        let folds = link_folds(&mut rng, &g, 5);
        let total: usize = folds.iter().map(Vec::len).sum();
        assert_eq!(total, g.num_edges());
        let mut all: Vec<Link> = folds.concat();
        all.sort_unstable();
        let mut expect: Vec<Link> = g.edges().collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
        // Balanced within one edge.
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn training_links_complement_fold() {
        let g = ring(20);
        let mut rng = seeded_rng(33);
        let folds = link_folds(&mut rng, &g, 4);
        let train = training_links(&g, &folds[0]);
        assert_eq!(train.len() + folds[0].len(), g.num_edges());
        for e in &train {
            assert!(!folds[0].contains(e));
        }
    }

    #[test]
    #[should_panic(expected = "negatives")]
    fn too_many_negatives_panics() {
        // 3 nodes, ring of 3 edges -> 3 negatives available.
        let g = ring(3);
        let mut rng = seeded_rng(34);
        let _ = sample_negative_links(&mut rng, &g, 10);
    }
}
