//! Random-graph generators.
//!
//! The synthetic dataset substrate (crate `cold-data`) drives the
//! [`mixed_membership_block`] generator with planted `π` and `η` — that is
//! a literal execution of step 3(c) of the paper's generative process
//! (Alg. 1): for each candidate link, sample a community for each endpoint
//! from the users' membership vectors and flip a Bernoulli coin with the
//! community-pair strength. Erdős–Rényi is kept for tests and null models.

use crate::{CsrGraph, Link, UserId};
use cold_math::categorical::AliasTable;
use rand::Rng;

/// Erdős–Rényi `G(n, p)` directed graph (no self-loops).
///
/// Uses geometric edge skipping so the cost is O(n·p·n) expected rather than
/// O(n²) trials, which matters for the scalability experiment's null models.
pub fn erdos_renyi<R: Rng>(rng: &mut R, num_nodes: u32, p: f64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let n = num_nodes as u64;
    let total_pairs = n * n; // includes self pairs; filtered below
    let mut edges: Vec<Link> = Vec::new();
    if p > 0.0 {
        let log1mp = (1.0 - p).ln();
        let mut idx: u64 = 0;
        loop {
            // Geometric skip: next success after Geom(p) failures.
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let skip = if p >= 1.0 {
                0
            } else {
                (u.ln() / log1mp) as u64
            };
            idx = idx.saturating_add(skip);
            if idx >= total_pairs {
                break;
            }
            let s = (idx / n) as UserId;
            let t = (idx % n) as UserId;
            if s != t {
                edges.push((s, t));
            }
            idx += 1;
        }
    }
    CsrGraph::from_edges(num_nodes, &edges)
}

/// Mixed-membership stochastic-block generation (Alg. 1 step 3(c)).
///
/// For each ordered pair drawn from a candidate set, endpoint communities
/// `s ~ Mul(π_i)`, `s' ~ Mul(π_i')` are sampled and the link materializes
/// with probability `η[s][s']`. Because evaluating *all* `U(U-1)` pairs is
/// quadratic, callers pass `candidates_per_user`: for each user we examine
/// that many uniformly-random distinct partners, matching the sparsity of
/// real interaction networks while preserving the block structure.
pub fn mixed_membership_block<R: Rng>(
    rng: &mut R,
    memberships: &[Vec<f64>],
    eta: &[Vec<f64>],
    candidates_per_user: usize,
) -> CsrGraph {
    let num_nodes = memberships.len() as u32;
    assert!(num_nodes > 1, "need at least two users");
    let c = eta.len();
    assert!(memberships.iter().all(|m| m.len() == c));
    assert!(eta.iter().all(|row| row.len() == c));

    let tables: Vec<AliasTable> = memberships.iter().map(|m| AliasTable::new(m)).collect();
    let mut edges: Vec<Link> = Vec::new();
    for i in 0..num_nodes {
        for _ in 0..candidates_per_user {
            let j = loop {
                let j = rng.gen_range(0..num_nodes);
                if j != i {
                    break j;
                }
            };
            let s = tables[i as usize].sample(rng);
            let s2 = tables[j as usize].sample(rng);
            if rng.gen::<f64>() < eta[s][s2] {
                edges.push((i, j));
            }
        }
    }
    CsrGraph::from_edges(num_nodes, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_math::rng::seeded_rng;

    #[test]
    fn erdos_renyi_density_matches_p() {
        let mut rng = seeded_rng(21);
        let n = 300u32;
        let p = 0.05;
        let g = erdos_renyi(&mut rng, n, p);
        let possible = (n as f64) * (n as f64 - 1.0);
        let density = g.num_edges() as f64 / possible;
        assert!((density - p).abs() < 0.005, "density {density}");
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = seeded_rng(22);
        assert_eq!(erdos_renyi(&mut rng, 50, 0.0).num_edges(), 0);
        let full = erdos_renyi(&mut rng, 20, 1.0);
        assert_eq!(full.num_edges(), 20 * 19);
    }

    #[test]
    fn block_structure_dominates_cross_links() {
        let mut rng = seeded_rng(23);
        // Two hard communities, strong intra / weak inter.
        let n = 200usize;
        let memberships: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                if i < n / 2 {
                    vec![1.0, 0.0]
                } else {
                    vec![0.0, 1.0]
                }
            })
            .collect();
        let eta = vec![vec![0.30, 0.01], vec![0.01, 0.30]];
        let g = mixed_membership_block(&mut rng, &memberships, &eta, 40);
        let (mut intra, mut inter) = (0usize, 0usize);
        for (s, t) in g.edges() {
            if (s < n as u32 / 2) == (t < n as u32 / 2) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 5 * inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn block_generator_respects_zero_eta() {
        let mut rng = seeded_rng(24);
        let memberships: Vec<Vec<f64>> = (0..50).map(|_| vec![0.5, 0.5]).collect();
        let eta = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        let g = mixed_membership_block(&mut rng, &memberships, &eta, 20);
        assert_eq!(g.num_edges(), 0);
    }
}
