//! Property tests for the graph substrate.

use cold_graph::{CsrGraph, GraphBuilder};
use proptest::prelude::*;

fn arb_edges(max_nodes: u32) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..max_nodes).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..200);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// In- and out-adjacency describe the same edge set.
    #[test]
    fn in_out_adjacency_mirror((n, edges) in arb_edges(64)) {
        let g = CsrGraph::from_edges(n, &edges);
        let mut from_out: Vec<(u32, u32)> = g.edges().collect();
        let mut from_in: Vec<(u32, u32)> = (0..n)
            .flat_map(|t| g.in_neighbors(t).iter().map(move |&s| (s, t)))
            .collect();
        from_out.sort_unstable();
        from_in.sort_unstable();
        prop_assert_eq!(from_out, from_in);
    }

    /// has_edge agrees with the materialized edge list.
    #[test]
    fn has_edge_agrees_with_edges((n, edges) in arb_edges(32)) {
        let g = CsrGraph::from_edges(n, &edges);
        let set: std::collections::HashSet<(u32, u32)> = g.edges().collect();
        for s in 0..n {
            for t in 0..n {
                prop_assert_eq!(g.has_edge(s, t), set.contains(&(s, t)));
            }
        }
    }

    /// Degrees sum to the edge count, in both directions.
    #[test]
    fn degree_sums_match_edge_count((n, edges) in arb_edges(64)) {
        let g = CsrGraph::from_edges(n, &edges);
        let out_sum: usize = (0..n).map(|u| g.out_degree(u)).sum();
        let in_sum: usize = (0..n).map(|u| g.in_degree(u)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
    }

    /// Builder and direct construction agree.
    #[test]
    fn builder_equivalent_to_from_edges((n, edges) in arb_edges(48)) {
        let direct = CsrGraph::from_edges(n, &edges);
        let mut b = GraphBuilder::with_nodes(n);
        b.extend_edges(edges.iter().copied());
        prop_assert_eq!(direct, b.build());
    }

    /// Neighbour lists are sorted and self-loop free.
    #[test]
    fn neighbors_sorted_no_self_loops((n, edges) in arb_edges(64)) {
        let g = CsrGraph::from_edges(n, &edges);
        for u in 0..n {
            let nb = g.out_neighbors(u);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "unsorted or dup");
            prop_assert!(!nb.contains(&u), "self loop survived");
        }
    }
}
