//! CLI subcommands.

use crate::args::Args;
use cold_core::{ColdConfig, ColdModel, DiffusionPredictor, GibbsSampler, Metrics};
use cold_data::{SocialDataset, WorldConfig};
use cold_math::rng::seeded_rng;

/// Top-level usage text.
pub const USAGE: &str = "\
cold — Community Level Diffusion (SIGMOD'15) toolkit

USAGE:
  cold generate  --out <world.json> [--users N] [--communities C] [--topics K]
                 [--slices T] [--vocab V] [--seed S]
  cold train     --data <world.json> --out <model.json>
                 [--communities C] [--topics K] [--iterations N] [--seed S]
                 [--shards N] [--metrics-out <metrics.jsonl>]
  cold topics    --model <model.json> --data <world.json> [--top N] [--topic K]
  cold communities --model <model.json> --data <world.json>
  cold predict   --model <model.json> --data <world.json>
                 --publisher I --consumer J --post D [--metrics-out <m.jsonl>]
  cold influence --model <model.json> [--topic K] [--simulations N] [--seed S]
  cold eval      --model <model.json> --data <world.json> [--seed S]
  cold metrics-check --file <metrics.jsonl>
  cold help";

type CliResult = Result<(), String>;

fn load_dataset(path: &str) -> Result<SocialDataset, String> {
    let data = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&data).map_err(|e| format!("parsing {path}: {e}"))
}

fn load_model(path: &str) -> Result<ColdModel, String> {
    ColdModel::load(path).map_err(|e| e.to_string())
}

/// `cold generate` — sample a synthetic world and write it to disk.
pub fn generate(args: &Args) -> CliResult {
    let out = args.required("out")?;
    let config = WorldConfig {
        num_users: args.get_or("users", 300u32)?,
        num_communities: args.get_or("communities", 6usize)?,
        num_topics: args.get_or("topics", 6usize)?,
        num_time_slices: args.get_or("slices", 24u16)?,
        vocab_size: args.get_or("vocab", 900usize)?,
        ..WorldConfig::default()
    };
    config.validate()?;
    let seed = args.get_or("seed", 42u64)?;
    let data = cold_data::generate(&config, seed);
    let json = serde_json::to_string(&data).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("generated {} -> {out}", data.summary());
    Ok(())
}

/// `cold train` — fit COLD on a stored world.
pub fn train(args: &Args) -> CliResult {
    let data = load_dataset(args.required("data")?)?;
    let out = args.required("out")?;
    let c = args.get_or("communities", 6usize)?;
    let k = args.get_or("topics", 6usize)?;
    let iterations = args.get_or("iterations", 200usize)?;
    let seed = args.get_or("seed", 1u64)?;
    let shards = args.get_or("shards", 1usize)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let metrics_out = args.optional("metrics-out");
    // Instrumentation is only switched on when a sink was requested; a
    // disabled registry keeps the hot path free of metric work.
    let metrics = if metrics_out.is_some() {
        Metrics::enabled()
    } else {
        Metrics::disabled()
    };
    let config = ColdConfig::builder(c, k)
        .iterations(iterations)
        .burn_in(iterations.saturating_sub(20).max(1))
        .sample_lag(4)
        .small_data_defaults()
        .metrics(metrics.clone())
        .build(&data.corpus, &data.graph);
    println!(
        "training C={c} K={k} on {} ({iterations} sweeps, {shards} shard{})…",
        data.summary(),
        if shards == 1 { "" } else { "s" }
    );
    let started = std::time::Instant::now();
    let model = if shards > 1 {
        let (model, stats) =
            cold_engine::ParallelGibbs::new(&data.corpus, &data.graph, config, shards, seed).run();
        println!(
            "parallel wall time {:.1}s over {} supersteps",
            stats.wall_seconds,
            stats.supersteps.len()
        );
        model
    } else {
        GibbsSampler::new(&data.corpus, &data.graph, config, seed).run()
    };
    println!("trained in {:.1}s", started.elapsed().as_secs_f64());
    model.save(out).map_err(|e| e.to_string())?;
    println!("model -> {out}");
    if let Some(path) = metrics_out {
        write_metrics(&metrics, path)?;
    }
    Ok(())
}

/// Dump a metrics snapshot: JSONL sink to `path`, summary table to stdout.
fn write_metrics(metrics: &Metrics, path: &str) -> CliResult {
    let snapshot = metrics.snapshot();
    snapshot
        .write_jsonl(path)
        .map_err(|e| format!("writing {path}: {e}"))?;
    println!("{}", snapshot.render_table());
    println!("metrics -> {path}");
    Ok(())
}

/// `cold metrics-check` — validate a metrics JSONL file against the
/// `cold-obs/v1` schema.
pub fn metrics_check(args: &Args) -> CliResult {
    let path = args.required("file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let stats = cold_obs::schema::validate_jsonl(&text)?;
    println!(
        "{path}: ok ({} counters, {} gauges, {} histograms)",
        stats.counters, stats.gauges, stats.histograms
    );
    Ok(())
}

/// `cold topics` — print each topic's top words.
pub fn topics(args: &Args) -> CliResult {
    let model = load_model(args.required("model")?)?;
    let data = load_dataset(args.required("data")?)?;
    let top = args.get_or("top", 10usize)?;
    // Optional single-topic filter: `--topic K`.
    let only: Option<usize> = match args.optional("topic") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("--topic: cannot parse '{raw}'"))?,
        ),
        None => None,
    };
    for k in 0..model.dims().num_topics {
        if only.is_some_and(|t| t != k) {
            continue;
        }
        let words: Vec<String> = model
            .top_words(k, top, data.corpus.vocab())
            .into_iter()
            .map(|(w, p)| format!("{w} ({p:.3})"))
            .collect();
        println!("topic {k}: {}", words.join(", "));
    }
    Ok(())
}

/// `cold communities` — print community interests and sizes.
pub fn communities(args: &Args) -> CliResult {
    let model = load_model(args.required("model")?)?;
    let data = load_dataset(args.required("data")?)?;
    let hard = model.hard_user_communities();
    for c in 0..model.dims().num_communities {
        let members = hard.iter().filter(|&&x| x == c as u32).count();
        let theta = model.community_topics(c);
        let mut ranked: Vec<(usize, f64)> = theta.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let interests: Vec<String> = ranked
            .iter()
            .take(3)
            .map(|&(k, p)| format!("k{k}:{:.0}%", p * 100.0))
            .collect();
        println!(
            "community {c}: {members} primary members, interests [{}]",
            interests.join(" ")
        );
    }
    let _ = data; // dataset kept for symmetry; membership needs only the model
    Ok(())
}

/// `cold predict` — diffusion probability of one post between two users.
pub fn predict(args: &Args) -> CliResult {
    let model = load_model(args.required("model")?)?;
    let data = load_dataset(args.required("data")?)?;
    let publisher: u32 = args.get_required("publisher")?;
    let consumer: u32 = args.get_required("consumer")?;
    let post_id: u32 = args.get_required("post")?;
    if post_id as usize >= data.corpus.num_posts() {
        return Err(format!("post {post_id} out of range"));
    }
    let metrics_out = args.optional("metrics-out");
    let metrics = if metrics_out.is_some() {
        Metrics::enabled()
    } else {
        Metrics::disabled()
    };
    let predictor = DiffusionPredictor::with_metrics(
        &model,
        cold_core::predict::DEFAULT_TOP_COMM,
        metrics.clone(),
    );
    let words = &data.corpus.post(post_id).words;
    let score = predictor.diffusion_score(publisher, consumer, words);
    let topics = predictor.post_topics(publisher, words);
    let best = topics
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(k, p)| (k, *p))
        .unwrap_or((0, 0.0));
    println!(
        "P({publisher} -> {consumer}, post {post_id}) = {score:.6}  (dominant topic {} at {:.0}%)",
        best.0,
        best.1 * 100.0
    );
    if let Some(path) = metrics_out {
        write_metrics(&metrics, path)?;
    }
    Ok(())
}

/// `cold influence` — rank communities by IC influence on one topic.
pub fn influence(args: &Args) -> CliResult {
    let model = load_model(args.required("model")?)?;
    let topic = args.get_or("topic", 0usize)?;
    if topic >= model.dims().num_topics {
        return Err(format!("topic {topic} out of range"));
    }
    let simulations = args.get_or("simulations", 3000usize)?;
    let mut rng = seeded_rng(args.get_or("seed", 7u64)?);
    let ranking = cold_cascade::community_influence(&model, topic, simulations, &mut rng);
    for r in &ranking {
        println!(
            "community {:>3}: influence {:.3}, interest {:.4}",
            r.community, r.influence, r.interest
        );
    }
    Ok(())
}

/// `cold eval` — quick quality report: perplexity + link AUC.
pub fn eval(args: &Args) -> CliResult {
    let model = load_model(args.required("model")?)?;
    let data = load_dataset(args.required("data")?)?;
    let mut rng = seeded_rng(args.get_or("seed", 9u64)?);

    // Perplexity over all posts (in-sample report, labelled as such).
    let per_post: Vec<(f64, usize)> = data
        .corpus
        .posts()
        .iter()
        .map(|p| {
            (
                cold_core::predict::post_log_likelihood(&model, p.author, &p.words),
                p.len(),
            )
        })
        .collect();
    let perplexity =
        cold_eval::perplexity(&per_post).ok_or("perplexity undefined for empty corpus")?;
    println!(
        "in-sample perplexity: {perplexity:.1} (uniform baseline {})",
        data.corpus.vocab_size()
    );

    // Link AUC: all positives vs equally many sampled negatives.
    let positives: Vec<(u32, u32)> = data.graph.edges().collect();
    if !positives.is_empty() {
        let negatives = cold_graph::sampling::sample_negative_links(
            &mut rng,
            &data.graph,
            positives
                .len()
                .min(data.graph.num_negative_links() as usize),
        );
        let mut scored: Vec<(f64, bool)> = Vec::new();
        for &(i, j) in &positives {
            scored.push((cold_core::predict::link_probability(&model, i, j), true));
        }
        for &(i, j) in &negatives {
            scored.push((cold_core::predict::link_probability(&model, i, j), false));
        }
        let auc = cold_eval::ranking_auc(&scored).ok_or("AUC undefined")?;
        println!("link AUC (in-sample positives vs sampled negatives): {auc:.3}");
    }
    Ok(())
}
