//! CLI subcommands.

use crate::args::Args;
use cold_core::checkpoint::{Checkpoint, CheckpointKind, Checkpointer};
use cold_core::{
    ColdConfig, ColdModel, CounterStorage, DiffusionPredictor, GibbsSampler, Metrics, ModelFormat,
};
use cold_data::{SocialDataset, WorldConfig};
use cold_engine::ParallelGibbs;
use cold_math::rng::seeded_rng;

/// Top-level usage text.
pub const USAGE: &str = "\
cold — Community Level Diffusion (SIGMOD'15) toolkit

USAGE:
  cold generate  --out <world.json> [--users N] [--communities C] [--topics K]
                 [--slices T] [--vocab V] [--seed S]
  cold train     --data <world.json> --out <model.json>
                 [--communities C] [--topics K] [--iterations N] [--seed S]
                 [--shards N] [--metrics-out <metrics.jsonl>]
                 [--counter-storage auto|dense|sparse]
                 [--model-format json|binary]
                 [--checkpoint-dir <dir>] [--checkpoint-every N]
                 [--checkpoint-retain N] [--resume true]
                 [--crash-after N] [--trace-out <trace.jsonl>]
  cold topics    --model <model.json> --data <world.json> [--top N] [--topic K]
  cold communities --model <model.json> --data <world.json>
  cold predict   --model <model.json> --data <world.json>
                 --publisher I --consumer J --post D [--metrics-out <m.jsonl>]
  cold influence --model <model.json> [--topic K] [--simulations N] [--seed S]
  cold eval      --model <model.json> --data <world.json> [--seed S]
  cold serve     --model <model.cold> [--addr HOST:PORT | --port P]
                 [--workers N] [--top-comm N] [--rank-depth N]
                 [--data <world.json>] [--batch-max N] [--batch-wait-us U]
                 [--max-body BYTES] [--max-conns N] [--max-queue N]
                 [--io-mode threads|epoll] [--io-threads N]
                 [--request-timeout-ms MS] [--respawn-limit N]
                 [--watch-model-ms MS] [--chaos true]
  cold metrics-check --file <metrics.jsonl>
  cold ckpt-inspect  --dir <checkpoint-dir>
  cold replay-check  --trace <t1.jsonl[,t2.jsonl,…]> [--fuzz N] [--seed S]
  cold help";

type CliResult = Result<(), String>;

fn load_dataset(path: &str) -> Result<SocialDataset, String> {
    let data = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&data).map_err(|e| format!("parsing {path}: {e}"))
}

fn load_model(path: &str) -> Result<ColdModel, String> {
    ColdModel::load(path).map_err(|e| e.to_string())
}

/// `cold generate` — sample a synthetic world and write it to disk.
pub fn generate(args: &Args) -> CliResult {
    let out = args.required("out")?;
    let config = WorldConfig {
        num_users: args.get_or("users", 300u32)?,
        num_communities: args.get_or("communities", 6usize)?,
        num_topics: args.get_or("topics", 6usize)?,
        num_time_slices: args.get_or("slices", 24u16)?,
        vocab_size: args.get_or("vocab", 900usize)?,
        ..WorldConfig::default()
    };
    config.validate()?;
    let seed = args.get_or("seed", 42u64)?;
    let data = cold_data::generate(&config, seed);
    let json = serde_json::to_string(&data).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("generated {} -> {out}", data.summary());
    Ok(())
}

/// `cold train` — fit COLD on a stored world.
///
/// With `--checkpoint-dir` the run writes `cold-ckpt/v1` checkpoints every
/// `--checkpoint-every` sweeps (default 10, newest `--checkpoint-retain`
/// kept, default 3); `--resume true` continues from the newest readable
/// checkpoint in that directory — the resumed run is bit-identical to an
/// uninterrupted one, provided the same training flags are passed.
/// `--crash-after N` aborts the process (exit code 137) after sweep `N`,
/// for crash-recovery drills.
///
/// `--counter-storage` picks the counter backend (`auto` measures occupancy
/// at build time; `dense`/`sparse` force one for benchmarking) — results are
/// bit-identical either way. `--model-format binary` writes the zero-copy
/// `cold-model/v1` artifact instead of JSON; `ColdModel::load` auto-detects
/// both.
pub fn train(args: &Args) -> CliResult {
    let data = load_dataset(args.required("data")?)?;
    let out = args.required("out")?;
    let c = args.get_or("communities", 6usize)?;
    let k = args.get_or("topics", 6usize)?;
    let iterations = args.get_or("iterations", 200usize)?;
    let seed = args.get_or("seed", 1u64)?;
    let shards = args.get_or("shards", 1usize)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let checkpoint_every: Option<usize> = args.get_optional("checkpoint-every")?;
    let checkpoint_retain = args.get_or("checkpoint-retain", 3usize)?;
    let resume = args.get_or("resume", false)?;
    let crash_after: Option<usize> = args.get_optional("crash-after")?;
    let counter_storage = args.get_or("counter-storage", CounterStorage::Auto)?;
    let model_format = args.get_or("model-format", ModelFormat::Json)?;
    let metrics_out = args.optional("metrics-out");
    let trace_out = args.optional("trace-out");
    // Instrumentation is only switched on when a sink was requested; a
    // disabled registry keeps the hot path free of metric work. The trace
    // buffer is independent of the metrics registry.
    let mut metrics = if metrics_out.is_some() {
        Metrics::enabled()
    } else {
        Metrics::disabled()
    };
    if trace_out.is_some() {
        metrics = metrics.with_trace();
    }
    let trace = trace_out.map(|path| (metrics.clone(), path.to_owned()));
    let ckptr = match args.optional("checkpoint-dir") {
        Some(dir) => Some(
            Checkpointer::new(dir)
                .map_err(|e| e.to_string())?
                .retain(checkpoint_retain)
                .with_metrics(metrics.clone()),
        ),
        None => None,
    };
    let mut builder = ColdConfig::builder(c, k)
        .iterations(iterations)
        .burn_in(iterations.saturating_sub(20).max(1))
        .sample_lag(4)
        .counter_storage(counter_storage)
        .small_data_defaults();
    if let Some(n) = checkpoint_every {
        builder = builder.checkpoint_every(n);
    }
    let config = builder
        .metrics(metrics.clone())
        .build(&data.corpus, &data.graph);
    let started = std::time::Instant::now();
    let model = if resume {
        let ckptr = ckptr
            .as_ref()
            .ok_or("--resume true requires --checkpoint-dir")?;
        let ckpt = ckptr.load_latest().map_err(|e| e.to_string())?;
        println!(
            "resuming {:?} run from sweep {}/{iterations} in {}…",
            ckpt.kind,
            ckpt.sweeps_done,
            ckptr.dir().display()
        );
        // The config is rebuilt from the flags above; `resume` verifies it
        // matches the checkpointed one, so pass the same training flags.
        match ckpt.kind {
            CheckpointKind::Sequential => {
                let sampler =
                    GibbsSampler::resume(&data.corpus, config, ckpt).map_err(|e| e.to_string())?;
                run_sequential(sampler, Some(ckptr), crash_after, trace.as_ref())?
            }
            CheckpointKind::Parallel => {
                let pg =
                    ParallelGibbs::resume(&data.corpus, config, ckpt).map_err(|e| e.to_string())?;
                run_parallel(pg, Some(ckptr), crash_after, trace.as_ref())?
            }
            CheckpointKind::Online => {
                return Err(
                    "the newest checkpoint is an online snapshot; `cold train` resumes \
                     batch runs only"
                        .into(),
                )
            }
        }
    } else {
        println!(
            "training C={c} K={k} on {} ({iterations} sweeps, {shards} shard{})…",
            data.summary(),
            if shards == 1 { "" } else { "s" }
        );
        if shards > 1 {
            let pg = ParallelGibbs::new(&data.corpus, &data.graph, config, shards, seed);
            run_parallel(pg, ckptr.as_ref(), crash_after, trace.as_ref())?
        } else {
            let sampler = GibbsSampler::new(&data.corpus, &data.graph, config, seed);
            run_sequential(sampler, ckptr.as_ref(), crash_after, trace.as_ref())?
        }
    };
    println!("trained in {:.1}s", started.elapsed().as_secs_f64());
    model
        .save_as(out, model_format)
        .map_err(|e| e.to_string())?;
    println!("model -> {out} ({} format)", model_format.name());
    if let Some(path) = metrics_out {
        write_metrics(&metrics, path)?;
    }
    if let Some((metrics, path)) = &trace {
        write_trace(metrics, path)?;
    }
    Ok(())
}

/// Flush the recorded `cold-trace/v1` events to `path`.
fn write_trace(metrics: &Metrics, path: &str) -> CliResult {
    let events = metrics.trace_events();
    cold_obs::trace::write_jsonl(&events, path).map_err(|e| format!("writing {path}: {e}"))?;
    println!("trace -> {path} ({} events)", events.len());
    Ok(())
}

/// Drive a sequential sampler to completion (or to the injected crash).
fn run_sequential(
    mut sampler: GibbsSampler,
    ckptr: Option<&Checkpointer>,
    crash_after: Option<usize>,
    trace: Option<&(Metrics, String)>,
) -> Result<ColdModel, String> {
    if let Some(n) = crash_after {
        sampler.run_sweeps(n, ckptr).map_err(|e| e.to_string())?;
        crash_now(n, trace);
    }
    match ckptr {
        Some(ckptr) => sampler.run_checkpointed(ckptr).map_err(|e| e.to_string()),
        None => Ok(sampler.run()),
    }
}

/// Drive a parallel sampler to completion (or to the injected crash).
fn run_parallel(
    mut pg: ParallelGibbs,
    ckptr: Option<&Checkpointer>,
    crash_after: Option<usize>,
    trace: Option<&(Metrics, String)>,
) -> Result<ColdModel, String> {
    if let Some(n) = crash_after {
        pg.run_sweeps(n, ckptr).map_err(|e| e.to_string())?;
        crash_now(n, trace);
    }
    let start = std::time::Instant::now();
    pg.run_sweeps(usize::MAX, ckptr)
        .map_err(|e| e.to_string())?;
    pg.publish_final_gauges(start.elapsed().as_secs_f64());
    println!(
        "parallel wall time {:.1}s over {} supersteps ({} shards); \
         final complete-data log-likelihood {:.4}",
        start.elapsed().as_secs_f64(),
        pg.sweeps_done(),
        pg.shards(),
        pg.log_likelihood()
    );
    Ok(pg.finish())
}

/// Abort the process the way a crash would (no model written, nonzero
/// exit). 137 mirrors a SIGKILL'd process so recovery drills look real.
/// The trace segment, if one was requested, is flushed first: a real
/// crash loses its tail too, but replay verification needs the events up
/// to the crash point to chain with the resume segment.
fn crash_now(after_sweep: usize, trace: Option<&(Metrics, String)>) -> ! {
    if let Some((metrics, path)) = trace {
        if let Err(err) = write_trace(metrics, path) {
            eprintln!("error: {err}");
        }
    }
    eprintln!("crash injection: aborting after sweep {after_sweep}");
    std::process::exit(137);
}

/// `cold ckpt-inspect` — list a checkpoint directory: sweep, size, and
/// integrity verdict per file (corrupt files are reported, not fatal).
pub fn ckpt_inspect(args: &Args) -> CliResult {
    let dir = args.required("dir")?;
    if !std::path::Path::new(dir).is_dir() {
        return Err(format!("{dir} is not a directory"));
    }
    let ckptr = Checkpointer::new(dir).map_err(|e| e.to_string())?;
    let entries = ckptr.list().map_err(|e| e.to_string())?;
    if entries.is_empty() {
        println!("{dir}: no checkpoints");
        return Ok(());
    }
    for entry in &entries {
        match Checkpoint::read(&entry.path) {
            Ok(ckpt) => {
                let d = ckpt.config.dims;
                println!(
                    "sweep {:>6}  {:>9} B  ok       {:?} kernel={} C={} K={} samples={}",
                    entry.sweep,
                    entry.bytes,
                    ckpt.kind,
                    ckpt.config.kernel.name(),
                    d.num_communities,
                    d.num_topics,
                    ckpt.acc.samples_collected(),
                );
            }
            Err(err) => {
                println!(
                    "sweep {:>6}  {:>9} B  CORRUPT  {err}",
                    entry.sweep, entry.bytes
                );
            }
        }
    }
    println!(
        "{dir}: {} checkpoint(s), newest at sweep {}",
        entries.len(),
        entries[0].sweep
    );
    Ok(())
}

/// `cold replay-check` — verify a recorded `cold-trace/v1` stream against
/// the replay model, then (with `--fuzz N`) require the model to reject
/// seeded protocol faults and accept legal schedule permutations.
///
/// `--trace` takes a comma-separated list of segment files; a crash/resume
/// pair records one segment per process, and chaining them lets the model
/// carry checkpoint knowledge across the crash.
pub fn replay_check(args: &Args) -> CliResult {
    let spec = args.required("trace")?;
    let fuzz_cases = args.get_or("fuzz", 0usize)?;
    let base_seed = args.get_or("seed", 0xC0_1Du64)?;
    let mut events = Vec::new();
    for path in spec.split(',').filter(|p| !p.is_empty()) {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let segment =
            cold_obs::trace::parse_jsonl(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        println!("loaded {path}: {} events", segment.len());
        events.extend(segment);
    }
    let report = cold_replay::verify(&events)
        .map_err(|v| format!("replay rejected the recorded trace: {v}"))?;
    println!("replay clean: {report}");
    if fuzz_cases == 0 {
        return Ok(());
    }
    let outcomes = cold_replay::fault::fuzz(&events, fuzz_cases, base_seed);
    let mut wrong = 0usize;
    for out in &outcomes {
        let label = out.fault.map_or("schedule", |c| c.name());
        let answer = match (&out.fault, &out.rejection) {
            (Some(_), Some(v)) => format!("rejected ({})", v.kind),
            (Some(_), None) => "NOT REJECTED".to_owned(),
            (None, None) => "accepted".to_owned(),
            (None, Some(v)) => format!("WRONGLY REJECTED ({})", v.kind),
        };
        if !out.ok() {
            wrong += 1;
        }
        println!(
            "fuzz seed {:#018x}  {label:<18} {answer:<28} {}",
            out.seed, out.detail
        );
    }
    let classes: std::collections::BTreeSet<&str> = outcomes
        .iter()
        .filter_map(|o| o.fault.map(|c| c.name()))
        .collect();
    println!(
        "fuzz: {}/{} cases answered correctly ({} fault classes covered)",
        outcomes.len() - wrong,
        outcomes.len(),
        classes.len()
    );
    if wrong > 0 {
        return Err(format!("{wrong} fuzz case(s) answered wrong"));
    }
    if outcomes.is_empty() {
        return Err("no fuzz cases could be generated from this trace".into());
    }
    Ok(())
}

/// Dump a metrics snapshot: JSONL sink to `path`, summary table to stdout.
fn write_metrics(metrics: &Metrics, path: &str) -> CliResult {
    let snapshot = metrics.snapshot();
    snapshot
        .write_jsonl(path)
        .map_err(|e| format!("writing {path}: {e}"))?;
    println!("{}", snapshot.render_table());
    println!("metrics -> {path}");
    Ok(())
}

/// `cold metrics-check` — validate a metrics JSONL file against the
/// `cold-obs/v1` schema.
pub fn metrics_check(args: &Args) -> CliResult {
    let path = args.required("file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let stats = cold_obs::schema::validate_jsonl(&text)?;
    println!(
        "{path}: ok ({} counters, {} gauges, {} histograms)",
        stats.counters, stats.gauges, stats.histograms
    );
    print_storage_table(&text);
    Ok(())
}

/// Summarize `state.*` gauges (counter-storage footprints) from validated
/// JSONL: one row per counter family, bytes alongside occupancy.
fn print_storage_table(text: &str) {
    let mut bytes: Vec<(String, f64)> = Vec::new();
    let mut occupancy: Vec<(String, f64)> = Vec::new();
    let mut total: Option<f64> = None;
    for (name, value) in cold_obs::schema::gauges(text) {
        if name == "state.bytes.total" {
            total = Some(value);
        } else if let Some(fam) = name.strip_prefix("state.bytes.") {
            bytes.push((fam.to_owned(), value));
        } else if let Some(fam) = name.strip_prefix("state.occupancy.") {
            occupancy.push((fam.to_owned(), value));
        }
    }
    if bytes.is_empty() {
        return;
    }
    bytes.sort_by(|a, b| a.0.cmp(&b.0));
    println!("\ncounter storage (state.* gauges):");
    println!("  {:<10} {:>14} {:>11}", "family", "bytes", "occupancy");
    for (fam, b) in &bytes {
        let occ = occupancy
            .iter()
            .find(|(f, _)| f == fam)
            .map(|&(_, o)| format!("{:>10.1}%", o * 100.0))
            .unwrap_or_else(|| format!("{:>11}", "-"));
        println!("  {fam:<10} {b:>14.0} {occ}");
    }
    if let Some(t) = total {
        println!("  {:<10} {t:>14.0}", "total");
    }
}

/// `cold topics` — print each topic's top words.
pub fn topics(args: &Args) -> CliResult {
    let model = load_model(args.required("model")?)?;
    let data = load_dataset(args.required("data")?)?;
    let top = args.get_or("top", 10usize)?;
    // Optional single-topic filter: `--topic K`.
    let only: Option<usize> = match args.optional("topic") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("--topic: cannot parse '{raw}'"))?,
        ),
        None => None,
    };
    for k in 0..model.dims().num_topics {
        if only.is_some_and(|t| t != k) {
            continue;
        }
        let words: Vec<String> = model
            .top_words(k, top, data.corpus.vocab())
            .into_iter()
            .map(|(w, p)| format!("{w} ({p:.3})"))
            .collect();
        println!("topic {k}: {}", words.join(", "));
    }
    Ok(())
}

/// `cold communities` — print community interests and sizes.
pub fn communities(args: &Args) -> CliResult {
    let model = load_model(args.required("model")?)?;
    let data = load_dataset(args.required("data")?)?;
    let hard = model.hard_user_communities();
    for c in 0..model.dims().num_communities {
        let members = hard.iter().filter(|&&x| x == c as u32).count();
        let theta = model.community_topics(c);
        let mut ranked: Vec<(usize, f64)> = theta.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        let interests: Vec<String> = ranked
            .iter()
            .take(3)
            .map(|&(k, p)| format!("k{k}:{:.0}%", p * 100.0))
            .collect();
        println!(
            "community {c}: {members} primary members, interests [{}]",
            interests.join(" ")
        );
    }
    let _ = data; // dataset kept for symmetry; membership needs only the model
    Ok(())
}

/// `cold predict` — diffusion probability of one post between two users.
pub fn predict(args: &Args) -> CliResult {
    let model = load_model(args.required("model")?)?;
    let data = load_dataset(args.required("data")?)?;
    let publisher: u32 = args.get_required("publisher")?;
    let consumer: u32 = args.get_required("consumer")?;
    let post_id: u32 = args.get_required("post")?;
    if post_id as usize >= data.corpus.num_posts() {
        return Err(format!(
            "post {post_id} out of range (dataset has {} posts)",
            data.corpus.num_posts()
        ));
    }
    let metrics_out = args.optional("metrics-out");
    let metrics = if metrics_out.is_some() {
        Metrics::enabled()
    } else {
        Metrics::disabled()
    };
    let predictor = DiffusionPredictor::with_metrics(
        &model,
        cold_core::predict::DEFAULT_TOP_COMM,
        metrics.clone(),
    )
    .map_err(|e| format!("cannot build predictor: {e}"))?;
    let words = &data.corpus.post(post_id).words;
    let score = predictor
        .diffusion_score(publisher, consumer, words)
        .map_err(|e| format!("cannot score {publisher} -> {consumer}: {e}"))?;
    let topics = predictor
        .post_topics(publisher, words)
        .map_err(|e| format!("cannot infer topics for post {post_id}: {e}"))?;
    let best = topics
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(k, p)| (k, *p))
        .unwrap_or((0, 0.0));
    println!(
        "P({publisher} -> {consumer}, post {post_id}) = {score:.6}  (dominant topic {} at {:.0}%)",
        best.0,
        best.1 * 100.0
    );
    if let Some(path) = metrics_out {
        write_metrics(&metrics, path)?;
    }
    Ok(())
}

/// `cold influence` — rank communities by IC influence on one topic.
pub fn influence(args: &Args) -> CliResult {
    let model = load_model(args.required("model")?)?;
    let topic = args.get_or("topic", 0usize)?;
    if topic >= model.dims().num_topics {
        return Err(format!("topic {topic} out of range"));
    }
    let simulations = args.get_or("simulations", 3000usize)?;
    let mut rng = seeded_rng(args.get_or("seed", 7u64)?);
    let ranking = cold_cascade::community_influence(&model, topic, simulations, &mut rng);
    for r in &ranking {
        println!(
            "community {:>3}: influence {:.3}, interest {:.4}",
            r.community, r.influence, r.interest
        );
    }
    Ok(())
}

/// `cold eval` — quick quality report: perplexity + link AUC.
pub fn eval(args: &Args) -> CliResult {
    let model = load_model(args.required("model")?)?;
    let data = load_dataset(args.required("data")?)?;
    let mut rng = seeded_rng(args.get_or("seed", 9u64)?);

    // Perplexity over all posts (in-sample report, labelled as such).
    let per_post: Vec<(f64, usize)> = data
        .corpus
        .posts()
        .iter()
        .map(|p| {
            (
                cold_core::predict::post_log_likelihood(&model, p.author, &p.words),
                p.len(),
            )
        })
        .collect();
    let perplexity =
        cold_eval::perplexity(&per_post).ok_or("perplexity undefined for empty corpus")?;
    println!(
        "in-sample perplexity: {perplexity:.1} (uniform baseline {})",
        data.corpus.vocab_size()
    );

    // Link AUC: all positives vs equally many sampled negatives.
    let positives: Vec<(u32, u32)> = data.graph.edges().collect();
    if !positives.is_empty() {
        let negatives = cold_graph::sampling::sample_negative_links(
            &mut rng,
            &data.graph,
            positives
                .len()
                .min(data.graph.num_negative_links() as usize),
        );
        let mut scored: Vec<(f64, bool)> = Vec::new();
        for &(i, j) in &positives {
            scored.push((cold_core::predict::link_probability(&model, i, j), true));
        }
        for &(i, j) in &negatives {
            scored.push((cold_core::predict::link_probability(&model, i, j), false));
        }
        let auc = cold_eval::ranking_auc(&scored).ok_or("AUC undefined")?;
        println!("link AUC (in-sample positives vs sampled negatives): {auc:.3}");
    }
    Ok(())
}

/// `cold serve` — long-running HTTP prediction API over a trained model.
///
/// Loads the model once (zero-copy for `cold-model/v1` binaries), builds
/// the predictor's `ζ` tensor and per-topic influencer rankings up front,
/// then blocks answering requests until `POST /shutdown`. With `--data`
/// the dataset's vocabulary is attached so `/predict` accepts word
/// strings, not just ids. Startup failures (missing model, occupied
/// port) exit nonzero with the underlying error in context.
pub fn serve(args: &Args) -> CliResult {
    let model_path = args.required("model")?;
    let addr = match args.optional("addr") {
        Some(addr) => addr.to_owned(),
        None => format!("127.0.0.1:{}", args.get_or("port", 8391u16)?),
    };
    let top_comm = args.get_or("top-comm", cold_core::predict::DEFAULT_TOP_COMM)?;
    let rank_depth = args.get_or("rank-depth", 100usize)?;
    let vocab = match args.optional("data") {
        Some(data_path) => {
            let data = load_dataset(data_path)?;
            let v = data.corpus.vocab();
            Some(
                (0..v.len() as u32)
                    .map(|id| (v.word(id).to_owned(), id))
                    .collect(),
            )
        }
        None => None,
    };
    let defaults = cold_serve::ServeConfig::default();
    let io_mode = match args.optional("io-mode") {
        Some(raw) => raw.parse::<cold_serve::IoMode>()?,
        None => defaults.io_mode,
    };
    let config = cold_serve::ServeConfig {
        addr,
        io_mode,
        io_threads: args.get_or("io-threads", defaults.io_threads)?,
        workers: args.get_or("workers", 8usize)?,
        batch_max: args.get_or("batch-max", 32usize)?,
        batch_wait: std::time::Duration::from_micros(args.get_or("batch-wait-us", 500u64)?),
        max_body: args.get_or("max-body", 1usize << 20)?,
        max_conns: args.get_or("max-conns", defaults.max_conns)?,
        max_queue: args.get_or("max-queue", defaults.max_queue)?,
        // 0 disables the per-request deadline.
        request_timeout: std::time::Duration::from_millis(args.get_or(
            "request-timeout-ms",
            defaults.request_timeout.as_millis() as u64,
        )?),
        respawn_limit: args.get_or("respawn-limit", defaults.respawn_limit)?,
        chaos_endpoints: args.get_or("chaos", false)?,
        // 0 disables artifact watching.
        watch_model: match args.get_or("watch-model-ms", 0u64)? {
            0 => None,
            ms => Some(std::time::Duration::from_millis(ms)),
        },
    };
    if config.chaos_endpoints {
        eprintln!("cold-serve: WARNING: /chaos/* fault-injection endpoints are enabled");
    }

    let app = cold_serve::App::load(model_path, top_comm, rank_depth, vocab, Metrics::enabled())
        .map_err(|e| format!("cannot load {model_path}: {e}"))?;
    let server = cold_serve::Server::start(config, app).map_err(|e| e.to_string())?;
    println!(
        "cold-serve listening on {} ({io_mode} transport, {} workers); stop with: curl -X POST http://{}/shutdown",
        server.addr(),
        args.get_or("workers", 8usize)?,
        server.addr()
    );
    server.join();
    println!("cold-serve: drained and stopped");
    Ok(())
}
