//! `cold` — command-line interface to the COLD reproduction.
//!
//! ```text
//! cold generate --users 300 --communities 6 --topics 6 --out world.json
//! cold train    --data world.json --communities 6 --topics 6 --out model.json
//! cold topics   --model model.json --data world.json
//! cold communities --model model.json --data world.json
//! cold predict  --model model.json --data world.json --publisher 0 --consumer 1 --post 0
//! cold influence --model model.json --topic 0
//! cold eval     --model model.json --data world.json
//! cold serve    --model model.cold --port 8391
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! dependency set at the workspace baseline.

mod args;
mod commands;

use args::Args;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = raw.split_first() else {
        eprintln!("{}", commands::USAGE);
        std::process::exit(2);
    };
    let args = match Args::parse(rest) {
        Ok(args) => args,
        Err(err) => {
            eprintln!("error: {err}\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    let result = match command.as_str() {
        "generate" => commands::generate(&args),
        "train" => commands::train(&args),
        "topics" => commands::topics(&args),
        "communities" => commands::communities(&args),
        "predict" => commands::predict(&args),
        "influence" => commands::influence(&args),
        "eval" => commands::eval(&args),
        "serve" => commands::serve(&args),
        "metrics-check" => commands::metrics_check(&args),
        "ckpt-inspect" => commands::ckpt_inspect(&args),
        "replay-check" => commands::replay_check(&args),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => {
            eprintln!("unknown command '{other}'\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(err) = result {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
}
