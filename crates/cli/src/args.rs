//! Minimal `--key value` argument parsing.

use std::collections::HashMap;

/// Parsed `--key value` arguments.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parse a flat list of `--key value` pairs.
    pub fn parse(raw: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut iter = raw.iter();
        while let Some(key) = iter.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --flag, got '{key}'"));
            };
            let Some(value) = iter.next() else {
                return Err(format!("flag --{name} needs a value"));
            };
            if values.insert(name.to_owned(), value.clone()).is_some() {
                return Err(format!("flag --{name} given twice"));
            }
        }
        Ok(Self { values })
    }

    /// A required string argument.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// An optional string argument.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A parsed argument with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse '{raw}'")),
        }
    }

    /// A required parsed argument.
    pub fn get_required<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let raw = self.required(name)?;
        raw.parse()
            .map_err(|_| format!("flag --{name}: cannot parse '{raw}'"))
    }

    /// An optional parsed argument: `None` when absent, an error when
    /// present but unparsable.
    pub fn get_optional<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.values.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("flag --{name}: cannot parse '{raw}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_key_value_pairs() {
        let args = Args::parse(&strings(&["--users", "300", "--out", "w.json"])).unwrap();
        assert_eq!(args.required("out").unwrap(), "w.json");
        assert_eq!(args.get_or("users", 0u32).unwrap(), 300);
        assert_eq!(args.get_or("topics", 7usize).unwrap(), 7);
        assert!(args.optional("absent").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Args::parse(&strings(&["users", "300"])).is_err());
        assert!(Args::parse(&strings(&["--users"])).is_err());
        assert!(Args::parse(&strings(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn reports_missing_and_unparsable() {
        let args = Args::parse(&strings(&["--n", "abc"])).unwrap();
        assert!(args.required("out").is_err());
        assert!(args.get_or("n", 1u32).is_err());
        assert!(args.get_required::<u32>("n").is_err());
        assert!(args.get_optional::<u32>("n").is_err());
        assert_eq!(args.get_optional::<u32>("absent").unwrap(), None);
    }
}
