//! End-to-end metrics smoke test: generate a tiny world, train with
//! `--metrics-out`, then validate the emitted JSONL both with the
//! `metrics-check` subcommand and directly against the schema validator.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cold"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cold-metrics-smoke-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn train_emits_valid_metrics_jsonl() {
    let dir = tmp_dir("train");
    let world = dir.join("world.json");
    let model = dir.join("model.json");
    let metrics = dir.join("metrics.jsonl");

    let gen = bin()
        .args(["generate", "--out"])
        .arg(&world)
        .args(["--users", "40", "--communities", "2", "--topics", "2"])
        .args(["--vocab", "60", "--slices", "6", "--seed", "5"])
        .output()
        .expect("run generate");
    assert!(gen.status.success(), "generate failed: {gen:?}");

    let train = bin()
        .args(["train", "--data"])
        .arg(&world)
        .args(["--out"])
        .arg(&model)
        .args(["--communities", "2", "--topics", "2"])
        .args(["--iterations", "30", "--seed", "5", "--metrics-out"])
        .arg(&metrics)
        .output()
        .expect("run train");
    assert!(train.status.success(), "train failed: {train:?}");
    let stdout = String::from_utf8_lossy(&train.stdout);
    // The summary table must surface the headline sections.
    assert!(stdout.contains("train.sweeps"), "table missing: {stdout}");
    assert!(stdout.contains("span.sweep"), "table missing: {stdout}");

    // The JSONL sink must parse and self-validate.
    let text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let stats = cold_obs::schema::validate_jsonl(&text).expect("schema-valid JSONL");
    assert!(stats.counters > 0);
    assert!(stats.gauges > 0);
    assert!(stats.histograms > 0);

    // And `metrics-check` must agree.
    let check = bin()
        .args(["metrics-check", "--file"])
        .arg(&metrics)
        .output()
        .expect("run metrics-check");
    assert!(check.status.success(), "metrics-check failed: {check:?}");
    assert!(String::from_utf8_lossy(&check.stdout).contains("ok"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_train_emits_per_shard_counters() {
    let dir = tmp_dir("shards");
    let world = dir.join("world.json");
    let model = dir.join("model.json");
    let metrics = dir.join("metrics.jsonl");

    let gen = bin()
        .args(["generate", "--out"])
        .arg(&world)
        .args(["--users", "40", "--communities", "2", "--topics", "2"])
        .args(["--vocab", "60", "--slices", "6", "--seed", "6"])
        .output()
        .expect("run generate");
    assert!(gen.status.success(), "generate failed: {gen:?}");

    let train = bin()
        .args(["train", "--data"])
        .arg(&world)
        .args(["--out"])
        .arg(&model)
        .args(["--communities", "2", "--topics", "2"])
        .args(["--iterations", "20", "--seed", "6", "--shards", "3"])
        .args(["--metrics-out"])
        .arg(&metrics)
        .output()
        .expect("run train");
    assert!(train.status.success(), "train failed: {train:?}");

    let text = std::fs::read_to_string(&metrics).expect("metrics file written");
    cold_obs::schema::validate_jsonl(&text).expect("schema-valid JSONL");
    for s in 0..3 {
        assert!(
            text.contains(&format!("parallel.shard.{s}.post_draws")),
            "missing shard {s} counters"
        );
    }
    assert!(text.contains("parallel.sync_bytes"));
    assert!(text.contains("parallel.wall_seconds"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_check_rejects_corrupt_files() {
    let dir = tmp_dir("corrupt");
    let bad = dir.join("bad.jsonl");
    std::fs::write(&bad, "{\"not\": \"a metrics file\"}\n").unwrap();
    let check = bin()
        .args(["metrics-check", "--file"])
        .arg(&bad)
        .output()
        .expect("run metrics-check");
    assert!(!check.status.success(), "corrupt file accepted");
    let _ = std::fs::remove_dir_all(&dir);
}
