//! Preprocessing: tokenization, stop-word filtering, low-activity pruning.
//!
//! §6.1 of the paper builds its datasets "after removing stop words and low
//! active users (with fewer than 20 posts)". This module reproduces that
//! pipeline for raw text input.

use crate::{Corpus, CorpusBuilder, TimeSlice};
use std::collections::HashSet;

/// A basic tokenizer + filter configuration.
#[derive(Debug, Clone)]
pub struct Preprocessor {
    stopwords: HashSet<String>,
    /// Words shorter than this (in chars) are dropped.
    pub min_word_len: usize,
    /// Users with fewer posts than this are dropped entirely (paper: 20).
    pub min_posts_per_user: usize,
}

impl Default for Preprocessor {
    fn default() -> Self {
        Self {
            stopwords: DEFAULT_STOPWORDS.iter().map(|s| (*s).to_owned()).collect(),
            min_word_len: 2,
            min_posts_per_user: 1,
        }
    }
}

/// A tiny default English stop list; callers supply their own for real data.
const DEFAULT_STOPWORDS: &[&str] = &[
    "a", "an", "the", "and", "or", "of", "to", "in", "on", "is", "are", "was", "were", "be", "it",
    "at", "by", "for", "with", "as", "this", "that", "i", "you", "he", "she", "we", "they", "not",
    "but", "so", "if", "then",
];

impl Preprocessor {
    /// Replace the stop list.
    pub fn with_stopwords(mut self, words: impl IntoIterator<Item = String>) -> Self {
        self.stopwords = words.into_iter().collect();
        self
    }

    /// Lowercase, split on non-alphanumeric boundaries, drop stop words and
    /// too-short tokens.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        text.to_lowercase()
            .split(|ch: char| !ch.is_alphanumeric())
            .filter(|tok| tok.len() >= self.min_word_len)
            .filter(|tok| !self.stopwords.contains(*tok))
            .map(str::to_owned)
            .collect()
    }

    /// Build a corpus from raw `(author, time_slice, text)` messages,
    /// applying tokenization and dropping users below the activity floor.
    ///
    /// Authors are *re-indexed densely* after pruning; the returned map
    /// gives `new_id -> original_id`.
    pub fn build_corpus(&self, messages: &[(u32, TimeSlice, &str)]) -> (Corpus, Vec<u32>) {
        // Count per-author message volume first.
        let max_author = messages
            .iter()
            .map(|&(a, _, _)| a)
            .max()
            .map_or(0, |a| a + 1);
        let mut counts = vec![0usize; max_author as usize];
        for &(a, _, _) in messages {
            counts[a as usize] += 1;
        }
        let keep: Vec<u32> = (0..max_author)
            .filter(|&a| counts[a as usize] >= self.min_posts_per_user)
            .collect();
        let mut remap = vec![u32::MAX; max_author as usize];
        for (new, &old) in keep.iter().enumerate() {
            remap[old as usize] = new as u32;
        }
        let mut builder = CorpusBuilder::new();
        builder.ensure_users(keep.len() as u32);
        for &(author, time, text) in messages {
            let new_author = remap[author as usize];
            if new_author == u32::MAX {
                continue;
            }
            let toks = self.tokenize(text);
            if toks.is_empty() {
                continue;
            }
            let refs: Vec<&str> = toks.iter().map(String::as_str).collect();
            builder.push_text(new_author, time, &refs);
        }
        (builder.build(), keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_lowercases_and_strips_stopwords() {
        let p = Preprocessor::default();
        let toks = p.tokenize("The Quick-Brown FOX, and a dog!");
        assert_eq!(toks, vec!["quick", "brown", "fox", "dog"]);
    }

    #[test]
    fn short_tokens_are_dropped() {
        let p = Preprocessor::default();
        assert!(p.tokenize("x y z").is_empty());
    }

    #[test]
    fn custom_stoplist() {
        let p = Preprocessor::default().with_stopwords(["fox".to_owned()]);
        let toks = p.tokenize("the fox runs");
        assert_eq!(toks, vec!["the", "runs"]);
    }

    #[test]
    fn low_activity_users_are_pruned_and_reindexed() {
        let p = Preprocessor {
            min_posts_per_user: 2,
            ..Preprocessor::default()
        };
        let msgs = vec![
            (0u32, 0u16, "football match tonight"),
            (1, 0, "only one post here"),
            (0, 1, "great football game"),
            (2, 1, "movie review time"),
            (2, 2, "another movie night"),
        ];
        let (corpus, kept) = p.build_corpus(&msgs);
        assert_eq!(kept, vec![0, 2]);
        assert_eq!(corpus.num_users(), 2);
        assert_eq!(corpus.num_posts(), 4);
        // User 2 became id 1.
        assert_eq!(corpus.posts_of(1).len(), 2);
    }

    #[test]
    fn empty_after_filtering_posts_are_skipped() {
        let p = Preprocessor::default();
        let msgs = vec![(0u32, 0u16, "the a of"), (0, 1, "football")];
        let (corpus, _) = p.build_corpus(&msgs);
        assert_eq!(corpus.num_posts(), 1);
    }
}
