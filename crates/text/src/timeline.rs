//! Time discretization.
//!
//! The paper divides the entire time span of all posts into `T` equal
//! slices (hour-granularity on the Weibo datasets, §6.1) and models each
//! `ψ_kc` as a multinomial over those slices. [`TimeGrid`] performs that
//! mapping from raw epoch seconds.

use crate::TimeSlice;
use serde::{Deserialize, Serialize};

/// A uniform grid over `[start, end)` with `num_slices` cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeGrid {
    start: u64,
    end: u64,
    num_slices: TimeSlice,
}

impl TimeGrid {
    /// Build a grid covering `[start, end)` with `num_slices` slices.
    ///
    /// # Panics
    /// Panics if `end <= start` or `num_slices == 0`.
    pub fn new(start: u64, end: u64, num_slices: TimeSlice) -> Self {
        assert!(end > start, "empty time span [{start}, {end})");
        assert!(num_slices > 0, "need at least one slice");
        Self {
            start,
            end,
            num_slices,
        }
    }

    /// Grid spanning the min/max of `stamps` (inclusive of the max).
    ///
    /// Returns `None` for an empty stamp set.
    pub fn covering(stamps: &[u64], num_slices: TimeSlice) -> Option<Self> {
        let &min = stamps.iter().min()?;
        let &max = stamps.iter().max()?;
        Some(Self::new(min, max + 1, num_slices))
    }

    /// Number of slices `T`.
    pub fn num_slices(&self) -> TimeSlice {
        self.num_slices
    }

    /// Width of one slice in raw time units (rounded up so the grid covers
    /// the whole span).
    pub fn slice_width(&self) -> u64 {
        let span = self.end - self.start;
        span.div_ceil(self.num_slices as u64)
    }

    /// Map a raw stamp to its slice, clamping stamps outside the span to the
    /// boundary slices (streams in practice contain stragglers).
    pub fn slice_of(&self, stamp: u64) -> TimeSlice {
        if stamp < self.start {
            return 0;
        }
        let idx = (stamp - self.start) / self.slice_width();
        idx.min(self.num_slices as u64 - 1) as TimeSlice
    }

    /// The raw-time start of `slice` (inverse mapping, for reports).
    pub fn slice_start(&self, slice: TimeSlice) -> u64 {
        self.start + self.slice_width() * slice as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_partition_the_span() {
        let g = TimeGrid::new(1000, 2000, 10);
        assert_eq!(g.slice_width(), 100);
        assert_eq!(g.slice_of(1000), 0);
        assert_eq!(g.slice_of(1099), 0);
        assert_eq!(g.slice_of(1100), 1);
        assert_eq!(g.slice_of(1999), 9);
    }

    #[test]
    fn out_of_range_stamps_clamp() {
        let g = TimeGrid::new(1000, 2000, 10);
        assert_eq!(g.slice_of(0), 0);
        assert_eq!(g.slice_of(5000), 9);
    }

    #[test]
    fn covering_fits_all_stamps() {
        let stamps = [50u64, 10, 99, 42];
        let g = TimeGrid::covering(&stamps, 4).unwrap();
        for &s in &stamps {
            assert!(g.slice_of(s) < 4);
        }
        assert_eq!(g.slice_of(10), 0);
        assert_eq!(g.slice_of(99), 3);
        assert!(TimeGrid::covering(&[], 4).is_none());
    }

    #[test]
    fn uneven_span_rounds_up() {
        // Span 7 into 3 slices -> width 3, slices cover [0,3),[3,6),[6,7).
        let g = TimeGrid::new(0, 7, 3);
        assert_eq!(g.slice_width(), 3);
        assert_eq!(g.slice_of(6), 2);
        assert_eq!(g.slice_start(2), 6);
    }

    #[test]
    fn monotone_mapping() {
        let g = TimeGrid::new(0, 1_000, 16);
        let mut prev = 0;
        for stamp in 0..1_000 {
            let s = g.slice_of(stamp);
            assert!(s >= prev);
            prev = s;
        }
        assert_eq!(prev, 15);
    }
}
