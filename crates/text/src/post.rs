//! A single time-stamped micro-blog post.

use crate::{TimeSlice, WordId};
use serde::{Deserialize, Serialize};

/// One post `d_ij`: a bag of words plus a discretized time stamp.
///
/// The author is stored here (rather than only in the per-user index) so a
/// post can travel alone through prediction code: Eq. (5) needs the
/// publisher's community memberships alongside the words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Post {
    /// The publishing user `i`.
    pub author: u32,
    /// The discretized posting time `t_ij ∈ 0..T`.
    pub time: TimeSlice,
    /// Word ids, with repetitions (bag-of-words order is irrelevant).
    pub words: Vec<WordId>,
}

impl Post {
    /// Construct a post.
    pub fn new(author: u32, time: TimeSlice, words: Vec<WordId>) -> Self {
        Self {
            author,
            time,
            words,
        }
    }

    /// Post length `|d_ij|` in tokens.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the post has no tokens (possible after stop-word filtering).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The word *multiset* of the post: sorted `(word, count)` pairs.
    ///
    /// Eq. (3)'s collapsed topic conditional iterates distinct words with
    /// their within-post counts `n_ij^{(v)}`; computing this once per post
    /// per sweep keeps the inner loop linear in distinct words.
    pub fn word_multiset(&self) -> Vec<(WordId, u32)> {
        let mut sorted = self.words.clone();
        sorted.sort_unstable();
        let mut out: Vec<(WordId, u32)> = Vec::with_capacity(sorted.len());
        for &w in &sorted {
            match out.last_mut() {
                Some((prev, count)) if *prev == w => *count += 1,
                _ => out.push((w, 1)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiset_counts_repetitions() {
        let p = Post::new(0, 3, vec![5, 2, 5, 5, 2, 9]);
        assert_eq!(p.word_multiset(), vec![(2, 2), (5, 3), (9, 1)]);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn multiset_of_empty_post() {
        let p = Post::new(1, 0, vec![]);
        assert!(p.is_empty());
        assert!(p.word_multiset().is_empty());
    }

    #[test]
    fn multiset_total_equals_len() {
        let p = Post::new(0, 0, vec![1, 1, 2, 3, 3, 3, 7]);
        let total: u32 = p.word_multiset().iter().map(|&(_, c)| c).sum();
        assert_eq!(total as usize, p.len());
    }
}
