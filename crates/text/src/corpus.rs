//! The full post collection, with a per-user index.

use crate::{Post, PostId, TimeSlice, Vocabulary, WordId};
use serde::{Deserialize, Serialize};

/// A corpus: every post of every user, the shared vocabulary, and the time
/// grid dimension `T`.
///
/// Invariants (enforced at build):
/// * every `Post::time < num_time_slices`,
/// * every word id `< vocab.len()`,
/// * `user_posts[i]` lists exactly the posts with `author == i`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    vocab: Vocabulary,
    posts: Vec<Post>,
    num_users: u32,
    num_time_slices: TimeSlice,
    /// CSR-style per-user post index: `user_offsets[i]..user_offsets[i+1]`
    /// indexes into `user_post_ids`.
    user_offsets: Vec<u32>,
    user_post_ids: Vec<PostId>,
}

impl Corpus {
    /// Vocabulary size `V`.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of users `U` (including users with zero posts).
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Number of time slices `T`.
    pub fn num_time_slices(&self) -> TimeSlice {
        self.num_time_slices
    }

    /// Number of posts `D`.
    pub fn num_posts(&self) -> usize {
        self.posts.len()
    }

    /// Total token count across all posts.
    pub fn num_tokens(&self) -> usize {
        self.posts.iter().map(Post::len).sum()
    }

    /// The post with id `d`.
    pub fn post(&self, d: PostId) -> &Post {
        &self.posts[d as usize]
    }

    /// All posts, in id order.
    pub fn posts(&self) -> &[Post] {
        &self.posts
    }

    /// Ids of the posts published by user `i` (the paper's `D_i`).
    pub fn posts_of(&self, user: u32) -> &[PostId] {
        let lo = self.user_offsets[user as usize] as usize;
        let hi = self.user_offsets[user as usize + 1] as usize;
        &self.user_post_ids[lo..hi]
    }

    /// Split the post ids into `k` cross-validation folds by round-robin
    /// over a shuffled order.
    pub fn post_folds<R: rand::Rng>(&self, rng: &mut R, k: usize) -> Vec<Vec<PostId>> {
        use rand::seq::SliceRandom;
        assert!(k >= 2);
        let mut ids: Vec<PostId> = (0..self.posts.len() as PostId).collect();
        ids.shuffle(rng);
        let mut folds: Vec<Vec<PostId>> = (0..k).map(|_| Vec::new()).collect();
        for (idx, d) in ids.into_iter().enumerate() {
            folds[idx % k].push(d);
        }
        folds
    }

    /// A sub-corpus containing only the given posts (same vocabulary, users
    /// and time grid). Used to form training sets for held-out evaluation.
    pub fn restrict(&self, keep: &[PostId]) -> Corpus {
        let posts: Vec<Post> = keep
            .iter()
            .map(|&d| self.posts[d as usize].clone())
            .collect();
        CorpusBuilder::from_parts(
            self.vocab.clone(),
            self.num_users,
            self.num_time_slices,
            posts,
        )
    }
}

/// Incremental corpus construction.
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    vocab: Vocabulary,
    posts: Vec<Post>,
    num_users: u32,
    num_time_slices: TimeSlice,
}

impl CorpusBuilder {
    /// Fresh builder with an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder seeded with an existing vocabulary (e.g. synthetic).
    pub fn with_vocab(vocab: Vocabulary) -> Self {
        Self {
            vocab,
            ..Self::default()
        }
    }

    /// Declare at least `num_users` users.
    pub fn ensure_users(&mut self, num_users: u32) -> &mut Self {
        self.num_users = self.num_users.max(num_users);
        self
    }

    /// Mutable access to the vocabulary, for interning during tokenization.
    pub fn vocab_mut(&mut self) -> &mut Vocabulary {
        &mut self.vocab
    }

    /// Append a post. Grows the user range and time grid to fit.
    pub fn push(&mut self, post: Post) -> &mut Self {
        for &w in &post.words {
            assert!(
                (w as usize) < self.vocab.len(),
                "word id {w} not in vocabulary of size {}",
                self.vocab.len()
            );
        }
        self.num_users = self.num_users.max(post.author + 1);
        self.num_time_slices = self.num_time_slices.max(post.time + 1);
        self.posts.push(post);
        self
    }

    /// Append a post given raw word strings, interning them.
    pub fn push_text(&mut self, author: u32, time: TimeSlice, words: &[&str]) -> &mut Self {
        let ids: Vec<WordId> = words.iter().map(|w| self.vocab.intern(w)).collect();
        self.push(Post::new(author, time, ids))
    }

    /// Finalize into an immutable corpus.
    pub fn build(self) -> Corpus {
        Self::from_parts(self.vocab, self.num_users, self.num_time_slices, self.posts)
    }

    fn from_parts(
        vocab: Vocabulary,
        num_users: u32,
        num_time_slices: TimeSlice,
        posts: Vec<Post>,
    ) -> Corpus {
        let mut user_offsets = vec![0u32; num_users as usize + 1];
        for p in &posts {
            assert!(p.author < num_users, "author {} out of range", p.author);
            assert!(
                p.time < num_time_slices || (num_time_slices == 0 && posts.is_empty()),
                "time {} out of range {num_time_slices}",
                p.time
            );
            user_offsets[p.author as usize + 1] += 1;
        }
        for i in 0..num_users as usize {
            user_offsets[i + 1] += user_offsets[i];
        }
        let mut cursor = user_offsets.clone();
        let mut user_post_ids = vec![0 as PostId; posts.len()];
        for (d, p) in posts.iter().enumerate() {
            let slot = cursor[p.author as usize] as usize;
            user_post_ids[slot] = d as PostId;
            cursor[p.author as usize] += 1;
        }
        Corpus {
            vocab,
            posts,
            num_users,
            num_time_slices,
            user_offsets,
            user_post_ids,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_math::rng::seeded_rng;

    fn small() -> Corpus {
        let mut b = CorpusBuilder::new();
        b.push_text(0, 0, &["ball", "match"]);
        b.push_text(1, 2, &["film", "oscar", "film"]);
        b.push_text(0, 1, &["ball"]);
        b.ensure_users(4);
        b.build()
    }

    #[test]
    fn per_user_index_is_consistent() {
        let c = small();
        assert_eq!(c.num_users(), 4);
        assert_eq!(c.num_posts(), 3);
        assert_eq!(c.num_time_slices(), 3);
        assert_eq!(c.posts_of(0), &[0, 2]);
        assert_eq!(c.posts_of(1), &[1]);
        assert!(c.posts_of(3).is_empty());
        assert_eq!(c.num_tokens(), 6);
    }

    #[test]
    fn vocabulary_is_shared_across_posts() {
        let c = small();
        assert_eq!(c.vocab_size(), 4); // ball match film oscar
        let ball = c.vocab().id_of("ball").unwrap();
        assert_eq!(c.post(0).words[0], ball);
        assert_eq!(c.post(2).words[0], ball);
    }

    #[test]
    fn folds_partition_posts() {
        let c = small();
        let mut rng = seeded_rng(1);
        let folds = c.post_folds(&mut rng, 2);
        let mut all: Vec<u32> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn restrict_keeps_dimensions() {
        let c = small();
        let sub = c.restrict(&[1]);
        assert_eq!(sub.num_posts(), 1);
        assert_eq!(sub.num_users(), 4);
        assert_eq!(sub.num_time_slices(), 3);
        assert_eq!(sub.vocab_size(), 4);
        assert_eq!(sub.posts_of(1).len(), 1);
        assert!(sub.posts_of(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "not in vocabulary")]
    fn unknown_word_id_panics() {
        let mut b = CorpusBuilder::new();
        b.push(Post::new(0, 0, vec![99]));
    }
}
