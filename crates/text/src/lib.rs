//! Corpus substrate: vocabulary, time-stamped posts, preprocessing.
//!
//! The paper's data model (Definition 1) attaches to every user a set of
//! posts; each post is a bag of words over a fixed vocabulary plus a
//! posting time stamp, discretized into `T` slices (hours in the paper's
//! Weibo datasets). This crate owns that representation:
//!
//! * [`vocab::Vocabulary`] — string ⇄ dense word-id interning.
//! * [`post::Post`] — one time-stamped bag-of-words message.
//! * [`corpus::Corpus`] — the full post collection with a per-user index,
//!   the object every model trains on together with the interaction graph.
//! * [`timeline::TimeGrid`] — raw epoch seconds → time-slice discretization.
//! * [`tokenize`] — the stop-word / low-activity-user filtering pipeline the
//!   paper applies before modeling (§6.1).
//! * [`tfidf`] — user-history TF-IDF profiles (needed by the WTM baseline's
//!   interest-match feature).

// Per-user loops index parallel arrays by user id; see cold-core's same
// allowance.
#![allow(clippy::needless_range_loop)]

pub mod corpus;
pub mod post;
pub mod tfidf;
pub mod timeline;
pub mod tokenize;
pub mod vocab;

pub use corpus::{Corpus, CorpusBuilder};
pub use post::Post;
pub use timeline::TimeGrid;
pub use vocab::Vocabulary;

/// Dense word identifier, `0..V`.
pub type WordId = u32;

/// Dense post identifier, `0..D` across the whole corpus.
pub type PostId = u32;

/// Discretized time-slice index, `0..T`.
pub type TimeSlice = u16;
