//! Vocabulary interning.

use crate::WordId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A bidirectional map between word strings and dense ids `0..V`.
///
/// Models only ever see ids; the strings come back out for topic word-cloud
/// reports (Fig. 8).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    words: Vec<String>,
    index: HashMap<String, WordId>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `word`, returning its id (existing or fresh).
    pub fn intern(&mut self, word: &str) -> WordId {
        if let Some(&id) = self.index.get(word) {
            return id;
        }
        let id = self.words.len() as WordId;
        self.words.push(word.to_owned());
        self.index.insert(word.to_owned(), id);
        id
    }

    /// Look up an already-interned word.
    pub fn id_of(&self, word: &str) -> Option<WordId> {
        self.index.get(word).copied()
    }

    /// The string for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn word(&self, id: WordId) -> &str {
        &self.words[id as usize]
    }

    /// Vocabulary size `V`.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterate `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &str)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (i as WordId, w.as_str()))
    }

    /// Build a synthetic vocabulary of `size` machine-generated words
    /// (`w0000`, `w0001`, …). Used by the data generator where the actual
    /// strings are irrelevant but ids must be stable.
    pub fn synthetic(size: usize) -> Self {
        let mut v = Self::new();
        for i in 0..size {
            v.intern(&format!("w{i:05}"));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("sports");
        let b = v.intern("movie");
        assert_eq!(v.intern("sports"), a);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
        assert_eq!(v.word(a), "sports");
        assert_eq!(v.id_of("movie"), Some(b));
        assert_eq!(v.id_of("absent"), None);
    }

    #[test]
    fn iteration_preserves_id_order() {
        let mut v = Vocabulary::new();
        v.intern("a");
        v.intern("b");
        v.intern("c");
        let collected: Vec<_> = v.iter().map(|(i, w)| (i, w.to_owned())).collect();
        assert_eq!(
            collected,
            vec![
                (0, "a".to_owned()),
                (1, "b".to_owned()),
                (2, "c".to_owned())
            ]
        );
    }

    #[test]
    fn synthetic_vocab_has_distinct_words() {
        let v = Vocabulary::synthetic(1000);
        assert_eq!(v.len(), 1000);
        assert_eq!(v.id_of("w00999"), Some(999));
    }
}
