//! TF-IDF user-history profiles.
//!
//! The WTM baseline (§6.1, method 6) scores "user interest match" between a
//! message and a candidate retweeter's posting history. Lacking a topic
//! model, WTM uses sparse TF-IDF vectors and cosine similarity; this module
//! provides both.

use crate::{Corpus, WordId};

/// A sparse TF-IDF vector: sorted `(word, weight)` pairs, L2-normalized.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVector {
    entries: Vec<(WordId, f64)>,
}

impl SparseVector {
    /// Build from unsorted raw weights, dropping non-positive entries and
    /// normalizing to unit L2 norm.
    pub fn new(mut entries: Vec<(WordId, f64)>) -> Self {
        entries.retain(|&(_, w)| w > 0.0);
        entries.sort_unstable_by_key(|&(w, _)| w);
        let norm: f64 = entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, w) in &mut entries {
                *w /= norm;
            }
        }
        Self { entries }
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Cosine similarity with another vector (both unit-normalized, so this
    /// is just the sparse dot product).
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.entries[i].1 * other.entries[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }
}

/// Per-user TF-IDF profiles over a corpus.
#[derive(Debug, Clone)]
pub struct TfIdfModel {
    /// `idf[v] = ln(U / (1 + users containing v)) + 1`.
    idf: Vec<f64>,
    /// One profile per user, built from her whole post history.
    profiles: Vec<SparseVector>,
}

impl TfIdfModel {
    /// Fit profiles on `corpus` (one "document" per user, per the WTM
    /// formulation of user interest).
    pub fn fit(corpus: &Corpus) -> Self {
        let v = corpus.vocab_size();
        let u = corpus.num_users() as usize;
        // Document frequency at the user level.
        let mut df = vec![0u32; v];
        let mut per_user_tf: Vec<std::collections::HashMap<WordId, f64>> =
            vec![std::collections::HashMap::new(); u];
        for user in 0..u {
            let mut seen: std::collections::HashSet<WordId> = std::collections::HashSet::new();
            for &d in corpus.posts_of(user as u32) {
                for &w in &corpus.post(d).words {
                    *per_user_tf[user].entry(w).or_insert(0.0) += 1.0;
                    seen.insert(w);
                }
            }
            for w in seen {
                df[w as usize] += 1;
            }
        }
        let idf: Vec<f64> = df
            .iter()
            .map(|&d| (u as f64 / (1.0 + d as f64)).ln() + 1.0)
            .collect();
        let profiles: Vec<SparseVector> = per_user_tf
            .into_iter()
            .map(|tf| {
                SparseVector::new(
                    tf.into_iter()
                        .map(|(w, f)| (w, f * idf[w as usize]))
                        .collect(),
                )
            })
            .collect();
        Self { idf, profiles }
    }

    /// The fitted profile for `user`.
    pub fn user_profile(&self, user: u32) -> &SparseVector {
        &self.profiles[user as usize]
    }

    /// TF-IDF vector for an arbitrary bag of words (e.g. one message).
    pub fn vectorize(&self, words: &[WordId]) -> SparseVector {
        let mut tf: std::collections::HashMap<WordId, f64> = std::collections::HashMap::new();
        for &w in words {
            *tf.entry(w).or_insert(0.0) += 1.0;
        }
        SparseVector::new(
            tf.into_iter()
                .map(|(w, f)| (w, f * self.idf.get(w as usize).copied().unwrap_or(1.0)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CorpusBuilder;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        b.push_text(0, 0, &["football", "match", "goal"]);
        b.push_text(0, 1, &["football", "league"]);
        b.push_text(1, 0, &["movie", "oscar", "film"]);
        b.push_text(2, 1, &["football", "movie"]);
        b.build()
    }

    #[test]
    fn profiles_capture_user_interest() {
        let m = TfIdfModel::fit(&corpus());
        let sports_msg = m.vectorize(&{
            let c = corpus();
            let f = c.vocab().id_of("football").unwrap();
            let g = c.vocab().id_of("goal").unwrap();
            vec![f, g]
        });
        let sim_sports_user = m.user_profile(0).cosine(&sports_msg);
        let sim_movie_user = m.user_profile(1).cosine(&sports_msg);
        assert!(
            sim_sports_user > sim_movie_user,
            "{sim_sports_user} vs {sim_movie_user}"
        );
    }

    #[test]
    fn cosine_is_bounded_and_reflexive() {
        let m = TfIdfModel::fit(&corpus());
        for u in 0..3 {
            let p = m.user_profile(u);
            if p.nnz() > 0 {
                assert!((p.cosine(p) - 1.0).abs() < 1e-9);
            }
            for v in 0..3 {
                let c = p.cosine(m.user_profile(v));
                assert!((-1e-9..=1.0 + 1e-9).contains(&c));
            }
        }
    }

    #[test]
    fn empty_history_gives_empty_profile() {
        let mut b = CorpusBuilder::new();
        b.push_text(0, 0, &["hello", "world"]);
        b.ensure_users(3);
        let m = TfIdfModel::fit(&b.build());
        assert_eq!(m.user_profile(2).nnz(), 0);
        assert_eq!(m.user_profile(2).cosine(m.user_profile(0)), 0.0);
    }

    #[test]
    fn sparse_vector_drops_nonpositive() {
        let v = SparseVector::new(vec![(3, 0.0), (1, 2.0), (2, -1.0)]);
        assert_eq!(v.nnz(), 1);
        assert!((v.cosine(&v) - 1.0).abs() < 1e-12);
    }
}
