//! Property tests for the evaluation metrics.

use cold_eval::accuracy::{accuracy_curve, tolerance_accuracy};
use cold_eval::auc::ranking_auc;
use cold_eval::nmi::normalized_mutual_information;
use cold_eval::perplexity::perplexity;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AUC is invariant under strictly monotone score transforms.
    #[test]
    fn auc_monotone_invariant(
        scores in prop::collection::vec((0.0f64..1.0, any::<bool>()), 2..60)
    ) {
        prop_assume!(scores.iter().any(|&(_, l)| l) && scores.iter().any(|&(_, l)| !l));
        let transformed: Vec<(f64, bool)> =
            scores.iter().map(|&(s, l)| (s.exp() * 3.0 + 1.0, l)).collect();
        let a = ranking_auc(&scores).unwrap();
        let b = ranking_auc(&transformed).unwrap();
        prop_assert!((a - b).abs() < 1e-12);
    }

    /// AUC of labels vs inverted labels sums to 1.
    #[test]
    fn auc_complement(
        scores in prop::collection::vec((0.0f64..1.0, any::<bool>()), 2..60)
    ) {
        prop_assume!(scores.iter().any(|&(_, l)| l) && scores.iter().any(|&(_, l)| !l));
        let flipped: Vec<(f64, bool)> = scores.iter().map(|&(s, l)| (s, !l)).collect();
        let a = ranking_auc(&scores).unwrap();
        let b = ranking_auc(&flipped).unwrap();
        prop_assert!((a + b - 1.0).abs() < 1e-9);
    }

    /// AUC lies in [0, 1].
    #[test]
    fn auc_bounded(
        scores in prop::collection::vec((-5.0f64..5.0, any::<bool>()), 2..80)
    ) {
        if let Some(auc) = ranking_auc(&scores) {
            prop_assert!((0.0..=1.0).contains(&auc));
        }
    }

    /// The accuracy curve is monotone and reaches 1 at max spread.
    #[test]
    fn accuracy_curve_monotone(pairs in prop::collection::vec((0u16..50, 0u16..50), 1..50)) {
        let curve = accuracy_curve(&pairs, 50);
        for w in curve.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        prop_assert_eq!(*curve.last().unwrap(), 1.0);
        let acc0 = tolerance_accuracy(&pairs, 0).unwrap();
        prop_assert!((0.0..=1.0).contains(&acc0));
    }

    /// Perplexity decreases when likelihoods improve uniformly.
    #[test]
    fn perplexity_orders_models(lls in prop::collection::vec((-20.0f64..-0.1, 1usize..30), 1..20)) {
        let worse: Vec<(f64, usize)> = lls.iter().map(|&(ll, n)| (ll * n as f64, n)).collect();
        let better: Vec<(f64, usize)> = lls.iter().map(|&(ll, n)| (ll * 0.5 * n as f64, n)).collect();
        let pw = perplexity(&worse).unwrap();
        let pb = perplexity(&better).unwrap();
        prop_assert!(pb <= pw + 1e-9, "{pb} vs {pw}");
    }

    /// NMI is symmetric and bounded.
    #[test]
    fn nmi_symmetric_bounded(labels in prop::collection::vec((0u32..5, 0u32..5), 1..80)) {
        let a: Vec<u32> = labels.iter().map(|&(x, _)| x).collect();
        let b: Vec<u32> = labels.iter().map(|&(_, y)| y).collect();
        let ab = normalized_mutual_information(&a, &b).unwrap();
        let ba = normalized_mutual_information(&b, &a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&ab));
        // Self-NMI is 1 whenever entropy is positive (or both trivial).
        let aa = normalized_mutual_information(&a, &a).unwrap();
        prop_assert!((aa - 1.0).abs() < 1e-9);
    }
}
