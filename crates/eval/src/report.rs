//! Serializable experiment results.
//!
//! Every `fig*` binary in `cold-bench` produces an [`ExperimentReport`]:
//! named series over a shared x-axis, plus free-form notes. Reports render
//! to a markdown table (pasted into EXPERIMENTS.md) and round-trip through
//! JSON in `results/` so numbers are regenerable and diffable.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// One named series of y-values over the report's x-axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Display name, e.g. `"COLD"` or `"PMTLM"`.
    pub name: String,
    /// One value per x-axis entry; `NaN` is not allowed (use `None`).
    pub values: Vec<Option<f64>>,
}

impl Series {
    /// Construct from fully-populated values.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            values: values.into_iter().map(Some).collect(),
        }
    }
}

/// A complete experiment result: an x-axis, several series, and context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Identifier, e.g. `"fig09_perplexity"`.
    pub id: String,
    /// Human title, e.g. `"Perplexity vs number of topics"`.
    pub title: String,
    /// X-axis label, e.g. `"K"`.
    pub x_label: String,
    /// Y-axis label, e.g. `"perplexity"`.
    pub y_label: String,
    /// X-axis values (as strings so categorical axes work too).
    pub x: Vec<String>,
    /// The measured series.
    pub series: Vec<Series>,
    /// Free-form notes (dataset scale, iteration counts, seeds).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Start an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        x: Vec<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x,
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a series; its length must match the x-axis.
    ///
    /// # Panics
    /// Panics on length mismatch — a malformed report is a bug, not data.
    pub fn push_series(&mut self, series: Series) -> &mut Self {
        assert_eq!(
            series.values.len(),
            self.x.len(),
            "series '{}' has {} values for {} x entries",
            series.name,
            series.values.len(),
            self.x.len()
        );
        self.series.push(series);
        self
    }

    /// Append a context note.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("| {} |", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {} |", s.name));
        }
        out.push('\n');
        out.push_str(&"|---".repeat(1 + self.series.len()));
        out.push_str("|\n");
        for (i, xv) in self.x.iter().enumerate() {
            out.push_str(&format!("| {xv} |"));
            for s in &self.series {
                match s.values[i] {
                    Some(v) => out.push_str(&format!(" {v:.4} |")),
                    None => out.push_str(" — |"),
                }
            }
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("> {n}\n"));
            }
        }
        out
    }

    /// Write the JSON representation to `dir/<id>.json`.
    pub fn save(&self, dir: impl AsRef<Path>) -> std::io::Result<std::path::PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut file = std::fs::File::create(&path)?;
        let json = serde_json::to_string_pretty(self).expect("report serialization");
        file.write_all(json.as_bytes())?;
        file.write_all(b"\n")?;
        Ok(path)
    }

    /// Load a report back from `dir/<id>.json`.
    pub fn load(dir: impl AsRef<Path>, id: &str) -> std::io::Result<Self> {
        let path = dir.as_ref().join(format!("{id}.json"));
        let data = std::fs::read_to_string(path)?;
        serde_json::from_str(&data)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentReport {
        let mut r = ExperimentReport::new(
            "fig_test",
            "Test report",
            "K",
            "auc",
            vec!["20".into(), "50".into()],
        );
        r.push_series(Series::new("COLD", vec![0.9, 0.92]));
        r.push_series(Series {
            name: "MMSB".into(),
            values: vec![Some(0.8), None],
        });
        r.note("seed=1");
        r
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = sample().to_markdown();
        assert!(md.contains("| K | COLD | MMSB |"));
        assert!(md.contains("| 20 | 0.9000 | 0.8000 |"));
        assert!(md.contains("| 50 | 0.9200 | — |"));
        assert!(md.contains("> seed=1"));
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join("cold_eval_report_test");
        let r = sample();
        let path = r.save(&dir).unwrap();
        assert!(path.exists());
        let back = ExperimentReport::load(&dir, "fig_test").unwrap();
        assert_eq!(back, r);
    }

    #[test]
    #[should_panic(expected = "x entries")]
    fn mismatched_series_length_panics() {
        let mut r = ExperimentReport::new("x", "t", "x", "y", vec!["1".into()]);
        r.push_series(Series::new("bad", vec![1.0, 2.0]));
    }
}
