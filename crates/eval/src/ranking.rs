//! Top-k ranking metrics.
//!
//! The WTM baseline's original task is "whom to mention" — pick the few
//! followers most likely to spread a post — which is a top-k ranking
//! problem rather than a full-ranking (AUC) one. These metrics complement
//! the AUC evaluation for that view.

/// Precision@k: the fraction of the top-`k` scored items that are
/// positive. Returns `None` for an empty input or `k == 0`.
pub fn precision_at_k(scored: &[(f64, bool)], k: usize) -> Option<f64> {
    if scored.is_empty() || k == 0 {
        return None;
    }
    let mut order: Vec<usize> = (0..scored.len()).collect();
    order.sort_by(|&a, &b| {
        scored[b]
            .0
            .partial_cmp(&scored[a].0)
            .expect("scores must not be NaN")
    });
    let k = k.min(order.len());
    let hits = order[..k].iter().filter(|&&i| scored[i].1).count();
    Some(hits as f64 / k as f64)
}

/// Mean reciprocal rank of the first positive item (1-based rank).
/// Returns `None` when there is no positive item.
pub fn reciprocal_rank(scored: &[(f64, bool)]) -> Option<f64> {
    let mut order: Vec<usize> = (0..scored.len()).collect();
    order.sort_by(|&a, &b| {
        scored[b]
            .0
            .partial_cmp(&scored[a].0)
            .expect("scores must not be NaN")
    });
    order
        .iter()
        .position(|&i| scored[i].1)
        .map(|rank| 1.0 / (rank + 1) as f64)
}

/// Mean of [`reciprocal_rank`] over groups where it is defined.
pub fn mean_reciprocal_rank(groups: &[Vec<(f64, bool)>]) -> Option<f64> {
    let rrs: Vec<f64> = groups.iter().filter_map(|g| reciprocal_rank(g)).collect();
    if rrs.is_empty() {
        return None;
    }
    Some(rrs.iter().sum::<f64>() / rrs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_counts_top_hits() {
        let scored = vec![(0.9, true), (0.8, false), (0.7, true), (0.1, false)];
        assert_eq!(precision_at_k(&scored, 1), Some(1.0));
        assert_eq!(precision_at_k(&scored, 2), Some(0.5));
        assert_eq!(precision_at_k(&scored, 3), Some(2.0 / 3.0));
        // k beyond length clamps.
        assert_eq!(precision_at_k(&scored, 10), Some(0.5));
        assert_eq!(precision_at_k(&[], 3), None);
        assert_eq!(precision_at_k(&scored, 0), None);
    }

    #[test]
    fn reciprocal_rank_finds_first_positive() {
        let scored = vec![(0.9, false), (0.8, false), (0.7, true)];
        assert_eq!(reciprocal_rank(&scored), Some(1.0 / 3.0));
        assert_eq!(reciprocal_rank(&[(0.5, false)]), None);
        assert_eq!(reciprocal_rank(&[(0.5, true)]), Some(1.0));
    }

    #[test]
    fn mrr_averages_defined_groups() {
        let groups = vec![
            vec![(0.9, true), (0.1, false)], // RR 1
            vec![(0.9, false), (0.1, true)], // RR 1/2
            vec![(0.9, false)],              // undefined
        ];
        assert_eq!(mean_reciprocal_rank(&groups), Some(0.75));
        assert_eq!(mean_reciprocal_rank(&[]), None);
    }
}
