//! Normalized mutual information between two hard clusterings.
//!
//! The paper evaluates community quality with link prediction because Weibo
//! has no ground-truth communities. Our synthetic substrate *does* have
//! planted communities and topics, so recovery tests additionally check NMI
//! between the planted assignment and the model's hardened assignment.

use std::collections::HashMap;

/// NMI of two equal-length label sequences, in `[0, 1]`.
///
/// Uses the arithmetic-mean normalization
/// `NMI = 2·I(X;Y) / (H(X) + H(Y))`. Returns `None` for empty input. Two
/// constant labelings (zero entropy both sides) count as perfectly aligned.
pub fn normalized_mutual_information(a: &[u32], b: &[u32]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "label sequences must align");
    let n = a.len();
    if n == 0 {
        return None;
    }
    let nf = n as f64;
    let mut joint: HashMap<(u32, u32), f64> = HashMap::new();
    let mut ca: HashMap<u32, f64> = HashMap::new();
    let mut cb: HashMap<u32, f64> = HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        *joint.entry((x, y)).or_insert(0.0) += 1.0;
        *ca.entry(x).or_insert(0.0) += 1.0;
        *cb.entry(y).or_insert(0.0) += 1.0;
    }
    let h = |counts: &HashMap<u32, f64>| -> f64 {
        counts
            .values()
            .map(|&c| {
                let p = c / nf;
                -p * p.ln()
            })
            .sum()
    };
    let ha = h(&ca);
    let hb = h(&cb);
    if ha == 0.0 && hb == 0.0 {
        return Some(1.0); // both trivial and identical up to relabeling
    }
    let mut mi = 0.0;
    for (&(x, y), &cxy) in &joint {
        let pxy = cxy / nf;
        let px = ca[&x] / nf;
        let py = cb[&y] / nf;
        mi += pxy * (pxy / (px * py)).ln();
    }
    Some((2.0 * mi / (ha + hb)).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_labelings_score_one() {
        let a = [0, 0, 1, 1, 2, 2];
        assert!((normalized_mutual_information(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabeled_partitions_score_one() {
        let a = [0, 0, 1, 1, 2, 2];
        let b = [5, 5, 9, 9, 7, 7];
        assert!((normalized_mutual_information(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_labelings_score_near_zero() {
        // b splits each cluster of a evenly: knowing b says nothing about a.
        let a = [0, 0, 0, 0, 1, 1, 1, 1];
        let b = [0, 1, 0, 1, 0, 1, 0, 1];
        assert!(normalized_mutual_information(&a, &b).unwrap() < 1e-12);
    }

    #[test]
    fn partial_agreement_is_intermediate() {
        let a = [0, 0, 0, 1, 1, 1];
        let b = [0, 0, 1, 1, 1, 1];
        let nmi = normalized_mutual_information(&a, &b).unwrap();
        assert!(nmi > 0.1 && nmi < 0.9, "nmi = {nmi}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(normalized_mutual_information(&[], &[]), None);
        assert_eq!(normalized_mutual_information(&[3, 3], &[1, 1]), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = normalized_mutual_information(&[1], &[1, 2]);
    }
}
