//! Time-stamp prediction accuracy under a tolerance range (Fig. 11).
//!
//! The paper predicts a held-out post's time slice and counts a hit when
//! `|t̂ − t| ≤ tolerance`; Fig. 11 sweeps the tolerance.

/// Fraction of `(predicted, actual)` pairs within `tolerance` slices.
///
/// Returns `None` on an empty input.
pub fn tolerance_accuracy(pairs: &[(u16, u16)], tolerance: u16) -> Option<f64> {
    if pairs.is_empty() {
        return None;
    }
    let hits = pairs
        .iter()
        .filter(|&&(pred, actual)| pred.abs_diff(actual) <= tolerance)
        .count();
    Some(hits as f64 / pairs.len() as f64)
}

/// The full accuracy-vs-tolerance curve for tolerances `0..=max_tolerance`.
pub fn accuracy_curve(pairs: &[(u16, u16)], max_tolerance: u16) -> Vec<f64> {
    (0..=max_tolerance)
        .map(|tol| tolerance_accuracy(pairs, tol).unwrap_or(0.0))
        .collect()
}

/// Mean absolute error in slices, a scalar companion to the curve.
pub fn mean_absolute_error(pairs: &[(u16, u16)]) -> Option<f64> {
    if pairs.is_empty() {
        return None;
    }
    let total: u64 = pairs
        .iter()
        .map(|&(pred, actual)| u64::from(pred.abs_diff(actual)))
        .sum();
    Some(total as f64 / pairs.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_hits_only_at_zero_tolerance() {
        let pairs = vec![(3, 3), (5, 7), (1, 0)];
        assert_eq!(tolerance_accuracy(&pairs, 0), Some(1.0 / 3.0));
        assert_eq!(tolerance_accuracy(&pairs, 1), Some(2.0 / 3.0));
        assert_eq!(tolerance_accuracy(&pairs, 2), Some(1.0));
    }

    #[test]
    fn curve_is_monotone_nondecreasing() {
        let pairs = vec![(0, 9), (4, 4), (2, 6), (8, 8), (1, 3)];
        let curve = accuracy_curve(&pairs, 10);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(*curve.last().unwrap(), 1.0);
    }

    #[test]
    fn mae_matches_hand_computation() {
        let pairs = vec![(3, 3), (5, 7), (1, 0)];
        assert_eq!(mean_absolute_error(&pairs), Some(1.0));
        assert_eq!(mean_absolute_error(&[]), None);
    }

    #[test]
    fn empty_input_is_none() {
        assert_eq!(tolerance_accuracy(&[], 5), None);
    }
}
