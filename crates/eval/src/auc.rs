//! Area under the ROC curve.
//!
//! The paper uses AUC twice: once over held-out links ranked against sampled
//! negatives (Fig. 10), and once *averaged over retweet tuples*
//! `RT_id = (i, d, U_id, Ū_id)` for diffusion prediction (Fig. 12). Both
//! reduce to the rank-sum (Mann–Whitney) statistic computed here, with the
//! standard mid-rank correction for tied scores.

/// One point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False-positive rate at this threshold.
    pub fpr: f64,
    /// True-positive rate at this threshold.
    pub tpr: f64,
}

/// AUC of `scores` against boolean `labels` via the rank-sum statistic.
///
/// Interpreted exactly as the paper does: "the probability that a randomly
/// chosen true positive link is ranked above a randomly chosen true
/// negative link". Ties contribute 1/2. Returns `None` when either class is
/// empty (AUC is undefined).
pub fn ranking_auc(scored: &[(f64, bool)]) -> Option<f64> {
    let pos = scored.iter().filter(|&&(_, l)| l).count();
    let neg = scored.len() - pos;
    if pos == 0 || neg == 0 {
        return None;
    }
    // Sort ascending by score and assign mid-ranks to ties.
    let mut order: Vec<usize> = (0..scored.len()).collect();
    order.sort_by(|&a, &b| {
        scored[a]
            .0
            .partial_cmp(&scored[b].0)
            .expect("scores must not be NaN")
    });
    let mut rank_sum_pos = 0.0f64;
    let mut idx = 0usize;
    while idx < order.len() {
        let mut j = idx;
        while j + 1 < order.len() && scored[order[j + 1]].0 == scored[order[idx]].0 {
            j += 1;
        }
        // Ranks are 1-based; all tied items share the average rank.
        let mid_rank = (idx + 1 + j + 1) as f64 / 2.0;
        for &item in &order[idx..=j] {
            if scored[item].1 {
                rank_sum_pos += mid_rank;
            }
        }
        idx = j + 1;
    }
    let pos_f = pos as f64;
    let neg_f = neg as f64;
    Some((rank_sum_pos - pos_f * (pos_f + 1.0) / 2.0) / (pos_f * neg_f))
}

/// The averaged AUC of Fig. 12: one AUC per group (retweet tuple), then the
/// unweighted mean over groups where AUC is defined.
///
/// Each group is the scored follower set of one `(publisher, post)` pair:
/// positives are followers who retweeted, negatives those who ignored.
pub fn averaged_auc(groups: &[Vec<(f64, bool)>]) -> Option<f64> {
    let aucs: Vec<f64> = groups.iter().filter_map(|g| ranking_auc(g)).collect();
    if aucs.is_empty() {
        return None;
    }
    Some(aucs.iter().sum::<f64>() / aucs.len() as f64)
}

/// Full ROC curve (thresholds swept from +inf down), starting at (0,0) and
/// ending at (1,1). Exposed for plots; the AUC reported elsewhere comes from
/// [`ranking_auc`].
pub fn roc_curve(scored: &[(f64, bool)]) -> Vec<RocPoint> {
    let pos = scored.iter().filter(|&&(_, l)| l).count() as f64;
    let neg = scored.len() as f64 - pos;
    let mut sorted: Vec<&(f64, bool)> = scored.iter().collect();
    sorted.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores must not be NaN"));
    let mut curve = vec![RocPoint { fpr: 0.0, tpr: 0.0 }];
    let (mut tp, mut fp) = (0.0f64, 0.0f64);
    let mut i = 0usize;
    while i < sorted.len() {
        let threshold = sorted[i].0;
        while i < sorted.len() && sorted[i].0 == threshold {
            if sorted[i].1 {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        curve.push(RocPoint {
            fpr: if neg > 0.0 { fp / neg } else { 0.0 },
            tpr: if pos > 0.0 { tp / pos } else { 0.0 },
        });
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_gives_one() {
        let scored = vec![(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        assert_eq!(ranking_auc(&scored), Some(1.0));
    }

    #[test]
    fn inverted_ranking_gives_zero() {
        let scored = vec![(0.1, true), (0.9, false)];
        assert_eq!(ranking_auc(&scored), Some(0.0));
    }

    #[test]
    fn all_tied_gives_half() {
        let scored = vec![(0.5, true), (0.5, false), (0.5, true), (0.5, false)];
        assert_eq!(ranking_auc(&scored), Some(0.5));
    }

    #[test]
    fn single_class_is_undefined() {
        assert_eq!(ranking_auc(&[(0.5, true)]), None);
        assert_eq!(ranking_auc(&[]), None);
    }

    #[test]
    fn matches_exhaustive_pair_counting() {
        let scored = vec![
            (0.1, false),
            (0.4, true),
            (0.35, true),
            (0.8, false),
            (0.65, true),
            (0.4, false),
        ];
        // Exhaustive: P(pos > neg) + 0.5 P(tie).
        let mut wins = 0.0;
        let mut total = 0.0;
        for &(sp, lp) in &scored {
            if !lp {
                continue;
            }
            for &(sn, ln) in &scored {
                if ln {
                    continue;
                }
                total += 1.0;
                if sp > sn {
                    wins += 1.0;
                } else if sp == sn {
                    wins += 0.5;
                }
            }
        }
        let expect = wins / total;
        let got = ranking_auc(&scored).unwrap();
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn averaged_auc_skips_undefined_groups() {
        let groups = vec![
            vec![(0.9, true), (0.1, false)], // AUC 1
            vec![(0.2, true)],               // undefined
            vec![(0.3, true), (0.7, false)], // AUC 0
        ];
        assert_eq!(averaged_auc(&groups), Some(0.5));
        assert_eq!(averaged_auc(&[]), None);
    }

    #[test]
    fn roc_endpoints() {
        let scored = vec![(0.9, true), (0.5, false), (0.3, true)];
        let curve = roc_curve(&scored);
        assert_eq!(curve.first().unwrap(), &RocPoint { fpr: 0.0, tpr: 0.0 });
        let last = curve.last().unwrap();
        assert!((last.fpr - 1.0).abs() < 1e-12 && (last.tpr - 1.0).abs() < 1e-12);
        // Monotone non-decreasing in both coordinates.
        for w in curve.windows(2) {
            assert!(w[1].fpr >= w[0].fpr && w[1].tpr >= w[0].tpr);
        }
    }
}
