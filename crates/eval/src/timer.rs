//! Wall-clock measurement for the efficiency experiments (Figs. 13–15).

use std::time::{Duration, Instant};

/// A simple stopwatch with lap support.
#[derive(Debug)]
pub struct Stopwatch {
    started: Instant,
    laps: Vec<(String, Duration)>,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// Start timing now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            laps: Vec::new(),
        }
    }

    /// Total elapsed time since construction.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Record a named lap measured from the previous lap (or start).
    pub fn lap(&mut self, name: impl Into<String>) -> Duration {
        let total = self.started.elapsed();
        let prior: Duration = self.laps.iter().map(|(_, d)| *d).sum();
        let lap = total - prior;
        self.laps.push((name.into(), lap));
        lap
    }

    /// All recorded laps.
    pub fn laps(&self) -> &[(String, Duration)] {
        &self.laps
    }
}

/// Time a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Mean per-call latency of `f` over `iters` calls, in **microseconds**.
/// Used for the online-prediction cost comparison (Fig. 15).
pub fn mean_latency_micros(iters: usize, mut f: impl FnMut()) -> f64 {
    assert!(iters > 0);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_sum_to_elapsed() {
        let mut sw = Stopwatch::new();
        std::thread::sleep(Duration::from_millis(2));
        sw.lap("first");
        std::thread::sleep(Duration::from_millis(2));
        sw.lap("second");
        let lap_total: Duration = sw.laps().iter().map(|(_, d)| *d).sum();
        assert!(sw.elapsed() >= lap_total);
        assert_eq!(sw.laps().len(), 2);
        assert!(sw.laps()[0].1 >= Duration::from_millis(1));
    }

    #[test]
    fn timed_returns_result_and_positive_duration() {
        let (value, secs) = timed(|| 2 + 2);
        assert_eq!(value, 4);
        assert!(secs >= 0.0);
    }

    #[test]
    fn latency_is_finite_and_positive() {
        let mut acc = 0u64;
        let micros = mean_latency_micros(1000, || acc = acc.wrapping_add(1));
        assert!(micros.is_finite());
        assert!(micros >= 0.0);
        assert_eq!(acc, 1000);
    }
}
