//! Evaluation substrate for the COLD reproduction.
//!
//! Implements every metric the paper's empirical study (§6) reports:
//!
//! * [`auc`] — ranking AUC with tie handling, ROC curves, and the
//!   *averaged* AUC over retweet tuples used for diffusion prediction
//!   (Fig. 12, following Dietz et al. as the paper cites).
//! * [`perplexity`] — held-out perplexity (Fig. 9).
//! * [`accuracy`] — time-stamp prediction accuracy under a tolerance range
//!   (Fig. 11).
//! * [`nmi`] — normalized mutual information against planted ground truth
//!   (our synthetic-data substitute for the paper's qualitative checks).
//! * [`timer`] — wall-clock measurement for the efficiency experiments
//!   (Figs. 13–15).
//! * [`report`] — serializable experiment result tables rendered to
//!   markdown and JSON, so EXPERIMENTS.md is regenerable.

pub mod accuracy;
pub mod auc;
pub mod nmi;
pub mod perplexity;
pub mod ranking;
pub mod report;
pub mod timer;

pub use accuracy::tolerance_accuracy;
pub use auc::{averaged_auc, ranking_auc, RocPoint};
pub use nmi::normalized_mutual_information;
pub use perplexity::perplexity;
pub use ranking::{mean_reciprocal_rank, precision_at_k};
pub use report::{ExperimentReport, Series};
pub use timer::Stopwatch;
