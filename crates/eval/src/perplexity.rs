//! Held-out perplexity (Fig. 9).
//!
//! `perplexity(D_test) = exp( − Σ_d log p(w_d) / Σ_d N_d )` — the paper's
//! §6.2 definition. Models supply per-post log-likelihoods; this module only
//! does the aggregation, so every model is scored identically.

/// Aggregate per-post `(log_likelihood, token_count)` pairs into perplexity.
///
/// Posts with zero tokens are ignored (they carry no evidence). Returns
/// `None` if no tokens remain or any likelihood is non-finite — a model
/// that assigns zero probability to a held-out post has infinite
/// perplexity, which callers should surface explicitly rather than see as a
/// huge float.
pub fn perplexity(per_post: &[(f64, usize)]) -> Option<f64> {
    let mut log_lik = 0.0f64;
    let mut tokens = 0usize;
    for &(ll, n) in per_post {
        if n == 0 {
            continue;
        }
        if !ll.is_finite() {
            return None;
        }
        log_lik += ll;
        tokens += n;
    }
    if tokens == 0 {
        return None;
    }
    Some((-log_lik / tokens as f64).exp())
}

/// Perplexity of the uniform distribution over a vocabulary of size `v` —
/// the natural upper baseline: any model beating it has learned something.
pub fn uniform_perplexity(v: usize) -> f64 {
    v as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_model_scores_vocab_size() {
        // Two posts of 3 and 5 tokens under uniform p = 1/100 per token.
        let v = 100.0f64;
        let posts = vec![(3.0 * (1.0 / v).ln(), 3), (5.0 * (1.0 / v).ln(), 5)];
        let p = perplexity(&posts).unwrap();
        assert!((p - v).abs() < 1e-9);
        assert_eq!(uniform_perplexity(100), 100.0);
    }

    #[test]
    fn sharper_model_has_lower_perplexity() {
        let sharp = vec![(10.0 * 0.5f64.ln(), 10)];
        let diffuse = vec![(10.0 * 0.01f64.ln(), 10)];
        assert!(perplexity(&sharp).unwrap() < perplexity(&diffuse).unwrap());
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(perplexity(&[]), None);
        assert_eq!(perplexity(&[(0.0, 0)]), None);
        assert_eq!(perplexity(&[(f64::NEG_INFINITY, 5)]), None);
    }

    #[test]
    fn zero_token_posts_are_ignored() {
        let with = vec![(2.0 * 0.1f64.ln(), 2), (f64::NEG_INFINITY, 0)];
        // The infinite-likelihood zero-length post must not poison the score.
        assert!(perplexity(&with).is_some());
    }
}
