//! The Pipeline baseline (§6.1 method 5): MMSB communities first, then one
//! Topics-over-Time model per community on its members' posts.
//!
//! This is the paper's stand-in for "community-level temporal dynamics
//! without interdependence": network and content are exploited *separately*
//! — the weakness Fig. 11 demonstrates.

use crate::mmsb::{Mmsb, MmsbConfig};
use crate::tot::{TopicsOverTime, TotConfig};
use crate::{TextScorer, TimePredictor};
use cold_graph::CsrGraph;
use cold_text::Corpus;

/// Training options for the Pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// MMSB stage options.
    pub mmsb: MmsbConfig,
    /// TOT stage options (applied per community).
    pub tot: TotConfig,
    /// Communities each user is assigned to (paper: the two most probable).
    pub memberships_per_user: usize,
}

impl PipelineConfig {
    /// Paper-style defaults.
    pub fn new(num_communities: usize, num_topics: usize, graph: &CsrGraph) -> Self {
        Self {
            mmsb: MmsbConfig::new(num_communities, graph),
            tot: TotConfig::new(num_topics),
            memberships_per_user: 2,
        }
    }
}

/// A fitted Pipeline model.
pub struct PipelineModel {
    mmsb: Mmsb,
    /// One TOT per community (None when a community has no posts).
    community_tot: Vec<Option<TopicsOverTime>>,
    /// The top communities of each user, from the MMSB stage.
    user_communities: Vec<Vec<usize>>,
}

impl PipelineModel {
    /// Two-stage fit: MMSB on the network, then TOT per community on the
    /// posts of that community's members.
    pub fn fit(corpus: &Corpus, graph: &CsrGraph, config: &PipelineConfig, seed: u64) -> Self {
        let mmsb = Mmsb::fit(graph, &config.mmsb, seed);
        let c = config.mmsb.num_communities;
        let u = corpus.num_users();
        let user_communities: Vec<Vec<usize>> = (0..u)
            .map(|i| mmsb.top_communities(i, config.memberships_per_user))
            .collect();
        // Collect each community's member posts.
        let mut community_posts: Vec<Vec<u32>> = vec![Vec::new(); c];
        for i in 0..u {
            for &cc in &user_communities[i as usize] {
                community_posts[cc].extend_from_slice(corpus.posts_of(i));
            }
        }
        let community_tot: Vec<Option<TopicsOverTime>> = community_posts
            .iter()
            .enumerate()
            .map(|(cc, ids)| {
                if ids.is_empty() {
                    None
                } else {
                    Some(TopicsOverTime::fit(
                        corpus,
                        &config.tot,
                        Some(ids),
                        seed.wrapping_add(1 + cc as u64),
                    ))
                }
            })
            .collect();
        Self {
            mmsb,
            community_tot,
            user_communities,
        }
    }

    /// The MMSB stage (for link prediction / community inspection).
    pub fn mmsb(&self) -> &Mmsb {
        &self.mmsb
    }

    /// The TOT model of one community, if it has any posts.
    pub fn community_model(&self, community: usize) -> Option<&TopicsOverTime> {
        self.community_tot[community].as_ref()
    }

    /// The communities a user was assigned to by the first stage.
    pub fn user_communities(&self, user: u32) -> &[usize] {
        &self.user_communities[user as usize]
    }
}

impl TextScorer for PipelineModel {
    fn post_log_likelihood(&self, author: u32, words: &[u32]) -> f64 {
        // Average over the author's assigned communities' models.
        let models: Vec<&TopicsOverTime> = self.user_communities[author as usize]
            .iter()
            .filter_map(|&cc| self.community_tot[cc].as_ref())
            .collect();
        if models.is_empty() {
            return f64::NEG_INFINITY;
        }
        let terms: Vec<f64> = models
            .iter()
            .map(|m| m.post_log_likelihood(author, words) - (models.len() as f64).ln())
            .collect();
        cold_math::stats::log_sum_exp(&terms)
    }
}

impl TimePredictor for PipelineModel {
    fn predict_time(&self, author: u32, words: &[u32]) -> u16 {
        // Use the author's strongest community that has a model.
        for &cc in &self.user_communities[author as usize] {
            if let Some(m) = &self.community_tot[cc] {
                return m.predict_time(author, words);
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_text::CorpusBuilder;

    /// Sports block posts early with sports words; movie block late.
    fn data() -> (Corpus, CsrGraph) {
        let mut b = CorpusBuilder::new();
        for u in 0..4u32 {
            for rep in 0..6u16 {
                b.push_text(u, rep % 3, &["football", "goal", "match"]);
            }
        }
        for u in 4..8u32 {
            for rep in 0..6u16 {
                b.push_text(u, 7 + rep % 3, &["film", "oscar", "actor"]);
            }
        }
        let corpus = b.build();
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for bb in 0..4u32 {
                if a != bb {
                    edges.push((a, bb));
                    edges.push((a + 4, bb + 4));
                }
            }
        }
        (corpus, CsrGraph::from_edges(8, &edges))
    }

    #[test]
    fn stage_one_separates_blocks() {
        let (corpus, graph) = data();
        let m = PipelineModel::fit(&corpus, &graph, &PipelineConfig::new(2, 2, &graph), 3);
        let hard = m.mmsb().hard_user_communities();
        assert_eq!(hard[0], hard[3]);
        assert_eq!(hard[4], hard[7]);
        assert_ne!(hard[0], hard[4]);
    }

    #[test]
    fn per_community_models_capture_local_timing() {
        let (corpus, graph) = data();
        let m = PipelineModel::fit(&corpus, &graph, &PipelineConfig::new(2, 2, &graph), 2);
        let fb = corpus.vocab().id_of("football").unwrap();
        let film = corpus.vocab().id_of("film").unwrap();
        let t_sports = m.predict_time(0, &[fb, fb]);
        let t_movie = m.predict_time(5, &[film, film]);
        assert!(t_sports < t_movie, "{t_sports} vs {t_movie}");
    }

    #[test]
    fn users_have_assigned_communities() {
        let (corpus, graph) = data();
        let m = PipelineModel::fit(&corpus, &graph, &PipelineConfig::new(3, 2, &graph), 3);
        for i in 0..8 {
            assert_eq!(m.user_communities(i).len(), 2);
        }
    }

    #[test]
    fn likelihood_is_finite_for_active_users() {
        let (corpus, graph) = data();
        let m = PipelineModel::fit(&corpus, &graph, &PipelineConfig::new(2, 2, &graph), 4);
        let fb = corpus.vocab().id_of("football").unwrap();
        assert!(m.post_log_likelihood(0, &[fb]).is_finite());
    }
}
