//! Baseline models from the paper's empirical comparison (§6.1, Table 2).
//!
//! Each baseline is implemented from scratch against the cited papers'
//! generative assumptions, at the granularity the comparison needs:
//!
//! | method | features | tasks (Table 2) | module |
//! |---|---|---|---|
//! | PMTLM  | text+social | topic extraction, community detection | [`pmtlm`] |
//! | MMSB   | social | community detection | [`mmsb`] |
//! | EUTB   | text+social+time | topic extraction, temporal modeling | [`eutb`] |
//! | TOT    | text+time | temporal modeling (Pipeline building block) | [`tot`] |
//! | Pipeline | text+social+time | topic/community/temporal (two-stage) | [`pipeline`] |
//! | WTM    | text+social | diffusion prediction | [`wtm`] |
//! | TI     | text+social | topic extraction, diffusion prediction | [`ti`] |
//!
//! The capability traits ([`LinkScorer`], [`TextScorer`], [`TimePredictor`],
//! [`DiffusionScorer`]) encode exactly which tasks each method supports;
//! the Table 2 integration test asserts the matrix.

// Latent-variable code indexes parallel flat arrays by semantically
// meaningful ids (community c, topic k, user i); iterator rewrites of
// those loops obscure the math they mirror.
#![allow(clippy::needless_range_loop)]

pub mod eutb;
pub mod lda;
pub mod mmsb;
pub mod pipeline;
pub mod pmtlm;
pub mod ti;
pub mod tot;
pub mod wtm;

pub use eutb::Eutb;
pub use mmsb::Mmsb;
pub use pipeline::PipelineModel;
pub use pmtlm::Pmtlm;
pub use ti::TopicInfluence;
pub use tot::TopicsOverTime;
pub use wtm::WhomToMention;

/// Can score the probability of a directed link `(i, i')`.
pub trait LinkScorer {
    /// Relative probability of the link `i → i'` (higher = more likely).
    fn link_score(&self, i: u32, i2: u32) -> f64;
}

/// Can score held-out text, for perplexity evaluation.
pub trait TextScorer {
    /// `ln p(w_d | author)` of a held-out post.
    fn post_log_likelihood(&self, author: u32, words: &[u32]) -> f64;
}

/// Can predict the time slice of a held-out post.
pub trait TimePredictor {
    /// Most likely time slice of a post given its words and author.
    fn predict_time(&self, author: u32, words: &[u32]) -> u16;
}

/// Can score the probability that a post spreads from `i` to `i'`.
pub trait DiffusionScorer {
    /// Relative diffusion probability of post `words` from `i` to `i'`.
    fn diffusion_score(&self, publisher: u32, consumer: u32, words: &[u32]) -> f64;
}
