//! Topic-level Influence (Liu et al. — CIKM 2010), the paper's strongest
//! diffusion-prediction baseline (§6.1 method 7).
//!
//! TI learns **per-topic user-to-user influence** directly from historical
//! interactions: topics come from an LDA-style model, and the influence of
//! `i` on `i'` at topic `k` is estimated from how often `i'` retweeted `i`
//! on that topic. Prediction combines **direct** and **indirect (two-hop)**
//! influence — walking a user's multi-hop friend set is what makes TI's
//! online prediction expensive (Fig. 15), and per-pair count estimation
//! from sparse individual records is what caps its accuracy (Fig. 12).

use crate::lda::{UserLda, UserLdaConfig};
use crate::DiffusionScorer;
use cold_data::RetweetTuple;
use cold_text::Corpus;
use std::collections::HashMap;

/// Training options for TI.
#[derive(Debug, Clone)]
pub struct TiConfig {
    /// LDA topic-model options.
    pub lda: UserLdaConfig,
    /// Additive smoothing on the per-topic influence counts.
    pub smoothing: f64,
    /// Weight of the indirect (two-hop) influence term.
    pub indirect_weight: f64,
}

impl TiConfig {
    /// Defaults following the cited paper's spirit.
    pub fn new(num_topics: usize) -> Self {
        Self {
            lda: UserLdaConfig::new(num_topics),
            smoothing: 0.01,
            indirect_weight: 0.3,
        }
    }
}

/// A fitted TI model.
pub struct TopicInfluence {
    lda: UserLda,
    /// Per-topic influence edges: `influence[k][(i, j)]` = normalized count
    /// of `j` retweeting `i` on topic `k`.
    influence: Vec<HashMap<(u32, u32), f64>>,
    /// Per-topic out-adjacency of the influence graph, for the two-hop walk:
    /// `out_edges[k][i]` = list of `(m, strength)`.
    out_edges: Vec<HashMap<u32, Vec<(u32, f64)>>>,
    indirect_weight: f64,
}

impl TopicInfluence {
    /// Fit: LDA on the corpus, then per-topic influence counts from the
    /// *training* cascades (each training post is attributed to its most
    /// likely topic).
    pub fn fit(
        corpus: &Corpus,
        training_cascades: &[RetweetTuple],
        config: &TiConfig,
        seed: u64,
    ) -> Self {
        let lda = UserLda::fit(corpus, &config.lda, seed);
        let k = lda.num_topics();
        let mut counts: Vec<HashMap<(u32, u32), f64>> = vec![HashMap::new(); k];
        let mut per_pub_total: Vec<HashMap<u32, f64>> = vec![HashMap::new(); k];
        for tuple in training_cascades {
            let post = corpus.post(tuple.post);
            let topics = lda.infer_topics(tuple.publisher, &post.words);
            let kk = argmax(&topics);
            for &r in &tuple.retweeters {
                *counts[kk].entry((tuple.publisher, r)).or_insert(0.0) += 1.0;
                *per_pub_total[kk].entry(tuple.publisher).or_insert(0.0) += 1.0;
            }
        }
        // Normalize per publisher-topic so influence is a propagation
        // probability estimate; build the out-adjacency for two-hop walks.
        let mut influence: Vec<HashMap<(u32, u32), f64>> = vec![HashMap::new(); k];
        let mut out_edges: Vec<HashMap<u32, Vec<(u32, f64)>>> = vec![HashMap::new(); k];
        for kk in 0..k {
            for (&(i, j), &cnt) in &counts[kk] {
                let total = per_pub_total[kk].get(&i).copied().unwrap_or(1.0);
                let strength = (cnt + config.smoothing) / (total + 1.0);
                influence[kk].insert((i, j), strength);
                out_edges[kk].entry(i).or_default().push((j, strength));
            }
        }
        Self {
            lda,
            influence,
            out_edges,
            indirect_weight: config.indirect_weight,
        }
    }

    /// The underlying topic model.
    pub fn lda(&self) -> &UserLda {
        &self.lda
    }

    /// Direct influence of `i` on `j` at `topic`.
    pub fn direct_influence(&self, topic: usize, i: u32, j: u32) -> f64 {
        self.influence[topic].get(&(i, j)).copied().unwrap_or(0.0)
    }

    /// Indirect influence through every intermediate `m`: `Σ_m i→m · m→j`.
    /// This walks the full out-neighbourhood of `i` per query — the
    /// multi-hop cost the paper's Fig. 15 highlights.
    pub fn indirect_influence(&self, topic: usize, i: u32, j: u32) -> f64 {
        let Some(mids) = self.out_edges[topic].get(&i) else {
            return 0.0;
        };
        mids.iter()
            .map(|&(m, s1)| s1 * self.direct_influence(topic, m, j))
            .sum()
    }
}

fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

impl DiffusionScorer for TopicInfluence {
    fn diffusion_score(&self, publisher: u32, consumer: u32, words: &[u32]) -> f64 {
        let topics = self.lda.infer_topics(publisher, words);
        topics
            .iter()
            .enumerate()
            .map(|(kk, &pk)| {
                pk * (self.direct_influence(kk, publisher, consumer)
                    + self.indirect_weight * self.indirect_influence(kk, publisher, consumer))
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_text::CorpusBuilder;

    fn setup() -> (Corpus, Vec<RetweetTuple>) {
        let mut b = CorpusBuilder::new();
        for rep in 0..6u16 {
            b.push_text(0, rep % 2, &["football", "goal", "match"]);
            b.push_text(1, rep % 2, &["film", "oscar", "actor"]);
        }
        b.push_text(0, 0, &["football", "goal"]); // post 12 (sports)
        b.push_text(0, 0, &["film", "oscar"]); // post 13 (movie, same author)
        let corpus = b.build();
        let cascades = vec![
            // User 2 retweets user 0's sports content; user 3 retweets the
            // movie content.
            RetweetTuple {
                publisher: 0,
                post: 12,
                retweeters: vec![2],
                ignorers: vec![3],
            },
            RetweetTuple {
                publisher: 0,
                post: 13,
                retweeters: vec![3],
                ignorers: vec![2],
            },
        ];
        (corpus, cascades)
    }

    #[test]
    fn influence_is_topic_sensitive() {
        let (corpus, cascades) = setup();
        let mut cfg = TiConfig::new(2);
        cfg.lda.alpha = 0.1;
        let m = TopicInfluence::fit(&corpus, &cascades, &cfg, 1);
        let fb = corpus.vocab().id_of("football").unwrap();
        let film = corpus.vocab().id_of("film").unwrap();
        // On a sports post, user 2 is the better spread candidate; on a
        // movie post, user 3 is.
        let s2_sports = m.diffusion_score(0, 2, &[fb, fb]);
        let s3_sports = m.diffusion_score(0, 3, &[fb, fb]);
        assert!(s2_sports > s3_sports, "{s2_sports} vs {s3_sports}");
        let s2_movie = m.diffusion_score(0, 2, &[film, film]);
        let s3_movie = m.diffusion_score(0, 3, &[film, film]);
        assert!(s3_movie > s2_movie, "{s3_movie} vs {s2_movie}");
    }

    #[test]
    fn unseen_pairs_score_zero_direct() {
        let (corpus, cascades) = setup();
        let m = TopicInfluence::fit(&corpus, &cascades, &TiConfig::new(2), 2);
        for kk in 0..2 {
            assert_eq!(m.direct_influence(kk, 1, 2), 0.0);
        }
    }

    #[test]
    fn indirect_influence_chains_two_hops() {
        let mut b = CorpusBuilder::new();
        b.push_text(0, 0, &["football", "goal"]);
        b.push_text(1, 0, &["football", "match"]);
        let corpus = b.build();
        // 0 influences 1, and 1 influences 2 — so 0 has indirect influence
        // on 2 even with no direct interaction.
        let cascades = vec![
            RetweetTuple {
                publisher: 0,
                post: 0,
                retweeters: vec![1],
                ignorers: vec![],
            },
            RetweetTuple {
                publisher: 1,
                post: 1,
                retweeters: vec![2],
                ignorers: vec![],
            },
        ];
        let m = TopicInfluence::fit(&corpus, &cascades, &TiConfig::new(1), 3);
        assert_eq!(m.direct_influence(0, 0, 2), 0.0);
        assert!(m.indirect_influence(0, 0, 2) > 0.0);
        let fb = corpus.vocab().id_of("football").unwrap();
        assert!(m.diffusion_score(0, 2, &[fb]) > 0.0);
    }
}
