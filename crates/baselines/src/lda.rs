//! A user-level latent Dirichlet allocation variant shared by the TI
//! baseline (and available to extensions).
//!
//! Follows the micro-blog convention the paper adopts (§3.3): each *post*
//! carries a single latent topic drawn from its **author's** topic mixture,
//! and words come from the topic's word distribution. Collapsed Gibbs.

use crate::TextScorer;
use cold_math::categorical::sample_log_categorical;
use cold_math::rng::seeded_rng;
use cold_math::special::log_ascending_factorial;
use cold_math::stats::log_sum_exp;
use cold_text::Corpus;
use rand::Rng as _;

/// Training options for user-level LDA.
#[derive(Debug, Clone)]
pub struct UserLdaConfig {
    /// Number of topics `K`.
    pub num_topics: usize,
    /// Dirichlet prior on user topic mixtures.
    pub alpha: f64,
    /// Dirichlet prior on topic word distributions.
    pub beta: f64,
    /// Gibbs sweeps.
    pub iterations: usize,
}

impl UserLdaConfig {
    /// Standard smoothing defaults.
    pub fn new(num_topics: usize) -> Self {
        Self {
            num_topics,
            alpha: 50.0 / num_topics as f64,
            beta: 0.01,
            iterations: 100,
        }
    }
}

/// A fitted user-level LDA model.
#[derive(Debug, Clone)]
pub struct UserLda {
    num_topics: usize,
    vocab_size: usize,
    /// Per-user topic mixtures, row-major `U×K`.
    theta: Vec<f64>,
    /// Topic-word distributions, row-major `K×V`.
    phi: Vec<f64>,
    /// Hardened topic of each training post.
    post_topics: Vec<u32>,
}

impl UserLda {
    /// Fit on a corpus by collapsed Gibbs.
    pub fn fit(corpus: &Corpus, config: &UserLdaConfig, seed: u64) -> Self {
        let k = config.num_topics;
        let v = corpus.vocab_size();
        let u = corpus.num_users() as usize;
        let posts = corpus.posts();
        let mut rng = seeded_rng(seed);

        let multisets: Vec<Vec<(u32, u32)>> = posts.iter().map(|p| p.word_multiset()).collect();
        let lens: Vec<u32> = posts.iter().map(|p| p.len() as u32).collect();
        let mut z: Vec<u32> = (0..posts.len())
            .map(|_| rng.gen_range(0..k) as u32)
            .collect();
        let mut n_uk = vec![0u32; u * k];
        let mut n_kv = vec![0u32; k * v];
        let mut n_k = vec![0u32; k];
        for (d, p) in posts.iter().enumerate() {
            let kk = z[d] as usize;
            n_uk[p.author as usize * k + kk] += 1;
            for &(w, cnt) in &multisets[d] {
                n_kv[kk * v + w as usize] += cnt;
            }
            n_k[kk] += lens[d];
        }

        let vbeta = v as f64 * config.beta;
        let mut logw = vec![0.0f64; k];
        for _ in 0..config.iterations {
            for (d, p) in posts.iter().enumerate() {
                let i = p.author as usize;
                let old = z[d] as usize;
                n_uk[i * k + old] -= 1;
                for &(w, cnt) in &multisets[d] {
                    n_kv[old * v + w as usize] -= cnt;
                }
                n_k[old] -= lens[d];
                for (kk, lw) in logw.iter_mut().enumerate() {
                    let mut acc = (n_uk[i * k + kk] as f64 + config.alpha).ln();
                    for &(w, cnt) in &multisets[d] {
                        acc += log_ascending_factorial(
                            n_kv[kk * v + w as usize] as f64 + config.beta,
                            cnt,
                        );
                    }
                    acc -= log_ascending_factorial(n_k[kk] as f64 + vbeta, lens[d]);
                    *lw = acc;
                }
                let new = sample_log_categorical(&mut rng, &logw).expect("finite mass");
                z[d] = new as u32;
                n_uk[i * k + new] += 1;
                for &(w, cnt) in &multisets[d] {
                    n_kv[new * v + w as usize] += cnt;
                }
                n_k[new] += lens[d];
            }
        }

        let mut theta = vec![0.0f64; u * k];
        for i in 0..u {
            let total: u32 = n_uk[i * k..(i + 1) * k].iter().sum();
            for kk in 0..k {
                theta[i * k + kk] = (n_uk[i * k + kk] as f64 + config.alpha)
                    / (total as f64 + k as f64 * config.alpha);
            }
        }
        let mut phi = vec![0.0f64; k * v];
        for kk in 0..k {
            for vv in 0..v {
                phi[kk * v + vv] =
                    (n_kv[kk * v + vv] as f64 + config.beta) / (n_k[kk] as f64 + vbeta);
            }
        }
        Self {
            num_topics: k,
            vocab_size: v,
            theta,
            phi,
            post_topics: z,
        }
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// `θ_i` — user `i`'s topic mixture.
    pub fn user_topics(&self, user: u32) -> &[f64] {
        &self.theta[user as usize * self.num_topics..(user as usize + 1) * self.num_topics]
    }

    /// `φ_k` — topic `k`'s word distribution.
    pub fn topic_words(&self, topic: usize) -> &[f64] {
        &self.phi[topic * self.vocab_size..(topic + 1) * self.vocab_size]
    }

    /// Hardened training-post topics (TI derives per-topic interaction
    /// counts from these).
    pub fn post_topics(&self) -> &[u32] {
        &self.post_topics
    }

    /// Posterior topic distribution of an arbitrary post.
    pub fn infer_topics(&self, author: u32, words: &[u32]) -> Vec<f64> {
        let theta = self.user_topics(author);
        let mut logw = vec![0.0f64; self.num_topics];
        for (kk, lw) in logw.iter_mut().enumerate() {
            let phi = self.topic_words(kk);
            let mut acc = theta[kk].max(f64::MIN_POSITIVE).ln();
            for &w in words {
                acc += phi[w as usize].max(f64::MIN_POSITIVE).ln();
            }
            *lw = acc;
        }
        let lse = log_sum_exp(&logw);
        logw.iter().map(|&lw| (lw - lse).exp()).collect()
    }
}

impl TextScorer for UserLda {
    fn post_log_likelihood(&self, author: u32, words: &[u32]) -> f64 {
        let theta = self.user_topics(author);
        let terms: Vec<f64> = (0..self.num_topics)
            .map(|kk| {
                let phi = self.topic_words(kk);
                let mut acc = theta[kk].max(f64::MIN_POSITIVE).ln();
                for &w in words {
                    acc += phi[w as usize].max(f64::MIN_POSITIVE).ln();
                }
                acc
            })
            .collect();
        log_sum_exp(&terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_text::CorpusBuilder;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        for rep in 0..8u16 {
            b.push_text(0, rep % 3, &["football", "goal", "match"]);
            b.push_text(1, rep % 3, &["film", "oscar", "actor"]);
        }
        b.push_text(2, 0, &["football", "film"]);
        b.build()
    }

    #[test]
    fn separates_topics_and_user_mixtures() {
        let c = corpus();
        let lda = UserLda::fit(
            &c,
            &UserLdaConfig {
                alpha: 0.1,
                ..UserLdaConfig::new(2)
            },
            1,
        );
        let fb = c.vocab().id_of("football").unwrap() as usize;
        let film = c.vocab().id_of("film").unwrap() as usize;
        let k_fb = if lda.topic_words(0)[fb] > lda.topic_words(1)[fb] {
            0
        } else {
            1
        };
        let k_film = 1 - k_fb;
        assert!(lda.topic_words(k_film)[film] > lda.topic_words(k_fb)[film]);
        // User 0 prefers the football topic, user 1 the film topic.
        assert!(lda.user_topics(0)[k_fb] > lda.user_topics(0)[k_film]);
        assert!(lda.user_topics(1)[k_film] > lda.user_topics(1)[k_fb]);
    }

    #[test]
    fn inferred_topics_normalize_and_discriminate() {
        let c = corpus();
        let lda = UserLda::fit(
            &c,
            &UserLdaConfig {
                alpha: 0.1,
                ..UserLdaConfig::new(2)
            },
            2,
        );
        let fb = c.vocab().id_of("football").unwrap();
        let post = lda.infer_topics(0, &[fb, fb]);
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(post.iter().cloned().fold(0.0, f64::max) > 0.7);
    }

    #[test]
    fn likelihood_prefers_topical_text() {
        let c = corpus();
        let lda = UserLda::fit(
            &c,
            &UserLdaConfig {
                alpha: 0.1,
                ..UserLdaConfig::new(2)
            },
            3,
        );
        let fb = c.vocab().id_of("football").unwrap();
        let film = c.vocab().id_of("film").unwrap();
        assert!(
            lda.post_log_likelihood(0, &[fb]) > lda.post_log_likelihood(0, &[film]),
            "sports user should prefer sports words"
        );
    }

    #[test]
    fn post_topics_cover_training_set() {
        let c = corpus();
        let lda = UserLda::fit(&c, &UserLdaConfig::new(3), 4);
        assert_eq!(lda.post_topics().len(), c.num_posts());
        assert!(lda.post_topics().iter().all(|&z| (z as usize) < 3));
    }
}
