//! Mixed Membership Stochastic Blockmodel (Airoldi et al., JMLR 2008) —
//! the paper's network-only community baseline (§6.1 method 2).
//!
//! Unlike COLD's network component (which, following §3.3, models only
//! positive links and folds the negatives into a Beta prior), the original
//! MMSB observes **both** presence and absence of links — the absent pairs
//! provide the repulsion that makes network-only community detection
//! possible at all. Modeling all `U(U−1)` absences is quadratic, so we use
//! the standard negative-subsampling treatment: a configurable multiple of
//! the positive-link count is drawn uniformly from the absent pairs and
//! included as observed zeros in the collapsed Gibbs sweep.

use crate::LinkScorer;
use cold_graph::sampling::sample_negative_links;
use cold_graph::CsrGraph;
use cold_math::categorical::sample_categorical;
use cold_math::rng::seeded_rng;
use rand::Rng as _;

/// Training options for MMSB.
#[derive(Debug, Clone)]
pub struct MmsbConfig {
    /// Number of communities `C`.
    pub num_communities: usize,
    /// Dirichlet prior on user memberships.
    pub rho: f64,
    /// Beta pseudo-count for absent links.
    pub lambda0: f64,
    /// Beta pseudo-count for present links.
    pub lambda1: f64,
    /// Observed negatives per observed positive (subsampling ratio).
    pub negative_ratio: f64,
    /// Gibbs sweeps.
    pub iterations: usize,
}

impl MmsbConfig {
    /// Standard defaults.
    pub fn new(num_communities: usize, _graph: &CsrGraph) -> Self {
        Self {
            num_communities,
            rho: 0.5,
            lambda0: 0.1,
            lambda1: 0.1,
            negative_ratio: 3.0,
            iterations: 300,
        }
    }
}

/// A fitted MMSB model.
#[derive(Debug, Clone)]
pub struct Mmsb {
    num_communities: usize,
    /// `π`, row-major `U×C`.
    pi: Vec<f64>,
    /// `B` (blockmodel link rates), row-major `C×C`.
    block: Vec<f64>,
}

impl Mmsb {
    /// Fit by collapsed Gibbs on the positive links of `graph` plus a
    /// subsample of negative pairs.
    pub fn fit(graph: &CsrGraph, config: &MmsbConfig, seed: u64) -> Self {
        let c = config.num_communities;
        assert!(c >= 1, "need at least one community");
        let u = graph.num_nodes() as usize;
        let mut rng = seeded_rng(seed);

        // Observed pairs: positives then sampled negatives.
        let positives: Vec<(u32, u32)> = graph.edges().collect();
        let wanted_neg = ((positives.len() as f64 * config.negative_ratio) as usize)
            .min(graph.num_negative_links() as usize);
        let negatives = if wanted_neg > 0 && u >= 2 {
            sample_negative_links(&mut rng, graph, wanted_neg)
        } else {
            Vec::new()
        };
        let num_pos = positives.len();
        let pairs: Vec<(u32, u32)> = positives.into_iter().chain(negatives).collect();

        let mut src = vec![0u32; pairs.len()];
        let mut dst = vec![0u32; pairs.len()];
        let mut n_ic = vec![0u32; u * c];
        let mut n1_cc = vec![0u32; c * c]; // positive links per cell
        let mut n0_cc = vec![0u32; c * c]; // observed negatives per cell
        let user_comm: Vec<u32> = (0..u).map(|_| rng.gen_range(0..c) as u32).collect();
        for (e, &(i, j)) in pairs.iter().enumerate() {
            src[e] = user_comm[i as usize];
            dst[e] = user_comm[j as usize];
            n_ic[i as usize * c + src[e] as usize] += 1;
            n_ic[j as usize * c + dst[e] as usize] += 1;
            let cell = src[e] as usize * c + dst[e] as usize;
            if e < num_pos {
                n1_cc[cell] += 1;
            } else {
                n0_cc[cell] += 1;
            }
        }

        let mut weights = vec![0.0f64; c * c];
        for _ in 0..config.iterations {
            for (e, &(i, j)) in pairs.iter().enumerate() {
                let positive = e < num_pos;
                let old_cell = src[e] as usize * c + dst[e] as usize;
                n_ic[i as usize * c + src[e] as usize] -= 1;
                n_ic[j as usize * c + dst[e] as usize] -= 1;
                if positive {
                    n1_cc[old_cell] -= 1;
                } else {
                    n0_cc[old_cell] -= 1;
                }
                for s in 0..c {
                    let mi = n_ic[i as usize * c + s] as f64 + config.rho;
                    for s2 in 0..c {
                        let mj = n_ic[j as usize * c + s2] as f64 + config.rho;
                        let n1 = n1_cc[s * c + s2] as f64;
                        let n0 = n0_cc[s * c + s2] as f64;
                        let rate = if positive {
                            (n1 + config.lambda1) / (n1 + n0 + config.lambda0 + config.lambda1)
                        } else {
                            (n0 + config.lambda0) / (n1 + n0 + config.lambda0 + config.lambda1)
                        };
                        weights[s * c + s2] = mi * mj * rate;
                    }
                }
                let cell = sample_categorical(&mut rng, &weights).expect("positive mass");
                src[e] = (cell / c) as u32;
                dst[e] = (cell % c) as u32;
                n_ic[i as usize * c + src[e] as usize] += 1;
                n_ic[j as usize * c + dst[e] as usize] += 1;
                if positive {
                    n1_cc[cell] += 1;
                } else {
                    n0_cc[cell] += 1;
                }
            }
        }

        // Point estimates.
        let mut pi = vec![0.0f64; u * c];
        for i in 0..u {
            let total: u32 = n_ic[i * c..(i + 1) * c].iter().sum();
            for cc in 0..c {
                pi[i * c + cc] =
                    (n_ic[i * c + cc] as f64 + config.rho) / (total as f64 + c as f64 * config.rho);
            }
        }
        let mut block = vec![0.0f64; c * c];
        for cell in 0..c * c {
            let n1 = n1_cc[cell] as f64;
            let n0 = n0_cc[cell] as f64;
            block[cell] = (n1 + config.lambda1) / (n1 + n0 + config.lambda0 + config.lambda1);
        }
        Self {
            num_communities: c,
            pi,
            block,
        }
    }

    /// Number of communities.
    pub fn num_communities(&self) -> usize {
        self.num_communities
    }

    /// `π_i` for user `i`.
    pub fn user_memberships(&self, user: u32) -> &[f64] {
        let c = self.num_communities;
        &self.pi[user as usize * c..(user as usize + 1) * c]
    }

    /// Hardened (arg-max) community per user.
    pub fn hard_user_communities(&self) -> Vec<u32> {
        let u = self.pi.len() / self.num_communities;
        (0..u as u32)
            .map(|i| {
                self.user_memberships(i)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(c, _)| c as u32)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// The user's `n` strongest communities (used by the Pipeline baseline,
    /// which assigns each user to her two most probable communities).
    pub fn top_communities(&self, user: u32, n: usize) -> Vec<usize> {
        let row = self.user_memberships(user);
        let mut idx: Vec<usize> = (0..row.len()).collect();
        idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("finite"));
        idx.truncate(n);
        idx
    }
}

impl LinkScorer for Mmsb {
    fn link_score(&self, i: u32, i2: u32) -> f64 {
        let c = self.num_communities;
        let pi_i = self.user_memberships(i);
        let pi_j = self.user_memberships(i2);
        let mut acc = 0.0;
        for s in 0..c {
            for s2 in 0..c {
                acc += pi_i[s] * pi_j[s2] * self.block[s * c + s2];
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two dense blocks of 10 users with a couple of weak ties.
    fn blocks() -> CsrGraph {
        let mut edges = Vec::new();
        for a in 0..10u32 {
            for b in 0..10u32 {
                if a != b {
                    edges.push((a, b));
                    edges.push((a + 10, b + 10));
                }
            }
        }
        edges.push((0, 10));
        edges.push((15, 5));
        CsrGraph::from_edges(20, &edges)
    }

    #[test]
    fn memberships_are_distributions() {
        let g = blocks();
        let m = Mmsb::fit(&g, &MmsbConfig::new(2, &g), 1);
        for i in 0..20 {
            let pi = m.user_memberships(i);
            assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn separates_two_blocks() {
        let g = blocks();
        let m = Mmsb::fit(&g, &MmsbConfig::new(2, &g), 2);
        let hard = m.hard_user_communities();
        let first = hard[0];
        assert!(hard[..10].iter().all(|&c| c == first), "{hard:?}");
        assert!(hard[10..].iter().all(|&c| c != first), "{hard:?}");
    }

    #[test]
    fn link_scores_favor_intra_block_pairs() {
        let g = blocks();
        let m = Mmsb::fit(&g, &MmsbConfig::new(2, &g), 3);
        let intra = m.link_score(0, 2);
        let inter = m.link_score(0, 12);
        assert!(intra > inter, "{intra} vs {inter}");
    }

    #[test]
    fn top_communities_is_sorted_prefix() {
        let g = blocks();
        let m = Mmsb::fit(&g, &MmsbConfig::new(3, &g), 4);
        let top = m.top_communities(0, 2);
        assert_eq!(top.len(), 2);
        let row = m.user_memberships(0);
        assert!(row[top[0]] >= row[top[1]]);
    }
}
