//! Whom To Mention (Wang et al. — WWW 2013), a feature-based diffusion
//! ranking baseline (§6.1 method 6).
//!
//! WTM ranks candidate spreaders of a message by combining three signals:
//! **user interest match** (content similarity between the message and the
//! candidate's posting history), **content-dependent user relationship**
//! (historical interaction strength), and **user influence** (audience
//! size). There is no topic model — interest match is TF-IDF cosine,
//! computed per candidate at query time, which is exactly why WTM's online
//! prediction is slow in Fig. 15.

use crate::DiffusionScorer;
use cold_data::RetweetTuple;
use cold_graph::CsrGraph;
use cold_text::tfidf::TfIdfModel;
use cold_text::Corpus;
use std::collections::HashMap;

/// Feature weights for the WTM ranking score.
#[derive(Debug, Clone, Copy)]
pub struct WtmWeights {
    /// Weight of the TF-IDF interest-match feature.
    pub interest: f64,
    /// Weight of the historical-relationship feature.
    pub relationship: f64,
    /// Weight of the audience-size influence feature.
    pub influence: f64,
}

impl Default for WtmWeights {
    fn default() -> Self {
        Self {
            interest: 0.4,
            relationship: 0.4,
            influence: 0.2,
        }
    }
}

/// A fitted WTM ranker.
pub struct WhomToMention {
    tfidf: TfIdfModel,
    /// Historical retweet counts `(publisher, retweeter) -> count`,
    /// accumulated from the training cascades.
    relationship: HashMap<(u32, u32), f64>,
    /// Maximum relationship count, for normalization.
    max_relationship: f64,
    /// Audience size (out-degree) per user, normalized by the maximum.
    influence: Vec<f64>,
    weights: WtmWeights,
}

impl WhomToMention {
    /// Fit the feature extractors on the corpus, graph and *training*
    /// cascades (held-out tuples must not leak into the relationship
    /// feature).
    pub fn fit(
        corpus: &Corpus,
        graph: &CsrGraph,
        training_cascades: &[RetweetTuple],
        weights: WtmWeights,
    ) -> Self {
        let tfidf = TfIdfModel::fit(corpus);
        let mut relationship: HashMap<(u32, u32), f64> = HashMap::new();
        for tuple in training_cascades {
            for &r in &tuple.retweeters {
                *relationship.entry((tuple.publisher, r)).or_insert(0.0) += 1.0;
            }
        }
        let max_relationship = relationship.values().cloned().fold(1.0f64, f64::max);
        let max_degree = (0..graph.num_nodes())
            .map(|u| graph.out_degree(u))
            .max()
            .unwrap_or(1)
            .max(1) as f64;
        let influence: Vec<f64> = (0..graph.num_nodes())
            .map(|u| graph.out_degree(u) as f64 / max_degree)
            .collect();
        Self {
            tfidf,
            relationship,
            max_relationship,
            influence,
            weights,
        }
    }

    /// The interest-match feature alone (exposed for analysis).
    pub fn interest_match(&self, consumer: u32, words: &[u32]) -> f64 {
        let msg = self.tfidf.vectorize(words);
        self.tfidf.user_profile(consumer).cosine(&msg)
    }

    /// The relationship feature alone.
    pub fn relationship_strength(&self, publisher: u32, consumer: u32) -> f64 {
        self.relationship
            .get(&(publisher, consumer))
            .copied()
            .unwrap_or(0.0)
            / self.max_relationship
    }
}

impl DiffusionScorer for WhomToMention {
    fn diffusion_score(&self, publisher: u32, consumer: u32, words: &[u32]) -> f64 {
        let interest = self.interest_match(consumer, words);
        let relationship = self.relationship_strength(publisher, consumer);
        let influence = self
            .influence
            .get(consumer as usize)
            .copied()
            .unwrap_or(0.0);
        self.weights.interest * interest
            + self.weights.relationship * relationship
            + self.weights.influence * influence
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_text::CorpusBuilder;

    fn setup() -> (Corpus, CsrGraph, Vec<RetweetTuple>) {
        let mut b = CorpusBuilder::new();
        b.push_text(0, 0, &["football", "goal", "match"]);
        b.push_text(1, 0, &["football", "league", "goal"]);
        b.push_text(2, 1, &["film", "oscar", "actor"]);
        b.push_text(3, 1, &["weather", "rain"]);
        let corpus = b.build();
        let graph = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let cascades = vec![RetweetTuple {
            publisher: 0,
            post: 0,
            retweeters: vec![1],
            ignorers: vec![2, 3],
        }];
        (corpus, graph, cascades)
    }

    #[test]
    fn interest_match_prefers_similar_history() {
        let (corpus, graph, cascades) = setup();
        let m = WhomToMention::fit(&corpus, &graph, &cascades, WtmWeights::default());
        let fb = corpus.vocab().id_of("football").unwrap();
        let goal = corpus.vocab().id_of("goal").unwrap();
        assert!(m.interest_match(1, &[fb, goal]) > m.interest_match(2, &[fb, goal]));
    }

    #[test]
    fn relationship_reflects_training_cascades() {
        let (corpus, graph, cascades) = setup();
        let m = WhomToMention::fit(&corpus, &graph, &cascades, WtmWeights::default());
        assert_eq!(m.relationship_strength(0, 1), 1.0);
        assert_eq!(m.relationship_strength(0, 2), 0.0);
    }

    #[test]
    fn combined_score_ranks_engaged_similar_user_first() {
        let (corpus, graph, cascades) = setup();
        let m = WhomToMention::fit(&corpus, &graph, &cascades, WtmWeights::default());
        let fb = corpus.vocab().id_of("football").unwrap();
        let s1 = m.diffusion_score(0, 1, &[fb]);
        let s3 = m.diffusion_score(0, 3, &[fb]);
        assert!(s1 > s3, "{s1} vs {s3}");
    }

    #[test]
    fn score_is_bounded() {
        let (corpus, graph, cascades) = setup();
        let m = WhomToMention::fit(&corpus, &graph, &cascades, WtmWeights::default());
        let fb = corpus.vocab().id_of("football").unwrap();
        for j in 0..4 {
            let s = m.diffusion_score(0, j, &[fb]);
            assert!((0.0..=1.0 + 1e-9).contains(&s));
        }
    }
}
