//! Enhanced User-Temporal model with Burst-weighted smoothing (Yin et al. —
//! ICDE 2013), the paper's strongest temporal baseline (§6.1 method 3).
//!
//! EUTB models topic distributions **for both users and time stamps** and
//! couples them when explaining a post. We implement a product-of-experts
//! collapsed Gibbs: a post's topic conditional multiplies its author's and
//! its time slice's topic affinities (plus the word evidence), and the
//! drawn topic updates *both* mixtures. (A free user-vs-time switch — the
//! cited paper's other formulation — degenerates on short-post corpora:
//! user mixtures are strictly more predictive, so the time branch starves;
//! the product form keeps both trained, which is what the time-stamp
//! prediction task needs.) Burst-weighted smoothing then pulls quiet
//! slices toward their neighbours, weighted by relative post volume.

use crate::{TextScorer, TimePredictor};
use cold_math::categorical::sample_log_categorical;
use cold_math::rng::seeded_rng;
use cold_math::special::log_ascending_factorial;
use cold_math::stats::log_sum_exp;
use cold_text::Corpus;
use rand::Rng as _;

/// Training options for EUTB.
#[derive(Debug, Clone)]
pub struct EutbConfig {
    /// Number of topics `K`.
    pub num_topics: usize,
    /// Dirichlet prior on user and time mixtures.
    pub alpha: f64,
    /// Dirichlet prior on topic word distributions.
    pub beta: f64,
    /// Strength of burst-weighted neighbour smoothing for time mixtures.
    pub smoothing: f64,
    /// Gibbs sweeps.
    pub iterations: usize,
}

impl EutbConfig {
    /// Defaults following the cited paper's setup.
    pub fn new(num_topics: usize) -> Self {
        Self {
            num_topics,
            alpha: 50.0 / num_topics as f64,
            beta: 0.01,
            smoothing: 0.3,
            iterations: 100,
        }
    }
}

/// A fitted EUTB model.
#[derive(Debug, Clone)]
pub struct Eutb {
    num_topics: usize,
    vocab_size: usize,
    num_time_slices: u16,
    /// Per-user topic mixtures, row-major `U×K`.
    user_theta: Vec<f64>,
    /// Per-time-slice topic mixtures (burst-smoothed), row-major `T×K`.
    time_theta: Vec<f64>,
    /// Topic word distributions, row-major `K×V`.
    phi: Vec<f64>,
    /// Prior slice probability `p(t)` (post volume share per slice).
    slice_prior: Vec<f64>,
}

impl Eutb {
    /// Fit on a corpus by collapsed Gibbs.
    pub fn fit(corpus: &Corpus, config: &EutbConfig, seed: u64) -> Self {
        let k = config.num_topics;
        let v = corpus.vocab_size();
        let u = corpus.num_users() as usize;
        let t_dim = corpus.num_time_slices() as usize;
        let posts = corpus.posts();
        let mut rng = seeded_rng(seed);

        let multisets: Vec<Vec<(u32, u32)>> = posts.iter().map(|p| p.word_multiset()).collect();
        let lens: Vec<u32> = posts.iter().map(|p| p.len() as u32).collect();

        let mut z: Vec<usize> = (0..posts.len()).map(|_| rng.gen_range(0..k)).collect();
        let mut n_uk = vec![0u32; u * k];
        let mut n_tk = vec![0u32; t_dim * k];
        let mut n_kv = vec![0u32; k * v];
        let mut n_k = vec![0u32; k];
        for (d, p) in posts.iter().enumerate() {
            let kk = z[d];
            n_uk[p.author as usize * k + kk] += 1;
            n_tk[p.time as usize * k + kk] += 1;
            for &(w, cnt) in &multisets[d] {
                n_kv[kk * v + w as usize] += cnt;
            }
            n_k[kk] += lens[d];
        }

        let vbeta = v as f64 * config.beta;
        let mut logw = vec![0.0f64; k];
        for _ in 0..config.iterations {
            for (d, p) in posts.iter().enumerate() {
                let i = p.author as usize;
                let tt = p.time as usize;
                let old = z[d];
                n_uk[i * k + old] -= 1;
                n_tk[tt * k + old] -= 1;
                for &(w, cnt) in &multisets[d] {
                    n_kv[old * v + w as usize] -= cnt;
                }
                n_k[old] -= lens[d];

                for (kk, lw) in logw.iter_mut().enumerate() {
                    let mut acc = (n_uk[i * k + kk] as f64 + config.alpha).ln()
                        + (n_tk[tt * k + kk] as f64 + config.alpha).ln();
                    for &(w, cnt) in &multisets[d] {
                        acc += log_ascending_factorial(
                            n_kv[kk * v + w as usize] as f64 + config.beta,
                            cnt,
                        );
                    }
                    acc -= log_ascending_factorial(n_k[kk] as f64 + vbeta, lens[d]);
                    *lw = acc;
                }
                let new = sample_log_categorical(&mut rng, &logw).expect("finite mass");
                z[d] = new;
                n_uk[i * k + new] += 1;
                n_tk[tt * k + new] += 1;
                for &(w, cnt) in &multisets[d] {
                    n_kv[new * v + w as usize] += cnt;
                }
                n_k[new] += lens[d];
            }
        }

        // Point estimates.
        let mut user_theta = vec![0.0f64; u * k];
        for i in 0..u {
            let total: u32 = n_uk[i * k..(i + 1) * k].iter().sum();
            for kk in 0..k {
                user_theta[i * k + kk] = (n_uk[i * k + kk] as f64 + config.alpha)
                    / (total as f64 + k as f64 * config.alpha);
            }
        }
        // Raw per-slice mixtures, then burst-weighted smoothing: each slice
        // is pulled toward its neighbours, more strongly when the slice has
        // little volume relative to them.
        let slice_volume: Vec<f64> = (0..t_dim)
            .map(|tt| {
                n_tk[tt * k..(tt + 1) * k]
                    .iter()
                    .map(|&x| x as f64)
                    .sum::<f64>()
            })
            .collect();
        let raw: Vec<f64> = (0..t_dim * k)
            .map(|idx| {
                let tt = idx / k;
                let kk = idx % k;
                (n_tk[tt * k + kk] as f64 + config.alpha)
                    / (slice_volume[tt] + k as f64 * config.alpha)
            })
            .collect();
        let mut time_theta = vec![0.0f64; t_dim * k];
        for tt in 0..t_dim {
            let prev = tt.saturating_sub(1);
            let next = (tt + 1).min(t_dim - 1);
            let neighbour_vol = 0.5 * (slice_volume[prev] + slice_volume[next]);
            // Burst weight: high-volume (bursting) slices trust their own
            // counts; quiet slices borrow from neighbours.
            let own = slice_volume[tt] / (slice_volume[tt] + neighbour_vol + 1e-9);
            let lambda = (1.0 - config.smoothing) + config.smoothing * own;
            for kk in 0..k {
                time_theta[tt * k + kk] = lambda * raw[tt * k + kk]
                    + (1.0 - lambda) * 0.5 * (raw[prev * k + kk] + raw[next * k + kk]);
            }
            cold_math::stats::normalize_in_place(&mut time_theta[tt * k..(tt + 1) * k]);
        }
        let mut phi = vec![0.0f64; k * v];
        for kk in 0..k {
            for vv in 0..v {
                phi[kk * v + vv] =
                    (n_kv[kk * v + vv] as f64 + config.beta) / (n_k[kk] as f64 + vbeta);
            }
        }
        // Slice prior p(t): posting volume per slice (smoothed). Needed by
        // time-stamp prediction: p(t | w, u) ∝ p(t) Σ_k p(w|k) p(k|u) p(k|t).
        let mut slice_prior: Vec<f64> = vec![1.0; t_dim];
        for p in posts {
            slice_prior[p.time as usize] += 1.0;
        }
        cold_math::stats::normalize_in_place(&mut slice_prior);
        Self {
            num_topics: k,
            vocab_size: v,
            num_time_slices: t_dim as u16,
            user_theta,
            time_theta,
            phi,
            slice_prior,
        }
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// User topic mixture.
    pub fn user_topics(&self, user: u32) -> &[f64] {
        &self.user_theta[user as usize * self.num_topics..(user as usize + 1) * self.num_topics]
    }

    /// Time-slice topic mixture (after burst-weighted smoothing).
    pub fn time_topics(&self, slice: u16) -> &[f64] {
        &self.time_theta[slice as usize * self.num_topics..(slice as usize + 1) * self.num_topics]
    }

    /// Topic word distribution.
    pub fn topic_words(&self, topic: usize) -> &[f64] {
        &self.phi[topic * self.vocab_size..(topic + 1) * self.vocab_size]
    }
}

impl TextScorer for Eutb {
    fn post_log_likelihood(&self, author: u32, words: &[u32]) -> f64 {
        // Time marginalized out: p(w|u) = Σ_k p(k|u) Π_l φ_k,w_l.
        let user = self.user_topics(author);
        let terms: Vec<f64> = (0..self.num_topics)
            .map(|kk| {
                let phi = self.topic_words(kk);
                let mut acc = user[kk].max(f64::MIN_POSITIVE).ln();
                for &w in words {
                    acc += phi[w as usize].max(f64::MIN_POSITIVE).ln();
                }
                acc
            })
            .collect();
        log_sum_exp(&terms)
    }
}

impl TimePredictor for Eutb {
    fn predict_time(&self, author: u32, words: &[u32]) -> u16 {
        // argmax_t Σ_k p(w|k) · p(k|u) · p(k|t): the product coupling used
        // in training, evaluated at each candidate slice.
        let user = self.user_topics(author);
        let mut word_ll = vec![0.0f64; self.num_topics];
        for (kk, wll) in word_ll.iter_mut().enumerate() {
            let phi = self.topic_words(kk);
            for &w in words {
                *wll += phi[w as usize].max(f64::MIN_POSITIVE).ln();
            }
        }
        let shift = word_ll.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let word_lik: Vec<f64> = word_ll.iter().map(|&l| (l - shift).exp()).collect();
        let mut best = (0u16, f64::NEG_INFINITY);
        for tt in 0..self.num_time_slices {
            let time = self.time_topics(tt);
            let mix: f64 = (0..self.num_topics)
                .map(|kk| word_lik[kk] * user[kk] * time[kk])
                .sum();
            let score = self.slice_prior[tt as usize] * mix;
            if score > best.1 {
                best = (tt, score);
            }
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_text::CorpusBuilder;

    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        for rep in 0..12u16 {
            b.push_text(0, rep % 2, &["football", "goal", "match"]);
            b.push_text(1, 6 + rep % 2, &["film", "oscar", "actor"]);
        }
        b.build()
    }

    #[test]
    fn time_mixtures_track_bursts() {
        let c = corpus();
        let m = Eutb::fit(
            &c,
            &EutbConfig {
                alpha: 0.1,
                ..EutbConfig::new(2)
            },
            1,
        );
        let fb = c.vocab().id_of("football").unwrap() as usize;
        let k_sports = if m.topic_words(0)[fb] > m.topic_words(1)[fb] {
            0
        } else {
            1
        };
        // Early slices prefer the sports topic; late slices the movie topic.
        assert!(m.time_topics(0)[k_sports] > m.time_topics(7)[k_sports]);
    }

    #[test]
    fn time_prediction_tracks_planted_windows() {
        let c = corpus();
        let m = Eutb::fit(
            &c,
            &EutbConfig {
                alpha: 0.1,
                ..EutbConfig::new(2)
            },
            5,
        );
        let fb = c.vocab().id_of("football").unwrap();
        let film = c.vocab().id_of("film").unwrap();
        let t_sports = m.predict_time(0, &[fb, fb, fb]);
        let t_movie = m.predict_time(1, &[film, film, film]);
        assert!(t_sports <= 1, "sports predicted {t_sports}");
        assert!(t_movie >= 6, "movie predicted {t_movie}");
    }

    #[test]
    fn mixtures_are_normalized() {
        let c = corpus();
        let m = Eutb::fit(&c, &EutbConfig::new(3), 3);
        for i in 0..2 {
            assert!((m.user_topics(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        for tt in 0..c.num_time_slices() {
            assert!((m.time_topics(tt).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn likelihood_prefers_author_vocabulary() {
        let c = corpus();
        let m = Eutb::fit(
            &c,
            &EutbConfig {
                alpha: 0.1,
                ..EutbConfig::new(2)
            },
            4,
        );
        let fb = c.vocab().id_of("football").unwrap();
        let film = c.vocab().id_of("film").unwrap();
        assert!(m.post_log_likelihood(0, &[fb]) > m.post_log_likelihood(0, &[film]));
    }
}
