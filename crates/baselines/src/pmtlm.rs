//! Poisson Mixed-Topic Link Model (Zhu, Yan, Getoor, Moore — KDD 2013) —
//! the paper's joint text-and-link baseline (§6.1 method 1).
//!
//! The defining property the comparison targets: **one latent factor drives
//! both text and links** — the factor acts as a topic when generating words
//! and as a community when generating links (one-to-one topic–community
//! correspondence). We implement a collapsed Gibbs variant adapted to the
//! micro-blog setting: each post draws a single factor from its author's
//! mixture; each link draws one *shared* factor weighted by both endpoints'
//! mixtures (the assortative Poisson-link view of PMTLM-1).

use crate::{LinkScorer, TextScorer};
use cold_graph::CsrGraph;
use cold_math::categorical::{sample_categorical, sample_log_categorical};
use cold_math::rng::seeded_rng;
use cold_math::special::log_ascending_factorial;
use cold_math::stats::log_sum_exp;
use cold_text::Corpus;
use rand::Rng as _;

/// Training options for PMTLM.
#[derive(Debug, Clone)]
pub struct PmtlmConfig {
    /// Number of shared factors (simultaneously topics and communities).
    pub num_factors: usize,
    /// Dirichlet prior on user factor mixtures.
    pub alpha: f64,
    /// Dirichlet prior on factor word distributions.
    pub beta: f64,
    /// Beta pseudo-counts for the per-factor link strength.
    pub lambda0: f64,
    /// Present-link pseudo-count.
    pub lambda1: f64,
    /// Gibbs sweeps.
    pub iterations: usize,
}

impl PmtlmConfig {
    /// Defaults mirroring the COLD configuration at the same latent size.
    pub fn new(num_factors: usize, graph: &CsrGraph) -> Self {
        let n_neg = graph.num_negative_links() as f64;
        let k2 = (num_factors * num_factors) as f64;
        Self {
            num_factors,
            alpha: 1.0,
            beta: 0.01,
            lambda0: (5.0 * (n_neg / k2).max(std::f64::consts::E).ln()).max(0.1),
            lambda1: 0.1,
            iterations: 120,
        }
    }
}

/// A fitted PMTLM model.
#[derive(Debug, Clone)]
pub struct Pmtlm {
    num_factors: usize,
    vocab_size: usize,
    /// Per-user factor mixtures, row-major `U×K`.
    pi: Vec<f64>,
    /// Factor word distributions, row-major `K×V`.
    phi: Vec<f64>,
    /// Per-factor assortative link strength.
    strength: Vec<f64>,
}

impl Pmtlm {
    /// Fit on text + links jointly.
    pub fn fit(corpus: &Corpus, graph: &CsrGraph, config: &PmtlmConfig, seed: u64) -> Self {
        let k = config.num_factors;
        let v = corpus.vocab_size();
        let u = corpus.num_users().max(graph.num_nodes()) as usize;
        let posts = corpus.posts();
        let links: Vec<(u32, u32)> = graph.edges().collect();
        let mut rng = seeded_rng(seed);

        let multisets: Vec<Vec<(u32, u32)>> = posts.iter().map(|p| p.word_multiset()).collect();
        let lens: Vec<u32> = posts.iter().map(|p| p.len() as u32).collect();

        // Latent factor per post and per link (shared by both endpoints —
        // the one-to-one coupling under test).
        let mut z_post: Vec<u32> = (0..posts.len())
            .map(|_| rng.gen_range(0..k) as u32)
            .collect();
        let user_fac: Vec<u32> = (0..u).map(|_| rng.gen_range(0..k) as u32).collect();
        let mut z_link: Vec<u32> = links.iter().map(|&(i, _)| user_fac[i as usize]).collect();

        // n_uk counts BOTH post factors and link-endpoint factors, so text
        // and links shape the same mixture (the model's point).
        let mut n_uk = vec![0u32; u * k];
        let mut n_kv = vec![0u32; k * v];
        let mut n_k = vec![0u32; k];
        let mut n_link_k = vec![0u32; k];
        for (d, p) in posts.iter().enumerate() {
            let kk = z_post[d] as usize;
            n_uk[p.author as usize * k + kk] += 1;
            for &(w, cnt) in &multisets[d] {
                n_kv[kk * v + w as usize] += cnt;
            }
            n_k[kk] += lens[d];
        }
        for (e, &(i, j)) in links.iter().enumerate() {
            let kk = z_link[e] as usize;
            n_uk[i as usize * k + kk] += 1;
            n_uk[j as usize * k + kk] += 1;
            n_link_k[kk] += 1;
        }

        let vbeta = v as f64 * config.beta;
        let mut logw = vec![0.0f64; k];
        let mut weights = vec![0.0f64; k];
        for _ in 0..config.iterations {
            for (d, p) in posts.iter().enumerate() {
                let i = p.author as usize;
                let old = z_post[d] as usize;
                n_uk[i * k + old] -= 1;
                for &(w, cnt) in &multisets[d] {
                    n_kv[old * v + w as usize] -= cnt;
                }
                n_k[old] -= lens[d];
                for (kk, lw) in logw.iter_mut().enumerate() {
                    let mut acc = (n_uk[i * k + kk] as f64 + config.alpha).ln();
                    for &(w, cnt) in &multisets[d] {
                        acc += log_ascending_factorial(
                            n_kv[kk * v + w as usize] as f64 + config.beta,
                            cnt,
                        );
                    }
                    acc -= log_ascending_factorial(n_k[kk] as f64 + vbeta, lens[d]);
                    *lw = acc;
                }
                let new = sample_log_categorical(&mut rng, &logw).expect("finite mass");
                z_post[d] = new as u32;
                n_uk[i * k + new] += 1;
                for &(w, cnt) in &multisets[d] {
                    n_kv[new * v + w as usize] += cnt;
                }
                n_k[new] += lens[d];
            }
            for (e, &(i, j)) in links.iter().enumerate() {
                let old = z_link[e] as usize;
                n_uk[i as usize * k + old] -= 1;
                n_uk[j as usize * k + old] -= 1;
                n_link_k[old] -= 1;
                for (kk, w) in weights.iter_mut().enumerate() {
                    let mi = n_uk[i as usize * k + kk] as f64 + config.alpha;
                    let mj = n_uk[j as usize * k + kk] as f64 + config.alpha;
                    let n = n_link_k[kk] as f64;
                    *w = mi * mj * (n + config.lambda1) / (n + config.lambda0 + config.lambda1);
                }
                let new = sample_categorical(&mut rng, &weights).expect("positive mass");
                z_link[e] = new as u32;
                n_uk[i as usize * k + new] += 1;
                n_uk[j as usize * k + new] += 1;
                n_link_k[new] += 1;
            }
        }

        let mut pi = vec![0.0f64; u * k];
        for i in 0..u {
            let total: u32 = n_uk[i * k..(i + 1) * k].iter().sum();
            for kk in 0..k {
                pi[i * k + kk] = (n_uk[i * k + kk] as f64 + config.alpha)
                    / (total as f64 + k as f64 * config.alpha);
            }
        }
        let mut phi = vec![0.0f64; k * v];
        for kk in 0..k {
            for vv in 0..v {
                phi[kk * v + vv] =
                    (n_kv[kk * v + vv] as f64 + config.beta) / (n_k[kk] as f64 + vbeta);
            }
        }
        let strength: Vec<f64> = n_link_k
            .iter()
            .map(|&n| (n as f64 + config.lambda1) / (n as f64 + config.lambda0 + config.lambda1))
            .collect();
        Self {
            num_factors: k,
            vocab_size: v,
            pi,
            phi,
            strength,
        }
    }

    /// Number of shared factors.
    pub fn num_factors(&self) -> usize {
        self.num_factors
    }

    /// The user's factor mixture.
    pub fn user_factors(&self, user: u32) -> &[f64] {
        &self.pi[user as usize * self.num_factors..(user as usize + 1) * self.num_factors]
    }

    /// Factor word distribution.
    pub fn factor_words(&self, factor: usize) -> &[f64] {
        &self.phi[factor * self.vocab_size..(factor + 1) * self.vocab_size]
    }

    /// Hardened community (= factor) per user.
    pub fn hard_user_communities(&self) -> Vec<u32> {
        let u = self.pi.len() / self.num_factors;
        (0..u as u32)
            .map(|i| {
                self.user_factors(i)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(kk, _)| kk as u32)
                    .unwrap_or(0)
            })
            .collect()
    }
}

impl LinkScorer for Pmtlm {
    fn link_score(&self, i: u32, i2: u32) -> f64 {
        // Assortative: only shared factors generate links.
        let pi_i = self.user_factors(i);
        let pi_j = self.user_factors(i2);
        (0..self.num_factors)
            .map(|kk| pi_i[kk] * pi_j[kk] * self.strength[kk])
            .sum()
    }
}

impl TextScorer for Pmtlm {
    fn post_log_likelihood(&self, author: u32, words: &[u32]) -> f64 {
        let pi = self.user_factors(author);
        let terms: Vec<f64> = (0..self.num_factors)
            .map(|kk| {
                let phi = self.factor_words(kk);
                let mut acc = pi[kk].max(f64::MIN_POSITIVE).ln();
                for &w in words {
                    acc += phi[w as usize].max(f64::MIN_POSITIVE).ln();
                }
                acc
            })
            .collect();
        log_sum_exp(&terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_text::CorpusBuilder;

    fn data() -> (Corpus, CsrGraph) {
        let mut b = CorpusBuilder::new();
        for u in 0..3u32 {
            for rep in 0..5u16 {
                b.push_text(u, rep % 2, &["football", "goal", "match"]);
            }
        }
        for u in 3..6u32 {
            for rep in 0..5u16 {
                b.push_text(u, rep % 2, &["film", "oscar", "actor"]);
            }
        }
        let corpus = b.build();
        let edges = [
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 0),
            (0, 2),
            (2, 1),
            (3, 4),
            (4, 3),
            (4, 5),
            (5, 3),
            (3, 5),
            (5, 4),
        ];
        (corpus, CsrGraph::from_edges(6, &edges))
    }

    #[test]
    fn factors_couple_text_and_links() {
        let (corpus, graph) = data();
        let m = Pmtlm::fit(&corpus, &graph, &PmtlmConfig::new(2, &graph), 1);
        // Users separate by factor, and factors separate the vocabularies.
        let hard = m.hard_user_communities();
        assert_eq!(hard[0], hard[1]);
        assert_eq!(hard[3], hard[4]);
        assert_ne!(hard[0], hard[3]);
        let fb = corpus.vocab().id_of("football").unwrap() as usize;
        let f_sports = hard[0] as usize;
        assert!(m.factor_words(f_sports)[fb] > m.factor_words(1 - f_sports)[fb]);
    }

    #[test]
    fn link_scores_respect_blocks() {
        let (corpus, graph) = data();
        let m = Pmtlm::fit(&corpus, &graph, &PmtlmConfig::new(2, &graph), 2);
        assert!(m.link_score(0, 2) > m.link_score(0, 5));
    }

    #[test]
    fn text_likelihood_prefers_own_vocabulary() {
        let (corpus, graph) = data();
        let m = Pmtlm::fit(&corpus, &graph, &PmtlmConfig::new(2, &graph), 3);
        let fb = corpus.vocab().id_of("football").unwrap();
        let film = corpus.vocab().id_of("film").unwrap();
        assert!(m.post_log_likelihood(0, &[fb]) > m.post_log_likelihood(0, &[film]));
    }

    #[test]
    fn mixtures_normalize() {
        let (corpus, graph) = data();
        let m = Pmtlm::fit(&corpus, &graph, &PmtlmConfig::new(3, &graph), 4);
        for i in 0..6 {
            assert!((m.user_factors(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        for kk in 0..3 {
            assert!((m.factor_words(kk).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
