//! Topics over Time (Wang & McCallum — KDD 2006), the temporal building
//! block of the Pipeline baseline (§6.1 method 5).
//!
//! TOT couples each topic with a **Beta distribution over normalized time**
//! — the unimodal temporal assumption the paper contrasts with COLD's
//! multinomial `ψ` (§3.3). Following the micro-blog convention, each post
//! carries one topic from a global mixture. The Beta parameters are updated
//! by moment matching each sweep, as in the original paper.

use crate::{TextScorer, TimePredictor};
use cold_math::categorical::sample_log_categorical;
use cold_math::rng::seeded_rng;
use cold_math::special::{log_ascending_factorial, log_beta_fn};
use cold_math::stats::log_sum_exp;
use cold_text::Corpus;
use rand::Rng as _;

/// Training options for TOT.
#[derive(Debug, Clone)]
pub struct TotConfig {
    /// Number of topics `K`.
    pub num_topics: usize,
    /// Dirichlet prior on the global topic mixture.
    pub alpha: f64,
    /// Dirichlet prior on topic word distributions.
    pub beta: f64,
    /// Gibbs sweeps.
    pub iterations: usize,
}

impl TotConfig {
    /// Standard defaults.
    pub fn new(num_topics: usize) -> Self {
        Self {
            num_topics,
            alpha: 50.0 / num_topics as f64,
            beta: 0.01,
            iterations: 100,
        }
    }
}

/// A fitted TOT model.
#[derive(Debug, Clone)]
pub struct TopicsOverTime {
    num_topics: usize,
    vocab_size: usize,
    num_time_slices: u16,
    /// Global topic mixture.
    theta: Vec<f64>,
    /// Topic word distributions, row-major `K×V`.
    phi: Vec<f64>,
    /// Per-topic Beta(a, b) over normalized time.
    beta_params: Vec<(f64, f64)>,
}

/// Map a slice index to the open unit interval (endpoints avoided: the Beta
/// density can diverge at 0/1).
fn normalize_time(t: u16, num_slices: u16) -> f64 {
    (t as f64 + 0.5) / num_slices as f64
}

/// Log Beta(a, b) density at x.
fn log_beta_pdf(x: f64, a: f64, b: f64) -> f64 {
    (a - 1.0) * x.ln() + (b - 1.0) * (1.0 - x).ln() - log_beta_fn(a, b)
}

/// Moment-matched Beta parameters from a sample mean/variance.
fn moment_match(mean: f64, var: f64) -> (f64, f64) {
    let mean = mean.clamp(1e-3, 1.0 - 1e-3);
    let var = var.max(1e-5).min(mean * (1.0 - mean) * 0.999);
    let common = mean * (1.0 - mean) / var - 1.0;
    ((mean * common).max(0.05), ((1.0 - mean) * common).max(0.05))
}

impl TopicsOverTime {
    /// Fit on `corpus`; `post_filter` (if given) restricts training to a
    /// subset of post ids — the Pipeline baseline trains one TOT per
    /// community on its members' posts.
    pub fn fit(
        corpus: &Corpus,
        config: &TotConfig,
        post_filter: Option<&[u32]>,
        seed: u64,
    ) -> Self {
        let k = config.num_topics;
        let v = corpus.vocab_size();
        let t_slices = corpus.num_time_slices();
        let mut rng = seeded_rng(seed);
        let post_ids: Vec<u32> = match post_filter {
            Some(ids) => ids.to_vec(),
            None => (0..corpus.num_posts() as u32).collect(),
        };

        let multisets: Vec<Vec<(u32, u32)>> = post_ids
            .iter()
            .map(|&d| corpus.post(d).word_multiset())
            .collect();
        let lens: Vec<u32> = post_ids
            .iter()
            .map(|&d| corpus.post(d).len() as u32)
            .collect();
        let times: Vec<f64> = post_ids
            .iter()
            .map(|&d| normalize_time(corpus.post(d).time, t_slices.max(1)))
            .collect();

        let n = post_ids.len();
        let mut z: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
        let mut n_kd = vec![0u32; k]; // posts per topic
        let mut n_kv = vec![0u32; k * v];
        let mut n_k = vec![0u32; k];
        for d in 0..n {
            n_kd[z[d]] += 1;
            for &(w, cnt) in &multisets[d] {
                n_kv[z[d] * v + w as usize] += cnt;
            }
            n_k[z[d]] += lens[d];
        }
        let mut beta_params = vec![(1.0f64, 1.0f64); k];

        let vbeta = v as f64 * config.beta;
        let mut logw = vec![0.0f64; k];
        for _ in 0..config.iterations {
            for d in 0..n {
                let old = z[d];
                n_kd[old] -= 1;
                for &(w, cnt) in &multisets[d] {
                    n_kv[old * v + w as usize] -= cnt;
                }
                n_k[old] -= lens[d];
                for (kk, lw) in logw.iter_mut().enumerate() {
                    let (a, b) = beta_params[kk];
                    let mut acc =
                        (n_kd[kk] as f64 + config.alpha).ln() + log_beta_pdf(times[d], a, b);
                    for &(w, cnt) in &multisets[d] {
                        acc += log_ascending_factorial(
                            n_kv[kk * v + w as usize] as f64 + config.beta,
                            cnt,
                        );
                    }
                    acc -= log_ascending_factorial(n_k[kk] as f64 + vbeta, lens[d]);
                    *lw = acc;
                }
                let new = sample_log_categorical(&mut rng, &logw).expect("finite mass");
                z[d] = new;
                n_kd[new] += 1;
                for &(w, cnt) in &multisets[d] {
                    n_kv[new * v + w as usize] += cnt;
                }
                n_k[new] += lens[d];
            }
            // Moment-match the Beta parameters from each topic's time stamps.
            for kk in 0..k {
                let assigned: Vec<f64> = (0..n).filter(|&d| z[d] == kk).map(|d| times[d]).collect();
                if assigned.len() >= 2 {
                    let mean = assigned.iter().sum::<f64>() / assigned.len() as f64;
                    let var = assigned
                        .iter()
                        .map(|x| (x - mean) * (x - mean))
                        .sum::<f64>()
                        / assigned.len() as f64;
                    beta_params[kk] = moment_match(mean, var);
                }
            }
        }

        let total_posts: u32 = n_kd.iter().sum();
        let theta: Vec<f64> = n_kd
            .iter()
            .map(|&c| (c as f64 + config.alpha) / (total_posts as f64 + k as f64 * config.alpha))
            .collect();
        let mut phi = vec![0.0f64; k * v];
        for kk in 0..k {
            for vv in 0..v {
                phi[kk * v + vv] =
                    (n_kv[kk * v + vv] as f64 + config.beta) / (n_k[kk] as f64 + vbeta);
            }
        }
        Self {
            num_topics: k,
            vocab_size: v,
            num_time_slices: t_slices,
            theta,
            phi,
            beta_params,
        }
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// The fitted Beta parameters of `topic`.
    pub fn temporal_params(&self, topic: usize) -> (f64, f64) {
        self.beta_params[topic]
    }

    /// Topic word distribution.
    pub fn topic_words(&self, topic: usize) -> &[f64] {
        &self.phi[topic * self.vocab_size..(topic + 1) * self.vocab_size]
    }
}

impl TextScorer for TopicsOverTime {
    fn post_log_likelihood(&self, _author: u32, words: &[u32]) -> f64 {
        let terms: Vec<f64> = (0..self.num_topics)
            .map(|kk| {
                let phi = self.topic_words(kk);
                let mut acc = self.theta[kk].max(f64::MIN_POSITIVE).ln();
                for &w in words {
                    acc += phi[w as usize].max(f64::MIN_POSITIVE).ln();
                }
                acc
            })
            .collect();
        log_sum_exp(&terms)
    }
}

impl TimePredictor for TopicsOverTime {
    fn predict_time(&self, _author: u32, words: &[u32]) -> u16 {
        // argmax_t Σ_k θ_k · BetaPdf(t) · Π φ
        let mut word_ll = vec![0.0f64; self.num_topics];
        for (kk, wll) in word_ll.iter_mut().enumerate() {
            let phi = self.topic_words(kk);
            for &w in words {
                *wll += phi[w as usize].max(f64::MIN_POSITIVE).ln();
            }
        }
        let shift = word_ll.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut best = (0u16, f64::NEG_INFINITY);
        for t in 0..self.num_time_slices {
            let x = normalize_time(t, self.num_time_slices);
            let score: f64 = (0..self.num_topics)
                .map(|kk| {
                    let (a, b) = self.beta_params[kk];
                    self.theta[kk] * (word_ll[kk] - shift).exp() * log_beta_pdf(x, a, b).exp()
                })
                .sum();
            if score > best.1 {
                best = (t, score);
            }
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_text::CorpusBuilder;

    /// Sports early, movie late over 10 slices.
    fn corpus() -> Corpus {
        let mut b = CorpusBuilder::new();
        for rep in 0..12u16 {
            b.push_text(0, rep % 3, &["football", "goal", "match"]);
            b.push_text(1, 7 + rep % 3, &["film", "oscar", "actor"]);
        }
        b.build()
    }

    #[test]
    fn beta_densities_separate_bursts() {
        let c = corpus();
        let m = TopicsOverTime::fit(
            &c,
            &TotConfig {
                alpha: 0.5,
                ..TotConfig::new(2)
            },
            None,
            1,
        );
        let fb = c.vocab().id_of("football").unwrap() as usize;
        let k_sports = if m.topic_words(0)[fb] > m.topic_words(1)[fb] {
            0
        } else {
            1
        };
        let (a_s, b_s) = m.temporal_params(k_sports);
        let (a_m, b_m) = m.temporal_params(1 - k_sports);
        // Sports topic mean earlier than movie topic mean.
        let mean_s = a_s / (a_s + b_s);
        let mean_m = a_m / (a_m + b_m);
        assert!(mean_s < mean_m, "{mean_s} vs {mean_m}");
    }

    #[test]
    fn time_prediction_tracks_topic_burst() {
        let c = corpus();
        let m = TopicsOverTime::fit(
            &c,
            &TotConfig {
                alpha: 0.5,
                ..TotConfig::new(2)
            },
            None,
            2,
        );
        let fb = c.vocab().id_of("football").unwrap();
        let film = c.vocab().id_of("film").unwrap();
        let t_sports = m.predict_time(0, &[fb, fb, fb]);
        let t_movie = m.predict_time(1, &[film, film, film]);
        assert!(t_sports < t_movie, "{t_sports} vs {t_movie}");
    }

    #[test]
    fn post_filter_restricts_training() {
        let c = corpus();
        // Train only on user 0's posts; the movie vocabulary is then unseen.
        let ids: Vec<u32> = c.posts_of(0).to_vec();
        let m = TopicsOverTime::fit(&c, &TotConfig::new(2), Some(&ids), 3);
        let film = c.vocab().id_of("film").unwrap() as usize;
        let fb = c.vocab().id_of("football").unwrap() as usize;
        // In whichever topic football dominates, film must be (nearly)
        // unseen. (A topic that received no posts stays at its uniform
        // smoothing, so comparing maxima across topics would be vacuous.)
        let k_fb = (0..2)
            .max_by(|&a, &b| {
                m.topic_words(a)[fb]
                    .partial_cmp(&m.topic_words(b)[fb])
                    .unwrap()
            })
            .unwrap();
        assert!(m.topic_words(k_fb)[fb] > 10.0 * m.topic_words(k_fb)[film]);
    }

    #[test]
    fn moment_match_round_trips() {
        let (a, b) = moment_match(0.3, 0.01);
        let mean = a / (a + b);
        let var = a * b / ((a + b) * (a + b) * (a + b + 1.0));
        assert!((mean - 0.3).abs() < 1e-6);
        assert!((var - 0.01).abs() < 1e-4);
    }

    #[test]
    fn likelihood_is_finite() {
        let c = corpus();
        let m = TopicsOverTime::fit(&c, &TotConfig::new(2), None, 4);
        let fb = c.vocab().id_of("football").unwrap();
        assert!(m.post_log_likelihood(0, &[fb, fb]).is_finite());
    }
}
