//! Property tests for the baseline models: every scorer must stay
//! well-formed on arbitrary small datasets (finite outputs, normalized
//! mixtures, in-range predictions), whatever the data shape.

use cold_baselines::eutb::{Eutb, EutbConfig};
use cold_baselines::lda::{UserLda, UserLdaConfig};
use cold_baselines::mmsb::{Mmsb, MmsbConfig};
use cold_baselines::pmtlm::{Pmtlm, PmtlmConfig};
use cold_baselines::tot::{TopicsOverTime, TotConfig};
use cold_baselines::{LinkScorer, TextScorer, TimePredictor};
use cold_graph::CsrGraph;
use cold_text::{Corpus, CorpusBuilder, Post};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = (Corpus, CsrGraph)> {
    let posts = prop::collection::vec(
        (0u32..6, 0u16..4, prop::collection::vec(0u32..25, 1..6)),
        1..25,
    );
    let edges = prop::collection::vec((0u32..6, 0u32..6), 1..15);
    (posts, edges).prop_map(|(posts, edges)| {
        let mut b = CorpusBuilder::with_vocab(cold_text::Vocabulary::synthetic(25));
        b.ensure_users(6);
        for (author, time, words) in posts {
            b.push(Post::new(author, time, words));
        }
        (b.build(), CsrGraph::from_edges(6, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// User-level LDA: mixtures normalize, inference normalizes,
    /// likelihoods are finite and non-positive.
    #[test]
    fn lda_outputs_well_formed((corpus, _) in arb_dataset(), seed in 0u64..200) {
        let m = UserLda::fit(&corpus, &UserLdaConfig { iterations: 4, ..UserLdaConfig::new(3) }, seed);
        for u in 0..6 {
            prop_assert!((m.user_topics(u).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        let post = m.infer_topics(0, &[0, 1, 2]);
        prop_assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let ll = m.post_log_likelihood(0, &[3, 4]);
        prop_assert!(ll.is_finite() && ll <= 1e-9);
    }

    /// MMSB: memberships normalize, link scores live in [0, 1].
    #[test]
    fn mmsb_outputs_well_formed((_, graph) in arb_dataset(), seed in 0u64..200) {
        let cfg = MmsbConfig { iterations: 6, ..MmsbConfig::new(2, &graph) };
        let m = Mmsb::fit(&graph, &cfg, seed);
        for i in 0..graph.num_nodes() {
            prop_assert!((m.user_memberships(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        for i in 0..3 {
            for j in 0..3 {
                let s = m.link_score(i, j);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "link score {s}");
            }
        }
    }

    /// PMTLM: the shared factor drives both text and link scores sanely.
    #[test]
    fn pmtlm_outputs_well_formed((corpus, graph) in arb_dataset(), seed in 0u64..200) {
        let cfg = PmtlmConfig { iterations: 5, ..PmtlmConfig::new(2, &graph) };
        let m = Pmtlm::fit(&corpus, &graph, &cfg, seed);
        for i in 0..6 {
            prop_assert!((m.user_factors(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        prop_assert!(m.link_score(0, 1).is_finite());
        let ll = m.post_log_likelihood(0, &[0, 5]);
        prop_assert!(ll.is_finite() && ll <= 1e-9);
    }

    /// TOT: time predictions land inside the grid, Beta parameters valid.
    #[test]
    fn tot_outputs_well_formed((corpus, _) in arb_dataset(), seed in 0u64..200) {
        let m = TopicsOverTime::fit(&corpus, &TotConfig { iterations: 5, ..TotConfig::new(2) }, None, seed);
        for k in 0..2 {
            let (a, b) = m.temporal_params(k);
            prop_assert!(a > 0.0 && b > 0.0, "Beta({a}, {b})");
        }
        let t = m.predict_time(0, &[1, 2]);
        prop_assert!(t < corpus.num_time_slices());
    }

    /// EUTB: both mixture families normalize, predictions in range.
    #[test]
    fn eutb_outputs_well_formed((corpus, _) in arb_dataset(), seed in 0u64..200) {
        let m = Eutb::fit(&corpus, &EutbConfig { iterations: 5, ..EutbConfig::new(2) }, seed);
        for u in 0..6 {
            prop_assert!((m.user_topics(u).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        for t in 0..corpus.num_time_slices() {
            prop_assert!((m.time_topics(t).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        let t = m.predict_time(0, &[0]);
        prop_assert!(t < corpus.num_time_slices());
    }
}
