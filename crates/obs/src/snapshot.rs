//! Point-in-time metric snapshots and their sinks.
//!
//! A [`MetricsSnapshot`] is plain data (sorted maps), so tests assert on
//! it directly. Two serialized sinks are provided:
//!
//! * **JSON lines** ([`MetricsSnapshot::to_jsonl`] /
//!   [`MetricsSnapshot::write_jsonl`]) — one self-describing object per
//!   line, schema `cold-obs/v1` (first line is a `meta` record). Hand
//!   rolled, since this crate is dependency-free; the emitted subset of
//!   JSON is validated by [`crate::schema::validate_jsonl`].
//! * **summary table** ([`MetricsSnapshot::render_table`]) — the
//!   human-readable view the CLI prints after a run.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use crate::histogram::HistogramSummary;
use crate::schema::SCHEMA_VERSION;

/// Every metric registered at snapshot time, by kind, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Counter value, zero if never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram summary, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Sum of all counters whose name starts with `prefix` — convenient
    /// for per-shard families like `parallel.shard.3.post_draws`.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Render as `cold-obs/v1` JSON lines (see the module docs).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"meta\",\"schema\":\"{SCHEMA_VERSION}\",\"counters\":{},\"gauges\":{},\"histograms\":{}}}\n",
            self.counters.len(),
            self.gauges.len(),
            self.histograms.len()
        ));
        for (name, value) in &self.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}\n",
                json_escape(name)
            ));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}\n",
                json_escape(name),
                json_num(*value)
            ));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}\n",
                json_escape(name),
                h.count,
                json_num(h.sum),
                json_num(h.min),
                json_num(h.max),
                json_num(h.p50),
                json_num(h.p95),
                json_num(h.p99)
            ));
        }
        out
    }

    /// Write the JSON-lines form to `path`.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_jsonl().as_bytes())
    }

    /// Render the human-readable summary table.
    pub fn render_table(&self) -> String {
        let name_width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max("metric".len());
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<name_width$}  {:>14}\n", "counter", "value"));
            for (name, value) in &self.counters {
                out.push_str(&format!("{name:<name_width$}  {value:>14}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str(&format!("{:<name_width$}  {:>14}\n", "gauge", "value"));
            for (name, value) in &self.gauges {
                out.push_str(&format!("{name:<name_width$}  {value:>14.6}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "{:<name_width$}  {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                "histogram (s)", "count", "sum", "p50", "p95", "p99", "max"
            ));
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "{name:<name_width$}  {:>8} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}\n",
                    h.count, h.sum, h.p50, h.p95, h.p99, h.max
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

/// Escape a metric name for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a valid JSON number (JSON has no NaN/inf).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Rust omits the fraction for integral floats ("3"), which is
        // valid JSON but ambiguous with integers; keep it explicit.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::validate_jsonl;
    use crate::Metrics;

    fn sample() -> MetricsSnapshot {
        let m = Metrics::enabled();
        m.counter_add("kernel.cached_log.comm_draws", 123);
        m.gauge_set("train.wall_seconds", 1.25);
        m.observe("span.sweep", 0.002);
        m.observe("span.sweep", 0.004);
        m.snapshot()
    }

    #[test]
    fn jsonl_roundtrips_through_the_schema_validator() {
        let snap = sample();
        let text = snap.to_jsonl();
        let stats = validate_jsonl(&text).expect("emitted JSONL must validate");
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.gauges, 1);
        assert_eq!(stats.histograms, 1);
    }

    #[test]
    fn jsonl_escapes_and_formats_numbers() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("we\"ird\\name".into(), 1);
        snap.gauges.insert("g".into(), 3.0);
        snap.gauges.insert("bad".into(), f64::NAN);
        let text = snap.to_jsonl();
        assert!(text.contains("we\\\"ird\\\\name"));
        assert!(text.contains("\"value\":3.0"));
        validate_jsonl(&text).expect("escaped names still validate");
    }

    #[test]
    fn table_lists_every_metric() {
        let snap = sample();
        let table = snap.render_table();
        assert!(table.contains("kernel.cached_log.comm_draws"));
        assert!(table.contains("train.wall_seconds"));
        assert!(table.contains("span.sweep"));
        assert!(MetricsSnapshot::default()
            .render_table()
            .contains("no metrics"));
    }

    #[test]
    fn prefix_sum_adds_families() {
        let mut snap = MetricsSnapshot::default();
        snap.counters
            .insert("parallel.shard.0.post_draws".into(), 3);
        snap.counters
            .insert("parallel.shard.1.post_draws".into(), 4);
        snap.counters.insert("parallel.sync_bytes".into(), 100);
        assert_eq!(snap.counter_prefix_sum("parallel.shard."), 7);
    }

    #[test]
    fn write_jsonl_creates_the_file() {
        let snap = sample();
        let path = std::env::temp_dir().join(format!("cold_obs_test_{}.jsonl", std::process::id()));
        snap.write_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        validate_jsonl(&text).unwrap();
    }
}
