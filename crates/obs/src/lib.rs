//! # cold-obs — observability for the COLD workspace
//!
//! A zero-dependency, low-overhead metrics and tracing layer: the
//! substrate every sampler, kernel and predictor in this workspace reports
//! into, and the thing perf PRs measure against.
//!
//! ## Design
//!
//! The whole layer hangs off one cheap handle, [`Metrics`]:
//!
//! * **Disabled** (the default) it is a `None` — every call is a branch on
//!   an `Option` and returns immediately. No clocks are read, no locks are
//!   taken, no thread-locals are touched. Instrumented hot paths therefore
//!   cost nothing measurable when observability is off (the
//!   `bench_sampler` binary checks this stays under a few percent).
//! * **Enabled** it holds an `Arc<Registry>`: a mutex-guarded map from
//!   metric name to cell. Clones share the registry, so a handle stored in
//!   a training config and the caller's copy observe the same data, across
//!   threads (the parallel engine's shard workers record from inside
//!   `thread::scope`).
//!
//! Three metric kinds live in the registry:
//!
//! * **counters** — monotonically increasing `u64` ([`Metrics::counter_add`]);
//! * **gauges** — last-write-wins `f64` ([`Metrics::gauge_set`]);
//! * **histograms** — log-bucketed distributions with exact
//!   count/sum/min/max and approximate p50/p95/p99 ([`Metrics::observe`],
//!   [`histogram::Histogram`]).
//!
//! [`Metrics::span`] returns an RAII guard that times a region into a
//! histogram named `span.<path>`, where `<path>` is the `/`-joined stack
//! of enclosing spans on the current thread — `span.sweep/posts` is the
//! posts phase inside a sweep. Every span also bumps the
//! `obs.spans_opened` / `obs.spans_closed` counters, which the invariant
//! tests check stay equal.
//!
//! A point-in-time [`snapshot::MetricsSnapshot`] renders to three sinks:
//! in-memory (tests assert on it directly), a JSON-lines file
//! ([`snapshot::MetricsSnapshot::write_jsonl`], schema `cold-obs/v1`,
//! validated by [`schema::validate_jsonl`]), and a human-readable summary
//! table ([`snapshot::MetricsSnapshot::render_table`]).

pub mod histogram;
pub mod schema;
pub mod snapshot;
pub mod trace;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use histogram::Histogram;
pub use histogram::HistogramSummary;
pub use snapshot::MetricsSnapshot;
use trace::TraceLog;
pub use trace::{TraceEvent, TraceValue};

/// One registered metric. Histograms dominate the size (their fixed
/// bucket array lives inline); cells sit in a long-lived map, so the
/// per-cell footprint is irrelevant next to lookup cost.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
enum Cell {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// The shared metric store behind an enabled [`Metrics`] handle.
///
/// A flat mutex over a `BTreeMap` is deliberate: instrumentation in this
/// workspace records per *phase* (sweep, superstep, query), never per
/// draw, so contention is negligible and the simplicity keeps the crate
/// dependency-free.
#[derive(Debug, Default)]
struct Registry {
    cells: Mutex<BTreeMap<String, Cell>>,
}

impl Registry {
    fn counter_add(&self, name: &str, delta: u64) {
        let mut cells = self.cells.lock().expect("metrics registry poisoned");
        match cells.entry(name.to_owned()).or_insert(Cell::Counter(0)) {
            Cell::Counter(v) => *v += delta,
            _ => debug_assert!(false, "metric {name} is not a counter"),
        }
    }

    fn gauge_set(&self, name: &str, value: f64) {
        let mut cells = self.cells.lock().expect("metrics registry poisoned");
        match cells.entry(name.to_owned()).or_insert(Cell::Gauge(0.0)) {
            Cell::Gauge(v) => *v = value,
            _ => debug_assert!(false, "metric {name} is not a gauge"),
        }
    }

    fn observe(&self, name: &str, value: f64) {
        let mut cells = self.cells.lock().expect("metrics registry poisoned");
        match cells
            .entry(name.to_owned())
            .or_insert_with(|| Cell::Histogram(Histogram::default()))
        {
            Cell::Histogram(h) => h.record(value),
            _ => debug_assert!(false, "metric {name} is not a histogram"),
        }
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let cells = self.cells.lock().expect("metrics registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, cell) in cells.iter() {
            match cell {
                Cell::Counter(v) => {
                    snap.counters.insert(name.clone(), *v);
                }
                Cell::Gauge(v) => {
                    snap.gauges.insert(name.clone(), *v);
                }
                Cell::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.summary());
                }
            }
        }
        snap
    }
}

thread_local! {
    /// Names of the spans currently open on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// The observability handle. Cheap to clone (an `Option<Arc>`); disabled
/// by default. See the crate docs for the full design.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    registry: Option<Arc<Registry>>,
    /// The `cold-trace/v1` protocol event buffer; independent of the
    /// metric registry so a run can record a trace without paying for
    /// counters (and vice versa).
    trace: Option<Arc<TraceLog>>,
}

impl Metrics {
    /// A disabled handle: every operation is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A fresh, enabled handle with its own registry.
    pub fn enabled() -> Self {
        Self {
            registry: Some(Arc::new(Registry::default())),
            trace: None,
        }
    }

    /// Attach a fresh `cold-trace/v1` event buffer to this handle; clones
    /// share it. Works on disabled handles too (trace-only recording).
    pub fn with_trace(mut self) -> Self {
        self.trace = Some(Arc::new(TraceLog::default()));
        self
    }

    /// Whether protocol events are being recorded. Instrumented barriers
    /// branch on this once, so untraced runs never build event payloads
    /// (or pay for the per-family sums some events carry).
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Record one protocol event (no-op without an attached trace buffer).
    pub fn trace_event(&self, kind: &str, fields: Vec<(String, TraceValue)>) {
        if let Some(log) = &self.trace {
            log.record(kind, fields);
        }
    }

    /// Point-in-time copy of the recorded protocol events (empty when no
    /// trace buffer is attached).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        match &self.trace {
            Some(log) => log.events(),
            None => Vec::new(),
        }
    }

    /// Whether this handle records anything. Hot paths may branch on this
    /// once per phase instead of paying per-call `Option` checks.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// Add `delta` to the counter `name` (created at zero on first use).
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(reg) = &self.registry {
            reg.counter_add(name, delta);
        }
    }

    /// Set the gauge `name` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(reg) = &self.registry {
            reg.gauge_set(name, value);
        }
    }

    /// Record one observation into the histogram `name`. By convention
    /// timing histograms in this workspace record **seconds**.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(reg) = &self.registry {
            reg.observe(name, value);
        }
    }

    /// Read the clock — but only when enabled, so disabled runs never pay
    /// for `Instant::now()`. Pair with [`Metrics::observe_since`].
    pub fn start(&self) -> Option<Instant> {
        self.registry.as_ref().map(|_| Instant::now())
    }

    /// Record the seconds elapsed since a [`Metrics::start`] stamp into
    /// the histogram `name`. No-op when either side is disabled.
    pub fn observe_since(&self, name: &str, start: Option<Instant>) {
        if let (Some(reg), Some(t0)) = (&self.registry, start) {
            reg.observe(name, t0.elapsed().as_secs_f64());
        }
    }

    /// Open a hierarchical timing span. The returned guard records
    /// `span.<path>` (path = `/`-joined enclosing span names on this
    /// thread) when dropped, and maintains the `obs.spans_opened` /
    /// `obs.spans_closed` counters. Inert when disabled.
    pub fn span(&self, name: &str) -> Span {
        let Some(reg) = &self.registry else {
            return Span { inner: None };
        };
        reg.counter_add("obs.spans_opened", 1);
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name.to_owned());
            stack.join("/")
        });
        Span {
            inner: Some(SpanInner {
                registry: Arc::clone(reg),
                path,
                start: Instant::now(),
            }),
        }
    }

    /// Point-in-time copy of every registered metric. Empty when disabled.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.registry {
            Some(reg) => reg.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }
}

struct SpanInner {
    registry: Arc<Registry>,
    path: String,
    start: Instant,
}

/// RAII guard returned by [`Metrics::span`]; records its duration when
/// dropped. Spans must close in LIFO order on a thread (guaranteed by
/// normal scoping — keep the guard in a `let`).
#[must_use = "a span records its timing when dropped; binding it to `_` drops it immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let elapsed = inner.start.elapsed().as_secs_f64();
        inner
            .registry
            .observe(&format!("span.{}", inner.path), elapsed);
        inner.registry.counter_add("obs.spans_closed", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        m.counter_add("c", 3);
        m.gauge_set("g", 1.5);
        m.observe("h", 0.25);
        assert!(m.start().is_none());
        drop(m.span("s"));
        let snap = m.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn counters_gauges_and_histograms_record() {
        let m = Metrics::enabled();
        m.counter_add("draws", 2);
        m.counter_add("draws", 3);
        m.gauge_set("wall", 0.5);
        m.gauge_set("wall", 1.5);
        for v in [0.001, 0.002, 0.004] {
            m.observe("t", v);
        }
        let snap = m.snapshot();
        assert_eq!(snap.counter("draws"), 5);
        assert_eq!(snap.counter("absent"), 0);
        assert_eq!(snap.gauges["wall"], 1.5);
        let h = &snap.histograms["t"];
        assert_eq!(h.count, 3);
        assert!((h.sum - 0.007).abs() < 1e-12);
        assert_eq!(h.min, 0.001);
        assert_eq!(h.max, 0.004);
    }

    #[test]
    fn clones_share_one_registry() {
        let m = Metrics::enabled();
        let m2 = m.clone();
        m2.counter_add("shared", 7);
        assert_eq!(m.snapshot().counter("shared"), 7);
    }

    #[test]
    fn spans_nest_into_slash_paths_and_balance() {
        let m = Metrics::enabled();
        {
            let _outer = m.span("sweep");
            let _inner = m.span("posts");
        }
        {
            let _outer = m.span("sweep");
        }
        let snap = m.snapshot();
        assert_eq!(snap.histograms["span.sweep"].count, 2);
        assert_eq!(snap.histograms["span.sweep/posts"].count, 1);
        assert_eq!(snap.counter("obs.spans_opened"), 3);
        assert_eq!(snap.counter("obs.spans_closed"), 3);
    }

    #[test]
    fn observe_since_records_elapsed_seconds() {
        let m = Metrics::enabled();
        let t0 = m.start();
        assert!(t0.is_some());
        m.observe_since("lat", t0);
        let h = &m.snapshot().histograms["lat"];
        assert_eq!(h.count, 1);
        assert!(h.max >= 0.0);
    }

    #[test]
    fn trace_buffer_is_optional_and_shared_by_clones() {
        let plain = Metrics::enabled();
        assert!(!plain.trace_enabled());
        plain.trace_event("ignored", Vec::new());
        assert!(plain.trace_events().is_empty());

        let traced = Metrics::disabled().with_trace();
        assert!(traced.trace_enabled());
        assert!(!traced.is_enabled());
        let clone = traced.clone();
        clone.trace_event("superstep_begin", vec![trace::field("sweep", 3u64)]);
        let events = traced.trace_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "superstep_begin");
        assert_eq!(events[0].uint("sweep"), Some(3));
    }

    #[test]
    fn workers_record_across_threads() {
        let m = Metrics::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = m.clone();
                scope.spawn(move || {
                    m.counter_add("work", 10);
                    m.observe("shard_t", 0.01);
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.counter("work"), 40);
        assert_eq!(snap.histograms["shard_t"].count, 4);
    }
}
