//! Schema validation for the `cold-obs/v1` JSON-lines sink.
//!
//! The emitter ([`crate::snapshot::MetricsSnapshot::to_jsonl`]) writes a
//! narrow subset of JSON: one flat object per line, scalar values only.
//! This module re-parses that subset from scratch (no dependencies) so the
//! CLI's `metrics-check` command and the check-script smoke stage can
//! verify a metrics file without trusting the code that wrote it.

use std::collections::BTreeMap;

/// Schema identifier stamped into the leading `meta` line.
pub const SCHEMA_VERSION: &str = "cold-obs/v1";

/// What a validated file contained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JsonlStats {
    /// Number of `counter` lines.
    pub counters: usize,
    /// Number of `gauge` lines.
    pub gauges: usize,
    /// Number of `histogram` lines.
    pub histograms: usize,
}

/// A scalar value inside one JSONL record. Shared with the
/// `cold-trace/v1` parser ([`crate::trace`]), which reuses this module's
/// flat-object subset.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Scalar {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Scalar {
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_num(&self) -> Option<f64> {
        match self {
            Scalar::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Validate a `cold-obs/v1` JSON-lines document.
///
/// Checks, line by line:
/// * every non-empty line parses as a flat JSON object of scalars;
/// * the first line is a `meta` record carrying the expected schema tag;
/// * `counter` lines carry a non-empty name and a non-negative integer;
/// * `gauge` lines carry a finite number;
/// * `histogram` lines carry finite
///   `count`/`sum`/`min`/`max`/`p50`/`p95`/`p99` with an integral,
///   non-negative count;
/// * the meta line's kind tallies match the body.
pub fn validate_jsonl(text: &str) -> Result<JsonlStats, String> {
    let mut stats = JsonlStats::default();
    let mut meta: Option<(f64, f64, f64)> = None;
    let mut body_lines = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let obj = parse_flat_object(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let kind = obj
            .get("type")
            .and_then(Scalar::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string field \"type\""))?;
        if meta.is_none() {
            if kind != "meta" {
                return Err(format!(
                    "line {lineno}: first record must be \"meta\", got \"{kind}\""
                ));
            }
            let schema = obj
                .get("schema")
                .and_then(Scalar::as_str)
                .ok_or_else(|| format!("line {lineno}: meta record missing \"schema\""))?;
            if schema != SCHEMA_VERSION {
                return Err(format!(
                    "line {lineno}: schema \"{schema}\" is not \"{SCHEMA_VERSION}\""
                ));
            }
            let tally = |field: &str| -> Result<f64, String> {
                require_count(&obj, field).map_err(|e| format!("line {lineno}: meta {e}"))
            };
            meta = Some((tally("counters")?, tally("gauges")?, tally("histograms")?));
            continue;
        }
        body_lines += 1;
        let name = obj
            .get("name")
            .and_then(Scalar::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string field \"name\""))?;
        if name.is_empty() {
            return Err(format!("line {lineno}: empty metric name"));
        }
        match kind {
            "counter" => {
                require_count(&obj, "value").map_err(|e| format!("line {lineno}: {e}"))?;
                stats.counters += 1;
            }
            "gauge" => {
                require_finite(&obj, "value").map_err(|e| format!("line {lineno}: {e}"))?;
                stats.gauges += 1;
            }
            "histogram" => {
                require_count(&obj, "count").map_err(|e| format!("line {lineno}: {e}"))?;
                for field in ["sum", "min", "max", "p50", "p95", "p99"] {
                    require_finite(&obj, field).map_err(|e| format!("line {lineno}: {e}"))?;
                }
                stats.histograms += 1;
            }
            other => {
                return Err(format!("line {lineno}: unknown record type \"{other}\""));
            }
        }
    }
    let Some((counters, gauges, histograms)) = meta else {
        return Err("no meta record found (empty file?)".to_owned());
    };
    let _ = body_lines;
    let expect = |label: &str, declared: f64, actual: usize| -> Result<(), String> {
        if declared as usize != actual {
            return Err(format!(
                "meta declares {declared} {label} records but the body has {actual}"
            ));
        }
        Ok(())
    };
    expect("counter", counters, stats.counters)?;
    expect("gauge", gauges, stats.gauges)?;
    expect("histogram", histograms, stats.histograms)?;
    Ok(stats)
}

/// Extract `(name, value)` for every `gauge` record, in file order.
///
/// Lines that do not parse as gauge records are skipped; pair with
/// [`validate_jsonl`] first when integrity matters.
pub fn gauges(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(obj) = parse_flat_object(line) else {
            continue;
        };
        if obj.get("type").and_then(Scalar::as_str) != Some("gauge") {
            continue;
        }
        let (Some(name), Some(value)) = (
            obj.get("name").and_then(Scalar::as_str),
            obj.get("value").and_then(Scalar::as_num),
        ) else {
            continue;
        };
        out.push((name.to_owned(), value));
    }
    out
}

fn require_finite(obj: &BTreeMap<String, Scalar>, field: &str) -> Result<f64, String> {
    let v = obj
        .get(field)
        .and_then(Scalar::as_num)
        .ok_or_else(|| format!("missing numeric field \"{field}\""))?;
    if !v.is_finite() {
        return Err(format!("field \"{field}\" is not finite"));
    }
    Ok(v)
}

fn require_count(obj: &BTreeMap<String, Scalar>, field: &str) -> Result<f64, String> {
    let v = require_finite(obj, field)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!(
            "field \"{field}\" must be a non-negative integer, got {v}"
        ));
    }
    Ok(v)
}

/// Parse one line as a flat JSON object of scalar values.
pub(crate) fn parse_flat_object(line: &str) -> Result<BTreeMap<String, Scalar>, String> {
    let mut p = Parser {
        chars: line.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    p.expect('{')?;
    let mut obj = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some('}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(':')?;
            p.skip_ws();
            let value = p.parse_scalar()?;
            if obj.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key \"{key}\""));
            }
            p.skip_ws();
            match p.next() {
                Some(',') => continue,
                Some('}') => break,
                Some(c) => return Err(format!("expected ',' or '}}', got '{c}'")),
                None => return Err("unterminated object".to_owned()),
            }
        }
    }
    p.skip_ws();
    if p.peek().is_some() {
        return Err("trailing characters after object".to_owned());
    }
    Ok(obj)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.next() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(format!("expected '{want}', got '{c}'")),
            None => Err(format!("expected '{want}', got end of line")),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_owned()),
                Some('"') => return Ok(out),
                Some('\\') => match self.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{0008}'),
                    Some('f') => out.push('\u{000c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    Some(c) => return Err(format!("bad escape '\\{c}'")),
                    None => return Err("unterminated escape".to_owned()),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<Scalar, String> {
        match self.peek() {
            Some('"') => Ok(Scalar::Str(self.parse_string()?)),
            Some('t') => self.parse_keyword("true", Scalar::Bool(true)),
            Some('f') => self.parse_keyword("false", Scalar::Bool(false)),
            Some('n') => self.parse_keyword("null", Scalar::Null),
            Some(c) if c == '-' || c == '+' || c.is_ascii_digit() => {
                let start = self.pos;
                while matches!(self.peek(), Some('-' | '+' | '.' | 'e' | 'E' | '0'..='9')) {
                    self.pos += 1;
                }
                let token: String = self.chars[start..self.pos].iter().collect();
                token
                    .parse::<f64>()
                    .map(Scalar::Num)
                    .map_err(|_| format!("bad number \"{token}\""))
            }
            Some('{' | '[') => Err("nested values are not part of cold-obs/v1".to_owned()),
            Some(c) => Err(format!("unexpected character '{c}'")),
            None => Err("expected a value, got end of line".to_owned()),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Scalar) -> Result<Scalar, String> {
        for want in word.chars() {
            match self.next() {
                Some(c) if c == want => {}
                _ => return Err(format!("bad keyword (expected \"{word}\")")),
            }
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = concat!(
        "{\"type\":\"meta\",\"schema\":\"cold-obs/v1\",\"counters\":2,\"gauges\":1,\"histograms\":1}\n",
        "{\"type\":\"counter\",\"name\":\"kernel.exact.comm_draws\",\"value\":120}\n",
        "{\"type\":\"counter\",\"name\":\"obs.spans_opened\",\"value\":4}\n",
        "{\"type\":\"gauge\",\"name\":\"train.wall_seconds\",\"value\":0.25}\n",
        "{\"type\":\"histogram\",\"name\":\"span.sweep\",\"count\":4,\"sum\":0.2,\"min\":0.04,\"max\":0.06,\"p50\":0.05,\"p95\":0.06,\"p99\":0.06}\n",
    );

    #[test]
    fn accepts_a_well_formed_file() {
        let stats = validate_jsonl(GOOD).unwrap();
        assert_eq!(
            stats,
            JsonlStats {
                counters: 2,
                gauges: 1,
                histograms: 1
            }
        );
    }

    #[test]
    fn rejects_missing_meta() {
        let text = "{\"type\":\"counter\",\"name\":\"x\",\"value\":1}\n";
        let err = validate_jsonl(text).unwrap_err();
        assert!(err.contains("meta"), "{err}");
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let text = "{\"type\":\"meta\",\"schema\":\"cold-obs/v999\",\"counters\":0,\"gauges\":0,\"histograms\":0}\n";
        assert!(validate_jsonl(text).is_err());
    }

    #[test]
    fn rejects_negative_and_fractional_counters() {
        for bad in ["-1", "1.5"] {
            let text = format!(
                "{{\"type\":\"meta\",\"schema\":\"cold-obs/v1\",\"counters\":1,\"gauges\":0,\"histograms\":0}}\n{{\"type\":\"counter\",\"name\":\"x\",\"value\":{bad}}}\n"
            );
            assert!(validate_jsonl(&text).is_err(), "accepted counter {bad}");
        }
    }

    #[test]
    fn rejects_tally_mismatch() {
        let text = "{\"type\":\"meta\",\"schema\":\"cold-obs/v1\",\"counters\":3,\"gauges\":0,\"histograms\":0}\n{\"type\":\"counter\",\"name\":\"x\",\"value\":1}\n";
        let err = validate_jsonl(text).unwrap_err();
        assert!(err.contains("declares"), "{err}");
    }

    #[test]
    fn rejects_malformed_json() {
        for bad in [
            "{\"type\":\"meta\"",
            "{\"type\":\"meta\",}",
            "not json at all",
            "{\"type\":{\"nested\":1}}",
        ] {
            assert!(validate_jsonl(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn parses_escapes_in_names() {
        let text = "{\"type\":\"meta\",\"schema\":\"cold-obs/v1\",\"counters\":1,\"gauges\":0,\"histograms\":0}\n{\"type\":\"counter\",\"name\":\"a\\\"b\\\\c\\u0041\",\"value\":1}\n";
        let stats = validate_jsonl(text).unwrap();
        assert_eq!(stats.counters, 1);
    }
}
