//! Log-bucketed timing histograms.
//!
//! Recording is O(1): a value lands in one of 64 power-of-two buckets
//! spanning roughly a nanosecond to a couple of hundred years (in
//! seconds), while count, sum, min and max are tracked exactly. Quantiles
//! are read back from the bucket boundaries, so p50/p95/p99 carry at most
//! one octave of error — plenty for "which phase got slower", which is
//! what the sinks report — and min/max/mean stay exact.

/// Number of buckets; bucket `i` covers `[2^(i-30), 2^(i-29))` seconds.
const BUCKETS: usize = 64;

/// Exponent offset: bucket 0's lower bound is `2^-30` s (~0.93 ns).
const EXP_OFFSET: i64 = 30;

fn bucket_of(value: f64) -> usize {
    if value <= 0.0 || !value.is_finite() {
        return 0;
    }
    let idx = value.log2().floor() as i64 + EXP_OFFSET;
    idx.clamp(0, BUCKETS as i64 - 1) as usize
}

/// Geometric midpoint of bucket `i` — the quantile read-back point.
fn bucket_mid(i: usize) -> f64 {
    2f64.powf(i as f64 - EXP_OFFSET as f64 + 0.5)
}

/// One recorded distribution. See the module docs for accuracy notes.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate `q`-quantile (`0 < q <= 1`), clamped into the exact
    /// `[min, max]` envelope. Zero when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Condense into the fixed summary the sinks serialize.
    pub fn summary(&self) -> HistogramSummary {
        if self.count == 0 {
            return HistogramSummary::default();
        }
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Snapshot form of a [`Histogram`]: exact count/sum/min/max, bucketed
/// p50/p95/p99.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Observations recorded (exact).
    pub count: u64,
    /// Sum of all observations (exact).
    pub sum: f64,
    /// Smallest observation (exact).
    pub min: f64,
    /// Largest observation (exact).
    pub max: f64,
    /// Median, within one power-of-two bucket.
    pub p50: f64,
    /// 95th percentile, within one power-of-two bucket.
    pub p95: f64,
    /// 99th percentile, within one power-of-two bucket — the serving-tail
    /// number `cold-serve` reports per endpoint.
    pub p99: f64,
}

impl HistogramSummary {
    /// Mean of the recorded observations (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let h = Histogram::default();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn exact_stats_are_exact() {
        let mut h = Histogram::default();
        for v in [0.5, 1.0, 2.0, 8.0] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 11.5);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 8.0);
        assert!((s.mean() - 2.875).abs() < 1e-12);
    }

    #[test]
    fn quantiles_land_within_one_octave() {
        let mut h = Histogram::default();
        // 97 fast observations around 1 ms, a 3% slow tail at 1 s.
        for _ in 0..97 {
            h.record(1.0e-3);
        }
        for _ in 0..3 {
            h.record(1.0);
        }
        let s = h.summary();
        assert!(
            s.p50 >= 0.5e-3 && s.p50 <= 2.0e-3,
            "p50 off by more than an octave: {}",
            s.p50
        );
        assert!(s.p95 < 0.5, "p95 pulled up by a 3% tail: {}", s.p95);
        // A 3% tail is exactly what p99 exists to surface.
        assert!(s.p99 >= 0.5, "p99 must see the slow tail: {}", s.p99);
        assert_eq!(s.max, 1.0);
    }

    #[test]
    fn quantiles_are_monotone_and_clamped() {
        let mut h = Histogram::default();
        for i in 1..=100u32 {
            h.record(f64::from(i) * 1e-4);
        }
        let s = h.summary();
        assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn degenerate_values_go_to_the_bottom_bucket() {
        let mut h = Histogram::default();
        h.record(0.0);
        h.record(-1.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 3);
        // Quantile read-back stays inside the recorded envelope.
        let q = h.quantile(0.5);
        assert!(q <= h.summary().max || q.is_nan());
    }
}
