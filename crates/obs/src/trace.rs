//! The `cold-trace/v1` protocol event stream.
//!
//! Where the snapshot sink ([`crate::snapshot`]) answers "how much work
//! happened", the trace sink answers "in what order did the protocol
//! steps happen". An enabled trace buffer ([`crate::Metrics::with_trace`])
//! collects one [`TraceEvent`] per protocol step — superstep begin/end,
//! per-shard delta announcements and applies, checkpoint write / load /
//! retention / resume — in the order the instrumented code emitted them.
//! The buffer serializes to a JSON-lines file whose records are flat
//! scalar objects (the same narrow subset `cold-obs/v1` uses), so the
//! replay checker can re-parse it without trusting the writer.
//!
//! Values that must round-trip exactly through the float-based JSON
//! parser are restricted: 64-bit digests travel as 16-hex-digit strings
//! ([`TraceEvent::hex`]); counts and sums stay far below 2^53.

use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

use crate::schema::{parse_flat_object, Scalar};

/// Schema identifier stamped into the leading `meta` line of a trace file.
pub const TRACE_SCHEMA: &str = "cold-trace/v1";

/// One scalar field value inside a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceValue {
    /// A string (also how 64-bit digests travel, as fixed-width hex).
    Str(String),
    /// A signed integer (per-family net changes can be negative).
    Int(i64),
    /// An unsigned integer (sweeps, shards, byte counts, cell sums).
    Uint(u64),
}

impl From<&str> for TraceValue {
    fn from(v: &str) -> Self {
        TraceValue::Str(v.to_owned())
    }
}

impl From<String> for TraceValue {
    fn from(v: String) -> Self {
        TraceValue::Str(v)
    }
}

impl From<u64> for TraceValue {
    fn from(v: u64) -> Self {
        TraceValue::Uint(v)
    }
}

impl From<usize> for TraceValue {
    fn from(v: usize) -> Self {
        TraceValue::Uint(v as u64)
    }
}

impl From<i64> for TraceValue {
    fn from(v: i64) -> Self {
        TraceValue::Int(v)
    }
}

/// Build one `(name, value)` trace field; sugar for event construction.
pub fn field(name: impl Into<String>, value: impl Into<TraceValue>) -> (String, TraceValue) {
    (name.into(), value.into())
}

/// Render a 64-bit digest the way trace events carry it: 16 hex digits.
pub fn hex_digest(digest: u64) -> String {
    format!("{digest:016x}")
}

/// One protocol event. `seq` is the emission index within its process
/// (restarts at zero after a crash/resume, so concatenated segment files
/// stay well-formed); `kind` names the protocol step; `fields` carry the
/// step's scalars in emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Emission index within the recording process.
    pub seq: u64,
    /// Protocol step name (`superstep_begin`, `shard_delta`, `ckpt_write`, …).
    pub kind: String,
    /// Scalar payload, in emission order.
    pub fields: Vec<(String, TraceValue)>,
}

impl TraceEvent {
    /// Look up a field by name.
    pub fn get(&self, name: &str) -> Option<&TraceValue> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// An unsigned-integer field (accepts a non-negative `Int` too).
    pub fn uint(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            TraceValue::Uint(v) => Some(*v),
            TraceValue::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// A signed-integer field (accepts an in-range `Uint` too).
    pub fn int(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            TraceValue::Int(v) => Some(*v),
            TraceValue::Uint(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// A string field.
    pub fn str_field(&self, name: &str) -> Option<&str> {
        match self.get(name)? {
            TraceValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A 64-bit digest field, parsed from its hex-string encoding.
    pub fn hex(&self, name: &str) -> Option<u64> {
        u64::from_str_radix(self.str_field(name)?, 16).ok()
    }

    /// Overwrite (or append) one field. Fault injectors use this to mutate
    /// recorded events.
    pub fn set(&mut self, name: &str, value: TraceValue) {
        match self.fields.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.fields.push((name.to_owned(), value)),
        }
    }
}

/// The append-only event buffer behind a trace-enabled [`crate::Metrics`]
/// handle. Shard workers never emit (all protocol steps happen on the
/// coordinating thread at barriers), but the mutex keeps the handle safe
/// to clone across threads like the rest of the registry.
#[derive(Debug, Default)]
pub struct TraceLog {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceLog {
    /// Append one event, assigning the next sequence number.
    pub fn record(&self, kind: &str, fields: Vec<(String, TraceValue)>) {
        let mut events = self.events.lock().expect("trace log poisoned");
        let seq = events.len() as u64;
        events.push(TraceEvent {
            seq,
            kind: kind.to_owned(),
            fields,
        });
    }

    /// Point-in-time copy of every recorded event, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace log poisoned").clone()
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render events as a `cold-trace/v1` JSON-lines document: a `meta` line
/// carrying the schema tag and event count, then one flat object per event.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"type\":\"meta\",\"schema\":\"{TRACE_SCHEMA}\",\"events\":{}}}\n",
        events.len()
    ));
    for ev in events {
        out.push_str(&format!(
            "{{\"seq\":{},\"event\":\"{}\"",
            ev.seq,
            escape_json(&ev.kind)
        ));
        for (name, value) in &ev.fields {
            out.push_str(&format!(",\"{}\":", escape_json(name)));
            match value {
                TraceValue::Str(s) => out.push_str(&format!("\"{}\"", escape_json(s))),
                TraceValue::Int(v) => out.push_str(&v.to_string()),
                TraceValue::Uint(v) => out.push_str(&v.to_string()),
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Write events to `path` as `cold-trace/v1` JSON lines.
pub fn write_jsonl(events: &[TraceEvent], path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(to_jsonl(events).as_bytes())?;
    file.flush()
}

fn scalar_to_value(s: &Scalar) -> Result<TraceValue, String> {
    match s {
        Scalar::Str(v) => Ok(TraceValue::Str(v.clone())),
        Scalar::Num(n) => {
            if !n.is_finite() || n.fract() != 0.0 {
                return Err(format!("non-integral number {n}"));
            }
            if *n < 0.0 {
                Ok(TraceValue::Int(*n as i64))
            } else {
                Ok(TraceValue::Uint(*n as u64))
            }
        }
        Scalar::Bool(_) | Scalar::Null => Err("booleans/nulls are not cold-trace/v1 values".into()),
    }
}

/// Parse a `cold-trace/v1` JSON-lines document back into events.
///
/// A crash/resume pair records one trace file per process; callers may
/// concatenate the segments before parsing, so any line after the first
/// may start a new segment with its own `meta` record (validated and
/// skipped — event sequence numbers restart with each segment).
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    let mut saw_meta = false;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let obj = parse_flat_object(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if let Some(kind) = obj.get("type").and_then(Scalar::as_str) {
            if kind != "meta" {
                return Err(format!("line {lineno}: unexpected record type \"{kind}\""));
            }
            let schema = obj
                .get("schema")
                .and_then(Scalar::as_str)
                .ok_or_else(|| format!("line {lineno}: meta record missing \"schema\""))?;
            if schema != TRACE_SCHEMA {
                return Err(format!(
                    "line {lineno}: schema \"{schema}\" is not \"{TRACE_SCHEMA}\""
                ));
            }
            saw_meta = true;
            continue;
        }
        if !saw_meta {
            return Err(format!("line {lineno}: first record must be \"meta\""));
        }
        let mut seq = None;
        let mut kind = None;
        let mut fields = Vec::new();
        // `parse_flat_object` returns a BTreeMap, so fields arrive in name
        // order rather than emission order; nothing downstream depends on
        // field order.
        for (name, value) in &obj {
            match name.as_str() {
                "seq" => {
                    let n = value
                        .as_num()
                        .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
                        .ok_or_else(|| format!("line {lineno}: bad \"seq\""))?;
                    seq = Some(n as u64);
                }
                "event" => {
                    kind = Some(
                        value
                            .as_str()
                            .ok_or_else(|| format!("line {lineno}: \"event\" must be a string"))?
                            .to_owned(),
                    );
                }
                _ => {
                    let v = scalar_to_value(value)
                        .map_err(|e| format!("line {lineno}: field \"{name}\": {e}"))?;
                    fields.push((name.clone(), v));
                }
            }
        }
        events.push(TraceEvent {
            seq: seq.ok_or_else(|| format!("line {lineno}: missing \"seq\""))?,
            kind: kind.ok_or_else(|| format!("line {lineno}: missing \"event\""))?,
            fields,
        });
    }
    if !saw_meta {
        return Err("no meta record found (empty file?)".to_owned());
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                seq: 0,
                kind: "superstep_begin".into(),
                fields: vec![field("sweep", 0u64), field("shards", 4u64)],
            },
            TraceEvent {
                seq: 1,
                kind: "shard_delta".into(),
                fields: vec![
                    field("sweep", 0u64),
                    field("shard", 1u64),
                    field("digest", hex_digest(0xdead_beef_0bad_f00d)),
                    field("net_n_ck", -3i64),
                ],
            },
        ]
    }

    #[test]
    fn jsonl_round_trip_is_exact() {
        let events = sample_events();
        let text = to_jsonl(&events);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), events.len());
        for (a, b) in parsed.iter().zip(&events) {
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.kind, b.kind);
            for (name, value) in &b.fields {
                assert_eq!(a.get(name), Some(value), "field {name}");
            }
        }
        assert_eq!(parsed[1].hex("digest"), Some(0xdead_beef_0bad_f00d));
        assert_eq!(parsed[1].int("net_n_ck"), Some(-3));
        assert_eq!(parsed[0].uint("shards"), Some(4));
    }

    #[test]
    fn concatenated_segments_parse_as_one_stream() {
        let a = to_jsonl(&sample_events());
        let b = to_jsonl(&sample_events());
        let all = parse_jsonl(&format!("{a}{b}")).unwrap();
        assert_eq!(all.len(), 4);
        // Sequence numbers restart at the segment boundary.
        assert_eq!(all[2].seq, 0);
    }

    #[test]
    fn rejects_wrong_schema_and_missing_meta() {
        assert!(parse_jsonl("{\"seq\":0,\"event\":\"x\"}\n").is_err());
        let bad = "{\"type\":\"meta\",\"schema\":\"cold-trace/v999\",\"events\":0}\n";
        assert!(parse_jsonl(bad).is_err());
        assert!(parse_jsonl("").is_err());
    }

    #[test]
    fn rejects_fractional_numbers_and_missing_keys() {
        let meta = format!("{{\"type\":\"meta\",\"schema\":\"{TRACE_SCHEMA}\",\"events\":1}}\n");
        for bad in [
            "{\"seq\":0.5,\"event\":\"x\"}",
            "{\"seq\":0,\"event\":\"x\",\"v\":1.25}",
            "{\"event\":\"x\"}",
            "{\"seq\":0}",
        ] {
            assert!(parse_jsonl(&format!("{meta}{bad}\n")).is_err(), "{bad}");
        }
    }

    #[test]
    fn trace_log_assigns_sequence_numbers() {
        let log = TraceLog::default();
        log.record("a", vec![field("x", 1u64)]);
        log.record("b", Vec::new());
        let events = log.events();
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].kind, "b");
    }

    #[test]
    fn set_overwrites_or_appends() {
        let mut ev = sample_events().remove(1);
        ev.set("shard", TraceValue::Uint(3));
        ev.set("extra", TraceValue::Int(-1));
        assert_eq!(ev.uint("shard"), Some(3));
        assert_eq!(ev.int("extra"), Some(-1));
    }
}
