//! Criterion micro-benchmarks of online prediction (the Fig. 15 claim that
//! COLD's query cost is `O(K·|w_d|)` thanks to the precomputed community
//! profiles) and of the offline precomputation itself.

use cold_baselines::ti::{TiConfig, TopicInfluence};
use cold_baselines::wtm::{WhomToMention, WtmWeights};
use cold_baselines::DiffusionScorer;
use cold_bench::workloads::{eval_world, fit_cold, BASE_SEED};
use cold_core::DiffusionPredictor;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn prediction_latency(criterion: &mut Criterion) {
    let data = eval_world(0.5);
    let model = fit_cold(&data, 6, 6, 60, BASE_SEED + 9100);
    let predictor = DiffusionPredictor::new(&model, 5).expect("top_comm >= 1");
    let ti = TopicInfluence::fit(
        &data.corpus,
        &data.cascades,
        &TiConfig::new(6),
        BASE_SEED + 9101,
    );
    let wtm = WhomToMention::fit(
        &data.corpus,
        &data.graph,
        &data.cascades,
        WtmWeights::default(),
    );
    let post = data.corpus.post(0);
    let words = &post.words;

    let mut group = criterion.benchmark_group("diffusion_query");
    group.bench_function("cold", |b| {
        b.iter(|| {
            black_box(
                predictor
                    .diffusion_score(black_box(0), black_box(1), words)
                    .expect("valid ids"),
            )
        })
    });
    group.bench_function("ti", |b| {
        b.iter(|| black_box(ti.diffusion_score(black_box(0), black_box(1), words)))
    });
    group.bench_function("wtm", |b| {
        b.iter(|| black_box(wtm.diffusion_score(black_box(0), black_box(1), words)))
    });
    group.finish();

    let mut group = criterion.benchmark_group("offline_precompute");
    group.sample_size(20);
    group.bench_function("top_comm_profiles", |b| {
        b.iter(|| black_box(DiffusionPredictor::new(&model, 5)))
    });
    group.finish();
}

fn link_and_time_queries(criterion: &mut Criterion) {
    let data = eval_world(0.5);
    let model = fit_cold(&data, 6, 6, 60, BASE_SEED + 9102);
    let post = data.corpus.post(0);
    let mut group = criterion.benchmark_group("other_queries");
    group.bench_function("link_probability", |b| {
        b.iter(|| {
            black_box(cold_core::predict::link_probability(
                &model,
                black_box(0),
                black_box(1),
            ))
        })
    });
    group.bench_function("time_slice", |b| {
        b.iter(|| {
            black_box(cold_core::predict::predict_time_slice(
                &model,
                black_box(post.author),
                &post.words,
            ))
        })
    });
    group.bench_function("post_log_likelihood", |b| {
        b.iter(|| {
            black_box(cold_core::predict::post_log_likelihood(
                &model,
                black_box(post.author),
                &post.words,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, prediction_latency, link_and_time_queries);
criterion_main!(benches);
