//! Criterion micro-benchmarks of the collapsed Gibbs sweep.
//!
//! The §4.2 complexity claim is that one sweep is linear in posts + words +
//! positive links; `sweep_scaling` measures the per-sweep cost at three
//! data sizes (2× apart) so the linearity is visible directly in the
//! criterion report. `sweep_components` isolates the post-only (NoLink)
//! sweep from the full sweep to show the network component's share.

use cold_bench::workloads::{cold_config, BASE_SEED};
use cold_core::{ColdConfig, GibbsSampler, SamplerKernel};
use cold_data::{generate, SocialDataset, WorldConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_world(scale: f64) -> SocialDataset {
    let mut config = WorldConfig {
        num_users: 200,
        num_communities: 6,
        num_topics: 6,
        num_time_slices: 24,
        vocab_size: 600,
        posts_per_user: 15.0,
        ..WorldConfig::default()
    };
    config = config.scaled(scale);
    generate(&config, BASE_SEED + 9000)
}

fn sweep_scaling(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("sweep_scaling");
    group.sample_size(20);
    for &scale in &[0.25f64, 0.5, 1.0] {
        let data = bench_world(scale);
        let label = format!(
            "{}posts_{}links",
            data.corpus.num_posts(),
            data.graph.num_edges()
        );
        group.bench_with_input(BenchmarkId::from_parameter(label), &data, |b, data| {
            let config = cold_config(6, 6, 10, data);
            let mut sampler =
                GibbsSampler::new(&data.corpus, &data.graph, config, BASE_SEED + 9001);
            b.iter(|| sampler.sweep());
        });
    }
    group.finish();
}

fn sweep_components(criterion: &mut Criterion) {
    let data = bench_world(0.5);
    let mut group = criterion.benchmark_group("sweep_components");
    group.sample_size(20);
    group.bench_function("full", |b| {
        let config = cold_config(6, 6, 10, &data);
        let mut sampler = GibbsSampler::new(&data.corpus, &data.graph, config, BASE_SEED + 9002);
        b.iter(|| sampler.sweep());
    });
    group.bench_function("nolink", |b| {
        let config = ColdConfig::builder(6, 6)
            .iterations(10)
            .without_links()
            .build(&data.corpus, &data.graph);
        let mut sampler = GibbsSampler::new(&data.corpus, &data.graph, config, BASE_SEED + 9003);
        b.iter(|| sampler.sweep());
    });
    group.finish();
}

/// Per-kernel sweep cost on the mid-size world, for each sweep variant
/// (posts only, posts + links, posts + links + explicit negatives). The
/// `bench_sampler` binary reports the same comparison as throughput and
/// persists it to `BENCH_sampler.json`.
fn sweep_kernels(criterion: &mut Criterion) {
    let data = bench_world(0.5);
    let mut group = criterion.benchmark_group("sweep_kernels");
    group.sample_size(20);
    let kernels = [
        SamplerKernel::Exact,
        SamplerKernel::CachedLog,
        SamplerKernel::AliasMh,
    ];
    for kernel in kernels {
        for variant in ["posts", "links", "negatives"] {
            let label = format!("{variant}/{kernel:?}");
            group.bench_function(BenchmarkId::from_parameter(label), |b| {
                let builder = ColdConfig::builder(6, 6).iterations(10).kernel(kernel);
                let builder = match variant {
                    "posts" => builder.without_links(),
                    "negatives" => builder.explicit_negatives(3.0),
                    _ => builder,
                };
                let config = builder.build(&data.corpus, &data.graph);
                let mut sampler =
                    GibbsSampler::new(&data.corpus, &data.graph, config, BASE_SEED + 9004);
                b.iter(|| sampler.sweep());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, sweep_scaling, sweep_components, sweep_kernels);
criterion_main!(benches);
