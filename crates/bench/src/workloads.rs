//! Standard worlds and model-fitting recipes shared across experiments.

use cold_core::{ColdConfig, ColdModel, GibbsSampler, Hyperparams};
use cold_data::{generate, SocialDataset, WorldConfig};

/// Seed shared by all experiments (figures vary their own sub-seeds).
pub const BASE_SEED: u64 = 20150531; // SIGMOD'15 opening day

/// The evaluation world: the laptop-scale stand-in for the paper's
/// Dataset 1 (53K users / 11M posts there; ~300 users / ~6K posts here,
/// scaled by `scale`).
pub fn eval_world(scale: f64) -> SocialDataset {
    let mut config = WorldConfig {
        num_users: 300,
        num_communities: 6,
        num_topics: 6,
        num_time_slices: 24,
        vocab_size: 900,
        posts_per_user: 20.0,
        words_per_post: 8.0,
        link_candidates_per_user: 80,
        eta_intra: 0.40,
        eta_inter: 0.01,
        weak_tie_strength: 0.45,
        membership_focus: 0.92,
        interest_focus: 0.85,
        burst_lag: 4,
        burst_width: 1.6,
        word_noise: 0.06,
        // Sparse, noisy per-pair histories: the paper's regime (individual
        // records are "volatile" and "sparse", §6.3) — a dense replay would
        // hand memorization-based baselines (WTM's relationship feature,
        // TI's pair counts) an advantage the real setting does not offer.
        retweet_noise: 0.10,
        retweet_amplification: 4.0,
        cascade_fraction: 0.12,
    };
    config = config.scaled(scale);
    generate(&config, BASE_SEED)
}

/// The scaling series for Fig. 13a: the Dataset-2 stand-in at fractional
/// sizes. `fraction` scales users (and with them posts/links).
pub fn scaling_world(fraction: f64) -> SocialDataset {
    let mut config = WorldConfig {
        num_users: 600,
        num_communities: 6,
        num_topics: 6,
        num_time_slices: 24,
        vocab_size: 1200,
        posts_per_user: 18.0,
        link_candidates_per_user: 60,
        ..eval_world_config()
    };
    config = config.scaled(fraction);
    generate(&config, BASE_SEED + 7)
}

fn eval_world_config() -> WorldConfig {
    WorldConfig {
        num_users: 300,
        num_communities: 6,
        num_topics: 6,
        num_time_slices: 24,
        vocab_size: 900,
        posts_per_user: 20.0,
        words_per_post: 8.0,
        link_candidates_per_user: 80,
        eta_intra: 0.40,
        eta_inter: 0.01,
        weak_tie_strength: 0.45,
        membership_focus: 0.92,
        interest_focus: 0.85,
        burst_lag: 4,
        burst_width: 1.6,
        word_noise: 0.06,
        retweet_noise: 0.05,
        retweet_amplification: 4.0,
        cascade_fraction: 0.30,
    }
}

/// Evaluation hyper-parameters for COLD at `(C, K)` on `data`.
///
/// These follow the paper's recipe with two deviations documented in
/// DESIGN.md: `ρ` and `α` are set to O(1) values (the paper's `50/C` is
/// calibrated for `C = 100`; at the reduced latent sizes used here it
/// over-smooths), and the negative-link weight `κ = 5` (the paper leaves
/// κ tunable).
pub fn cold_hyper(_c: usize, _k: usize, _data: &SocialDataset) -> Hyperparams {
    // λ0 is a small smoothing constant because the standard recipe models
    // a subsample of negative pairs explicitly (see `cold_config`).
    Hyperparams {
        alpha: 1.0,
        beta: 0.01,
        epsilon: 0.01,
        rho: 1.0,
        lambda0: 0.1,
        lambda1: 0.1,
    }
}

/// The standard COLD training configuration used by the experiments.
pub fn cold_config(c: usize, k: usize, iterations: usize, data: &SocialDataset) -> ColdConfig {
    ColdConfig::builder(c, k)
        .iterations(iterations)
        .burn_in(iterations.saturating_sub(20).max(1))
        .sample_lag(4)
        .explicit_negatives(3.0)
        .hyperparams(cold_hyper(c, k, data))
        .build(&data.corpus, &data.graph)
}

/// Fit COLD with the standard recipe.
pub fn fit_cold(
    data: &SocialDataset,
    c: usize,
    k: usize,
    iterations: usize,
    seed: u64,
) -> ColdModel {
    GibbsSampler::new(
        &data.corpus,
        &data.graph,
        cold_config(c, k, iterations, data),
        seed,
    )
    .run()
}

/// Fit COLD with `chains` independent restarts, keeping the chain with the
/// best final training log-likelihood. Collapsed Gibbs on mid-sized data
/// occasionally loses a topic to a degenerate mode; restart selection is
/// the standard cure and the likelihood reliably detects the failure.
pub fn fit_cold_best(
    data: &SocialDataset,
    c: usize,
    k: usize,
    iterations: usize,
    seed: u64,
    chains: usize,
) -> ColdModel {
    assert!(chains >= 1);
    let mut best: Option<(f64, ColdModel)> = None;
    for chain in 0..chains {
        let sampler = GibbsSampler::new(
            &data.corpus,
            &data.graph,
            cold_config(c, k, iterations, data),
            seed + 1_000 * chain as u64,
        );
        let (model, trace) = sampler.run_traced();
        let ll = trace
            .log_likelihood
            .last()
            .map_or(f64::NEG_INFINITY, |&(_, ll)| ll);
        if best.as_ref().is_none_or(|&(b, _)| ll > b) {
            best = Some((ll, model));
        }
    }
    best.expect("at least one chain").1
}

/// Fit the COLD-NoLink ablation (§6.1 method 4).
pub fn fit_cold_nolink(
    data: &SocialDataset,
    c: usize,
    k: usize,
    iterations: usize,
    seed: u64,
) -> ColdModel {
    let config = ColdConfig::builder(c, k)
        .iterations(iterations)
        .burn_in(iterations.saturating_sub(20).max(1))
        .sample_lag(4)
        .hyperparams(cold_hyper(c, k, data))
        .without_links()
        .build(&data.corpus, &data.graph);
    GibbsSampler::new(&data.corpus, &data.graph, config, seed).run()
}

/// Map each *fitted* topic to the planted topic whose vocabulary block it
/// loads most — used when a figure needs to talk about "the sports topic".
pub fn fitted_topic_for_planted(model: &ColdModel, data: &SocialDataset, planted: usize) -> usize {
    let v = data.corpus.vocab_size();
    let k_star = data.truth.num_topics;
    let lo = planted * v / k_star;
    let hi = (planted + 1) * v / k_star;
    (0..model.dims().num_topics)
        .max_by(|&a, &b| {
            let ma: f64 = model.topic_words(a)[lo..hi].iter().sum();
            let mb: f64 = model.topic_words(b)[lo..hi].iter().sum();
            ma.partial_cmp(&mb).expect("finite")
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_world_is_reasonably_sized() {
        let data = eval_world(0.3);
        assert!(data.corpus.num_posts() > 500);
        assert!(data.graph.num_edges() > 100);
        assert!(!data.cascades.is_empty());
    }

    #[test]
    fn scaling_series_grows_with_fraction() {
        let small = scaling_world(0.1);
        let big = scaling_world(0.2);
        assert!(big.corpus.num_posts() > small.corpus.num_posts());
        assert!(big.graph.num_edges() > small.graph.num_edges());
    }

    #[test]
    fn topic_mapping_is_a_valid_index() {
        let data = eval_world(0.2);
        let model = fit_cold(&data, 4, 4, 30, 1);
        for planted in 0..data.truth.num_topics {
            assert!(fitted_topic_for_planted(&model, &data, planted) < 4);
        }
    }
}
