//! The four evaluation tasks of §6, implemented once.
//!
//! Every task takes *scoring closures* so COLD and every baseline are
//! measured by exactly the same protocol; the figures only differ in which
//! models they plug in.

use cold_data::{RetweetTuple, SocialDataset};
use cold_eval::{averaged_auc, perplexity, ranking_auc};
use cold_graph::sampling::sample_negative_links;
use cold_math::rng::seeded_rng;
use cold_text::PostId;
use rand::seq::SliceRandom;

/// A train/test split of the dataset's posts (for perplexity / time-stamp
/// prediction). Links are never held out by this split.
pub struct PostSplit {
    /// Post ids to train on.
    pub train: Vec<PostId>,
    /// Held-out post ids.
    pub test: Vec<PostId>,
}

/// Split posts 80/20, deterministically per `seed`.
pub fn post_split(data: &SocialDataset, seed: u64) -> PostSplit {
    let mut ids: Vec<PostId> = (0..data.corpus.num_posts() as PostId).collect();
    let mut rng = seeded_rng(seed);
    ids.shuffle(&mut rng);
    let cut = ids.len() / 5;
    PostSplit {
        test: ids[..cut].to_vec(),
        train: ids[cut..].to_vec(),
    }
}

/// Held-out perplexity (§6.2, Fig. 9): `score(author, words) -> ln p(w)`.
pub fn perplexity_task(
    data: &SocialDataset,
    test: &[PostId],
    score: impl Fn(u32, &[u32]) -> f64,
) -> f64 {
    let per_post: Vec<(f64, usize)> = test
        .iter()
        .map(|&d| {
            let post = data.corpus.post(d);
            (score(post.author, &post.words), post.len())
        })
        .collect();
    perplexity(&per_post).expect("held-out set must score finitely")
}

/// Link prediction AUC (§6.2, Fig. 10): 20% of positives held out, matched
/// with an equal number of sampled negatives, ranked by `score(i, i')`.
pub fn link_auc_task(
    data: &SocialDataset,
    held_out: &[(u32, u32)],
    seed: u64,
    score: impl Fn(u32, u32) -> f64,
) -> f64 {
    let mut rng = seeded_rng(seed);
    let negatives = sample_negative_links(&mut rng, &data.graph, held_out.len());
    let mut scored: Vec<(f64, bool)> = Vec::with_capacity(held_out.len() * 2);
    for &(i, j) in held_out {
        scored.push((score(i, j), true));
    }
    for &(i, j) in &negatives {
        scored.push((score(i, j), false));
    }
    ranking_auc(&scored).expect("both classes present")
}

/// Hold out 20% of the positive links; returns `(training graph, held out)`.
pub fn link_split(data: &SocialDataset, seed: u64) -> (cold_graph::CsrGraph, Vec<(u32, u32)>) {
    let mut rng = seeded_rng(seed);
    let mut edges: Vec<(u32, u32)> = data.graph.edges().collect();
    edges.shuffle(&mut rng);
    let cut = edges.len() / 5;
    let held = edges[..cut].to_vec();
    let train = cold_graph::CsrGraph::from_edges(data.graph.num_nodes(), &edges[cut..]);
    (train, held)
}

/// Time-stamp prediction accuracies at each tolerance (§6.3, Fig. 11):
/// `predict(author, words) -> slice`.
pub fn timestamp_task(
    data: &SocialDataset,
    test: &[PostId],
    tolerances: &[u16],
    predict: impl Fn(u32, &[u32]) -> u16,
) -> Vec<f64> {
    let pairs: Vec<(u16, u16)> = test
        .iter()
        .map(|&d| {
            let post = data.corpus.post(d);
            (predict(post.author, &post.words), post.time)
        })
        .collect();
    tolerances
        .iter()
        .map(|&tol| cold_eval::tolerance_accuracy(&pairs, tol).unwrap_or(0.0))
        .collect()
}

/// Diffusion prediction averaged AUC (§6.3, Fig. 12):
/// `score(publisher, consumer, words)` over held-out retweet tuples.
pub fn diffusion_auc_task(
    data: &SocialDataset,
    test_tuples: &[RetweetTuple],
    score: impl Fn(u32, u32, &[u32]) -> f64,
) -> f64 {
    let groups: Vec<Vec<(f64, bool)>> = test_tuples
        .iter()
        .filter(|t| t.is_scorable())
        .map(|t| {
            let words = &data.corpus.post(t.post).words;
            let mut group = Vec::with_capacity(t.audience());
            for &r in &t.retweeters {
                group.push((score(t.publisher, r, words), true));
            }
            for &g in &t.ignorers {
                group.push((score(t.publisher, g, words), false));
            }
            group
        })
        .collect();
    averaged_auc(&groups).expect("at least one scorable tuple")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::eval_world;

    #[test]
    fn post_split_is_a_partition() {
        let data = eval_world(0.2);
        let split = post_split(&data, 1);
        assert_eq!(
            split.train.len() + split.test.len(),
            data.corpus.num_posts()
        );
        let mut all = split.train.clone();
        all.extend(&split.test);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), data.corpus.num_posts());
    }

    #[test]
    fn link_split_preserves_counts() {
        let data = eval_world(0.2);
        let (train, held) = link_split(&data, 2);
        assert_eq!(train.num_edges() + held.len(), data.graph.num_edges());
    }

    #[test]
    fn oracle_scorers_win_their_tasks() {
        // A scorer that uses the ground truth should beat a random scorer.
        let data = eval_world(0.2);
        let (_, held) = link_split(&data, 3);
        let truth_auc = link_auc_task(&data, &held, 4, |i, j| {
            let pi = data.truth.pi_row(i);
            let pj = data.truth.pi_row(j);
            (0..data.truth.num_communities)
                .flat_map(|c| (0..data.truth.num_communities).map(move |c2| (c, c2)))
                .map(|(c, c2)| pi[c] * pj[c2] * data.truth.eta_at(c, c2))
                .sum()
        });
        let random_auc = link_auc_task(&data, &held, 4, |i, j| ((i * 31 + j) % 97) as f64);
        assert!(truth_auc > 0.75, "oracle link AUC {truth_auc}");
        assert!(
            (random_auc - 0.5).abs() < 0.1,
            "random link AUC {random_auc}"
        );
    }

    #[test]
    fn diffusion_task_scores_oracle_above_random() {
        let data = eval_world(0.2);
        let truth = &data.truth;
        let auc = diffusion_auc_task(&data, &data.cascades, |p, c, words| {
            let _ = words;
            let pi_c = truth.pi_row(c);
            let pi_p = truth.pi_row(p);
            let mut acc = 0.0;
            for k in 0..truth.num_topics {
                for cc in 0..truth.num_communities {
                    for c2 in 0..truth.num_communities {
                        acc += pi_p[cc] * pi_c[c2] * truth.zeta(k, cc, c2);
                    }
                }
            }
            acc
        });
        assert!(auc > 0.55, "oracle diffusion AUC {auc}");
    }
}
