//! Run every experiment binary in sequence at the default scale,
//! regenerating `results/*.json`. Equivalent to invoking each `fig*`
//! binary by hand.

use std::process::Command;

const FIGURES: &[&str] = &[
    "fig05_diffusion_graph",
    "fig06_fluctuation",
    "fig07_time_lag",
    "fig08_topic_words",
    "fig09_perplexity",
    "fig10_link_auc",
    "fig11_timestamp",
    "fig12_diffusion_auc",
    "fig13_scaling",
    "fig14_train_time",
    "fig15_predict_time",
    "fig16_influence",
    "fig17_19_sensitivity",
    "fig_ablation",
];

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let scale = cold_bench::scale_arg();
    let mut failed: Vec<&str> = Vec::new();
    for fig in FIGURES {
        println!("\n=== {fig} ===");
        let status = Command::new(exe_dir.join(fig))
            .args(["--scale", &scale.to_string()])
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{fig} exited with {s}");
                failed.push(fig);
            }
            Err(err) => {
                eprintln!("could not launch {fig}: {err} (build with `cargo build --release -p cold-bench --bins` first)");
                failed.push(fig);
            }
        }
    }
    if failed.is_empty() {
        println!(
            "\nall {} experiments completed; see results/",
            FIGURES.len()
        );
    } else {
        eprintln!("\nfailed: {failed:?}");
        std::process::exit(1);
    }
}
