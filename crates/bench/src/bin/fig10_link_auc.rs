//! Fig. 10 — link-prediction AUC for COLD, PMTLM and MMSB (§6.2).
//! Paper shape: COLD best, PMTLM close behind, MMSB clearly lower
//! (content helps network modeling).

use cold_baselines::mmsb::{Mmsb, MmsbConfig};
use cold_baselines::pmtlm::{Pmtlm, PmtlmConfig};
use cold_baselines::LinkScorer;
use cold_bench::tasks::{link_auc_task, link_split};
use cold_bench::workloads::{eval_world, fit_cold_best, BASE_SEED};
use cold_core::predict::link_probability;
use cold_eval::{ExperimentReport, Series};

fn main() {
    let scale = cold_bench::scale_arg();
    let data = eval_world(scale);
    println!("fig10 world: {}", data.summary());
    let (train_graph, held_out) = link_split(&data, BASE_SEED + 10);
    let mut train_data = data.clone();
    train_data.graph = train_graph;

    let (c, k) = (6usize, 6usize);
    let cold = fit_cold_best(&train_data, c, k, 300, BASE_SEED + 100, 5);
    let auc_cold = link_auc_task(&data, &held_out, BASE_SEED + 101, |i, j| {
        link_probability(&cold, i, j)
    });

    let pmtlm = Pmtlm::fit(
        &train_data.corpus,
        &train_data.graph,
        &PmtlmConfig {
            iterations: 150,
            ..PmtlmConfig::new(c, &train_data.graph)
        },
        BASE_SEED + 102,
    );
    let auc_pmtlm = link_auc_task(&data, &held_out, BASE_SEED + 101, |i, j| {
        pmtlm.link_score(i, j)
    });

    let mmsb = Mmsb::fit(
        &train_data.graph,
        &MmsbConfig::new(c, &train_data.graph),
        BASE_SEED + 103,
    );
    let auc_mmsb = link_auc_task(&data, &held_out, BASE_SEED + 101, |i, j| {
        mmsb.link_score(i, j)
    });

    println!("COLD {auc_cold:.3}  PMTLM {auc_pmtlm:.3}  MMSB {auc_mmsb:.3}");

    let mut report = ExperimentReport::new(
        "fig10_link_auc",
        "Link prediction AUC (20% links held out vs sampled negatives)",
        "method",
        "AUC",
        vec!["COLD".into(), "PMTLM".into(), "MMSB".into()],
    );
    report.push_series(Series::new("AUC", vec![auc_cold, auc_pmtlm, auc_mmsb]));
    report.note(format!("world: {}", data.summary()));
    report.note("paper: Fig. 10 — COLD best, PMTLM close, MMSB lowest".to_owned());
    cold_bench::emit(&report);
}
