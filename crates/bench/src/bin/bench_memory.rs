//! Memory-footprint study of the counter-storage backends.
//!
//! Scales the wide-vocabulary bench world 10×–100× and records, per scale,
//! the peak counter bytes under the dense, sparse, and auto backends, the
//! per-family breakdown (cells, occupancy, bytes per backend), bytes per
//! user / per post, and the sparse-vs-dense ms/sweep ratio. The latent
//! dimensions are deliberately larger than the quality experiments use
//! (`C = 16`, `K = 64`): million-user deployments run wide models, and a
//! wide `K × V` block is exactly where occupancy collapses and the sparse
//! backend pays off.
//!
//! Also times `ColdModel` artifact loading — JSON vs the `cold-model/v1`
//! binary — on the 10× world's model.
//!
//! Writes `BENCH_memory.json` at the workspace root; `--quick` runs the 1×
//! world only and writes `BENCH_memory_quick.json` so CI smoke runs never
//! clobber the committed headline.

use cold_bench::workloads::{cold_hyper, BASE_SEED};
use cold_core::{ColdConfig, ColdModel, CounterStorage, GibbsSampler, ModelFormat, SamplerKernel};
use cold_data::{generate, SocialDataset, WorldConfig};
use serde::Serialize;
use std::time::Instant;

/// Latent dimensions for the memory study (wide, unlike the C=6/K=16
/// quality runs — see module docs).
const C: usize = 16;
const K: usize = 64;

#[derive(Serialize)]
struct FamilyRow {
    family: String,
    cells: u64,
    nonzero: u64,
    occupancy: f64,
    dense_bytes: u64,
    sparse_bytes: u64,
    /// Bytes under the `auto` policy, with the backend it picked.
    auto_bytes: u64,
    auto_backend: String,
}

#[derive(Serialize)]
struct ScalePoint {
    scale: f64,
    num_users: u32,
    num_posts: usize,
    num_tokens: usize,
    vocab_size: usize,
    /// Peak counter bytes per backend (post-init; counts only move between
    /// cells afterwards, so init occupancy is the steady-state footprint).
    dense_counter_bytes: u64,
    sparse_counter_bytes: u64,
    auto_counter_bytes: u64,
    dense_over_sparse: f64,
    dense_over_auto: f64,
    bytes_per_user_dense: f64,
    bytes_per_user_auto: f64,
    bytes_per_post_dense: f64,
    bytes_per_post_auto: f64,
    ms_per_sweep_dense: f64,
    ms_per_sweep_sparse: f64,
    ms_per_sweep_auto: f64,
    /// Sweep-time cost of the all-sparse backend (1.0 = free).
    sweep_ratio_sparse_vs_dense: f64,
    /// Sweep-time cost of the auto policy — sparse only where occupancy
    /// says it pays (the configuration a memory-lean deployment runs).
    sweep_ratio_auto_vs_dense: f64,
    families: Vec<FamilyRow>,
}

#[derive(Serialize)]
struct ModelLoadTiming {
    scale: f64,
    json_bytes: u64,
    binary_bytes: u64,
    json_load_ms: f64,
    binary_load_ms: f64,
    /// JSON load time over binary load time (higher = binary wins).
    speedup: f64,
}

#[derive(Serialize)]
struct BenchReport {
    world: String,
    communities: usize,
    topics: usize,
    points: Vec<ScalePoint>,
    model_load: ModelLoadTiming,
    headline: String,
}

/// The wide-vocab bench world (same base as `bench_parallel`) at `scale`.
fn world(scale: f64) -> SocialDataset {
    let config = WorldConfig {
        num_users: 240,
        num_communities: 6,
        num_topics: 16,
        num_time_slices: 24,
        vocab_size: 12000,
        posts_per_user: 12.0,
        words_per_post: 10.0,
        ..WorldConfig::default()
    }
    .scaled(scale);
    generate(&config, BASE_SEED + 9300)
}

fn config_for(data: &SocialDataset, storage: CounterStorage) -> ColdConfig {
    ColdConfig::builder(C, K)
        .iterations(1_000_000) // driven manually, never run to completion
        .explicit_negatives(3.0)
        .hyperparams(cold_hyper(C, K, data))
        .kernel(SamplerKernel::CachedLog)
        .counter_storage(storage)
        .build(&data.corpus, &data.graph)
}

/// ms per sweep for the dense, sparse, and auto backends, measured
/// *interleaved*: all three samplers are built and warmed, then timed
/// sweeps alternate dense → sparse → auto for `timed` rounds and each
/// backend reports its minimum. Sequential per-backend blocks are useless
/// for ratios on shared machines — CPU frequency, allocator warm-up and
/// neighbour load drift by tens of percent over a run, and whichever
/// backend is measured first eats the cold phase. Interleaving puts every
/// backend in the same weather; the min damps the residual noise.
///
/// Each timed sweep is preceded by one untimed sweep of the *same*
/// sampler: the three samplers share the LLC, so without it the dense
/// sampler's ~60 MiB counter stream evicts the lean backends' counters
/// between their turns and charges them a re-fault bill a single-backend
/// deployment never pays. The warm sweep restores each backend's natural
/// cache state before its measurement.
fn sweep_times(data: &SocialDataset, burn_in: usize, timed: usize) -> (f64, f64, f64) {
    let storages = [
        CounterStorage::Dense,
        CounterStorage::Sparse,
        CounterStorage::Auto,
    ];
    let mut samplers: Vec<_> = storages
        .iter()
        .map(|&s| {
            GibbsSampler::new(
                &data.corpus,
                &data.graph,
                config_for(data, s),
                BASE_SEED + 9301,
            )
        })
        .collect();
    for sampler in &mut samplers {
        for _ in 0..burn_in {
            sampler.sweep();
        }
    }
    let mut best = [f64::INFINITY; 3];
    for _ in 0..timed {
        for (i, sampler) in samplers.iter_mut().enumerate() {
            sampler.sweep(); // untimed: restore this backend's cache state
            let start = Instant::now();
            sampler.sweep();
            best[i] = best[i].min(1e3 * start.elapsed().as_secs_f64());
        }
    }
    (best[0], best[1], best[2])
}

fn measure_scale(scale: f64, burn_in: usize, timed: usize) -> ScalePoint {
    let data = world(scale);
    println!(
        "scale {scale}: {} users, {} posts, {} tokens, vocab {}",
        data.corpus.num_users(),
        data.corpus.num_posts(),
        data.corpus.num_tokens(),
        data.corpus.vocab_size()
    );

    // One dense state for the footprint census; re-backed clones measure
    // the other policies on bit-identical counts.
    let probe = GibbsSampler::new(
        &data.corpus,
        &data.graph,
        config_for(&data, CounterStorage::Dense),
        BASE_SEED + 9301,
    );
    let dense_state = probe.state();
    let mut alt = dense_state.clone();
    alt.select_storage(CounterStorage::Sparse);
    let sparse_bytes_by_family: Vec<u64> = alt
        .families()
        .iter()
        .map(|(_, s)| s.heap_bytes() as u64)
        .collect();
    alt.select_storage(CounterStorage::Auto);

    let mut families = Vec::new();
    for (i, &(name, dense)) in dense_state.families().iter().enumerate() {
        let (_, auto) = alt.families()[i];
        families.push(FamilyRow {
            family: name.to_owned(),
            cells: dense.len() as u64,
            nonzero: dense.nnz() as u64,
            occupancy: dense.occupancy(),
            dense_bytes: dense.heap_bytes() as u64,
            sparse_bytes: sparse_bytes_by_family[i],
            auto_bytes: auto.heap_bytes() as u64,
            auto_backend: if auto.is_sparse() { "sparse" } else { "dense" }.to_owned(),
        });
    }
    let dense_counter_bytes: u64 = families.iter().map(|f| f.dense_bytes).sum();
    let sparse_counter_bytes: u64 = families.iter().map(|f| f.sparse_bytes).sum();
    let auto_counter_bytes: u64 = families.iter().map(|f| f.auto_bytes).sum();
    drop(alt);
    drop(probe);

    let (ms_dense, ms_sparse, ms_auto) = sweep_times(&data, burn_in, timed);

    let users = data.corpus.num_users();
    let posts = data.corpus.num_posts();
    let point = ScalePoint {
        scale,
        num_users: users,
        num_posts: posts,
        num_tokens: data.corpus.num_tokens(),
        vocab_size: data.corpus.vocab_size(),
        dense_counter_bytes,
        sparse_counter_bytes,
        auto_counter_bytes,
        dense_over_sparse: dense_counter_bytes as f64 / sparse_counter_bytes as f64,
        dense_over_auto: dense_counter_bytes as f64 / auto_counter_bytes as f64,
        bytes_per_user_dense: dense_counter_bytes as f64 / users as f64,
        bytes_per_user_auto: auto_counter_bytes as f64 / users as f64,
        bytes_per_post_dense: dense_counter_bytes as f64 / posts as f64,
        bytes_per_post_auto: auto_counter_bytes as f64 / posts as f64,
        ms_per_sweep_dense: ms_dense,
        ms_per_sweep_sparse: ms_sparse,
        ms_per_sweep_auto: ms_auto,
        sweep_ratio_sparse_vs_dense: ms_sparse / ms_dense,
        sweep_ratio_auto_vs_dense: ms_auto / ms_dense,
        families,
    };
    println!(
        "  counters: dense {:.1} MiB, sparse {:.1} MiB ({:.1}x), auto {:.1} MiB ({:.1}x); \
         sweep {:.0} ms dense, {:.0} ms sparse ({:.2}x), {:.0} ms auto ({:.2}x)",
        point.dense_counter_bytes as f64 / (1 << 20) as f64,
        point.sparse_counter_bytes as f64 / (1 << 20) as f64,
        point.dense_over_sparse,
        point.auto_counter_bytes as f64 / (1 << 20) as f64,
        point.dense_over_auto,
        point.ms_per_sweep_dense,
        point.ms_per_sweep_sparse,
        point.sweep_ratio_sparse_vs_dense,
        point.ms_per_sweep_auto,
        point.sweep_ratio_auto_vs_dense,
    );
    point
}

/// Fit a short-run model on `data`, save it both ways, time both loads.
fn model_load_timing(data: &SocialDataset, scale: f64) -> ModelLoadTiming {
    let config = ColdConfig::builder(C, K)
        .iterations(6)
        .burn_in(4)
        .sample_lag(1)
        .explicit_negatives(3.0)
        .hyperparams(cold_hyper(C, K, data))
        .counter_storage(CounterStorage::Auto)
        .build(&data.corpus, &data.graph);
    let model = GibbsSampler::new(&data.corpus, &data.graph, config, BASE_SEED + 9302).run();

    let dir = std::env::temp_dir().join("cold_bench_memory");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json_path = dir.join("model.json");
    let bin_path = dir.join("model.bin");
    model
        .save_as(json_path.to_str().unwrap(), ModelFormat::Json)
        .expect("save json");
    model
        .save_as(bin_path.to_str().unwrap(), ModelFormat::Binary)
        .expect("save binary");
    let json_bytes = std::fs::metadata(&json_path).expect("stat").len();
    let binary_bytes = std::fs::metadata(&bin_path).expect("stat").len();

    // One JSON rep (it is the slow path by construction), best of three
    // binary reps.
    let t = Instant::now();
    let from_json = ColdModel::load(json_path.to_str().unwrap()).expect("load json");
    let json_load_ms = 1e3 * t.elapsed().as_secs_f64();
    let mut binary_load_ms = f64::INFINITY;
    let mut from_bin = None;
    for _ in 0..3 {
        let t = Instant::now();
        from_bin = Some(ColdModel::load(bin_path.to_str().unwrap()).expect("load binary"));
        binary_load_ms = binary_load_ms.min(1e3 * t.elapsed().as_secs_f64());
    }
    assert!(
        from_bin.expect("loaded").to_json() == from_json.to_json(),
        "binary and JSON artifacts disagree"
    );
    let _ = std::fs::remove_file(&json_path);
    let _ = std::fs::remove_file(&bin_path);

    let timing = ModelLoadTiming {
        scale,
        json_bytes,
        binary_bytes,
        json_load_ms,
        binary_load_ms,
        speedup: json_load_ms / binary_load_ms,
    };
    println!(
        "model artifact: json {:.1} MiB loads in {:.0} ms, binary {:.1} MiB in {:.0} ms ({:.1}x)",
        json_bytes as f64 / (1 << 20) as f64,
        json_load_ms,
        binary_bytes as f64 / (1 << 20) as f64,
        binary_load_ms,
        timing.speedup,
    );
    timing
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // (scale, warm-up sweeps, timed sweeps): fewer sweeps as worlds grow.
    let grid: &[(f64, usize, usize)] = if quick {
        &[(1.0, 1, 2)]
    } else {
        &[(10.0, 3, 5), (30.0, 2, 3), (100.0, 1, 2)]
    };
    let out_file = if quick {
        "../BENCH_memory_quick.json"
    } else {
        "../BENCH_memory.json"
    };

    let points: Vec<ScalePoint> = grid
        .iter()
        .map(|&(scale, burn_in, timed)| measure_scale(scale, burn_in, timed))
        .collect();

    // Artifact timing on the first (headline) scale's world.
    let timing_scale = grid[0].0;
    let model_load = model_load_timing(&world(timing_scale), timing_scale);

    let head = &points[0];
    let headline = format!(
        "at {}x the bench world the occupancy-selected (auto) backend holds the counters in \
         {:.1}x fewer bytes than dense ({:.1} MiB vs {:.1} MiB, {:.0} B/user vs {:.0} B/user) \
         at {:.2}x the sweep time; the cold-model/v1 binary artifact loads {:.1}x faster than JSON",
        head.scale,
        head.dense_over_auto,
        head.auto_counter_bytes as f64 / (1 << 20) as f64,
        head.dense_counter_bytes as f64 / (1 << 20) as f64,
        head.bytes_per_user_auto,
        head.bytes_per_user_dense,
        head.sweep_ratio_auto_vs_dense,
        model_load.speedup,
    );
    println!("\n{headline}");
    if !quick {
        if head.dense_over_auto < 4.0 {
            eprintln!("warning: counter-byte reduction below the 4x target");
        }
        // The acceptance bar applies to the auto policy — sparse only for
        // the families occupancy selects it for, i.e. the configuration a
        // memory-lean deployment actually runs. The all-sparse ratio is
        // reported alongside as the stress ceiling.
        if head.sweep_ratio_auto_vs_dense > 1.15 {
            eprintln!("warning: auto-policy sweep-time overhead above the 1.15x target");
        }
        if model_load.speedup < 10.0 {
            eprintln!("warning: binary load speedup below the 10x target");
        }
    }

    let report = BenchReport {
        world: format!("wide-vocab bench world, C={C} K={K}"),
        communities: C,
        topics: K,
        points,
        model_load,
        headline,
    };
    let path = cold_bench::results_dir().join(out_file);
    let json = serde_json::to_string_pretty(&report).expect("report serialization");
    std::fs::write(&path, json + "\n").expect("write bench report");
    println!("(saved {})", path.display());
}
