//! Fig. 6 — topic fluctuation vs community interest (§5.3): the variance
//! of `ψ_kc` against `θ_ck` for every (community, topic) pair, plus the
//! interest CDF. Paper finding: fluctuation is highest at *medium*
//! interest; extremely low- and high-interest pairs are steady.

use cold_bench::workloads::{cold_hyper, eval_world, BASE_SEED};
use cold_core::patterns::FluctuationAnalysis;
use cold_core::{ColdConfig, GibbsSampler};
use cold_eval::{ExperimentReport, Series};

fn main() {
    let scale = cold_bench::scale_arg();
    let data = eval_world(scale);
    println!("fig06 world: {}", data.summary());
    // Stronger temporal smoothing than the prediction recipe: a (c, k)
    // pair observed in only a handful of posts would otherwise show pure
    // sampling noise as spurious "fluctuation"; with ε large relative to
    // those counts its ψ̂ shrinks toward uniform — i.e. steady — while
    // well-supported pairs keep their structure.
    let mut hyper = cold_hyper(6, 6, &data);
    hyper.epsilon = 0.5;
    let config = ColdConfig::builder(6, 6)
        .iterations(180)
        .burn_in(160)
        .sample_lag(4)
        .explicit_negatives(3.0)
        .hyperparams(hyper)
        .build(&data.corpus, &data.graph);
    let model = GibbsSampler::new(&data.corpus, &data.graph, config, BASE_SEED + 60).run();
    let analysis = FluctuationAnalysis::compute(&model);

    // Interest bands (log-spaced, adapted to the reduced latent size: the
    // paper's 0.01%–1% medium band assumes C = K = 100).
    let bands: [(f64, f64, &str); 3] = [
        (0.0, 0.02, "low (θ < 0.02)"),
        (0.02, 0.30, "medium (0.02 ≤ θ < 0.30)"),
        (0.30, 1.01, "high (θ ≥ 0.30)"),
    ];
    let mut labels = Vec::new();
    let mut means = Vec::new();
    let mut counts = Vec::new();
    for &(lo, hi, label) in &bands {
        let mean = analysis.mean_fluctuation_in_band(lo, hi);
        let n = analysis
            .points
            .iter()
            .filter(|p| p.interest >= lo && p.interest < hi)
            .count();
        println!(
            "{label}: {} pairs, mean fluctuation {}",
            n,
            mean.map_or("—".to_owned(), |m| format!("{m:.6}"))
        );
        labels.push(label.to_owned());
        means.push(mean.unwrap_or(0.0));
        counts.push(n as f64);
    }

    // Scatter extremes for the record.
    let spikiest = analysis
        .points
        .iter()
        .max_by(|a, b| a.fluctuation.partial_cmp(&b.fluctuation).expect("finite"))
        .expect("non-empty");
    println!(
        "\nspikiest pair: community {} / topic {} (θ = {:.3}, var = {:.6})",
        spikiest.community, spikiest.topic, spikiest.interest, spikiest.fluctuation
    );

    let mut report = ExperimentReport::new(
        "fig06_fluctuation",
        "Topic fluctuation (variance of ψ_kc) by community-interest band",
        "interest band",
        "mean variance of ψ values",
        labels,
    );
    report.push_series(Series::new("mean fluctuation", means));
    report.push_series(Series::new("pairs in band", counts));
    report.note(format!("world: {}", data.summary()));
    report.note(format!(
        "interest CDF spans [{:.4}, {:.4}] over {} pairs",
        analysis.interest_cdf.first().map_or(0.0, |p| p.0),
        analysis.interest_cdf.last().map_or(0.0, |p| p.0),
        analysis.points.len()
    ));
    report.note(
        "paper: Fig. 6 — medium-interest pairs fluctuate most; low and high are steady".to_owned(),
    );
    cold_bench::emit(&report);
}
