//! Fig. 12 — diffusion prediction averaged AUC for COLD, TI and WTM
//! (§6.3). Paper shape: COLD clearly best; TI above WTM; both baselines
//! capped by sparse per-pair individual records.

use cold_baselines::ti::{TiConfig, TopicInfluence};
use cold_baselines::wtm::{WhomToMention, WtmWeights};
use cold_baselines::DiffusionScorer;
use cold_bench::tasks::diffusion_auc_task;
use cold_bench::workloads::{eval_world, fit_cold_best, BASE_SEED};
use cold_core::DiffusionPredictor;
use cold_data::cascade::split_tuples;
use cold_eval::{ExperimentReport, Series};
use cold_math::rng::seeded_rng;

fn main() {
    let scale = cold_bench::scale_arg();
    let data = eval_world(scale);
    println!("fig12 world: {}", data.summary());
    let mut rng = seeded_rng(BASE_SEED + 12);
    let (train_tuples, test_tuples) = split_tuples(&mut rng, &data.cascades, 0.2);
    println!(
        "{} training tuples, {} test tuples",
        train_tuples.len(),
        test_tuples.len()
    );

    let (c, k) = (6usize, 6usize);
    let cold = fit_cold_best(&data, c, k, 200, BASE_SEED + 120, 3);
    let predictor = DiffusionPredictor::new(&cold, 5).expect("top_comm >= 1");
    let auc_cold = diffusion_auc_task(&data, &test_tuples, |p, consumer, words| {
        predictor
            .diffusion_score(p, consumer, words)
            .expect("valid ids")
    });

    let mut ti_cfg = TiConfig::new(k);
    ti_cfg.lda.alpha = 1.0;
    ti_cfg.lda.iterations = 120;
    let ti = TopicInfluence::fit(&data.corpus, &train_tuples, &ti_cfg, BASE_SEED + 121);
    let auc_ti = diffusion_auc_task(&data, &test_tuples, |p, consumer, words| {
        ti.diffusion_score(p, consumer, words)
    });

    let wtm = WhomToMention::fit(
        &data.corpus,
        &data.graph,
        &train_tuples,
        WtmWeights::default(),
    );
    let auc_wtm = diffusion_auc_task(&data, &test_tuples, |p, consumer, words| {
        wtm.diffusion_score(p, consumer, words)
    });

    println!("COLD {auc_cold:.3}  TI {auc_ti:.3}  WTM {auc_wtm:.3}");

    let mut report = ExperimentReport::new(
        "fig12_diffusion_auc",
        "Diffusion prediction averaged AUC over held-out retweet tuples",
        "method",
        "averaged AUC",
        vec!["COLD".into(), "TI".into(), "WTM".into()],
    );
    report.push_series(Series::new("AUC", vec![auc_cold, auc_ti, auc_wtm]));
    report.note(format!("world: {}", data.summary()));
    report.note(
        "paper: Fig. 12 — COLD clearly best; TI and WTM capped by individual-level sparsity"
            .to_owned(),
    );
    cold_bench::emit(&report);
}
