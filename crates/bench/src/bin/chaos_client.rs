//! Chaos load mix for a live `cold-serve` — the CI face of the fault
//! harness (`scripts/check.sh` chaos-smoke stage).
//!
//! Runs healthy keep-alive clients concurrently with seeded network
//! chaos ([`cold_serve::chaos`]) against an already-running server, and
//! exits nonzero on any robustness violation: a healthy request that
//! gets anything but `200` (bounded `503`-with-`Retry-After` retries are
//! tolerated — that is the shed contract working) or a score that is not
//! bit-identical to the reference. With `--kill-workers N` it also
//! drives the supervisor end to end: N injected worker kills must all be
//! respawned (checked via `/metrics`), plus one contained handler panic.
//!
//! ```text
//! chaos_client --addr 127.0.0.1:8396 [--healthy 3] [--chaos 3]
//!              [--requests 50] [--faults 12] [--seed 9] [--stall-ms 150]
//!              [--kill-workers 1]
//! ```

use cold_serve::chaos::ChaosPlan;
use cold_serve::HttpClient;
use std::net::SocketAddr;
use std::time::Duration;

const PREDICT: &str = "{\"publisher\":0,\"consumer\":1,\"words\":[0]}";
/// How many shed retries a healthy client tolerates per request.
const MAX_RETRIES: usize = 50;

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("bad value for {name}: {v}"))
        })
        .unwrap_or(default)
}

fn score_of(body: &str) -> f64 {
    // `{"publisher":0,"consumer":1,"score":X}` — cut the number out
    // without a JSON dependency so the comparison is on the exact bytes
    // the server emitted.
    let tail = body
        .split("\"score\":")
        .nth(1)
        .unwrap_or_else(|| panic!("no score in {body}"));
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(tail.len());
    tail[..end]
        .parse()
        .unwrap_or_else(|_| panic!("bad score in {body}"))
}

/// One healthy request with bounded shed retries; returns the score.
fn healthy_predict(client: &mut HttpClient, addr: SocketAddr) -> Result<f64, String> {
    let mut reconnects = 0;
    for _ in 0..MAX_RETRIES {
        let r = match client.post("/predict", PREDICT) {
            Ok(r) => r,
            Err(e) => {
                // The connection may have died to a neighboring fault
                // (e.g. a worker kill closing its conn) — reconnect a
                // bounded number of times rather than failing the run.
                reconnects += 1;
                if reconnects > 5 {
                    return Err(format!("request error after {reconnects} reconnects: {e}"));
                }
                std::thread::sleep(Duration::from_millis(20));
                *client = HttpClient::connect(addr, Duration::from_secs(10))
                    .map_err(|e| format!("reconnect failed: {e}"))?;
                continue;
            }
        };
        match r.status {
            200 => return Ok(score_of(&r.body)),
            503 => {
                if r.retry_after.is_none() {
                    return Err(format!("503 without Retry-After: {}", r.body));
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            other => return Err(format!("healthy request got {other}: {}", r.body)),
        }
    }
    Err("healthy request shed beyond the retry budget".to_owned())
}

fn counter(addr: SocketAddr, name: &str) -> u64 {
    let mut c = HttpClient::connect(addr, Duration::from_secs(10)).expect("metrics connect");
    let body = c.get("/metrics").expect("metrics fetch").body;
    let needle = format!("\"name\":\"{name}\"");
    for line in body.lines() {
        if line.contains("\"type\":\"counter\"") && line.contains(&needle) {
            if let Some(tail) = line.split("\"value\":").nth(1) {
                let end = tail
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(tail.len());
                return tail[..end].parse().unwrap_or(0);
            }
        }
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr: SocketAddr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .expect("--addr HOST:PORT is required")
        .parse()
        .expect("bad --addr");
    let healthy = arg("--healthy", 3) as usize;
    let chaos = arg("--chaos", 3) as usize;
    let requests = arg("--requests", 50) as usize;
    let faults = arg("--faults", 12) as usize;
    let seed = arg("--seed", 9);
    let stall = Duration::from_millis(arg("--stall-ms", 150));
    let kill_workers = arg("--kill-workers", 0);

    // Reference answer before any chaos.
    let mut c = HttpClient::connect(addr, Duration::from_secs(10)).expect("connect");
    let reference = healthy_predict(&mut c, addr).expect("reference request");
    drop(c);

    let healthy_threads: Vec<_> = (0..healthy)
        .map(|_| {
            std::thread::spawn(move || -> Result<u64, String> {
                let mut client = HttpClient::connect(addr, Duration::from_secs(10))
                    .map_err(|e| format!("connect: {e}"))?;
                for i in 0..requests {
                    let score = healthy_predict(&mut client, addr)?;
                    if score != reference {
                        return Err(format!(
                            "request {i}: score {score} != reference {reference}"
                        ));
                    }
                }
                // Keep-alive reuse held except where chaos killed the
                // connection under us — worth reporting either way.
                Ok(client.reconnects())
            })
        })
        .collect();
    let chaos_threads: Vec<_> = (0..chaos as u64)
        .map(|t| {
            std::thread::spawn(move || {
                let mut plan = ChaosPlan::new(seed ^ t.wrapping_mul(0x9E37_79B9));
                plan.stall = stall;
                for _ in 0..faults {
                    let fault = plan.next_fault();
                    plan.run(addr, fault);
                }
            })
        })
        .collect();

    // Supervision path: contained handler panic + escaped worker kills.
    if kill_workers > 0 {
        let before = counter(addr, "serve.worker_respawns");
        let mut k = HttpClient::connect(addr, Duration::from_secs(10)).expect("connect");
        let r = k.post("/chaos/panic", "").expect("handler panic request");
        assert_eq!(
            r.status, 500,
            "handler panic must answer 500, got {}",
            r.status
        );
        for _ in 0..kill_workers {
            let mut k = HttpClient::connect(addr, Duration::from_secs(10)).expect("connect");
            let r = k
                .post("/chaos/panic-worker", "")
                .expect("worker kill request");
            assert_eq!(r.status, 200, "worker kill must answer 200 first");
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if counter(addr, "serve.worker_respawns") >= before + kill_workers {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "supervisor never respawned the killed workers"
            );
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    for h in chaos_threads {
        h.join().expect("chaos thread panicked");
    }
    let mut failures = Vec::new();
    let mut client_reconnects = 0u64;
    for (i, h) in healthy_threads.into_iter().enumerate() {
        match h.join() {
            Ok(Ok(reconnects)) => client_reconnects += reconnects,
            Ok(Err(e)) => failures.push(format!("healthy client {i}: {e}")),
            Err(_) => failures.push(format!("healthy client {i} panicked")),
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("VIOLATION: {f}");
        }
        std::process::exit(1);
    }

    // The server must still be answering, bit-identically.
    let mut c = HttpClient::connect(addr, Duration::from_secs(10)).expect("final connect");
    let after = healthy_predict(&mut c, addr).expect("final request");
    assert_eq!(after, reference, "score drifted across the chaos run");
    println!(
        "chaos_client: OK ({} healthy x {} requests, {} chaos x {} faults, {} worker kills, \
         panics={} respawns={} shed={} client_reconnects={})",
        healthy,
        requests,
        chaos,
        faults,
        kill_workers,
        counter(addr, "serve.worker_panics"),
        counter(addr, "serve.worker_respawns"),
        counter(addr, "serve.shed"),
        client_reconnects,
    );
}
