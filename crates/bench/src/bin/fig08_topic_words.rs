//! Fig. 8 — word clouds of extracted topics (§6.2): the top words of every
//! fitted `φ_k` and their alignment with the planted topical word blocks.

use cold_bench::workloads::{eval_world, fit_cold_best, BASE_SEED};
use cold_eval::{ExperimentReport, Series};

fn main() {
    let scale = cold_bench::scale_arg();
    let data = eval_world(scale);
    println!("fig08 world: {}", data.summary());
    let model = fit_cold_best(&data, 6, 6, 180, BASE_SEED + 80, 3);

    let mut purities = Vec::new();
    let mut labels = Vec::new();
    for k in 0..model.dims().num_topics {
        let top = model.top_words(k, 10, data.corpus.vocab());
        // The planted block is encoded in the word prefix ("sports.w00012"),
        // so top-word purity is directly measurable.
        let mut block_votes: std::collections::HashMap<&str, usize> =
            std::collections::HashMap::new();
        for &(word, _) in &top {
            let block = word.split('.').next().unwrap_or(word);
            *block_votes.entry(block).or_insert(0) += 1;
        }
        let (block, votes) = block_votes
            .into_iter()
            .max_by_key(|&(_, n)| n)
            .expect("top words exist");
        let purity = votes as f64 / top.len() as f64;
        println!(
            "topic {k} -> '{block}' (purity {:.0}%): {}",
            purity * 100.0,
            top.iter()
                .map(|&(w, p)| format!("{w}:{p:.3}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        labels.push(format!("k{k}:{block}"));
        purities.push(purity);
    }

    let mut report = ExperimentReport::new(
        "fig08_topic_words",
        "Top-word purity of each extracted topic against its planted block",
        "topic (dominant block)",
        "top-10 purity",
        labels,
    );
    report.push_series(Series::new("purity", purities));
    report.note(format!("world: {}", data.summary()));
    report.note("paper: Fig. 8 — extracted topics show clean, recognizable subjects".to_owned());
    cold_bench::emit(&report);
}
