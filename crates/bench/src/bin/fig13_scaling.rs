//! Fig. 13 — scalability of the parallel (GAS) implementation (§6.4).
//!
//! * 13(a): training time vs dataset size at a fixed node count — expected
//!   linear in posts + links (the §4.2 complexity claim).
//! * 13(b): training time vs number of nodes on the full dataset —
//!   expected near-1/N until synchronization dominates.
//!
//! The host is a single machine, so node counts are evaluated through the
//! metered-work cluster cost model (see `cold-engine`'s crate docs);
//! single-machine wall time is reported alongside as ground truth for the
//! work meter.

use cold_bench::workloads::{cold_config, scaling_world, BASE_SEED};
use cold_engine::{ClusterCostModel, ParallelGibbs};
use cold_eval::{ExperimentReport, Series};

fn main() {
    let scale = cold_bench::scale_arg();
    let iterations = 40usize;
    let cost = ClusterCostModel::default();

    // --- 13(a): data-size sweep at 4 simulated nodes. ---
    let fractions = [0.25f64, 0.5, 1.0];
    let mut wall = Vec::new();
    let mut simulated4 = Vec::new();
    let mut sizes = Vec::new();
    let mut full_stats = None;
    for &f in &fractions {
        let data = scaling_world(f * scale);
        let config = cold_config(6, 6, iterations, &data);
        let (_, stats) =
            ParallelGibbs::new(&data.corpus, &data.graph, config, 8, BASE_SEED + 130).run();
        println!(
            "fraction {f}: {} — wall {:.2}s, simulated(4 nodes) {:.2}s",
            data.summary(),
            stats.wall_seconds,
            stats.simulated_seconds(&cost, 4)
        );
        sizes.push(format!(
            "{}p/{}l",
            data.corpus.num_posts(),
            data.graph.num_edges()
        ));
        wall.push(stats.wall_seconds);
        simulated4.push(stats.simulated_seconds(&cost, 4));
        if f == 1.0 {
            full_stats = Some(stats);
        }
    }
    let mut report_a = ExperimentReport::new(
        "fig13a_scaling_data",
        "Training time vs dataset size (8 shards; simulated 4-node cluster)",
        "dataset (posts/links)",
        "seconds",
        sizes,
    );
    report_a.push_series(Series::new("wall (1 machine)", wall));
    report_a.push_series(Series::new("simulated (4 nodes)", simulated4));
    report_a.note(format!("{iterations} Gibbs sweeps per run"));
    report_a.note("paper: Fig. 13a — time grows linearly with data size".to_owned());
    cold_bench::emit(&report_a);

    // --- 13(b): node-count sweep on the full dataset. ---
    let stats = full_stats.expect("full-fraction run recorded");
    let nodes = [1usize, 2, 4, 8];
    let times: Vec<f64> = nodes
        .iter()
        .map(|&n| stats.simulated_seconds(&cost, n))
        .collect();
    for (n, t) in nodes.iter().zip(&times) {
        println!(
            "{n} nodes: simulated {t:.2}s (speedup {:.2}x)",
            times[0] / t
        );
    }
    let mut report_b = ExperimentReport::new(
        "fig13b_scaling_nodes",
        "Training time vs cluster size (metered work + cost model)",
        "nodes",
        "seconds",
        nodes.iter().map(|n| n.to_string()).collect(),
    );
    report_b.push_series(Series::new("simulated", times));
    report_b.note(
        "paper: Fig. 13b — time drops sharply with node count, sublinearly due to synchronization"
            .to_owned(),
    );
    cold_bench::emit(&report_b);
}
