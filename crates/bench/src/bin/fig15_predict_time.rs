//! Fig. 15 — online diffusion-prediction latency per method (§6.4).
//! Paper shape: COLD cheapest (compact precomputed community profiles,
//! O(K·|w_d|) per query); TI costly (multi-hop influence walks); WTM
//! costly (online TF-IDF feature construction per candidate).

use cold_baselines::ti::{TiConfig, TopicInfluence};
use cold_baselines::wtm::{WhomToMention, WtmWeights};
use cold_baselines::DiffusionScorer;
use cold_bench::workloads::{eval_world, fit_cold, BASE_SEED};
use cold_core::DiffusionPredictor;
use cold_data::cascade::split_tuples;
use cold_eval::timer::mean_latency_micros;
use cold_eval::{ExperimentReport, Series};
use cold_math::rng::seeded_rng;

fn main() {
    let scale = cold_bench::scale_arg();
    let data = eval_world(scale);
    println!("fig15 world: {}", data.summary());
    let mut rng = seeded_rng(BASE_SEED + 15);
    let (train_tuples, test_tuples) = split_tuples(&mut rng, &data.cascades, 0.2);

    // Query workload: every (publisher, follower, post) triple of the test
    // tuples, cycled.
    let mut queries: Vec<(u32, u32, u32)> = Vec::new();
    for t in &test_tuples {
        for &f in t.retweeters.iter().chain(&t.ignorers) {
            queries.push((t.publisher, f, t.post));
        }
    }
    assert!(!queries.is_empty(), "need at least one query");
    println!("{} queries", queries.len());
    let iters = 20_000usize;

    let cold = fit_cold(&data, 6, 6, 150, BASE_SEED + 150);
    let predictor = DiffusionPredictor::new(&cold, 5).expect("top_comm >= 1");
    let mut qi = 0usize;
    let t_cold = mean_latency_micros(iters, || {
        let (p, f, d) = queries[qi % queries.len()];
        qi += 1;
        std::hint::black_box(
            predictor
                .diffusion_score(p, f, &data.corpus.post(d).words)
                .expect("valid ids"),
        );
    });

    let ti = TopicInfluence::fit(
        &data.corpus,
        &train_tuples,
        &TiConfig::new(6),
        BASE_SEED + 151,
    );
    let mut qi = 0usize;
    let t_ti = mean_latency_micros(iters, || {
        let (p, f, d) = queries[qi % queries.len()];
        qi += 1;
        std::hint::black_box(ti.diffusion_score(p, f, &data.corpus.post(d).words));
    });

    let wtm = WhomToMention::fit(
        &data.corpus,
        &data.graph,
        &train_tuples,
        WtmWeights::default(),
    );
    let mut qi = 0usize;
    let t_wtm = mean_latency_micros(iters, || {
        let (p, f, d) = queries[qi % queries.len()];
        qi += 1;
        std::hint::black_box(wtm.diffusion_score(p, f, &data.corpus.post(d).words));
    });

    println!("COLD {t_cold:.2}µs  TI {t_ti:.2}µs  WTM {t_wtm:.2}µs");

    let mut report = ExperimentReport::new(
        "fig15_predict_time",
        "Online diffusion-prediction latency per query",
        "method",
        "microseconds/query",
        vec!["COLD".into(), "TI".into(), "WTM".into()],
    );
    report.push_series(Series::new("latency", vec![t_cold, t_ti, t_wtm]));
    report.note(format!(
        "{} distinct queries, {iters} timed calls each",
        queries.len()
    ));
    report.note("paper: Fig. 15 — COLD cheapest; TI and WTM notably slower".to_owned());
    cold_bench::emit(&report);
}
