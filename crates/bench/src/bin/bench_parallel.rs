//! Shard-scaling study of the parallel engine's barrier strategies.
//!
//! For shards ∈ {1, 2, 4, 8} × every sampler kernel, measures ms/sweep
//! and per-superstep synchronization bytes under the sparse delta barrier
//! (default) and the clone-everything baseline it replaced. The delta
//! numbers are *measured* serialized wire sizes; the clone numbers are the
//! full global-counter block the baseline ships each barrier. Sync traffic
//! is sampled after burn-in — the regime a long training run lives in,
//! where most assignments are stable and deltas are sparse.
//!
//! Writes `BENCH_parallel.json` at the workspace root (the README and
//! DESIGN.md quote its numbers); `--quick` runs a toy world for CI smoke
//! and writes `BENCH_parallel_quick.json` instead so the committed
//! headline is never clobbered by a smoke run.

use cold_bench::workloads::{cold_hyper, BASE_SEED};
use cold_core::{ColdConfig, SamplerKernel};
use cold_data::{generate, SocialDataset, WorldConfig};
use cold_engine::{ParallelGibbs, SyncStrategy};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Cell {
    kernel: String,
    shards: usize,
    strategy: String,
    ms_per_sweep: f64,
    /// Mean measured (delta) or estimated (clone) bytes exchanged per
    /// superstep barrier, after burn-in.
    sync_bytes_per_superstep: f64,
    /// Max/mean owned post ops across shards (1.0 = perfect balance).
    shard_imbalance: f64,
}

/// One counter family's share of the cloned counter block.
#[derive(Serialize)]
struct FamilyBytes {
    family: String,
    bytes: u64,
}

#[derive(Serialize)]
struct BenchReport {
    world: String,
    num_posts: usize,
    num_links: usize,
    vocab_size: usize,
    /// Serialized size of the full global-counter block: what the clone
    /// baseline ships per barrier regardless of how little changed.
    counter_block_bytes: u64,
    /// The same block broken down per counter family (wire bytes; the
    /// block always serializes dense regardless of in-memory backend).
    counter_block_breakdown: Vec<FamilyBytes>,
    burn_in_sweeps: usize,
    timed_sweeps: usize,
    cells: Vec<Cell>,
    /// Post-burn-in sync-bytes reduction of delta vs clone at shards = 4
    /// (default kernel).
    sync_reduction_at_4_shards: f64,
    /// ms/sweep of delta relative to clone at shards = 4 (< 1 means the
    /// delta barrier is also faster).
    ms_ratio_delta_vs_clone_at_4_shards: f64,
    headline: String,
}

struct Scenario {
    world: SocialDataset,
    world_label: String,
    kernels: Vec<SamplerKernel>,
    shard_grid: Vec<usize>,
    burn_in: usize,
    timed: usize,
    out_file: &'static str,
}

fn scenario(quick: bool, scale: f64) -> Scenario {
    if quick {
        let config = WorldConfig {
            num_users: 60,
            num_communities: 3,
            num_topics: 4,
            num_time_slices: 8,
            vocab_size: 600,
            posts_per_user: 8.0,
            words_per_post: 8.0,
            ..WorldConfig::default()
        };
        Scenario {
            world: generate(&config, BASE_SEED + 9200),
            world_label: "quick smoke world".to_owned(),
            kernels: vec![SamplerKernel::CachedLog],
            shard_grid: vec![1, 2, 4],
            burn_in: 5,
            timed: 3,
            out_file: "../BENCH_parallel_quick.json",
        }
    } else {
        // A wide-vocabulary world: the global counter block (dominated by
        // K × V word counts) is large, as in the paper's crawls, while the
        // per-sweep churn after burn-in touches only a sliver of it — the
        // asymmetry delta sync exploits.
        let config = WorldConfig {
            num_users: 240,
            num_communities: 6,
            num_topics: 16,
            num_time_slices: 24,
            vocab_size: 12000,
            posts_per_user: 12.0,
            words_per_post: 10.0,
            ..WorldConfig::default()
        }
        .scaled(scale);
        Scenario {
            world: generate(&config, BASE_SEED + 9201),
            world_label: format!("wide-vocab bench world, scale {scale}"),
            kernels: vec![
                SamplerKernel::Exact,
                SamplerKernel::CachedLog,
                SamplerKernel::AliasMh,
            ],
            shard_grid: vec![1, 2, 4, 8],
            burn_in: 40,
            timed: 10,
            out_file: "../BENCH_parallel.json",
        }
    }
}

fn config_for(kernel: SamplerKernel, data: &SocialDataset, k: usize) -> ColdConfig {
    ColdConfig::builder(6.min(k.max(2)), k)
        .iterations(1_000_000) // driven manually, never run to completion
        .explicit_negatives(3.0)
        .hyperparams(cold_hyper(6, k, data))
        .kernel(kernel)
        .build(&data.corpus, &data.graph)
}

/// Burn in, then time `timed` supersteps; returns (ms/sweep, mean sync
/// bytes per superstep, shard imbalance).
fn measure(
    data: &SocialDataset,
    kernel: SamplerKernel,
    k: usize,
    shards: usize,
    strategy: SyncStrategy,
    burn_in: usize,
    timed: usize,
) -> (f64, f64, f64) {
    let config = config_for(kernel, data, k);
    let mut pg = ParallelGibbs::with_strategy(
        &data.corpus,
        &data.graph,
        config,
        shards,
        BASE_SEED + 9202,
        strategy,
    );
    for sweep in 0..burn_in {
        pg.superstep(sweep);
    }
    let start = Instant::now();
    let mut sync_bytes = 0u64;
    let mut imbalance = 1.0f64;
    for sweep in burn_in..burn_in + timed {
        let work = pg.superstep(sweep);
        sync_bytes += work.sync_bytes;
        let mean = work.post_ops.iter().sum::<u64>() as f64 / work.post_ops.len() as f64;
        if mean > 0.0 {
            imbalance = *work.post_ops.iter().max().unwrap() as f64 / mean;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    (
        1e3 * secs / timed as f64,
        sync_bytes as f64 / timed as f64,
        imbalance,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = cold_bench::scale_arg();
    let sc = scenario(quick, scale);
    let data = &sc.world;
    let k = 16.min(data.truth.num_topics.max(2));

    // The static counter-block footprint the clone baseline ships.
    let probe = ParallelGibbs::new(
        &data.corpus,
        &data.graph,
        config_for(SamplerKernel::CachedLog, data, k),
        1,
        BASE_SEED + 9203,
    );
    let st = probe.state();
    // Families the clone baseline ships per barrier (the shared counts a
    // shard replica can drift on); u32 wire cells regardless of backend.
    const CLONE_FAMILIES: [&str; 6] = ["n_ck", "n_c", "n_ckt", "n_kv", "n_k", "n_cc"];
    let counter_block_breakdown: Vec<FamilyBytes> = st
        .families()
        .iter()
        .filter(|(name, _)| CLONE_FAMILIES.contains(name))
        .map(|&(name, store)| FamilyBytes {
            family: name.to_owned(),
            bytes: 4 * store.len() as u64,
        })
        .collect();
    let counter_block_bytes: u64 = counter_block_breakdown.iter().map(|f| f.bytes).sum();
    drop(probe);
    println!(
        "world: {} posts, {} links, vocab {}, counter block {:.1} KiB",
        data.corpus.num_posts(),
        data.graph.num_edges(),
        data.corpus.vocab().len(),
        counter_block_bytes as f64 / 1024.0
    );
    for f in &counter_block_breakdown {
        println!(
            "  {:6} {:>10} B ({:.1}%)",
            f.family,
            f.bytes,
            100.0 * f.bytes as f64 / counter_block_bytes as f64
        );
    }
    println!();

    let mut cells = Vec::new();
    for &kernel in &sc.kernels {
        for &shards in &sc.shard_grid {
            for (strategy, name) in [
                (SyncStrategy::Delta, "delta"),
                (SyncStrategy::CloneMerge, "clone"),
            ] {
                let (ms, sync, imb) =
                    measure(data, kernel, k, shards, strategy, sc.burn_in, sc.timed);
                println!(
                    "{:10} shards={shards} {name:5}  {ms:8.2} ms/sweep  {:>10.0} sync B/superstep  imbalance {imb:.2}",
                    kernel.name(),
                    sync
                );
                cells.push(Cell {
                    kernel: kernel.name().to_owned(),
                    shards,
                    strategy: name.to_owned(),
                    ms_per_sweep: ms,
                    sync_bytes_per_superstep: sync,
                    shard_imbalance: imb,
                });
            }
        }
        println!();
    }

    let find = |kernel: &str, shards: usize, strategy: &str| {
        cells
            .iter()
            .find(|c| c.kernel == kernel && c.shards == shards && c.strategy == strategy)
            .expect("measured cell")
    };
    let headline_kernel = SamplerKernel::CachedLog.name();
    let headline_shards = 4usize;
    let delta4 = find(headline_kernel, headline_shards, "delta");
    let clone4 = find(headline_kernel, headline_shards, "clone");
    let sync_reduction = clone4.sync_bytes_per_superstep / delta4.sync_bytes_per_superstep;
    let ms_ratio = delta4.ms_per_sweep / clone4.ms_per_sweep;
    let headline = format!(
        "delta sync ships {sync_reduction:.1}x fewer bytes per superstep than the clone \
         baseline at {headline_shards} shards ({:.0} B vs {:.0} B, post-burn-in, {headline_kernel}), \
         at {ms_ratio:.2}x the sweep time",
        delta4.sync_bytes_per_superstep, clone4.sync_bytes_per_superstep
    );
    println!("{headline}");
    if sync_reduction < 5.0 && !quick {
        eprintln!("warning: sync reduction below the 5x target");
    }

    let report = BenchReport {
        world: sc.world_label,
        num_posts: data.corpus.num_posts(),
        num_links: data.graph.num_edges(),
        vocab_size: data.corpus.vocab().len(),
        counter_block_bytes,
        counter_block_breakdown,
        burn_in_sweeps: sc.burn_in,
        timed_sweeps: sc.timed,
        cells,
        sync_reduction_at_4_shards: sync_reduction,
        ms_ratio_delta_vs_clone_at_4_shards: ms_ratio,
        headline,
    };
    let path = cold_bench::results_dir().join(sc.out_file);
    let json = serde_json::to_string_pretty(&report).expect("report serialization");
    std::fs::write(&path, json + "\n").expect("write bench report");
    println!("(saved {})", path.display());
}
