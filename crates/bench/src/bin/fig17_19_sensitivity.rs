//! Figs. 17–19 (appendix B) — sensitivity of the three headline metrics to
//! the community count `C` and topic count `K`.
//!
//! Paper shapes: perplexity is driven by `K` and flat in `C` (Fig. 17);
//! link AUC is driven by `C` and flat in `K` (Fig. 18); diffusion AUC
//! improves with both (Fig. 19).

use cold_bench::tasks::{
    diffusion_auc_task, link_auc_task, link_split, perplexity_task, post_split,
};
use cold_bench::workloads::{cold_config, eval_world, BASE_SEED};
use cold_core::predict::{link_probability, post_log_likelihood};
use cold_core::{DiffusionPredictor, GibbsSampler};
use cold_data::cascade::split_tuples;
use cold_eval::{ExperimentReport, Series};
use cold_math::rng::seeded_rng;

fn main() {
    let scale = cold_bench::scale_arg();
    let data = eval_world(scale);
    println!("fig17-19 world: {}", data.summary());
    let grid = [3usize, 6, 9];

    // Shared splits across the grid so cells are comparable.
    let split = post_split(&data, BASE_SEED + 17);
    let (train_graph, held_links) = link_split(&data, BASE_SEED + 18);
    let mut rng = seeded_rng(BASE_SEED + 19);
    let (_, test_tuples) = split_tuples(&mut rng, &data.cascades, 0.2);
    let mut train_data = data.clone();
    train_data.corpus = data.corpus.restrict(&split.train);
    train_data.graph = train_graph;

    let mut perp = vec![vec![0.0; grid.len()]; grid.len()];
    let mut link = vec![vec![0.0; grid.len()]; grid.len()];
    let mut diff = vec![vec![0.0; grid.len()]; grid.len()];
    for (ci, &c) in grid.iter().enumerate() {
        for (ki, &k) in grid.iter().enumerate() {
            let model = GibbsSampler::new(
                &train_data.corpus,
                &train_data.graph,
                cold_config(c, k, 150, &train_data),
                BASE_SEED + 170 + (ci * 3 + ki) as u64,
            )
            .run();
            perp[ci][ki] =
                perplexity_task(&data, &split.test, |a, w| post_log_likelihood(&model, a, w));
            link[ci][ki] = link_auc_task(&data, &held_links, BASE_SEED + 171, |i, j| {
                link_probability(&model, i, j)
            });
            let predictor = DiffusionPredictor::new(&model, 5).expect("top_comm >= 1");
            diff[ci][ki] = diffusion_auc_task(&data, &test_tuples, |p, f, w| {
                predictor.diffusion_score(p, f, w).expect("valid ids")
            });
            println!(
                "C={c} K={k}: perplexity {:.1}, link AUC {:.3}, diffusion AUC {:.3}",
                perp[ci][ki], link[ci][ki], diff[ci][ki]
            );
        }
    }

    let ks: Vec<String> = grid.iter().map(|k| format!("K={k}")).collect();
    for (id, title, ylabel, matrix) in [
        (
            "fig17_sensitivity_perplexity",
            "Perplexity under (C, K): driven by K, flat in C",
            "perplexity",
            &perp,
        ),
        (
            "fig18_sensitivity_link_auc",
            "Link AUC under (C, K): driven by C, flat in K",
            "link AUC",
            &link,
        ),
        (
            "fig19_sensitivity_diffusion_auc",
            "Diffusion AUC under (C, K): both factors matter",
            "diffusion AUC",
            &diff,
        ),
    ] {
        let mut report = ExperimentReport::new(id, title, "K", ylabel, ks.clone());
        for (ci, &c) in grid.iter().enumerate() {
            report.push_series(Series::new(format!("C={c}"), matrix[ci].clone()));
        }
        report.note(format!("world: {}", data.summary()));
        cold_bench::emit(&report);
    }
}
