//! Fig. 5 — the community-level diffusion graph of one topic (§5.1):
//! per-community interest pies (θ), within-community timelines (ψ) and
//! topic-specific influence edges (ζ, Eq. 4).

use cold_bench::workloads::{eval_world, fit_cold_best, fitted_topic_for_planted, BASE_SEED};
use cold_core::CommunityDiffusionGraph;
use cold_eval::{ExperimentReport, Series};

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(f64::MIN_POSITIVE, f64::max);
    values
        .iter()
        .map(|&v| BARS[((v / max * 7.0).round() as usize).min(7)])
        .collect()
}

fn main() {
    let scale = cold_bench::scale_arg();
    let data = eval_world(scale);
    println!("fig05 world: {}", data.summary());
    let model = fit_cold_best(&data, 6, 6, 180, BASE_SEED + 50, 3);
    // The paper's figure follows one hit topic ("Journey West", a movie);
    // we follow the planted 'movies' topic.
    let topic = fitted_topic_for_planted(&model, &data, 1);
    println!("focus topic: fitted {topic} (planted 'movies')\n");

    let graph = CommunityDiffusionGraph::extract(&model, topic, 0.01, 5, 0.0);
    println!("community nodes (interest pies + within-community timeline):");
    for node in &graph.nodes {
        let pie: Vec<String> = node
            .top_topics
            .iter()
            .map(|&(k, p)| format!("k{k}:{:.0}%", p * 100.0))
            .collect();
        println!(
            "  C{:<2} interest {:.3}  pie [{}]  ψ {}",
            node.community,
            node.interest,
            pie.join(" "),
            sparkline(&node.timeline)
        );
    }
    println!("\nstrongest influence edges (ζ, Eq. 4):");
    for e in graph.edges.iter().take(10) {
        println!("  C{} → C{}  ζ = {:.4}", e.from, e.to, e.strength);
    }
    if let Some(winner) = graph.most_influential_community() {
        println!("\nmost influential community on this topic: C{winner}");
    }

    let mut report = ExperimentReport::new(
        "fig05_diffusion_graph",
        "Community-level diffusion of the 'movies' topic",
        "community",
        "interest θ_ck",
        graph
            .nodes
            .iter()
            .map(|n| n.community.to_string())
            .collect(),
    );
    report.push_series(Series::new(
        "interest",
        graph.nodes.iter().map(|n| n.interest).collect(),
    ));
    report.push_series(Series::new(
        "outgoing ζ mass",
        graph
            .nodes
            .iter()
            .map(|n| {
                graph
                    .edges
                    .iter()
                    .filter(|e| e.from == n.community)
                    .map(|e| e.strength)
                    .sum()
            })
            .collect(),
    ));
    report.note(format!("world: {}", data.summary()));
    report.note(format!(
        "{} influence edges above the floor",
        graph.edges.len()
    ));
    report.note("paper: Fig. 5 — the communities most interested in the topic are also the most influential on it; indifferent communities sit outside the diffusion path".to_owned());
    cold_bench::emit(&report);
}
