//! Fig. 9 — held-out perplexity vs number of topics `K`, for COLD, EUTB
//! and PMTLM (§6.2). Paper shape: COLD lowest, EUTB close behind, PMTLM
//! clearly worse (its topics are entangled with communities).

use cold_baselines::eutb::{Eutb, EutbConfig};
use cold_baselines::pmtlm::{Pmtlm, PmtlmConfig};
use cold_baselines::TextScorer;
use cold_bench::tasks::{perplexity_task, post_split};
use cold_bench::workloads::{eval_world, fit_cold_best, BASE_SEED};
use cold_core::predict::post_log_likelihood;
use cold_eval::{ExperimentReport, Series};

fn main() {
    let scale = cold_bench::scale_arg();
    let folds = cold_bench::folds_arg();
    let data = eval_world(scale);
    println!("fig09 world: {} ({folds}-fold)", data.summary());

    let ks = [4usize, 6, 8, 10];
    let mut cold_series = vec![0.0; ks.len()];
    let mut eutb_series = vec![0.0; ks.len()];
    let mut pmtlm_series = vec![0.0; ks.len()];
    for fold in 0..folds as u64 {
        let split = post_split(&data, BASE_SEED + 9 + fold);
        let train = data.corpus.restrict(&split.train);
        let mut train_data = data.clone();
        train_data.corpus = train;
        for (ki, &k) in ks.iter().enumerate() {
            let cold = fit_cold_best(&train_data, 6, k, 200, BASE_SEED + 90 + fold, 3);
            cold_series[ki] += perplexity_task(&data, &split.test, |author, words| {
                post_log_likelihood(&cold, author, words)
            }) / folds as f64;

            let eutb = Eutb::fit(
                &train_data.corpus,
                &EutbConfig {
                    alpha: 1.0,
                    iterations: 120,
                    ..EutbConfig::new(k)
                },
                BASE_SEED + 91 + fold,
            );
            eutb_series[ki] += perplexity_task(&data, &split.test, |author, words| {
                eutb.post_log_likelihood(author, words)
            }) / folds as f64;

            let pmtlm = Pmtlm::fit(
                &train_data.corpus,
                &train_data.graph,
                &PmtlmConfig {
                    iterations: 120,
                    ..PmtlmConfig::new(k, &train_data.graph)
                },
                BASE_SEED + 92 + fold,
            );
            pmtlm_series[ki] += perplexity_task(&data, &split.test, |author, words| {
                pmtlm.post_log_likelihood(author, words)
            }) / folds as f64;
            println!(
                "fold {fold} K={k}: COLD {:.1}  EUTB {:.1}  PMTLM {:.1} (running means)",
                cold_series[ki] * folds as f64 / (fold + 1) as f64,
                eutb_series[ki] * folds as f64 / (fold + 1) as f64,
                pmtlm_series[ki] * folds as f64 / (fold + 1) as f64,
            );
        }
    }

    let mut report = ExperimentReport::new(
        "fig09_perplexity",
        "Held-out perplexity vs number of topics (lower is better)",
        "K",
        "perplexity",
        ks.iter().map(|k| k.to_string()).collect(),
    );
    report.push_series(Series::new("COLD", cold_series));
    report.push_series(Series::new("EUTB", eutb_series));
    report.push_series(Series::new("PMTLM", pmtlm_series));
    report.note(format!("world: {}", data.summary()));
    report.note(format!(
        "uniform-baseline perplexity = vocabulary size = {}",
        data.corpus.vocab_size()
    ));
    report.note(format!(
        "{folds}-fold cross validation (paper: 5-fold; pass --folds 5)"
    ));
    report.note("paper: Fig. 9 — COLD lowest, EUTB close, PMTLM clearly worse".to_owned());
    cold_bench::emit(&report);
}
