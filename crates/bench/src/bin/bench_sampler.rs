//! Sampler-kernel throughput study: post draws/second for each
//! [`SamplerKernel`] on a mid-size synthetic world, across the three sweep
//! variants (posts only, posts + links, posts + links + explicit
//! negatives) and across topic counts (where the alias/MH kernel's O(1)
//! proposals overtake the cached-log kernel's O(K) scan).
//!
//! Writes `BENCH_sampler.json` at the workspace root; the README quotes
//! its numbers.

use cold_bench::workloads::{cold_hyper, BASE_SEED};
use cold_core::{ColdConfig, GibbsSampler, SamplerKernel};
use cold_data::{generate, SocialDataset, WorldConfig};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct KernelMeasurement {
    variant: String,
    kernel: String,
    num_topics: usize,
    sweeps_timed: usize,
    ms_per_sweep: f64,
    post_draws_per_sec: f64,
}

#[derive(Serialize)]
struct BenchReport {
    world: String,
    num_posts: usize,
    num_links: usize,
    vocab_size: usize,
    measurements: Vec<KernelMeasurement>,
    speedups: Vec<String>,
    /// Relative slowdown of the default cached-log sweep with live
    /// metrics vs the disabled registry (percent; budget is < 2%).
    metrics_overhead_pct: f64,
    /// Where the instrumented run's JSONL snapshot was written.
    metrics_jsonl: String,
}

fn bench_world(scale: f64) -> SocialDataset {
    let config = WorldConfig {
        num_users: 400,
        num_communities: 6,
        num_topics: 6,
        num_time_slices: 24,
        vocab_size: 1000,
        posts_per_user: 18.0,
        words_per_post: 10.0,
        ..WorldConfig::default()
    }
    .scaled(scale);
    generate(&config, BASE_SEED + 9100)
}

fn kernel_name(kernel: SamplerKernel) -> &'static str {
    kernel.name()
}

/// Configuration for one (variant, K, kernel) cell.
fn config_for(variant: &str, k: usize, kernel: SamplerKernel, data: &SocialDataset) -> ColdConfig {
    let mut builder = ColdConfig::builder(6, k)
        .iterations(1_000_000) // never run to completion; we drive sweeps manually
        .hyperparams(cold_hyper(6, k, data))
        .kernel(kernel);
    builder = match variant {
        "posts" => builder.without_links(),
        "links" => builder,
        "negatives" => builder.explicit_negatives(3.0),
        other => panic!("unknown variant {other}"),
    };
    builder.build(&data.corpus, &data.graph)
}

/// Time sweeps until ~1s of wall clock has accumulated (min 4 sweeps)
/// after a 2-sweep warm-up; returns (sweeps, seconds).
fn time_sweeps(sampler: &mut GibbsSampler) -> (usize, f64) {
    sampler.sweep();
    sampler.sweep();
    let start = Instant::now();
    let mut sweeps = 0usize;
    loop {
        sampler.sweep();
        sweeps += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if (elapsed >= 1.0 && sweeps >= 4) || sweeps >= 400 {
            return (sweeps, elapsed);
        }
    }
}

fn main() {
    let scale = cold_bench::scale_arg();
    let data = bench_world(scale);
    let num_posts = data.corpus.num_posts();
    println!(
        "world: {} posts, {} links, vocab {}\n",
        num_posts,
        data.graph.num_edges(),
        data.corpus.vocab().len()
    );

    let mut measurements = Vec::new();
    let mut throughput = std::collections::HashMap::new();
    let kernels = [
        SamplerKernel::Exact,
        SamplerKernel::CachedLog,
        SamplerKernel::AliasMh,
    ];

    // Sweep variants at the world's native K = 6.
    for variant in ["posts", "links", "negatives"] {
        for kernel in kernels {
            let config = config_for(variant, 6, kernel, &data);
            let mut sampler =
                GibbsSampler::new(&data.corpus, &data.graph, config, BASE_SEED + 9101);
            let (sweeps, secs) = time_sweeps(&mut sampler);
            let draws_per_sec = num_posts as f64 * sweeps as f64 / secs;
            println!(
                "{variant:9} K=6  {:10}  {:8.2} ms/sweep  {:>10.0} post draws/s",
                kernel_name(kernel),
                1e3 * secs / sweeps as f64,
                draws_per_sec
            );
            throughput.insert((variant, kernel_name(kernel), 6usize), draws_per_sec);
            measurements.push(KernelMeasurement {
                variant: variant.to_owned(),
                kernel: kernel_name(kernel).to_owned(),
                num_topics: 6,
                sweeps_timed: sweeps,
                ms_per_sweep: 1e3 * secs / sweeps as f64,
                post_draws_per_sec: draws_per_sec,
            });
        }
        println!();
    }

    // Topic-count scaling (posts only): where alias/MH overtakes.
    for k in [8usize, 32, 64] {
        for kernel in [SamplerKernel::CachedLog, SamplerKernel::AliasMh] {
            let config = config_for("posts", k, kernel, &data);
            let mut sampler =
                GibbsSampler::new(&data.corpus, &data.graph, config, BASE_SEED + 9102);
            let (sweeps, secs) = time_sweeps(&mut sampler);
            let draws_per_sec = num_posts as f64 * sweeps as f64 / secs;
            println!(
                "posts     K={k:<3} {:10} {:8.2} ms/sweep  {:>10.0} post draws/s",
                kernel_name(kernel),
                1e3 * secs / sweeps as f64,
                draws_per_sec
            );
            throughput.insert(("posts", kernel_name(kernel), k), draws_per_sec);
            measurements.push(KernelMeasurement {
                variant: "posts".to_owned(),
                kernel: kernel_name(kernel).to_owned(),
                num_topics: k,
                sweeps_timed: sweeps,
                ms_per_sweep: 1e3 * secs / sweeps as f64,
                post_draws_per_sec: draws_per_sec,
            });
        }
    }

    let ratio = |a: f64, b: f64| a / b;
    let mut speedups = Vec::new();
    for variant in ["posts", "links", "negatives"] {
        let cached = throughput[&(variant, "cached_log", 6usize)];
        let exact = throughput[&(variant, "exact", 6usize)];
        speedups.push(format!(
            "{variant} K=6: cached_log {:.2}x over exact",
            ratio(cached, exact)
        ));
    }
    for k in [32usize, 64] {
        let alias = throughput[&("posts", "alias_mh", k)];
        let cached = throughput[&("posts", "cached_log", k)];
        speedups.push(format!(
            "posts K={k}: alias_mh {:.2}x over cached_log",
            ratio(alias, cached)
        ));
    }
    println!();
    for s in &speedups {
        println!("{s}");
    }

    // Observability overhead: the same cached-log sweep with the metrics
    // registry disabled (default) vs live; the instrumented snapshot is
    // saved as the JSONL sink exemplar. Runs are interleaved and the best
    // of three kept per mode, so ambient jitter (>± the real overhead)
    // doesn't masquerade as instrumentation cost.
    let metrics = cold_core::Metrics::enabled();
    let (disabled_ms, enabled_ms) = {
        let mut best = [f64::INFINITY; 2];
        for _round in 0..3 {
            for (slot, instrumented) in [(0usize, false), (1, true)] {
                let mut config = config_for("links", 6, SamplerKernel::CachedLog, &data);
                if instrumented {
                    config.metrics = cold_core::MetricsHandle(metrics.clone());
                }
                let mut sampler =
                    GibbsSampler::new(&data.corpus, &data.graph, config, BASE_SEED + 9103);
                let (sweeps, secs) = time_sweeps(&mut sampler);
                best[slot] = best[slot].min(1e3 * secs / sweeps as f64);
            }
        }
        (best[0], best[1])
    };
    let metrics_overhead_pct = 100.0 * (enabled_ms / disabled_ms - 1.0);
    println!(
        "\nmetrics overhead (links K=6 cached_log): {disabled_ms:.2} ms/sweep off, \
         {enabled_ms:.2} ms/sweep on -> {metrics_overhead_pct:+.2}%"
    );
    let metrics_path = cold_bench::results_dir().join("../BENCH_sampler_metrics.jsonl");
    metrics
        .snapshot()
        .write_jsonl(&metrics_path)
        .expect("write metrics JSONL");

    let report = BenchReport {
        world: format!("synthetic bench world, scale {scale}"),
        num_posts,
        num_links: data.graph.num_edges(),
        vocab_size: data.corpus.vocab().len(),
        measurements,
        speedups,
        metrics_overhead_pct,
        metrics_jsonl: metrics_path.display().to_string(),
    };
    let path = cold_bench::results_dir().join("../BENCH_sampler.json");
    let json = serde_json::to_string_pretty(&report).expect("report serialization");
    std::fs::write(&path, json + "\n").expect("write BENCH_sampler.json");
    println!("\n(saved {})", path.display());
}
