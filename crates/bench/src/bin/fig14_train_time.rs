//! Fig. 14 — training time of every method on the evaluation world (§6.4).
//! Paper shape: COLD's joint model is the most expensive single-machine
//! method (it consumes text+network+time where baselines consume less),
//! and the distributed run ("COLD (8)") brings it back in line.

use cold_baselines::eutb::{Eutb, EutbConfig};
use cold_baselines::mmsb::{Mmsb, MmsbConfig};
use cold_baselines::pipeline::{PipelineConfig, PipelineModel};
use cold_baselines::pmtlm::{Pmtlm, PmtlmConfig};
use cold_baselines::ti::{TiConfig, TopicInfluence};
use cold_bench::workloads::{cold_config, eval_world, BASE_SEED};
use cold_engine::{ClusterCostModel, ParallelGibbs};
use cold_eval::timer::timed;
use cold_eval::{ExperimentReport, Series};

fn main() {
    let scale = cold_bench::scale_arg();
    let data = eval_world(scale);
    println!("fig14 world: {}", data.summary());
    let (c, k) = (6usize, 6usize);
    let iterations = 150usize;

    let mut names: Vec<String> = Vec::new();
    let mut seconds: Vec<f64> = Vec::new();
    let mut record = |name: &str, secs: f64| {
        println!("{name}: {secs:.2}s");
        names.push(name.to_owned());
        seconds.push(secs);
    };

    let (_, t) = timed(|| {
        cold_core::GibbsSampler::new(
            &data.corpus,
            &data.graph,
            cold_config(c, k, iterations, &data),
            BASE_SEED + 140,
        )
        .run()
    });
    record("COLD", t);

    // The distributed run: wall time on this machine plus the cost model's
    // 8-node estimate from the metered work.
    let (stats_model, t_par) = timed(|| {
        ParallelGibbs::new(
            &data.corpus,
            &data.graph,
            cold_config(c, k, iterations, &data),
            8,
            BASE_SEED + 141,
        )
        .run()
    });
    let simulated8 = stats_model
        .1
        .simulated_seconds(&ClusterCostModel::default(), 8);
    record("COLD (8 shards, 1 machine)", t_par);
    record("COLD (8) simulated", simulated8);

    let (_, t) = timed(|| {
        Pmtlm::fit(
            &data.corpus,
            &data.graph,
            &PmtlmConfig {
                iterations,
                ..PmtlmConfig::new(c, &data.graph)
            },
            BASE_SEED + 142,
        )
    });
    record("PMTLM", t);

    let (_, t) = timed(|| {
        Mmsb::fit(
            &data.graph,
            &MmsbConfig::new(c, &data.graph),
            BASE_SEED + 143,
        )
    });
    record("MMSB", t);

    let (_, t) = timed(|| {
        Eutb::fit(
            &data.corpus,
            &EutbConfig {
                alpha: 1.0,
                iterations,
                ..EutbConfig::new(k)
            },
            BASE_SEED + 144,
        )
    });
    record("EUTB", t);

    let (_, t) = timed(|| {
        PipelineModel::fit(
            &data.corpus,
            &data.graph,
            &PipelineConfig::new(c, k, &data.graph),
            BASE_SEED + 145,
        )
    });
    record("Pipeline", t);

    let (_, t) = timed(|| {
        TopicInfluence::fit(
            &data.corpus,
            &data.cascades,
            &TiConfig::new(k),
            BASE_SEED + 146,
        )
    });
    record("TI", t);

    let mut report = ExperimentReport::new(
        "fig14_train_time",
        "Training time per method (C = K = 6; reduced-scale world)",
        "method",
        "seconds",
        names,
    );
    report.push_series(Series::new("seconds", seconds));
    report.note(format!("world: {}", data.summary()));
    report.note("paper: Fig. 14 — COLD costly sequentially, competitive distributed".to_owned());
    cold_bench::emit(&report);
}
