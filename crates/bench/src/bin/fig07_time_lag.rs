//! Fig. 7 — popularity lag between highly- and medium-interested
//! communities (§5.3): peak-aligned median `ψ` curves. Paper finding:
//! highly-interested communities rise earlier and their popularity lasts
//! longer.

use cold_bench::workloads::{eval_world, fit_cold_best, fitted_topic_for_planted, BASE_SEED};
use cold_core::patterns::TimeLagAnalysis;
use cold_eval::{ExperimentReport, Series};

fn main() {
    let scale = cold_bench::scale_arg();
    let data = eval_world(scale);
    println!("fig07 world: {}", data.summary());
    let model = fit_cold_best(&data, 6, 6, 180, BASE_SEED + 70, 3);
    // The paper's figure follows "Oscars2013" — the planted 'movies' topic.
    let topic = fitted_topic_for_planted(&model, &data, 1);
    // One highly-interested community (the planted primary); communities
    // with at least trace interest form the medium cohort.
    let analysis = TimeLagAnalysis::compute(&model, topic, 1, 0.003);

    println!(
        "high cohort {:?}, medium cohort {:?}",
        analysis.high_communities, analysis.medium_communities
    );
    println!(
        "high peak slice {}, medium peak slice {}, lag {} slices",
        TimeLagAnalysis::peak_slice(&analysis.high_curve),
        TimeLagAnalysis::peak_slice(&analysis.medium_curve),
        analysis.peak_lag()
    );

    let slices: Vec<String> = (0..analysis.high_curve.len())
        .map(|t| t.to_string())
        .collect();
    let mut report = ExperimentReport::new(
        "fig07_time_lag",
        "Peak-aligned median popularity of the 'movies' topic by cohort",
        "time slice",
        "median normalized ψ",
        slices,
    );
    report.push_series(Series::new(
        "highly interested",
        analysis.high_curve.clone(),
    ));
    report.push_series(Series::new(
        "medium interested",
        analysis.medium_curve.clone(),
    ));
    report.note(format!("world: {}", data.summary()));
    report.note(format!(
        "peak lag (medium − high): {} slices",
        analysis.peak_lag()
    ));
    report.note("paper: Fig. 7 — the high cohort peaks earlier and decays more slowly".to_owned());
    cold_bench::emit(&report);
}
