//! Fig. 16 — most influential communities on one topic, plus the pentagon
//! user embedding (§6.6). The community influence degree is the expected
//! Independent Cascade spread seeded with that single community over the
//! `ζ`-weighted community diffusion graph.

use cold_bench::workloads::{eval_world, fit_cold_best, fitted_topic_for_planted, BASE_SEED};
use cold_cascade::{community_influence, pentagon_embedding, user_influence};
use cold_eval::{ExperimentReport, Series};
use cold_math::rng::seeded_rng;

fn main() {
    let scale = cold_bench::scale_arg();
    let data = eval_world(scale);
    println!("fig16 world: {}", data.summary());
    let model = fit_cold_best(&data, 6, 6, 180, BASE_SEED + 160, 3);
    // The paper's figure uses topic "Sports" — planted topic 0 here.
    let topic = fitted_topic_for_planted(&model, &data, 0);
    println!("focus topic: fitted {topic} (planted 'sports')");

    let mut rng = seeded_rng(BASE_SEED + 161);
    let ranking = community_influence(&model, topic, 3_000, &mut rng);
    for r in &ranking {
        println!(
            "community {:>2}: influence {:.3} communities reached, interest {:.4}",
            r.community, r.influence, r.interest
        );
    }

    // User influence degrees (the figure's point sizes), and the pentagon
    // embedding over the top-4 influential communities + "others".
    let user_inf = user_influence(&model, &data.graph, topic, 3, 200, &mut rng);
    let corners: Vec<usize> = ranking.iter().take(4).map(|r| r.community).collect();
    let (corner_pos, points) = pentagon_embedding(&model, &corners, Some(&user_inf));
    let mut top_users: Vec<&cold_cascade::PentagonPoint> = points.iter().collect();
    top_users.sort_by(|a, b| b.size.partial_cmp(&a.size).expect("finite"));
    println!("\ntop-5 influential users (id, influence, dominant corner):");
    for p in top_users.iter().take(5) {
        println!(
            "  user {:>3}: {:.2} -> corner {}",
            p.user, p.size, p.dominant_corner
        );
    }
    println!(
        "corners at {:?}",
        corner_pos
            .iter()
            .map(|&(x, y)| (format!("{x:.2}"), format!("{y:.2}")))
            .collect::<Vec<_>>()
    );

    let mut report = ExperimentReport::new(
        "fig16_influence",
        "Community influence degrees on the 'sports' topic (single-seed IC spread)",
        "community",
        "expected spread (communities)",
        ranking.iter().map(|r| r.community.to_string()).collect(),
    );
    report.push_series(Series::new(
        "influence",
        ranking.iter().map(|r| r.influence).collect(),
    ));
    report.push_series(Series::new(
        "interest",
        ranking.iter().map(|r| r.interest).collect(),
    ));
    report.note(format!("world: {}", data.summary()));
    report.note(format!(
        "pentagon embedding over top-4 communities {corners:?} + 'others'; {} users embedded",
        points.len()
    ));
    report.note("paper: Fig. 16 — a small number of communities dominate topic influence; influential users concentrate in them".to_owned());
    cold_bench::emit(&report);
}
