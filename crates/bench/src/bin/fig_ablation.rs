//! Ablation study (extension beyond the paper's figures, per the design
//! choices §3.5 argues for):
//!
//! * **NoLink** — drop the network component (the paper's own ablation);
//! * **SharedTemporal** — collapse `ψ_kc` to `ψ_k` (tests Definition 4);
//! * **TopComm=1** — single-membership prediction (tests the
//!   mixed-membership design);
//! * **No annealing vs annealing** is exercised implicitly: the standard
//!   recipe disables it.
//!
//! Metrics: time-stamp accuracy at tolerance 2 and diffusion AUC.

use cold_bench::tasks::{diffusion_auc_task, post_split, timestamp_task};
use cold_bench::workloads::{cold_hyper, eval_world, fit_cold_best, fit_cold_nolink, BASE_SEED};
use cold_core::predict::predict_time_slice;
use cold_core::{ColdConfig, DiffusionPredictor, GibbsSampler};
use cold_data::cascade::split_tuples;
use cold_eval::{ExperimentReport, Series};
use cold_math::rng::seeded_rng;

fn main() {
    let scale = cold_bench::scale_arg();
    let data = eval_world(scale);
    println!("ablation world: {}", data.summary());
    let split = post_split(&data, BASE_SEED + 21);
    let mut train_data = data.clone();
    train_data.corpus = data.corpus.restrict(&split.train);
    let mut rng = seeded_rng(BASE_SEED + 22);
    let (_, test_tuples) = split_tuples(&mut rng, &data.cascades, 0.2);
    let (c, k, iters) = (6usize, 6usize, 180usize);
    let tolerances = [2u16];

    let mut names = Vec::new();
    let mut acc2 = Vec::new();
    let mut dauc = Vec::new();
    let mut record = |name: &str, acc: f64, auc: f64| {
        println!("{name}: time-acc@2 {acc:.3}, diffusion AUC {auc:.3}");
        names.push(name.to_owned());
        acc2.push(acc);
        dauc.push(auc);
    };

    // Full COLD.
    let full = fit_cold_best(&train_data, c, k, iters, BASE_SEED + 210, 3);
    let acc = timestamp_task(&data, &split.test, &tolerances, |a, w| {
        predict_time_slice(&full, a, w)
    })[0];
    let predictor = DiffusionPredictor::new(&full, 5).expect("top_comm >= 1");
    let auc = diffusion_auc_task(&data, &test_tuples, |p, f, w| {
        predictor.diffusion_score(p, f, w).expect("valid ids")
    });
    record("COLD (full)", acc, auc);

    // NoLink ablation.
    let nolink = fit_cold_nolink(&train_data, c, k, iters, BASE_SEED + 211);
    let acc = timestamp_task(&data, &split.test, &tolerances, |a, w| {
        predict_time_slice(&nolink, a, w)
    })[0];
    let predictor = DiffusionPredictor::new(&nolink, 5).expect("top_comm >= 1");
    let auc = diffusion_auc_task(&data, &test_tuples, |p, f, w| {
        predictor.diffusion_score(p, f, w).expect("valid ids")
    });
    record("NoLink", acc, auc);

    // Shared-temporal ablation.
    let config = ColdConfig::builder(c, k)
        .iterations(iters)
        .burn_in(iters - 20)
        .sample_lag(4)
        .explicit_negatives(3.0)
        .hyperparams(cold_hyper(c, k, &train_data))
        .shared_temporal()
        .build(&train_data.corpus, &train_data.graph);
    let shared = GibbsSampler::new(
        &train_data.corpus,
        &train_data.graph,
        config,
        BASE_SEED + 212,
    )
    .run();
    let acc = timestamp_task(&data, &split.test, &tolerances, |a, w| {
        predict_time_slice(&shared, a, w)
    })[0];
    let predictor = DiffusionPredictor::new(&shared, 5).expect("top_comm >= 1");
    let auc = diffusion_auc_task(&data, &test_tuples, |p, f, w| {
        predictor.diffusion_score(p, f, w).expect("valid ids")
    });
    record("SharedTemporal (ψ_k)", acc, auc);

    // Single-membership prediction (TopComm = 1) on the full model.
    let single = DiffusionPredictor::new(&full, 1).expect("top_comm >= 1");
    let acc = timestamp_task(&data, &split.test, &tolerances, |a, w| {
        predict_time_slice(&full, a, w)
    })[0];
    let auc = diffusion_auc_task(&data, &test_tuples, |p, f, w| {
        single.diffusion_score(p, f, w).expect("valid ids")
    });
    record("TopComm = 1", acc, auc);

    let mut report = ExperimentReport::new(
        "fig_ablation",
        "Ablations of COLD's design choices (§3.5)",
        "variant",
        "metric",
        names,
    );
    report.push_series(Series::new("time-acc@2", acc2));
    report.push_series(Series::new("diffusion AUC", dauc));
    report.note(format!("world: {}", data.summary()));
    report.note("expected: full COLD at or above every ablation on both metrics".to_owned());
    cold_bench::emit(&report);
}
