//! Serving-path load study: `cold-serve` over a million-user model.
//!
//! Fits COLD on the quality-experiment world, tiles the fitted `π` rows to
//! one million users (`ColdModel::tile_users` — the community/topic
//! structure stays exactly what training produced; the user axis, which is
//! what serving memory and the `TopComm`/ranking precomputes scale with,
//! grows to deployment size), saves the `cold-model/v1` binary artifact,
//! and opens it through the zero-copy [`cold_core::ModelView`] behind a
//! real [`cold_serve::Server`] on a loopback socket.
//!
//! The load generator then sweeps client concurrency over every endpoint
//! with persistent keep-alive connections ([`cold_serve::HttpClient`]),
//! measuring client-side latency per request. Per (endpoint, concurrency)
//! point it reports QPS and p50/p99 milliseconds.
//!
//! Writes `BENCH_serve.json` at the workspace root; `--quick` drives a
//! 50k-user model with a reduced sweep and writes `BENCH_serve_quick.json`
//! so CI smoke runs never clobber the committed headline.

use cold_bench::workloads::{cold_hyper, BASE_SEED};
use cold_core::{ColdConfig, CounterStorage, GibbsSampler, Metrics, ModelFormat};
use cold_data::{generate, WorldConfig};
use cold_math::rng::RngFactory;
use cold_serve::{App, HttpClient, IoMode, ServeConfig, Server};
use rand::Rng;
use serde::Serialize;
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Latent dimensions: the quality-run shape (C=6), with the wider topic
/// axis the prediction path actually iterates over.
const C: usize = 6;
const K: usize = 16;
/// Worker threads — under the thread transport, also the keep-alive
/// concurrency bound.
const WORKERS: usize = 8;
/// Event-loop threads for the epoll transport sweep.
const IO_THREADS: usize = 2;

#[derive(Serialize)]
struct LoadPoint {
    endpoint: String,
    concurrency: usize,
    requests: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

/// One saturation point: connection-per-request clients at an offered
/// load far beyond the deliberately small constrained server.
#[derive(Serialize)]
struct OverloadPoint {
    clients: usize,
    duration_seconds: f64,
    /// Requests attempted per second (connects included).
    offered_qps: f64,
    /// `200`s per second — what the server actually delivered.
    goodput_qps: f64,
    /// Fraction of attempts shed with `503` + `Retry-After`.
    shed_rate: f64,
    /// Fraction of attempts that failed at the transport level.
    error_rate: f64,
    /// Latency of *successful* requests: bounded by the deadline even
    /// at saturation — overload degrades into sheds, not into collapse.
    p50_ms: f64,
    p99_ms: f64,
}

/// One (transport, concurrency) point of the io-mode sweep: keep-alive
/// `/predict` clients against a server running one transport.
#[derive(Serialize)]
struct IoModePoint {
    io_mode: String,
    concurrency: usize,
    duration_seconds: f64,
    /// `200`s delivered.
    requests_ok: usize,
    /// `503` sheds (queue or connection admission).
    shed: usize,
    /// Transport-level failures — under the thread transport at
    /// concurrency beyond the worker pool these are keep-alive
    /// connections parked in the accept queue until the client timeout.
    errors: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// Server-side `serve.open_conns_peak` after this point. The sweep
    /// runs concurrency ascending per mode, so this tracks the point's
    /// own connection count — except the trailing paced point, which
    /// reuses the mode's server and so reads the mode-wide peak.
    open_conns_peak: f64,
    /// Client connections beyond each client's first — keep-alive reuse
    /// failures (`connection: close`, server-side closes, timeouts).
    client_reconnects: u64,
    /// Server threads alive after this point (Linux: `/proc/self/task`
    /// delta from before server start; 0 elsewhere). The epoll claim is
    /// that this stays at `io_threads + workers + supervisor` no matter
    /// how many connections are open.
    server_threads: usize,
    /// Nonzero when the clients were rate-limited to this aggregate
    /// qps. A saturated closed loop's p99 is queueing delay (Little's
    /// law: ~concurrency/qps), so the latency comparison across
    /// transports is made at equal offered load: epoll holding many
    /// connections, paced to the thread backend's peak throughput.
    paced_to_qps: f64,
}

#[derive(Serialize)]
struct BenchReport {
    world: String,
    num_users: u32,
    communities: usize,
    topics: usize,
    vocab_size: usize,
    workers: usize,
    io_threads: usize,
    artifact_bytes: u64,
    /// `ModelView::open` + ζ/TopComm/ranking precompute, seconds.
    app_load_seconds: f64,
    points: Vec<LoadPoint>,
    /// Transport comparison: keep-alive `/predict` at high connection
    /// counts, thread backend vs epoll backend.
    io_modes: Vec<IoModePoint>,
    /// Saturation study against a constrained server (small worker pool
    /// and queues) — goodput and tail latency under offered load ≫
    /// capacity.
    overload: Vec<OverloadPoint>,
    headline: String,
    io_mode_headline: String,
}

/// Train on the base world, tile `π` to `num_users`, save binary.
fn build_artifact(num_users: u32, dir: &std::path::Path) -> (std::path::PathBuf, usize) {
    let config = WorldConfig {
        num_users: 240,
        num_communities: C,
        num_topics: K,
        num_time_slices: 24,
        vocab_size: 6000,
        posts_per_user: 12.0,
        words_per_post: 10.0,
        ..WorldConfig::default()
    };
    let data = generate(&config, BASE_SEED + 9400);
    let fit = ColdConfig::builder(C, K)
        .iterations(40)
        .burn_in(30)
        .sample_lag(2)
        .explicit_negatives(3.0)
        .hyperparams(cold_hyper(C, K, &data))
        .counter_storage(CounterStorage::Auto)
        .build(&data.corpus, &data.graph);
    let t = Instant::now();
    let model = GibbsSampler::new(&data.corpus, &data.graph, fit, BASE_SEED + 9401).run();
    let tiled = model.tile_users(num_users);
    let path = dir.join("serve_model.cold");
    tiled
        .save_as(path.to_str().unwrap(), ModelFormat::Binary)
        .expect("save binary artifact");
    println!(
        "trained 240-user model and tiled to {num_users} users in {:.1}s ({:.1} MiB artifact)",
        t.elapsed().as_secs_f64(),
        std::fs::metadata(&path).expect("stat").len() as f64 / (1 << 20) as f64,
    );
    (path, data.corpus.vocab_size())
}

/// What one client thread sends, over and over.
#[derive(Clone, Copy)]
enum Workload {
    Predict,
    RankInfluencers,
    Communities,
    Healthz,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Predict => "/predict",
            Workload::RankInfluencers => "/rank-influencers",
            Workload::Communities => "/communities/:user",
            Workload::Healthz => "/healthz",
        }
    }

    /// Issue one request with randomized-but-valid parameters; return the
    /// client-observed latency.
    fn fire(
        self,
        client: &mut HttpClient,
        rng: &mut cold_math::rng::Rng,
        num_users: u32,
        vocab: usize,
    ) -> Duration {
        let t = Instant::now();
        let response = match self {
            Workload::Predict => {
                let words: Vec<String> = (0..8)
                    .map(|_| rng.gen_range(0..vocab as u32).to_string())
                    .collect();
                let body = format!(
                    "{{\"publisher\":{},\"consumer\":{},\"words\":[{}]}}",
                    rng.gen_range(0..num_users),
                    rng.gen_range(0..num_users),
                    words.join(",")
                );
                client.post("/predict", &body)
            }
            Workload::RankInfluencers => {
                let body = format!("{{\"topic\":{},\"limit\":10}}", rng.gen_range(0..K));
                client.post("/rank-influencers", &body)
            }
            Workload::Communities => {
                client.get(&format!("/communities/{}", rng.gen_range(0..num_users)))
            }
            Workload::Healthz => client.get("/healthz"),
        };
        let response = response.expect("request failed");
        assert_eq!(response.status, 200, "{}", response.body);
        t.elapsed()
    }
}

/// Drive `endpoint` with `concurrency` keep-alive clients, `per_thread`
/// requests each, all released together. Latencies are client-observed.
fn run_point(
    addr: SocketAddr,
    endpoint: Workload,
    concurrency: usize,
    per_thread: usize,
    num_users: u32,
    vocab: usize,
) -> LoadPoint {
    let barrier = Arc::new(Barrier::new(concurrency + 1));
    let rngs = RngFactory::new(BASE_SEED + 9402);
    let handles: Vec<_> = (0..concurrency)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            let mut rng = rngs.stream(t as u64);
            std::thread::spawn(move || {
                let mut client =
                    HttpClient::connect(addr, Duration::from_secs(30)).expect("connect");
                // Warm the connection (and the server's code paths) off
                // the clock.
                endpoint.fire(&mut client, &mut rng, num_users, vocab);
                barrier.wait();
                let mut latencies = Vec::with_capacity(per_thread);
                for _ in 0..per_thread {
                    latencies.push(endpoint.fire(&mut client, &mut rng, num_users, vocab));
                }
                latencies
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .map(|d| 1e3 * d.as_secs_f64())
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);
    let q = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize];
    let point = LoadPoint {
        endpoint: endpoint.name().to_owned(),
        concurrency,
        requests: latencies.len(),
        qps: latencies.len() as f64 / wall,
        p50_ms: q(0.50),
        p99_ms: q(0.99),
        max_ms: latencies[latencies.len() - 1],
    };
    println!(
        "  {:<20} c={:<3} {:>8.0} qps  p50 {:.3} ms  p99 {:.3} ms",
        point.endpoint, point.concurrency, point.qps, point.p50_ms, point.p99_ms
    );
    point
}

/// Live threads in this process (Linux; 0 elsewhere). Used to show the
/// epoll transport's thread count is independent of connection count.
fn thread_count() -> usize {
    #[cfg(target_os = "linux")]
    {
        std::fs::read_dir("/proc/self/task")
            .map(|d| d.count())
            .unwrap_or(0)
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Extract one gauge from a `/metrics` JSONL snapshot.
fn gauge_in(metrics_body: &str, name: &str) -> f64 {
    let needle = format!("\"name\":\"{name}\"");
    for line in metrics_body.lines() {
        if line.contains("\"type\":\"gauge\"") && line.contains(&needle) {
            if let Ok(v) = serde_json::from_str::<serde::Value>(line) {
                return match v.get("value") {
                    Some(serde::Value::Float(f)) => *f,
                    Some(serde::Value::Int(i)) => *i as f64,
                    Some(serde::Value::UInt(u)) => *u as f64,
                    _ => 0.0,
                };
            }
        }
    }
    0.0
}

/// Drive `/predict` with `concurrency` keep-alive clients for `duration`
/// against a server running `io_mode`. Unlike [`run_point`] this
/// tolerates sheds and stalls — at these connection counts the thread
/// backend parks most clients, and that *is* the measurement.
#[allow(clippy::too_many_arguments)]
fn run_io_mode_point(
    addr: SocketAddr,
    io_mode: IoMode,
    concurrency: usize,
    duration: Duration,
    num_users: u32,
    vocab: usize,
    threads_before: usize,
    paced_to_qps: f64,
) -> IoModePoint {
    let pace =
        (paced_to_qps > 0.0).then(|| Duration::from_secs_f64(concurrency as f64 / paced_to_qps));
    let barrier = Arc::new(Barrier::new(concurrency + 1));
    let rngs = RngFactory::new(BASE_SEED + 9404);
    let handles: Vec<_> = (0..concurrency)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            let mut rng = rngs.stream(t as u64);
            std::thread::spawn(move || {
                // Short client timeout: a connection the thread backend
                // never schedules turns into a counted error, not a
                // wedged sweep.
                let client = HttpClient::connect(addr, Duration::from_secs(2));
                barrier.wait();
                let Ok(mut client) = client else {
                    return (0usize, 0usize, 1usize, Vec::new(), 0u64);
                };
                let deadline = Instant::now() + duration;
                let (mut ok, mut shed, mut err) = (0usize, 0usize, 0usize);
                let mut latencies = Vec::new();
                let mut next_fire = Instant::now();
                while Instant::now() < deadline {
                    if let Some(interval) = pace {
                        let now = Instant::now();
                        if next_fire > now {
                            std::thread::sleep(next_fire - now);
                        }
                        next_fire += interval;
                    }
                    let t0 = Instant::now();
                    let body = format!(
                        "{{\"publisher\":{},\"consumer\":{},\"words\":[{}]}}",
                        rng.gen_range(0..num_users),
                        rng.gen_range(0..num_users),
                        rng.gen_range(0..vocab as u32),
                    );
                    match client.post("/predict", &body) {
                        Ok(r) if r.status == 200 => {
                            ok += 1;
                            latencies.push(1e3 * t0.elapsed().as_secs_f64());
                        }
                        Ok(r) if r.status == 503 => shed += 1,
                        Ok(_) | Err(_) => err += 1,
                    }
                }
                (ok, shed, err, latencies, client.reconnects())
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    let (mut ok, mut shed, mut err, mut reconnects) = (0usize, 0usize, 0usize, 0u64);
    let mut latencies = Vec::new();
    for h in handles {
        let (o, s, e, l, r) = h.join().expect("io-mode client thread");
        ok += o;
        shed += s;
        err += e;
        reconnects += r;
        latencies.extend(l);
    }
    let wall = t0.elapsed().as_secs_f64();
    let server_threads = thread_count().saturating_sub(threads_before);
    // Let the server reap the dropped connections before reading gauges.
    std::thread::sleep(Duration::from_millis(200));
    let metrics = HttpClient::connect(addr, Duration::from_secs(10))
        .and_then(|mut c| c.get("/metrics"))
        .map(|r| r.body)
        .unwrap_or_default();
    latencies.sort_by(f64::total_cmp);
    let q = |p: f64| {
        if latencies.is_empty() {
            0.0
        } else {
            latencies[((latencies.len() - 1) as f64 * p).round() as usize]
        }
    };
    let point = IoModePoint {
        io_mode: io_mode.to_string(),
        concurrency,
        duration_seconds: wall,
        requests_ok: ok,
        shed,
        errors: err,
        qps: ok as f64 / wall,
        p50_ms: q(0.50),
        p99_ms: q(0.99),
        open_conns_peak: gauge_in(&metrics, "serve.open_conns_peak"),
        client_reconnects: reconnects,
        server_threads,
        paced_to_qps,
    };
    let label = if paced_to_qps > 0.0 { " (paced)" } else { "" };
    println!(
        "  {:<8} c={:<4} {:>8.0} qps  p50 {:>7.3} ms  p99 {:>8.3} ms  peak conns {:>4.0}  reconnects {:>5}  server threads {}{label}",
        point.io_mode,
        point.concurrency,
        point.qps,
        point.p50_ms,
        point.p99_ms,
        point.open_conns_peak,
        point.client_reconnects,
        point.server_threads
    );
    point
}

/// Constrained-server shape for the overload study: a pool and queues
/// small enough that the sweep's offered load is far beyond capacity.
const OVERLOAD_WORKERS: usize = 2;
const OVERLOAD_MAX_CONNS: usize = 16;
const OVERLOAD_MAX_QUEUE: usize = 32;

/// Hammer the constrained server with `clients` connection-per-request
/// threads for `duration`, classifying every attempt.
fn run_overload_point(
    addr: SocketAddr,
    clients: usize,
    duration: Duration,
    num_users: u32,
    vocab: usize,
) -> OverloadPoint {
    let barrier = Arc::new(Barrier::new(clients + 1));
    let rngs = RngFactory::new(BASE_SEED + 9403);
    let handles: Vec<_> = (0..clients)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            let mut rng = rngs.stream(t as u64);
            std::thread::spawn(move || {
                barrier.wait();
                let deadline = Instant::now() + duration;
                let (mut ok, mut shed, mut err) = (0usize, 0usize, 0usize);
                let mut latencies = Vec::new();
                while Instant::now() < deadline {
                    let t0 = Instant::now();
                    // A fresh connection per request: every attempt goes
                    // through accept → queue admission, so saturation is
                    // exercised where the shed policy lives.
                    let outcome =
                        HttpClient::connect(addr, Duration::from_secs(5)).and_then(|mut client| {
                            let body = format!(
                                "{{\"publisher\":{},\"consumer\":{},\"words\":[{}]}}",
                                rng.gen_range(0..num_users),
                                rng.gen_range(0..num_users),
                                rng.gen_range(0..vocab as u32),
                            );
                            client.post("/predict", &body)
                        });
                    match outcome {
                        Ok(r) if r.status == 200 => {
                            ok += 1;
                            latencies.push(1e3 * t0.elapsed().as_secs_f64());
                        }
                        Ok(r) if r.status == 503 => shed += 1,
                        Ok(_) | Err(_) => err += 1,
                    }
                }
                (ok, shed, err, latencies)
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    let (mut ok, mut shed, mut err) = (0usize, 0usize, 0usize);
    let mut latencies = Vec::new();
    for h in handles {
        let (o, s, e, l) = h.join().expect("overload client thread");
        ok += o;
        shed += s;
        err += e;
        latencies.extend(l);
    }
    let wall = t0.elapsed().as_secs_f64();
    let attempts = (ok + shed + err).max(1);
    latencies.sort_by(f64::total_cmp);
    let q = |p: f64| {
        if latencies.is_empty() {
            0.0
        } else {
            latencies[((latencies.len() - 1) as f64 * p).round() as usize]
        }
    };
    let point = OverloadPoint {
        clients,
        duration_seconds: wall,
        offered_qps: attempts as f64 / wall,
        goodput_qps: ok as f64 / wall,
        shed_rate: shed as f64 / attempts as f64,
        error_rate: err as f64 / attempts as f64,
        p50_ms: q(0.50),
        p99_ms: q(0.99),
    };
    println!(
        "  overload c={:<4} offered {:>7.0} qps  goodput {:>6.0} qps  shed {:>5.1}%  err {:>4.1}%  p99 {:.1} ms",
        point.clients,
        point.offered_qps,
        point.goodput_qps,
        100.0 * point.shed_rate,
        100.0 * point.error_rate,
        point.p99_ms
    );
    point
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (num_users, levels, per_thread): (u32, &[usize], usize) = if quick {
        (50_000, &[1, 4], 150)
    } else {
        (1_000_000, &[1, 2, 4, 8], 500)
    };
    let out_file = if quick {
        "../BENCH_serve_quick.json"
    } else {
        "../BENCH_serve.json"
    };

    let dir = std::env::temp_dir().join("cold_bench_serve");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let (path, vocab) = build_artifact(num_users, &dir);
    let artifact_bytes = std::fs::metadata(&path).expect("stat").len();

    let t = Instant::now();
    let app = App::load(
        &path,
        cold_core::predict::DEFAULT_TOP_COMM,
        100,
        None,
        Metrics::enabled(),
    )
    .expect("load model");
    let app_load_seconds = t.elapsed().as_secs_f64();
    println!(
        "opened {} users zero-copy and precomputed ζ/TopComm/rankings in {app_load_seconds:.2}s",
        num_users
    );
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: WORKERS,
            ..ServeConfig::default()
        },
        app,
    )
    .expect("start server");
    let addr = server.addr();

    let endpoints = [
        Workload::Predict,
        Workload::RankInfluencers,
        Workload::Communities,
        Workload::Healthz,
    ];
    let mut points = Vec::new();
    for &endpoint in &endpoints {
        for &concurrency in levels {
            points.push(run_point(
                addr,
                endpoint,
                concurrency,
                per_thread,
                num_users,
                vocab,
            ));
        }
    }
    server.shutdown();

    // Transport comparison: both io modes under keep-alive connection
    // counts far beyond the worker pool. The thread backend pins one
    // worker per connection, so concurrency past `WORKERS` parks
    // clients; the epoll backend multiplexes every connection onto
    // `IO_THREADS` event loops and keeps the same scorer pool busy.
    let (mode_levels, mode_secs): (&[usize], f64) = if quick {
        (&[8, 32], 2.0)
    } else {
        (&[8, 16, 64, 256], 5.0)
    };
    #[cfg(target_os = "linux")]
    let modes = [IoMode::Threads, IoMode::Epoll];
    #[cfg(not(target_os = "linux"))]
    let modes = [IoMode::Threads];
    println!("\nio-mode sweep: keep-alive /predict, {WORKERS} workers, {IO_THREADS} io threads:");
    let mut io_mode_points = Vec::new();
    for &mode in &modes {
        let app = App::load(
            &path,
            cold_core::predict::DEFAULT_TOP_COMM,
            100,
            None,
            Metrics::enabled(),
        )
        .expect("reload model for io-mode sweep");
        let threads_before = thread_count();
        let mode_server = Server::start(
            ServeConfig {
                addr: "127.0.0.1:0".to_owned(),
                io_mode: mode,
                io_threads: IO_THREADS,
                workers: WORKERS,
                // Admit the whole sweep: this measures scheduling, not
                // the shed policy (the overload study covers that).
                max_conns: 1024,
                ..ServeConfig::default()
            },
            app,
        )
        .expect("start io-mode server");
        for &concurrency in mode_levels {
            io_mode_points.push(run_io_mode_point(
                mode_server.addr(),
                mode,
                concurrency,
                Duration::from_secs_f64(mode_secs),
                num_users,
                vocab,
                threads_before,
                0.0,
            ));
        }
        // The latency half of the comparison: a saturated closed loop's
        // p99 is mostly its own queueing (~concurrency/qps), so pace the
        // epoll backend down to the thread backend's peak throughput and
        // measure the tail it holds across the same high connection
        // count.
        if mode == IoMode::Epoll {
            let target = io_mode_points
                .iter()
                .filter(|p| p.io_mode == "threads")
                .map(|p| p.qps)
                .fold(0.0f64, f64::max);
            if target > 0.0 {
                let concurrency = if mode_levels.contains(&64) {
                    64
                } else {
                    *mode_levels.last().expect("mode levels")
                };
                io_mode_points.push(run_io_mode_point(
                    mode_server.addr(),
                    mode,
                    concurrency,
                    Duration::from_secs_f64(mode_secs),
                    num_users,
                    vocab,
                    threads_before,
                    target,
                ));
            }
        }
        mode_server.shutdown();
    }

    // Overload study: a deliberately undersized server (2 workers, short
    // queues, 2s deadline) under offered load far beyond capacity. The
    // claim: goodput holds and p99 stays deadline-bounded while the
    // excess is shed with 503 — degradation, not collapse.
    let (overload_levels, overload_secs): (&[usize], f64) = if quick {
        (&[8, 32], 2.0)
    } else {
        (&[16, 64, 256], 4.0)
    };
    println!(
        "\noverload sweep against a constrained server ({OVERLOAD_WORKERS} workers, \
         {OVERLOAD_MAX_CONNS}-conn / {OVERLOAD_MAX_QUEUE}-job queues):"
    );
    let app = App::load(
        &path,
        cold_core::predict::DEFAULT_TOP_COMM,
        100,
        None,
        Metrics::enabled(),
    )
    .expect("reload model for overload sweep");
    let constrained = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: OVERLOAD_WORKERS,
            max_conns: OVERLOAD_MAX_CONNS,
            max_queue: OVERLOAD_MAX_QUEUE,
            request_timeout: Duration::from_secs(2),
            ..ServeConfig::default()
        },
        app,
    )
    .expect("start constrained server");
    let overload: Vec<OverloadPoint> = overload_levels
        .iter()
        .map(|&clients| {
            run_overload_point(
                constrained.addr(),
                clients,
                Duration::from_secs_f64(overload_secs),
                num_users,
                vocab,
            )
        })
        .collect();
    constrained.shutdown();
    let _ = std::fs::remove_file(&path);

    let best_predict = points
        .iter()
        .filter(|p| p.endpoint == "/predict")
        .max_by(|a, b| a.qps.total_cmp(&b.qps))
        .expect("predict points");
    let headline = format!(
        "cold-serve answers /predict on a {}-user zero-copy model at {:.0} qps \
         (p50 {:.2} ms, p99 {:.2} ms at concurrency {}) after a {:.2}s cold start",
        num_users,
        best_predict.qps,
        best_predict.p50_ms,
        best_predict.p99_ms,
        best_predict.concurrency,
        app_load_seconds,
    );
    println!("\n{headline}");

    // Head-to-head at the largest concurrency both transports ran —
    // c=64 in the full sweep, per the acceptance bar: epoll qps ≥ 2×
    // threads, with p99 no worse than the thread backend at c=8.
    let head_c = if mode_levels.contains(&64) {
        64
    } else {
        *mode_levels.last().expect("mode levels")
    };
    let mode_at = |m: &str, c: usize| {
        io_mode_points
            .iter()
            .find(|p| p.io_mode == m && p.concurrency == c && p.paced_to_qps == 0.0)
    };
    let paced_point = io_mode_points.iter().find(|p| p.paced_to_qps > 0.0);
    let io_mode_headline = match (mode_at("epoll", head_c), mode_at("threads", head_c)) {
        (Some(e), Some(t)) if t.qps > 0.0 => {
            let baseline_p99 = mode_at("threads", mode_levels[0])
                .map(|p| p.p99_ms)
                .unwrap_or(0.0);
            let paced = paced_point
                .map(|p| {
                    format!(
                        "; paced to the thread backend's peak ({:.0} qps) it holds p99 {:.2} ms \
                         across {} connections",
                        p.paced_to_qps, p.p99_ms, p.concurrency
                    )
                })
                .unwrap_or_default();
            format!(
                "at c={head_c} keep-alive the epoll transport answers /predict at {:.0} qps \
                 ({:.1}x the thread backend's {:.0} qps) on {} server threads \
                 (thread backend at c={}: p99 {:.2} ms){paced}",
                e.qps,
                e.qps / t.qps,
                t.qps,
                e.server_threads,
                mode_levels[0],
                baseline_p99,
            )
        }
        _ => "thread transport only (epoll backend needs Linux)".to_owned(),
    };
    println!("{io_mode_headline}");

    let report = BenchReport {
        world: "quality world fit, π tiled to deployment size".to_owned(),
        num_users,
        communities: C,
        topics: K,
        vocab_size: vocab,
        workers: WORKERS,
        io_threads: IO_THREADS,
        artifact_bytes,
        app_load_seconds,
        points,
        io_modes: io_mode_points,
        overload,
        headline,
        io_mode_headline,
    };
    let out = cold_bench::results_dir().join(out_file);
    let json = serde_json::to_string_pretty(&report).expect("report serialization");
    std::fs::write(&out, json + "\n").expect("write bench report");
    println!("(saved {})", out.display());
}
