//! Fig. 11 — time-stamp prediction accuracy vs tolerance for COLD,
//! COLD-NoLink, EUTB and Pipeline (§6.3). Paper shape: COLD best,
//! COLD-NoLink above EUTB, Pipeline worst (no network/content
//! interdependence).

use cold_baselines::eutb::{Eutb, EutbConfig};
use cold_baselines::pipeline::{PipelineConfig, PipelineModel};
use cold_baselines::TimePredictor;
use cold_bench::tasks::{post_split, timestamp_task};
use cold_bench::workloads::{eval_world, fit_cold_best, fit_cold_nolink, BASE_SEED};
use cold_core::predict::predict_time_slice;
use cold_eval::{ExperimentReport, Series};

fn main() {
    let scale = cold_bench::scale_arg();
    let data = eval_world(scale);
    println!("fig11 world: {}", data.summary());
    let split = post_split(&data, BASE_SEED + 11);
    let mut train_data = data.clone();
    train_data.corpus = data.corpus.restrict(&split.train);

    let tolerances: Vec<u16> = vec![0, 1, 2, 3, 4, 6, 8];
    let (c, k) = (6usize, 6usize);

    let cold = fit_cold_best(&train_data, c, k, 180, BASE_SEED + 110, 3);
    let acc_cold = timestamp_task(&data, &split.test, &tolerances, |author, words| {
        predict_time_slice(&cold, author, words)
    });

    let nolink = fit_cold_nolink(&train_data, c, k, 180, BASE_SEED + 111);
    let acc_nolink = timestamp_task(&data, &split.test, &tolerances, |author, words| {
        predict_time_slice(&nolink, author, words)
    });

    let eutb = Eutb::fit(
        &train_data.corpus,
        &EutbConfig {
            alpha: 1.0,
            iterations: 150,
            ..EutbConfig::new(k)
        },
        BASE_SEED + 112,
    );
    let acc_eutb = timestamp_task(&data, &split.test, &tolerances, |author, words| {
        eutb.predict_time(author, words)
    });

    let pipeline = PipelineModel::fit(
        &train_data.corpus,
        &train_data.graph,
        &PipelineConfig::new(c, k, &train_data.graph),
        BASE_SEED + 113,
    );
    let acc_pipeline = timestamp_task(&data, &split.test, &tolerances, |author, words| {
        pipeline.predict_time(author, words)
    });

    for (i, &tol) in tolerances.iter().enumerate() {
        println!(
            "tol={tol}: COLD {:.3}  NoLink {:.3}  EUTB {:.3}  Pipeline {:.3}",
            acc_cold[i], acc_nolink[i], acc_eutb[i], acc_pipeline[i]
        );
    }

    let mut report = ExperimentReport::new(
        "fig11_timestamp",
        "Time-stamp prediction accuracy vs tolerance (higher is better)",
        "tolerance (slices)",
        "accuracy",
        tolerances.iter().map(|t| t.to_string()).collect(),
    );
    report.push_series(Series::new("COLD", acc_cold));
    report.push_series(Series::new("COLD-NoLink", acc_nolink));
    report.push_series(Series::new("EUTB", acc_eutb));
    report.push_series(Series::new("Pipeline", acc_pipeline));
    report.note(format!("world: {}", data.summary()));
    report.note(
        "paper: Fig. 11 — COLD > COLD-NoLink > EUTB > Pipeline at every tolerance".to_owned(),
    );
    cold_bench::emit(&report);
}
