//! Experiment harness for the COLD reproduction.
//!
//! One binary per paper figure (`fig05_…` through `fig17_19_…`, plus the
//! `fig_ablation` extension study); `all_experiments` runs everything and
//! refreshes `results/*.json`. The shared pieces live here:
//!
//! * [`workloads`] — the standard synthetic worlds (an evaluation world
//!   standing in for the paper's Dataset 1, and a scaling series standing
//!   in for Dataset 2) and the standard model-fitting recipes.
//! * [`tasks`] — the four evaluation tasks of §6 (held-out perplexity,
//!   link prediction, time-stamp prediction, diffusion prediction),
//!   implemented once and reused by every figure that reports them.
//!
//! Scale note: the paper trains on 11M-post crawls on a cluster; these
//! experiments default to a few-thousand-post world that trains in seconds
//! on a laptop. Pass `--scale <f64>` (where a binary supports it) to grow
//! the world. The *shapes* — who wins, roughly by how much, where the
//! crossovers sit — are the reproduction target, not absolute numbers.

// Latent-variable code indexes parallel flat arrays by semantically
// meaningful ids (community c, topic k, user i); iterator rewrites of
// those loops obscure the math they mirror.
#![allow(clippy::needless_range_loop)]

pub mod tasks;
pub mod workloads;

use cold_eval::ExperimentReport;
use std::path::PathBuf;

/// Directory where experiment JSON lands (workspace `results/`).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Print a report to stdout and persist it under `results/`.
pub fn emit(report: &ExperimentReport) {
    println!("{}", report.to_markdown());
    match report.save(results_dir()) {
        Ok(path) => println!("(saved {})\n", path.display()),
        Err(err) => eprintln!("warning: could not save report: {err}"),
    }
}

/// Parse an optional `--scale <f64>` CLI argument (default 1.0).
pub fn scale_arg() -> f64 {
    flag_arg("--scale").unwrap_or(1.0)
}

/// Parse an optional `--folds <usize>` CLI argument (default 1).
///
/// The paper's protocol is 5-fold cross validation; the figures default to
/// a single fold for runtime and accept `--folds 5` to match it exactly.
pub fn folds_arg() -> usize {
    flag_arg("--folds").unwrap_or(1).max(1)
}

fn flag_arg<T: std::str::FromStr>(flag: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
