//! # cold — Community Level Diffusion, end to end
//!
//! The facade crate of the COLD workspace: re-exports every public API so a
//! downstream user depends on one crate.
//!
//! ```
//! use cold::data::{generate, WorldConfig};
//! use cold::core::{ColdConfig, GibbsSampler};
//!
//! let world = generate(&WorldConfig::tiny(), 1);
//! let config = ColdConfig::builder(3, 3)
//!     .iterations(10)
//!     .build(&world.corpus, &world.graph);
//! let model = GibbsSampler::new(&world.corpus, &world.graph, config, 1).run();
//! assert_eq!(model.dims().num_topics, 3);
//! ```
//!
//! Crate map:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the COLD model, Gibbs inference, prediction, pattern analyses |
//! | [`engine`] | GraphLab-style parallel (GAS) inference + cluster cost model |
//! | [`baselines`] | MMSB, PMTLM, TOT, EUTB, Pipeline, WTM, TI comparators |
//! | [`cascade`] | Independent Cascade, influence maximization, Fig. 16 analysis |
//! | [`data`] | synthetic Weibo-like dataset generator with planted truth |
//! | [`graph`] | CSR interaction-network substrate |
//! | [`text`] | corpus / vocabulary / preprocessing substrate |
//! | [`eval`] | AUC, perplexity, tolerance accuracy, NMI, timers, reports |
//! | [`math`] | special functions, samplers, statistics |
//! | [`obs`] | metrics/tracing registry, JSONL + summary-table sinks |

pub use cold_baselines as baselines;
pub use cold_cascade as cascade;
pub use cold_core as core;
pub use cold_data as data;
pub use cold_engine as engine;
pub use cold_eval as eval;
pub use cold_graph as graph;
pub use cold_math as math;
pub use cold_obs as obs;
pub use cold_text as text;
