//! Dirichlet hyper-parameter estimation (Minka's fixed-point iteration).
//!
//! §6.5 of the paper fixes the Dirichlet hyper-parameters by rule of thumb
//! (`ρ = 50/C`, `α = 50/K`, `β = ε = 0.01`) and reports low sensitivity.
//! At very different corpus scales the rule of thumb drifts (see DESIGN.md
//! §5.3); this module provides the standard empirical-Bayes alternative:
//! given the sampled count matrix, update a *symmetric* Dirichlet
//! concentration by Minka's fixed-point iteration
//!
//! ```text
//! a' = a · Σ_j Σ_i [Ψ(n_ij + a) − Ψ(a)]
//!        ─────────────────────────────────
//!        K · Σ_j [Ψ(n_j + K·a) − Ψ(K·a)]
//! ```
//!
//! where `j` ranges over groups (users for `ρ`, communities for `α`) and
//! `i` over the `K` categories of each group.

use crate::state::CountState;
use cold_math::special::digamma;

/// One Minka fixed-point update of a symmetric Dirichlet concentration.
///
/// `counts` is row-major `groups × categories`. Returns the updated
/// concentration, clamped to `[1e-6, 1e3]` for robustness.
pub fn minka_update(counts: &[u32], groups: usize, categories: usize, a: f64) -> f64 {
    debug_assert_eq!(counts.len(), groups * categories);
    debug_assert!(a > 0.0);
    let mut numerator = 0.0;
    let mut denominator = 0.0;
    let ka = categories as f64 * a;
    for g in 0..groups {
        let row = &counts[g * categories..(g + 1) * categories];
        let total: u32 = row.iter().sum();
        if total == 0 {
            continue; // empty groups carry no evidence
        }
        for &n in row {
            if n > 0 {
                numerator += digamma(n as f64 + a) - digamma(a);
            }
        }
        denominator += categories as f64 * (digamma(total as f64 + ka) - digamma(ka));
    }
    if denominator <= 0.0 {
        return a;
    }
    (a * numerator / denominator).clamp(1e-6, 1e3)
}

/// Iterate [`minka_update`] to convergence (relative tolerance `tol`,
/// at most `max_iters` rounds).
pub fn estimate_concentration(
    counts: &[u32],
    groups: usize,
    categories: usize,
    init: f64,
    tol: f64,
    max_iters: usize,
) -> f64 {
    let mut a = init;
    for _ in 0..max_iters {
        let next = minka_update(counts, groups, categories, a);
        if (next - a).abs() <= tol * a {
            return next;
        }
        a = next;
    }
    a
}

/// Empirical-Bayes re-estimates of `ρ` (membership prior) and `α` (topic-
/// interest prior) from a sampled state. Callers can feed these back into
/// the next training run's [`crate::params::Hyperparams`].
pub fn estimate_rho_alpha(state: &CountState) -> (f64, f64) {
    let c = state.num_communities;
    let k = state.num_topics;
    let users = state.n_ic.len() / c;
    // Cold path (once per training run): a dense image is fine whatever
    // backend the families are on.
    let rho = estimate_concentration(&state.n_ic.to_dense_vec(), users, c, 1.0, 1e-4, 100);
    let alpha = estimate_concentration(&state.n_ck.to_dense_vec(), c, k, 1.0, 1e-4, 100);
    (rho, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_math::dirichlet::sample_dirichlet;
    use cold_math::rng::seeded_rng;
    use rand::Rng as _;

    /// Sample `groups` count rows from Dir(a) multinomials and check the
    /// estimator recovers `a` reasonably.
    fn synthetic_counts(
        a: f64,
        groups: usize,
        categories: usize,
        per_group: u32,
        seed: u64,
    ) -> Vec<u32> {
        let mut rng = seeded_rng(seed);
        let mut counts = vec![0u32; groups * categories];
        for g in 0..groups {
            let p = sample_dirichlet(&mut rng, a, categories);
            // cumulative draw per observation
            for _ in 0..per_group {
                let u: f64 = rng.gen();
                let mut acc = 0.0;
                let mut chosen = categories - 1;
                for (i, &pi) in p.iter().enumerate() {
                    acc += pi;
                    if u < acc {
                        chosen = i;
                        break;
                    }
                }
                counts[g * categories + chosen] += 1;
            }
        }
        counts
    }

    #[test]
    fn recovers_sharp_concentration() {
        let counts = synthetic_counts(0.2, 300, 5, 60, 1);
        let est = estimate_concentration(&counts, 300, 5, 1.0, 1e-5, 200);
        assert!((0.1..0.4).contains(&est), "estimated {est} for true 0.2");
    }

    #[test]
    fn recovers_flat_concentration() {
        let counts = synthetic_counts(5.0, 300, 5, 60, 2);
        let est = estimate_concentration(&counts, 300, 5, 1.0, 1e-5, 200);
        assert!((3.0..8.0).contains(&est), "estimated {est} for true 5.0");
    }

    #[test]
    fn sharp_beats_flat_ordering() {
        let sharp = synthetic_counts(0.1, 200, 4, 40, 3);
        let flat = synthetic_counts(10.0, 200, 4, 40, 4);
        let est_sharp = estimate_concentration(&sharp, 200, 4, 1.0, 1e-5, 200);
        let est_flat = estimate_concentration(&flat, 200, 4, 1.0, 1e-5, 200);
        assert!(est_sharp < est_flat, "{est_sharp} vs {est_flat}");
    }

    #[test]
    fn empty_counts_leave_concentration_unchanged() {
        let counts = vec![0u32; 20];
        let est = minka_update(&counts, 4, 5, 0.7);
        assert_eq!(est, 0.7);
    }

    #[test]
    fn state_level_estimates_are_positive() {
        use crate::params::ColdConfig;
        use crate::state::PostsView;
        use cold_graph::CsrGraph;
        use cold_text::CorpusBuilder;

        let mut b = CorpusBuilder::new();
        for rep in 0..5u16 {
            b.push_text(0, rep % 2, &["a", "b"]);
            b.push_text(1, rep % 2, &["c", "d"]);
        }
        let corpus = b.build();
        let graph = CsrGraph::from_edges(2, &[(0, 1)]);
        let config = ColdConfig::builder(2, 2)
            .iterations(4)
            .build(&corpus, &graph);
        let posts = PostsView::from_corpus(&corpus);
        let mut rng = cold_math::rng::seeded_rng(5);
        let state = CountState::init_random(&config, &posts, &graph, &mut rng);
        let (rho, alpha) = estimate_rho_alpha(&state);
        assert!(rho > 0.0 && rho.is_finite());
        assert!(alpha > 0.0 && alpha.is_finite());
    }
}
