//! Online (streaming) inference — the paper's §7 future-work direction
//! ("more efficient and compact summarization techniques … for dynamic and
//! noisy data scenarios").
//!
//! Social streams never stop; refitting from scratch for every batch of
//! new posts is wasteful when the latent structure is stable. The
//! [`OnlineCold`] wrapper holds a converged [`CountState`] and **folds new
//! posts in incrementally**: each arriving post is assigned by a few Gibbs
//! draws against the existing counters (which it then joins), and a short
//! refresh sweep over a recent window keeps the estimates current. Old
//! epochs can be retired to bound memory.
//!
//! This is the standard particle-style treatment of streaming LDA-family
//! models; it inherits the collapsed conditionals from [`conditionals`],
//! so online and batch assignments are drawn from the same distributions.

use crate::checkpoint::{Checkpoint, CheckpointKind, CkptError, OnlineMeta};
use crate::conditionals::{resample_post, Scratch};
use crate::estimates::{ColdModel, EstimateAccumulator};
use crate::params::ColdConfig;
use crate::sampler::{GibbsSampler, TrainTrace};
use crate::state::{CountState, PostsView};
use cold_graph::CsrGraph;
use cold_math::rng::{seeded_rng, Rng};
use cold_text::Post;

/// A fitted model that accepts new posts incrementally.
pub struct OnlineCold {
    config: ColdConfig,
    state: CountState,
    posts: PostsView,
    rng: Rng,
    scratch: Scratch,
    /// Gibbs draws per arriving post (burn-in for its assignment).
    pub draws_per_post: usize,
    /// Recent-window size for refresh sweeps, and the cadence of the
    /// automatic kernel-cache refresh in [`absorb`](Self::absorb).
    pub refresh_window: usize,
    /// Posts absorbed since the kernel caches were last re-snapshotted.
    absorbs_since_refresh: usize,
    /// The warm-start seed, recorded into checkpoints for provenance.
    seed: u64,
}

impl OnlineCold {
    /// Warm-start from a batch fit: runs the configured batch training,
    /// then keeps the final state for streaming updates.
    pub fn warm_start(
        corpus: &cold_text::Corpus,
        graph: &CsrGraph,
        config: ColdConfig,
        seed: u64,
    ) -> Self {
        let mut sampler = GibbsSampler::new(corpus, graph, config.clone(), seed);
        for _ in 0..config.iterations {
            sampler.sweep();
        }
        let state = sampler.state().clone();
        let posts = PostsView::from_corpus(corpus);
        let mut scratch = Scratch::for_config(&config);
        scratch.begin_sweep(&state);
        Self {
            config,
            state,
            posts,
            rng: seeded_rng(seed.wrapping_add(0x0_11e)),
            scratch,
            draws_per_post: 3,
            refresh_window: 256,
            absorbs_since_refresh: 0,
            seed,
        }
    }

    /// Snapshot-on-demand: capture the full streaming state as a
    /// `cold-ckpt/v1` checkpoint. The absorbed post stream rides along
    /// (unlike batch checkpoints, the corpus alone cannot rebuild it).
    /// Never consumes randomness.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            kind: CheckpointKind::Online,
            seed: self.seed,
            shards: 1,
            sweeps_done: self.config.iterations,
            rng: self.rng.raw_state().to_vec(),
            config: self.config.clone(),
            state: self.state.clone(),
            trace: TrainTrace::default(),
            acc: EstimateAccumulator::new(&self.config),
            posts: Some(self.posts.clone()),
            online: Some(OnlineMeta {
                draws_per_post: self.draws_per_post,
                refresh_window: self.refresh_window,
                absorbs_since_refresh: self.absorbs_since_refresh,
            }),
        }
    }

    /// Rebuild a streaming instance from an [`CheckpointKind::Online`]
    /// checkpoint. The kernel caches are re-snapshotted from the restored
    /// counters, exactly as [`warm_start`](Self::warm_start) does — for
    /// the `Exact` and `CachedLog` kernels (pure evaluation / pure
    /// memoization) the resumed absorb stream is bit-identical to the
    /// uninterrupted one; the `AliasMh` kernel rebuilds its proposal
    /// tables, which preserves the stationary distribution but not the
    /// draw-for-draw trajectory when the interrupted instance was running
    /// on stale tables.
    pub fn resume(config: ColdConfig, ckpt: Checkpoint) -> Result<Self, CkptError> {
        if ckpt.kind != CheckpointKind::Online {
            return Err(CkptError::Format(format!(
                "expected an online checkpoint, found {:?}",
                ckpt.kind
            )));
        }
        ckpt.check_config(&config)?;
        if ckpt.rng.len() != 4 {
            return Err(CkptError::Format(format!(
                "online checkpoint needs 4 RNG words, got {}",
                ckpt.rng.len()
            )));
        }
        let (Some(posts), Some(meta)) = (ckpt.posts, ckpt.online) else {
            return Err(CkptError::Format(
                "online checkpoint missing posts view or online metadata".into(),
            ));
        };
        let mut words = [0u64; 4];
        words.copy_from_slice(&ckpt.rng);
        let mut scratch = Scratch::for_config(&config);
        scratch.begin_sweep(&ckpt.state);
        Ok(Self {
            config,
            state: ckpt.state,
            posts,
            rng: Rng::from_raw_state(words),
            scratch,
            draws_per_post: meta.draws_per_post,
            refresh_window: meta.refresh_window,
            absorbs_since_refresh: meta.absorbs_since_refresh,
            seed: ckpt.seed,
        })
    }

    /// Number of posts currently absorbed (batch + streamed).
    pub fn num_posts(&self) -> usize {
        self.posts.len()
    }

    /// Absorb one new post: append it, then give its assignment
    /// `draws_per_post` Gibbs draws against the current counters.
    pub fn absorb(&mut self, post: &Post) {
        let metrics = self.config.metrics.0.clone();
        let _absorb_span = metrics.span("online_absorb");
        let d = self.posts.len();
        self.posts.authors.push(post.author);
        self.posts.times.push(post.time);
        self.posts.multisets.push(post.word_multiset());
        self.posts.lens.push(post.len() as u32);
        // Initial assignment: uniform random, then counted in.
        use rand::Rng as _;
        self.state
            .post_comm
            .push(self.rng.gen_range(0..self.state.num_communities) as u32);
        self.state
            .post_topic
            .push(self.rng.gen_range(0..self.state.num_topics) as u32);
        self.state.add_post(d, &self.posts);
        for _ in 0..self.draws_per_post {
            resample_post(
                &mut self.state,
                &self.posts,
                d,
                &self.config.hyper,
                self.config.hyper.rho,
                &mut self.rng,
                &mut self.scratch,
            );
        }
        metrics.counter_add("online.posts_absorbed", 1);
        // The kernel caches snapshot the counters; a long absorb stream
        // without a `refresh` call would leave the AliasMh proposal tables
        // (and the Eq. 2 rate cache) arbitrarily stale, degrading MH
        // acceptance. Re-snapshot automatically every `refresh_window`
        // absorbs so cache staleness is bounded even for callers that
        // never run maintenance sweeps.
        self.absorbs_since_refresh += 1;
        if self.absorbs_since_refresh >= self.refresh_window {
            self.scratch.begin_sweep(&self.state);
            self.absorbs_since_refresh = 0;
            metrics.counter_add("online.stale_cache_refreshes", 1);
        }
        if metrics.is_enabled() {
            self.scratch
                .take_counters()
                .flush_into(&metrics, self.config.kernel);
        }
    }

    /// One refresh sweep over the most recent `refresh_window` posts —
    /// cheap periodic maintenance that lets recent assignments settle
    /// against each other.
    pub fn refresh(&mut self) {
        let metrics = self.config.metrics.0.clone();
        let _refresh_span = metrics.span("online_refresh");
        // Re-snapshot the kernel caches (fresh alias proposals for the
        // AliasMh kernel) before the maintenance sweep.
        self.scratch.begin_sweep(&self.state);
        self.absorbs_since_refresh = 0;
        let start = self.posts.len().saturating_sub(self.refresh_window);
        for d in start..self.posts.len() {
            resample_post(
                &mut self.state,
                &self.posts,
                d,
                &self.config.hyper,
                self.config.hyper.rho,
                &mut self.rng,
                &mut self.scratch,
            );
        }
        metrics.counter_add("online.refresh_sweeps", 1);
        if metrics.is_enabled() {
            self.scratch
                .take_counters()
                .flush_into(&metrics, self.config.kernel);
        }
    }

    /// Current point-estimate snapshot (single sample, no averaging —
    /// streaming callers re-snapshot as often as they like).
    pub fn snapshot(&self) -> ColdModel {
        let mut acc = EstimateAccumulator::new(&self.config);
        acc.collect(&self.state);
        acc.finalize()
    }

    /// Read access to the live count state (tests, diagnostics).
    pub fn state(&self) -> &CountState {
        &self.state
    }

    /// Consistency check over the absorbed posts (O(data), tests only).
    pub fn check_consistency(&self) -> Result<(), String> {
        self.state.check_consistency(&self.posts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ColdConfig, Hyperparams};
    use cold_text::CorpusBuilder;

    fn setup() -> (cold_text::Corpus, CsrGraph, ColdConfig) {
        let mut b = CorpusBuilder::new();
        for rep in 0..6u16 {
            b.push_text(0, rep % 2, &["football", "goal", "match"]);
            b.push_text(1, 2 + rep % 2, &["film", "oscar", "actor"]);
        }
        let corpus = b.build();
        let graph = CsrGraph::from_edges(2, &[(0, 1), (1, 0)]);
        let config = ColdConfig::builder(2, 2)
            .iterations(60)
            .burn_in(50)
            .hyperparams(Hyperparams {
                alpha: 0.2,
                beta: 0.01,
                epsilon: 0.05,
                rho: 0.5,
                lambda0: 2.0,
                lambda1: 0.1,
            })
            .build(&corpus, &graph);
        (corpus, graph, config)
    }

    #[test]
    fn absorbing_posts_keeps_counters_consistent() {
        let (corpus, graph, config) = setup();
        let mut online = OnlineCold::warm_start(&corpus, &graph, config, 3);
        let fb = corpus.vocab().id_of("football").unwrap();
        let film = corpus.vocab().id_of("film").unwrap();
        for i in 0..10 {
            let post = if i % 2 == 0 {
                Post::new(0, 1, vec![fb, fb])
            } else {
                Post::new(1, 3, vec![film, film])
            };
            online.absorb(&post);
            online.check_consistency().unwrap();
        }
        assert_eq!(online.num_posts(), corpus.num_posts() + 10);
        online.refresh();
        online.check_consistency().unwrap();
    }

    #[test]
    fn absorbed_posts_land_in_the_matching_topic() {
        let (corpus, graph, config) = setup();
        let mut online = OnlineCold::warm_start(&corpus, &graph, config, 4);
        let snapshot = online.snapshot();
        let fb = corpus.vocab().id_of("football").unwrap() as usize;
        let k_sports = if snapshot.topic_words(0)[fb] > snapshot.topic_words(1)[fb] {
            0u32
        } else {
            1u32
        };
        // Stream ten unambiguous sports posts; they should all be assigned
        // the sports topic.
        let mut hits = 0;
        for _ in 0..10 {
            let post = Post::new(0, 0, vec![fb as u32, fb as u32, fb as u32]);
            online.absorb(&post);
            let d = online.num_posts() - 1;
            if online.state().post_topic[d] == k_sports {
                hits += 1;
            }
        }
        assert!(
            hits >= 8,
            "only {hits}/10 streamed posts hit the sports topic"
        );
    }

    #[test]
    fn snapshot_reflects_streamed_evidence() {
        let (corpus, graph, config) = setup();
        let mut online = OnlineCold::warm_start(&corpus, &graph, config, 5);
        let before = online.snapshot();
        let fb = corpus.vocab().id_of("football").unwrap();
        // Stream a burst of sports posts at a previously quiet time slice.
        for _ in 0..30 {
            online.absorb(&Post::new(0, 3, vec![fb, fb, fb]));
        }
        online.refresh();
        let after = online.snapshot();
        let fbu = fb as usize;
        let k_sports = if after.topic_words(0)[fbu] > after.topic_words(1)[fbu] {
            0
        } else {
            1
        };
        // The sports topic's temporal mass at slice 3 must have grown.
        let mass_before: f64 = (0..2).map(|c| before.temporal(k_sports, c)[3]).sum();
        let mass_after: f64 = (0..2).map(|c| after.temporal(k_sports, c)[3]).sum();
        assert!(
            mass_after > mass_before,
            "streamed burst ignored: {mass_before} -> {mass_after}"
        );
    }

    /// A long absorb stream without manual `refresh` calls re-snapshots
    /// the kernel caches every `refresh_window` posts and counts the
    /// refreshes into `online.stale_cache_refreshes`.
    #[test]
    fn absorb_auto_refreshes_stale_caches() {
        let (corpus, graph, mut config) = setup();
        let metrics = crate::Metrics::enabled();
        config.metrics = crate::params::MetricsHandle(metrics.clone());
        let mut online = OnlineCold::warm_start(&corpus, &graph, config, 6);
        online.refresh_window = 4;
        let fb = corpus.vocab().id_of("football").unwrap();
        for _ in 0..11 {
            online.absorb(&Post::new(0, 0, vec![fb, fb]));
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("online.stale_cache_refreshes"), 2);
        online.check_consistency().unwrap();
        // A manual refresh resets the staleness clock: 3 absorbs since the
        // last auto-refresh + 1 more after refresh() stays below the window.
        online.refresh();
        online.absorb(&Post::new(0, 0, vec![fb]));
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("online.stale_cache_refreshes"), 2);
    }

    /// Snapshot-on-demand → resume is bit-identical for the pure kernels:
    /// the interrupted and uninterrupted streams absorb the same posts and
    /// end in exactly the same state.
    #[test]
    fn online_checkpoint_resume_is_bit_identical() {
        use crate::params::SamplerKernel;
        for kernel in [SamplerKernel::Exact, SamplerKernel::CachedLog] {
            let (corpus, graph, _) = setup();
            let config = ColdConfig::builder(2, 2)
                .iterations(30)
                .burn_in(20)
                .kernel(kernel)
                .build(&corpus, &graph);
            let fb = corpus.vocab().id_of("football").unwrap();
            let film = corpus.vocab().id_of("film").unwrap();
            let stream: Vec<Post> = (0..12)
                .map(|i| {
                    if i % 2 == 0 {
                        Post::new(0, 1, vec![fb, fb])
                    } else {
                        Post::new(1, 3, vec![film])
                    }
                })
                .collect();
            let mut uninterrupted = OnlineCold::warm_start(&corpus, &graph, config.clone(), 7);
            let mut crashed = OnlineCold::warm_start(&corpus, &graph, config.clone(), 7);
            for post in &stream[..5] {
                uninterrupted.absorb(post);
                crashed.absorb(post);
            }
            let ckpt = Checkpoint::decode(&crashed.checkpoint().encode()).unwrap();
            drop(crashed);
            let mut resumed = OnlineCold::resume(config, ckpt).unwrap();
            for post in &stream[5..] {
                uninterrupted.absorb(post);
                resumed.absorb(post);
            }
            assert_eq!(
                resumed.state(),
                uninterrupted.state(),
                "{kernel:?}: resumed stream diverged"
            );
        }
    }

    /// Resuming an online checkpoint with a different configuration or a
    /// non-online checkpoint is rejected.
    #[test]
    fn online_resume_rejects_mismatches() {
        let (corpus, graph, config) = setup();
        let online = OnlineCold::warm_start(&corpus, &graph, config.clone(), 8);
        let ckpt = online.checkpoint();
        let other = ColdConfig::builder(2, 2)
            .iterations(61)
            .burn_in(50)
            .build(&corpus, &graph);
        assert!(matches!(
            OnlineCold::resume(other, ckpt.clone()),
            Err(CkptError::ConfigMismatch(_))
        ));
        let mut wrong_kind = ckpt;
        wrong_kind.kind = CheckpointKind::Sequential;
        assert!(matches!(
            OnlineCold::resume(config, wrong_kind),
            Err(CkptError::Format(_))
        ));
    }
}
