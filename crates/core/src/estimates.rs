//! Point estimation of the collapsed distributions (Appendix A) and the
//! fitted-model container.
//!
//! After burn-in the sampler collects one point estimate per `sample_lag`
//! sweeps and averages them — "the final predictive distributions are
//! obtained by integrating across all the samples".

use crate::params::{ColdConfig, Dims};
use crate::state::CountState;
use cold_text::Vocabulary;
use serde::{Deserialize, Serialize};

/// Read-only access to a fitted model's probability tables.
///
/// Two storage strategies implement it: the owned [`ColdModel`] (five
/// `Vec<f64>` tables, the training-side representation) and the zero-copy
/// [`crate::view::ModelView`] (in-place reads over one aligned artifact
/// buffer, the serving-side representation). Prediction code
/// ([`crate::predict`]) is generic over this trait, so the same Eq. 5–7
/// implementation runs against either backing.
///
/// Implementations must uphold the [`ColdModel`] layout contract: `π` is
/// `U×C` row-major, `θ` is `C×K`, `η` is `C×C`, `φ` is `K×V`, `ψ` is
/// `C×K×T`. Accessors may assume in-range indices (callers validate at
/// the API boundary — see [`crate::predict::PredictError`]).
pub trait ModelRead {
    /// Model dimensions.
    fn dims(&self) -> Dims;
    /// Number of averaged Gibbs samples.
    fn num_samples(&self) -> usize;
    /// `π_i` — user `i`'s distribution over communities.
    fn user_memberships(&self, user: u32) -> &[f64];
    /// `θ_c` — community `c`'s interest over topics.
    fn community_topics(&self, community: usize) -> &[f64];
    /// `η_cc'` — general influence strength of community `c` on `c'`.
    fn eta(&self, c: usize, c2: usize) -> f64;
    /// `φ_k` — topic `k`'s distribution over words.
    fn topic_words(&self, topic: usize) -> &[f64];
    /// `ψ_kc` — topic `k`'s temporal distribution within community `c`.
    fn temporal(&self, topic: usize, community: usize) -> &[f64];

    /// `ζ_kcc' = θ_ck · θ_c'k · η_cc'` — Eq. (4), the topic-sensitive
    /// community-level influence strength.
    fn zeta(&self, topic: usize, c: usize, c2: usize) -> f64 {
        self.community_topics(c)[topic] * self.community_topics(c2)[topic] * self.eta(c, c2)
    }

    /// `TopComm(i)` — the user's `n` strongest communities by `π_i`
    /// (paper §5.2 fixes `n = 5`). Total order on the weights, so a
    /// model carrying NaN cells (possible only through a hand-crafted
    /// binary artifact) still ranks deterministically instead of
    /// panicking.
    fn top_communities(&self, user: u32, n: usize) -> Vec<usize> {
        let row = self.user_memberships(user);
        let mut idx: Vec<usize> = (0..row.len()).collect();
        idx.sort_by(|&a, &b| row[b].total_cmp(&row[a]));
        idx.truncate(n);
        idx
    }
}

/// Borrowed and shared handles read straight through, so prediction code
/// can own an `Arc<ModelView>` (a server) or borrow a `&ColdModel` (an
/// experiment) with the same generic bounds.
impl<M: ModelRead + ?Sized> ModelRead for &M {
    fn dims(&self) -> Dims {
        (**self).dims()
    }
    fn num_samples(&self) -> usize {
        (**self).num_samples()
    }
    fn user_memberships(&self, user: u32) -> &[f64] {
        (**self).user_memberships(user)
    }
    fn community_topics(&self, community: usize) -> &[f64] {
        (**self).community_topics(community)
    }
    fn eta(&self, c: usize, c2: usize) -> f64 {
        (**self).eta(c, c2)
    }
    fn topic_words(&self, topic: usize) -> &[f64] {
        (**self).topic_words(topic)
    }
    fn temporal(&self, topic: usize, community: usize) -> &[f64] {
        (**self).temporal(topic, community)
    }
}

impl<M: ModelRead + ?Sized> ModelRead for std::sync::Arc<M> {
    fn dims(&self) -> Dims {
        (**self).dims()
    }
    fn num_samples(&self) -> usize {
        (**self).num_samples()
    }
    fn user_memberships(&self, user: u32) -> &[f64] {
        (**self).user_memberships(user)
    }
    fn community_topics(&self, community: usize) -> &[f64] {
        (**self).community_topics(community)
    }
    fn eta(&self, c: usize, c2: usize) -> f64 {
        (**self).eta(c, c2)
    }
    fn topic_words(&self, topic: usize) -> &[f64] {
        (**self).topic_words(topic)
    }
    fn temporal(&self, topic: usize, community: usize) -> &[f64] {
        (**self).temporal(topic, community)
    }
}

/// A fitted COLD model: averaged posterior point estimates of
/// `π, θ, η, φ, ψ` (Table 1), all row-major flat matrices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColdModel {
    pub(crate) dims: Dims,
    /// `π`, `U×C`.
    pub(crate) pi: Vec<f64>,
    /// `θ`, `C×K`.
    pub(crate) theta: Vec<f64>,
    /// `η`, `C×C`.
    pub(crate) eta: Vec<f64>,
    /// `φ`, `K×V`.
    pub(crate) phi: Vec<f64>,
    /// `ψ`, `C×K×T` (duplicated across communities in shared-temporal mode).
    pub(crate) psi: Vec<f64>,
    /// Number of Gibbs samples averaged into the estimates.
    pub(crate) samples: usize,
}

impl ColdModel {
    /// Model dimensions.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Number of averaged Gibbs samples.
    pub fn num_samples(&self) -> usize {
        self.samples
    }

    /// `π_i` — user `i`'s distribution over communities.
    pub fn user_memberships(&self, user: u32) -> &[f64] {
        let c = self.dims.num_communities;
        &self.pi[user as usize * c..(user as usize + 1) * c]
    }

    /// A copy of this model scaled to `num_users` by cycling the fitted
    /// `π` rows; `θ`, `η`, `φ`, `ψ` carry over unchanged.
    ///
    /// This is a *load-scaling* harness, not training at scale: the
    /// community/topic structure stays exactly what the fit produced,
    /// while the user axis — which is what serving-path memory, `TopComm`
    /// caches and influencer rankings scale with — grows to deployment
    /// size. `bench_serve` uses it to drive a million-user model through
    /// the HTTP API without a million-user Gibbs run.
    ///
    /// # Panics
    /// Panics if the model has no users to tile from.
    pub fn tile_users(&self, num_users: u32) -> ColdModel {
        assert!(self.dims.num_users > 0, "cannot tile an empty model");
        let c = self.dims.num_communities;
        let mut pi = Vec::with_capacity(num_users as usize * c);
        for i in 0..num_users {
            let src = (i % self.dims.num_users) as usize;
            pi.extend_from_slice(&self.pi[src * c..(src + 1) * c]);
        }
        ColdModel {
            dims: Dims {
                num_users,
                ..self.dims
            },
            pi,
            theta: self.theta.clone(),
            eta: self.eta.clone(),
            phi: self.phi.clone(),
            psi: self.psi.clone(),
            samples: self.samples,
        }
    }

    /// `θ_c` — community `c`'s interest over topics.
    pub fn community_topics(&self, community: usize) -> &[f64] {
        let k = self.dims.num_topics;
        &self.theta[community * k..(community + 1) * k]
    }

    /// `η_cc'` — general influence strength of community `c` on `c'`.
    pub fn eta(&self, c: usize, c2: usize) -> f64 {
        self.eta[c * self.dims.num_communities + c2]
    }

    /// `φ_k` — topic `k`'s distribution over words.
    pub fn topic_words(&self, topic: usize) -> &[f64] {
        let v = self.dims.vocab_size;
        &self.phi[topic * v..(topic + 1) * v]
    }

    /// `ψ_kc` — topic `k`'s temporal distribution within community `c`.
    pub fn temporal(&self, topic: usize, community: usize) -> &[f64] {
        let t = self.dims.num_time_slices;
        let k = self.dims.num_topics;
        let base = (community * k + topic) * t;
        &self.psi[base..base + t]
    }

    /// `ζ_kcc' = θ_ck · θ_c'k · η_cc'` — Eq. (4), the topic-sensitive
    /// community-level influence strength.
    pub fn zeta(&self, topic: usize, c: usize, c2: usize) -> f64 {
        self.community_topics(c)[topic] * self.community_topics(c2)[topic] * self.eta(c, c2)
    }

    /// The `n` most probable words of topic `k`, as `(word, probability)`.
    /// This is the data behind the word clouds of Fig. 8.
    pub fn top_words<'v>(
        &self,
        topic: usize,
        n: usize,
        vocab: &'v Vocabulary,
    ) -> Vec<(&'v str, f64)> {
        let row = self.topic_words(topic);
        let mut idx: Vec<usize> = (0..row.len()).collect();
        idx.sort_by(|&a, &b| row[b].total_cmp(&row[a]));
        idx.truncate(n);
        idx.into_iter()
            .map(|v| (vocab.word(v as u32), row[v]))
            .collect()
    }

    /// `TopComm(i)` — the user's `n` strongest communities by `π_i`
    /// (paper §5.2 fixes `n = 5`).
    pub fn top_communities(&self, user: u32, n: usize) -> Vec<usize> {
        ModelRead::top_communities(self, user, n)
    }

    /// Communities ranked by interest in `topic` (for the §5.3 analyses).
    pub fn communities_by_interest(&self, topic: usize) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = (0..self.dims.num_communities)
            .map(|c| (c, self.community_topics(c)[topic]))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// Hardened (arg-max) community per user; used for NMI against planted
    /// ground truth in recovery tests.
    pub fn hard_user_communities(&self) -> Vec<u32> {
        (0..self.dims.num_users)
            .map(|i| {
                let row = self.user_memberships(i);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c as u32)
                    .unwrap_or(0)
            })
            .collect()
    }
}

impl ModelRead for ColdModel {
    fn dims(&self) -> Dims {
        self.dims
    }
    fn num_samples(&self) -> usize {
        self.samples
    }
    fn user_memberships(&self, user: u32) -> &[f64] {
        ColdModel::user_memberships(self, user)
    }
    fn community_topics(&self, community: usize) -> &[f64] {
        ColdModel::community_topics(self, community)
    }
    fn eta(&self, c: usize, c2: usize) -> f64 {
        ColdModel::eta(self, c, c2)
    }
    fn topic_words(&self, topic: usize) -> &[f64] {
        ColdModel::topic_words(self, topic)
    }
    fn temporal(&self, topic: usize, community: usize) -> &[f64] {
        ColdModel::temporal(self, topic, community)
    }
}

/// Accumulates per-sample point estimates; finalized into a [`ColdModel`].
/// Serializable so checkpoints capture the partial averages collected
/// before an interruption (resume must not lose post-burn-in samples).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateAccumulator {
    dims: Dims,
    hyper_rho: f64,
    hyper_alpha: f64,
    hyper_beta: f64,
    hyper_epsilon: f64,
    lambda0: f64,
    lambda1: f64,
    pi: Vec<f64>,
    theta: Vec<f64>,
    eta: Vec<f64>,
    phi: Vec<f64>,
    psi: Vec<f64>,
    samples: usize,
}

impl EstimateAccumulator {
    /// Fresh accumulator for a configuration.
    pub fn new(config: &ColdConfig) -> Self {
        let d = config.dims;
        let (c, k, t, v, u) = (
            d.num_communities,
            d.num_topics,
            d.num_time_slices,
            d.vocab_size,
            d.num_users as usize,
        );
        Self {
            dims: d,
            hyper_rho: config.hyper.rho,
            hyper_alpha: config.hyper.alpha,
            hyper_beta: config.hyper.beta,
            hyper_epsilon: config.hyper.epsilon,
            lambda0: config.hyper.lambda0,
            lambda1: config.hyper.lambda1,
            pi: vec![0.0; u * c],
            theta: vec![0.0; c * k],
            eta: vec![0.0; c * c],
            phi: vec![0.0; k * v],
            psi: vec![0.0; c * k * t],
            samples: 0,
        }
    }

    /// Number of Gibbs samples folded in so far.
    pub fn samples_collected(&self) -> usize {
        self.samples
    }

    /// Fold in the point estimates computed from the current counts
    /// (Appendix A "Distribution Estimation").
    pub fn collect(&mut self, state: &CountState) {
        let (c, k, t, v) = (
            self.dims.num_communities,
            self.dims.num_topics,
            self.dims.num_time_slices,
            self.dims.vocab_size,
        );
        let u = self.dims.num_users as usize;
        for i in 0..u {
            let denom = state.n_i[i] as f64 + c as f64 * self.hyper_rho;
            for cc in 0..c {
                self.pi[i * c + cc] += (state.n_ic[i * c + cc] as f64 + self.hyper_rho) / denom;
            }
        }
        for cc in 0..c {
            let denom = state.n_c[cc] as f64 + k as f64 * self.hyper_alpha;
            for kk in 0..k {
                self.theta[cc * k + kk] +=
                    (state.n_ck[cc * k + kk] as f64 + self.hyper_alpha) / denom;
            }
        }
        // η̂: Definition 2 defines η_cc' as the *rate* of link formation
        // between a user of c and a user of c'. The appendix's point
        // estimate (n_cc' + λ1)/(n_cc' + λ0 + λ1) saturates once counts
        // exceed λ0 and ranks cells by raw counts, which conflates strength
        // with community size; we therefore normalize by the expected
        // number of ordered user pairs in the cell, m_c·m_c' with
        // m_c = Σ_i π̂_ic (the MLE denominator of the Bernoulli rate).
        // This is the one deliberate deviation from Appendix A; see
        // DESIGN.md.
        let mut community_mass = vec![0.0f64; c];
        for i in 0..u {
            let denom = state.n_i[i] as f64 + c as f64 * self.hyper_rho;
            for (cc, mass) in community_mass.iter_mut().enumerate() {
                *mass += (state.n_ic[i * c + cc] as f64 + self.hyper_rho) / denom;
            }
        }
        for cc in 0..c {
            for c2 in 0..c {
                let n = state.n_cc[cc * c + c2] as f64;
                let pairs = community_mass[cc] * community_mass[c2];
                self.eta[cc * c + c2] +=
                    ((n + self.lambda1) / (pairs + self.lambda0 + self.lambda1)).min(1.0);
            }
        }
        for kk in 0..k {
            let denom = state.n_k[kk] as f64 + v as f64 * self.hyper_beta;
            for vv in 0..v {
                self.phi[kk * v + vv] += (state.n_kv[kk * v + vv] as f64 + self.hyper_beta) / denom;
            }
        }
        for cc in 0..c {
            for kk in 0..k {
                let row = state.time_row(cc) * k * t + kk * t;
                let n_ck_time = (0..t).map(|tt| state.n_ckt[row + tt] as f64).sum::<f64>();
                let denom = n_ck_time + t as f64 * self.hyper_epsilon;
                for tt in 0..t {
                    self.psi[(cc * k + kk) * t + tt] +=
                        (state.n_ckt[state.ckt_index(cc, kk, tt)] as f64 + self.hyper_epsilon)
                            / denom;
                }
            }
        }
        self.samples += 1;
    }

    /// Average the collected samples into a model.
    ///
    /// # Panics
    /// Panics if no sample was ever collected.
    pub fn finalize(mut self) -> ColdModel {
        assert!(self.samples > 0, "no Gibbs samples collected");
        let scale = 1.0 / self.samples as f64;
        for buf in [
            &mut self.pi,
            &mut self.theta,
            &mut self.eta,
            &mut self.phi,
            &mut self.psi,
        ] {
            for x in buf.iter_mut() {
                *x *= scale;
            }
        }
        ColdModel {
            dims: self.dims,
            pi: self.pi,
            theta: self.theta,
            eta: self.eta,
            phi: self.phi,
            psi: self.psi,
            samples: self.samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ColdConfig;
    use crate::state::PostsView;
    use cold_graph::CsrGraph;
    use cold_math::rng::seeded_rng;
    use cold_text::CorpusBuilder;

    fn fitted() -> (ColdModel, cold_text::Corpus) {
        let mut b = CorpusBuilder::new();
        b.push_text(0, 0, &["a", "b"]);
        b.push_text(1, 1, &["c"]);
        let corpus = b.build();
        let graph = CsrGraph::from_edges(2, &[(0, 1)]);
        let config = ColdConfig::builder(2, 3)
            .iterations(4)
            .build(&corpus, &graph);
        let posts = PostsView::from_corpus(&corpus);
        let mut rng = seeded_rng(8);
        let state = crate::state::CountState::init_random(&config, &posts, &graph, &mut rng);
        let mut acc = EstimateAccumulator::new(&config);
        acc.collect(&state);
        acc.collect(&state);
        (acc.finalize(), corpus)
    }

    #[test]
    fn estimates_are_normalized() {
        let (m, _) = fitted();
        for i in 0..2 {
            assert!((m.user_memberships(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        for c in 0..2 {
            assert!((m.community_topics(c).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        for k in 0..3 {
            assert!((m.topic_words(k).iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for c in 0..2 {
                assert!((m.temporal(k, c).iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
        }
        assert_eq!(m.num_samples(), 2);
    }

    #[test]
    fn eta_is_a_probability() {
        let (m, _) = fitted();
        for c in 0..2 {
            for c2 in 0..2 {
                let e = m.eta(c, c2);
                assert!((0.0..=1.0).contains(&e), "eta {e}");
            }
        }
    }

    #[test]
    fn zeta_combines_factors() {
        let (m, _) = fitted();
        let z = m.zeta(1, 0, 1);
        let manual = m.community_topics(0)[1] * m.community_topics(1)[1] * m.eta(0, 1);
        assert!((z - manual).abs() < 1e-15);
    }

    #[test]
    fn top_words_are_sorted() {
        let (m, corpus) = fitted();
        let top = m.top_words(0, 3, corpus.vocab());
        assert_eq!(top.len(), 3);
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
    }

    #[test]
    fn top_communities_ranked_by_pi() {
        let (m, _) = fitted();
        let top = m.top_communities(0, 2);
        assert_eq!(top.len(), 2);
        let row = m.user_memberships(0);
        assert!(row[top[0]] >= row[top[1]]);
        // Truncation below C.
        assert_eq!(m.top_communities(0, 1).len(), 1);
    }

    #[test]
    #[should_panic(expected = "no Gibbs samples")]
    fn finalize_without_samples_panics() {
        let mut b = CorpusBuilder::new();
        b.push_text(0, 0, &["a"]);
        let corpus = b.build();
        let graph = CsrGraph::from_edges(2, &[(0, 1)]);
        let config = ColdConfig::builder(2, 2)
            .iterations(4)
            .build(&corpus, &graph);
        let _ = EstimateAccumulator::new(&config).finalize();
    }
}
