//! Model persistence.
//!
//! A fitted [`ColdModel`] is a set of dense probability tables; training it
//! on real data can take hours (the paper's Fig. 14), so the model must
//! outlive the process. Two on-disk formats share one `load` entry point:
//!
//! * **JSON** — transparent and diffable; the tables are f64 so
//!   round-trips are bit-exact. The historical default.
//! * **`cold-model/v1` binary** ([`ModelFormat::Binary`]) — the zero-copy
//!   artifact serving paths open in milliseconds: a fixed 64-byte header
//!   (magic `COLDMDL1`, version, the six dimensions as little-endian
//!   `u64`s), the five probability tables as back-to-back little-endian
//!   `f64` sections in declaration order (`π, θ, η, φ, ψ` — every section
//!   starts 8-byte aligned, so an mmap of the file can be read in place),
//!   and an FNV-1a64 checksum footer over everything before it (computed
//!   over little-endian 64-bit words — see [`fnv1a64_words`]), following
//!   the `cold-ckpt/v1` durability conventions. Loading is one read plus
//!   `f64::from_le_bytes` per cell — no parsing, bit-exact.
//!
//! [`ColdModel::load`] sniffs the magic, so callers never name the format
//! on the read side.

use crate::checkpoint::atomic_write;
use crate::estimates::ColdModel;
use crate::params::Dims;
use std::io::Read;
use std::path::Path;

/// Errors from model persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file did not contain a valid model.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model persistence I/O error: {e}"),
            PersistError::Format(msg) => write!(f, "invalid model file: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// On-disk encoding of a [`ColdModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelFormat {
    /// Human-readable JSON (the historical default).
    #[default]
    Json,
    /// The `cold-model/v1` zero-copy binary artifact.
    Binary,
}

impl ModelFormat {
    /// Stable lowercase name, matching what [`FromStr`](std::str::FromStr)
    /// accepts.
    pub fn name(self) -> &'static str {
        match self {
            ModelFormat::Json => "json",
            ModelFormat::Binary => "binary",
        }
    }
}

impl std::str::FromStr for ModelFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(ModelFormat::Json),
            "binary" => Ok(ModelFormat::Binary),
            other => Err(format!(
                "unknown model format `{other}` (expected json|binary)"
            )),
        }
    }
}

/// 8-byte magic opening every `cold-model/v1` artifact.
pub const MODEL_MAGIC: [u8; 8] = *b"COLDMDL1";

/// FNV-1a64 over the body viewed as little-endian 64-bit words (a short
/// tail, only possible in corrupt files, is zero-padded). Same offset
/// basis and prime as `cold-ckpt`'s byte-wise `fnv1a64`, but consuming
/// 8 bytes per multiply: the hash is a serial dependency chain, and at
/// artifact sizes (hundreds of MiB) a byte-at-a-time walk would dominate
/// the very load path this format exists to make fast.
fn fnv1a64_words(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        hash ^= u64::from_le_bytes(ch.try_into().expect("8-byte chunk"));
        hash = hash.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        hash ^= u64::from_le_bytes(tail);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Format version written into (and required of) the header.
const MODEL_VERSION: u32 = 1;

/// Header bytes: magic, version `u32`, reserved `u32`, six `u64` dims.
pub(crate) const MODEL_HEADER_LEN: usize = 8 + 4 + 4 + 6 * 8;

/// Verified shape of a `cold-model/v1` artifact: where each probability
/// table lives, in f64 cells from the start of the payload.
///
/// Produced only by [`verify_artifact`], so holding one means the bytes
/// passed magic, version, checksum and section-length validation — the
/// zero-copy [`crate::view::MappedModel`] relies on that to hand out
/// slices without per-read checks.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArtifactLayout {
    /// Model dimensions from the header.
    pub dims: Dims,
    /// Number of averaged Gibbs samples from the header.
    pub samples: usize,
    /// Section lengths in f64 cells, in `π, θ, η, φ, ψ` order.
    pub section_lens: [usize; 5],
}

impl ArtifactLayout {
    /// Start of section `s` in f64 cells from the payload start.
    pub fn section_start(&self, s: usize) -> usize {
        self.section_lens[..s].iter().sum()
    }
}

/// Validate a `cold-model/v1` byte string end to end — truncation, magic,
/// version, checksum footer, then header-implied section lengths — and
/// return the layout. Shared by the parsing loader
/// ([`ColdModel::from_binary`]) and the zero-copy view, so the two paths
/// can never drift in what they accept.
pub(crate) fn verify_artifact(bytes: &[u8]) -> Result<ArtifactLayout, PersistError> {
    let bad = |msg: String| PersistError::Format(msg);
    if bytes.len() < MODEL_HEADER_LEN + 8 {
        return Err(bad(format!(
            "cold-model/v1 artifact truncated: {} bytes is below the \
             {}-byte header + footer minimum",
            bytes.len(),
            MODEL_HEADER_LEN + 8
        )));
    }
    if bytes[..8] != MODEL_MAGIC {
        return Err(bad("bad magic: not a cold-model/v1 artifact".into()));
    }
    let u32_at =
        |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4-byte slice"));
    let u64_at =
        |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8-byte slice"));
    let version = u32_at(8);
    if version != MODEL_VERSION {
        return Err(bad(format!(
            "unsupported cold-model version {version} (expected {MODEL_VERSION})"
        )));
    }
    // Checksum before trusting any length derived from the header.
    let body = &bytes[..bytes.len() - 8];
    let expected = u64_at(bytes.len() - 8);
    let actual = fnv1a64_words(body);
    if actual != expected {
        return Err(bad(format!(
            "checksum mismatch: footer says {expected:#018x}, body hashes to {actual:#018x}"
        )));
    }
    let dim = |i: usize| u64_at(16 + 8 * i) as usize;
    let (u, c, k, t, v) = (dim(0), dim(1), dim(2), dim(3), dim(4));
    let samples = dim(5);
    if u > u32::MAX as usize {
        return Err(bad(format!("user count {u} exceeds the u32 id space")));
    }
    let dims = Dims {
        num_users: u as u32,
        num_communities: c,
        num_topics: k,
        num_time_slices: t,
        vocab_size: v,
    };
    let section_lens = [u * c, c * k, c * c, k * v, c * k * t];
    let payload = section_lens.iter().sum::<usize>() * 8;
    if body.len() != MODEL_HEADER_LEN + payload {
        return Err(bad(format!(
            "section length mismatch: dims imply {} payload bytes, file carries {}",
            payload,
            body.len() - MODEL_HEADER_LEN
        )));
    }
    Ok(ArtifactLayout {
        dims,
        samples,
        section_lens,
    })
}

impl ColdModel {
    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ColdModel serialization cannot fail")
    }

    /// Deserialize from a JSON string.
    pub fn from_json(json: &str) -> Result<Self, PersistError> {
        serde_json::from_str(json).map_err(|e| PersistError::Format(e.to_string()))
    }

    /// The five probability tables in artifact section order.
    fn sections(&self) -> [&Vec<f64>; 5] {
        [&self.pi, &self.theta, &self.eta, &self.phi, &self.psi]
    }

    /// Serialize as a `cold-model/v1` byte string (see the module docs
    /// for the layout).
    pub fn to_binary(&self) -> Vec<u8> {
        let cells: usize = self.sections().iter().map(|s| s.len()).sum();
        let mut out = Vec::with_capacity(MODEL_HEADER_LEN + 8 * cells + 8);
        out.extend_from_slice(&MODEL_MAGIC);
        out.extend_from_slice(&MODEL_VERSION.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // reserved
        for dim in [
            self.dims.num_users as u64,
            self.dims.num_communities as u64,
            self.dims.num_topics as u64,
            self.dims.num_time_slices as u64,
            self.dims.vocab_size as u64,
            self.samples as u64,
        ] {
            out.extend_from_slice(&dim.to_le_bytes());
        }
        for section in self.sections() {
            for &x in section.iter() {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        let checksum = fnv1a64_words(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parse a `cold-model/v1` byte string, verifying magic, version,
    /// section lengths and the checksum footer. Bit-exact: every `f64`
    /// comes back from `from_le_bytes` untouched.
    pub fn from_binary(bytes: &[u8]) -> Result<Self, PersistError> {
        let layout = verify_artifact(bytes)?;
        let mut off = MODEL_HEADER_LEN;
        let mut section = |len: usize| -> Vec<f64> {
            let out = bytes[off..off + 8 * len]
                .chunks_exact(8)
                .map(|ch| f64::from_le_bytes(ch.try_into().expect("8-byte chunk")))
                .collect();
            off += 8 * len;
            out
        };
        Ok(ColdModel {
            dims: layout.dims,
            pi: section(layout.section_lens[0]),
            theta: section(layout.section_lens[1]),
            eta: section(layout.section_lens[2]),
            phi: section(layout.section_lens[3]),
            psi: section(layout.section_lens[4]),
            samples: layout.samples,
        })
    }

    /// Write the model to `path` (JSON), atomically: the bytes land in a
    /// temp file which is fsynced and renamed over the destination (the
    /// `cold-ckpt` durability protocol), so a crash mid-save can never
    /// leave a torn model file where a good one used to be.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        self.save_as(path, ModelFormat::Json)
    }

    /// Write the model to `path` in the chosen format, with the same
    /// atomic-rename durability as [`save`](Self::save).
    pub fn save_as(&self, path: impl AsRef<Path>, format: ModelFormat) -> Result<(), PersistError> {
        let bytes = match format {
            ModelFormat::Json => self.to_json().into_bytes(),
            ModelFormat::Binary => self.to_binary(),
        };
        atomic_write(path, &bytes)?;
        Ok(())
    }

    /// Read a model back from `path`, auto-detecting the format: files
    /// opening with the `COLDMDL1` magic parse as `cold-model/v1`,
    /// anything else as JSON.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let mut data = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut data)?;
        if data.len() >= MODEL_MAGIC.len() && data[..MODEL_MAGIC.len()] == MODEL_MAGIC {
            return Self::from_binary(&data);
        }
        let text = String::from_utf8(data)
            .map_err(|_| PersistError::Format("neither cold-model/v1 nor UTF-8 JSON".into()))?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ColdConfig;
    use crate::sampler::GibbsSampler;
    use cold_graph::CsrGraph;
    use cold_text::CorpusBuilder;

    fn fitted() -> ColdModel {
        let mut b = CorpusBuilder::new();
        b.push_text(0, 0, &["a", "b"]);
        b.push_text(1, 1, &["c", "d"]);
        let corpus = b.build();
        let graph = CsrGraph::from_edges(2, &[(0, 1)]);
        let config = ColdConfig::builder(2, 2)
            .iterations(10)
            .build(&corpus, &graph);
        GibbsSampler::new(&corpus, &graph, config, 1).run()
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let model = fitted();
        let back = ColdModel::from_json(&model.to_json()).unwrap();
        assert_eq!(back.dims(), model.dims());
        assert_eq!(back.num_samples(), model.num_samples());
        for i in 0..2 {
            assert_eq!(back.user_memberships(i), model.user_memberships(i));
        }
        for k in 0..2 {
            assert_eq!(back.topic_words(k), model.topic_words(k));
            for c in 0..2 {
                assert_eq!(back.temporal(k, c), model.temporal(k, c));
            }
        }
        for c in 0..2 {
            for c2 in 0..2 {
                assert_eq!(back.eta(c, c2), model.eta(c, c2));
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let model = fitted();
        // Unique per-process path: a fixed name races when multiple test
        // processes (e.g. `cargo test` across crates) run concurrently.
        let path = std::env::temp_dir().join(format!(
            "cold_model_persist_test_{}.json",
            std::process::id()
        ));
        model.save(&path).unwrap();
        let back = ColdModel::load(&path).unwrap();
        assert_eq!(back.user_memberships(0), model.user_memberships(0));
        std::fs::remove_file(&path).ok();
    }

    /// `save` is atomic: overwriting an existing model either fully
    /// succeeds or leaves the old file intact, and no temp file lingers.
    #[test]
    fn save_overwrites_atomically() {
        let model = fitted();
        let dir = std::env::temp_dir().join(format!("cold_persist_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        std::fs::write(&path, "{stale garbage").unwrap();
        model.save(&path).unwrap();
        let back = ColdModel::load(&path).unwrap();
        assert_eq!(back.num_samples(), model.num_samples());
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(names.len(), 1, "temp file left behind: {names:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_json_is_a_format_error() {
        let err = ColdModel::from_json("{not json").unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
        assert!(err.to_string().contains("invalid model file"));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = ColdModel::load("/definitely/not/here.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    /// Binary round-trip is bit-exact and equal to the JSON path.
    #[test]
    fn binary_round_trip_matches_json_path() {
        let model = fitted();
        let back = ColdModel::from_binary(&model.to_binary()).unwrap();
        let via_json = ColdModel::from_json(&model.to_json()).unwrap();
        assert_eq!(back.dims(), model.dims());
        assert_eq!(back.num_samples(), model.num_samples());
        for i in 0..2 {
            assert_eq!(back.user_memberships(i), model.user_memberships(i));
            assert_eq!(back.user_memberships(i), via_json.user_memberships(i));
        }
        for k in 0..2 {
            assert_eq!(back.topic_words(k), model.topic_words(k));
            assert_eq!(back.topic_words(k), via_json.topic_words(k));
            for c in 0..2 {
                assert_eq!(back.temporal(k, c), model.temporal(k, c));
            }
        }
        for c in 0..2 {
            for c2 in 0..2 {
                assert_eq!(back.eta(c, c2), model.eta(c, c2));
            }
        }
    }

    /// `load` auto-detects the format from the leading bytes.
    #[test]
    fn load_auto_detects_json_and_binary() {
        let model = fitted();
        let dir = std::env::temp_dir().join(format!("cold_model_detect_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("model.json");
        let bin_path = dir.join("model.cold");
        model.save_as(&json_path, ModelFormat::Json).unwrap();
        model.save_as(&bin_path, ModelFormat::Binary).unwrap();
        let from_json = ColdModel::load(&json_path).unwrap();
        let from_bin = ColdModel::load(&bin_path).unwrap();
        assert_eq!(from_json.user_memberships(0), model.user_memberships(0));
        assert_eq!(from_bin.user_memberships(0), model.user_memberships(0));
        assert_eq!(from_bin.topic_words(1), from_json.topic_words(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_bad_magic_fails_loudly() {
        let model = fitted();
        let mut bytes = model.to_binary();
        bytes[0] ^= 0xFF;
        let err = ColdModel::from_binary(&bytes).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn binary_truncation_fails_loudly() {
        let model = fitted();
        let bytes = model.to_binary();
        // Sub-header truncation.
        let err = ColdModel::from_binary(&bytes[..16]).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // A lost tail invalidates the checksum (the footer is now section
        // bytes, and the hashed body shrank).
        let err = ColdModel::from_binary(&bytes[..bytes.len() - 8]).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
    }

    #[test]
    fn binary_bit_flip_fails_the_checksum() {
        let model = fitted();
        let mut bytes = model.to_binary();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let err = ColdModel::from_binary(&bytes).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn binary_wrong_version_is_rejected() {
        let model = fitted();
        let mut bytes = model.to_binary();
        bytes[8] = 9; // version little-endian low byte
                      // Re-stamp the checksum so the version check itself is exercised.
        let body_len = bytes.len() - 8;
        let sum = super::fnv1a64_words(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        let err = ColdModel::from_binary(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn model_format_parses() {
        assert_eq!("json".parse::<ModelFormat>().unwrap(), ModelFormat::Json);
        assert_eq!(
            "binary".parse::<ModelFormat>().unwrap(),
            ModelFormat::Binary
        );
        assert!("yaml".parse::<ModelFormat>().is_err());
    }
}
